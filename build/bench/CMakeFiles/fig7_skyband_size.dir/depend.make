# Empty dependencies file for fig7_skyband_size.
# This may be replaced when dependencies are built.
