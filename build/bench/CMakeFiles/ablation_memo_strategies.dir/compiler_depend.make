# Empty compiler generated dependencies file for ablation_memo_strategies.
# This may be replaced when dependencies are built.
