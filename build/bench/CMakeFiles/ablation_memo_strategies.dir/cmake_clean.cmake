file(REMOVE_RECURSE
  "CMakeFiles/ablation_memo_strategies.dir/ablation_memo_strategies.cc.o"
  "CMakeFiles/ablation_memo_strategies.dir/ablation_memo_strategies.cc.o.d"
  "ablation_memo_strategies"
  "ablation_memo_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memo_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
