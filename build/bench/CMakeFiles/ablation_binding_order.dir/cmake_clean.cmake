file(REMOVE_RECURSE
  "CMakeFiles/ablation_binding_order.dir/ablation_binding_order.cc.o"
  "CMakeFiles/ablation_binding_order.dir/ablation_binding_order.cc.o.d"
  "ablation_binding_order"
  "ablation_binding_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_binding_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
