# Empty compiler generated dependencies file for ablation_binding_order.
# This may be replaced when dependencies are built.
