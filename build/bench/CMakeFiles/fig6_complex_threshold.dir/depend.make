# Empty dependencies file for fig6_complex_threshold.
# This may be replaced when dependencies are built.
