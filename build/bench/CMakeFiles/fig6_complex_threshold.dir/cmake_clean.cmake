file(REMOVE_RECURSE
  "CMakeFiles/fig6_complex_threshold.dir/fig6_complex_threshold.cc.o"
  "CMakeFiles/fig6_complex_threshold.dir/fig6_complex_threshold.cc.o.d"
  "fig6_complex_threshold"
  "fig6_complex_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_complex_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
