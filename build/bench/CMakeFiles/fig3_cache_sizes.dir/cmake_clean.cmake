file(REMOVE_RECURSE
  "CMakeFiles/fig3_cache_sizes.dir/fig3_cache_sizes.cc.o"
  "CMakeFiles/fig3_cache_sizes.dir/fig3_cache_sizes.cc.o.d"
  "fig3_cache_sizes"
  "fig3_cache_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cache_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
