# Empty dependencies file for fig3_cache_sizes.
# This may be replaced when dependencies are built.
