file(REMOVE_RECURSE
  "CMakeFiles/fig5_skyband_threshold.dir/fig5_skyband_threshold.cc.o"
  "CMakeFiles/fig5_skyband_threshold.dir/fig5_skyband_threshold.cc.o.d"
  "fig5_skyband_threshold"
  "fig5_skyband_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_skyband_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
