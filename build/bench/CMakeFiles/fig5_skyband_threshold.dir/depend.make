# Empty dependencies file for fig5_skyband_threshold.
# This may be replaced when dependencies are built.
