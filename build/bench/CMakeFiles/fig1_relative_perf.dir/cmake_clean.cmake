file(REMOVE_RECURSE
  "CMakeFiles/fig1_relative_perf.dir/fig1_relative_perf.cc.o"
  "CMakeFiles/fig1_relative_perf.dir/fig1_relative_perf.cc.o.d"
  "fig1_relative_perf"
  "fig1_relative_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_relative_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
