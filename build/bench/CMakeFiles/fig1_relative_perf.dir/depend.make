# Empty dependencies file for fig1_relative_perf.
# This may be replaced when dependencies are built.
