# Empty dependencies file for fig8_complex_size.
# This may be replaced when dependencies are built.
