file(REMOVE_RECURSE
  "CMakeFiles/fig8_complex_size.dir/fig8_complex_size.cc.o"
  "CMakeFiles/fig8_complex_size.dir/fig8_complex_size.cc.o.d"
  "fig8_complex_size"
  "fig8_complex_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_complex_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
