file(REMOVE_RECURSE
  "CMakeFiles/fig4_index_configs.dir/fig4_index_configs.cc.o"
  "CMakeFiles/fig4_index_configs.dir/fig4_index_configs.cc.o.d"
  "fig4_index_configs"
  "fig4_index_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_index_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
