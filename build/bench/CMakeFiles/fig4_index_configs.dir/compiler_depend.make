# Empty compiler generated dependencies file for fig4_index_configs.
# This may be replaced when dependencies are built.
