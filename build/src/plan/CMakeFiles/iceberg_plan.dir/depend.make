# Empty dependencies file for iceberg_plan.
# This may be replaced when dependencies are built.
