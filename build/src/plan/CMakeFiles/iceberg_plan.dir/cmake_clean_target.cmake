file(REMOVE_RECURSE
  "libiceberg_plan.a"
)
