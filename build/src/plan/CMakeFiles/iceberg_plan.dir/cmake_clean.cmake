file(REMOVE_RECURSE
  "CMakeFiles/iceberg_plan.dir/query_block.cc.o"
  "CMakeFiles/iceberg_plan.dir/query_block.cc.o.d"
  "libiceberg_plan.a"
  "libiceberg_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
