file(REMOVE_RECURSE
  "CMakeFiles/iceberg_nljp.dir/nljp.cc.o"
  "CMakeFiles/iceberg_nljp.dir/nljp.cc.o.d"
  "libiceberg_nljp.a"
  "libiceberg_nljp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_nljp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
