file(REMOVE_RECURSE
  "libiceberg_nljp.a"
)
