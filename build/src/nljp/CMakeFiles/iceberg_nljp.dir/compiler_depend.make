# Empty compiler generated dependencies file for iceberg_nljp.
# This may be replaced when dependencies are built.
