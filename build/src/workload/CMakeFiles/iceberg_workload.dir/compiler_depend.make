# Empty compiler generated dependencies file for iceberg_workload.
# This may be replaced when dependencies are built.
