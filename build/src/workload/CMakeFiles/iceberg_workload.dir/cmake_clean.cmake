file(REMOVE_RECURSE
  "CMakeFiles/iceberg_workload.dir/baseball.cc.o"
  "CMakeFiles/iceberg_workload.dir/baseball.cc.o.d"
  "CMakeFiles/iceberg_workload.dir/basket.cc.o"
  "CMakeFiles/iceberg_workload.dir/basket.cc.o.d"
  "CMakeFiles/iceberg_workload.dir/object.cc.o"
  "CMakeFiles/iceberg_workload.dir/object.cc.o.d"
  "libiceberg_workload.a"
  "libiceberg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
