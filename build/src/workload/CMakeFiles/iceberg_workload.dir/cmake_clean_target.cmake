file(REMOVE_RECURSE
  "libiceberg_workload.a"
)
