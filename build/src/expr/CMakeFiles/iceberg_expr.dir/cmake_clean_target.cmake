file(REMOVE_RECURSE
  "libiceberg_expr.a"
)
