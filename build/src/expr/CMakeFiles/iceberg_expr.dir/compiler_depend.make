# Empty compiler generated dependencies file for iceberg_expr.
# This may be replaced when dependencies are built.
