file(REMOVE_RECURSE
  "CMakeFiles/iceberg_expr.dir/aggregate.cc.o"
  "CMakeFiles/iceberg_expr.dir/aggregate.cc.o.d"
  "CMakeFiles/iceberg_expr.dir/evaluator.cc.o"
  "CMakeFiles/iceberg_expr.dir/evaluator.cc.o.d"
  "CMakeFiles/iceberg_expr.dir/expr.cc.o"
  "CMakeFiles/iceberg_expr.dir/expr.cc.o.d"
  "libiceberg_expr.a"
  "libiceberg_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
