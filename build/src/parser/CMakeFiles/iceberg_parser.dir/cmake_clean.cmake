file(REMOVE_RECURSE
  "CMakeFiles/iceberg_parser.dir/parser.cc.o"
  "CMakeFiles/iceberg_parser.dir/parser.cc.o.d"
  "CMakeFiles/iceberg_parser.dir/token.cc.o"
  "CMakeFiles/iceberg_parser.dir/token.cc.o.d"
  "libiceberg_parser.a"
  "libiceberg_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
