file(REMOVE_RECURSE
  "libiceberg_parser.a"
)
