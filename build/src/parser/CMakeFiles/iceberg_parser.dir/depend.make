# Empty dependencies file for iceberg_parser.
# This may be replaced when dependencies are built.
