file(REMOVE_RECURSE
  "libiceberg_fme.a"
)
