file(REMOVE_RECURSE
  "CMakeFiles/iceberg_fme.dir/fme.cc.o"
  "CMakeFiles/iceberg_fme.dir/fme.cc.o.d"
  "CMakeFiles/iceberg_fme.dir/formula.cc.o"
  "CMakeFiles/iceberg_fme.dir/formula.cc.o.d"
  "CMakeFiles/iceberg_fme.dir/linear.cc.o"
  "CMakeFiles/iceberg_fme.dir/linear.cc.o.d"
  "CMakeFiles/iceberg_fme.dir/subsumption.cc.o"
  "CMakeFiles/iceberg_fme.dir/subsumption.cc.o.d"
  "libiceberg_fme.a"
  "libiceberg_fme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_fme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
