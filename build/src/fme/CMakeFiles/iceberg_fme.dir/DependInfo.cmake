
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fme/fme.cc" "src/fme/CMakeFiles/iceberg_fme.dir/fme.cc.o" "gcc" "src/fme/CMakeFiles/iceberg_fme.dir/fme.cc.o.d"
  "/root/repo/src/fme/formula.cc" "src/fme/CMakeFiles/iceberg_fme.dir/formula.cc.o" "gcc" "src/fme/CMakeFiles/iceberg_fme.dir/formula.cc.o.d"
  "/root/repo/src/fme/linear.cc" "src/fme/CMakeFiles/iceberg_fme.dir/linear.cc.o" "gcc" "src/fme/CMakeFiles/iceberg_fme.dir/linear.cc.o.d"
  "/root/repo/src/fme/subsumption.cc" "src/fme/CMakeFiles/iceberg_fme.dir/subsumption.cc.o" "gcc" "src/fme/CMakeFiles/iceberg_fme.dir/subsumption.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/iceberg_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iceberg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
