# Empty compiler generated dependencies file for iceberg_fme.
# This may be replaced when dependencies are built.
