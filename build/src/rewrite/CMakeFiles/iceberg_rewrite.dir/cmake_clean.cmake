file(REMOVE_RECURSE
  "CMakeFiles/iceberg_rewrite.dir/apriori.cc.o"
  "CMakeFiles/iceberg_rewrite.dir/apriori.cc.o.d"
  "CMakeFiles/iceberg_rewrite.dir/equality_inference.cc.o"
  "CMakeFiles/iceberg_rewrite.dir/equality_inference.cc.o.d"
  "CMakeFiles/iceberg_rewrite.dir/iceberg_view.cc.o"
  "CMakeFiles/iceberg_rewrite.dir/iceberg_view.cc.o.d"
  "CMakeFiles/iceberg_rewrite.dir/memo_rewrite.cc.o"
  "CMakeFiles/iceberg_rewrite.dir/memo_rewrite.cc.o.d"
  "CMakeFiles/iceberg_rewrite.dir/monotonicity.cc.o"
  "CMakeFiles/iceberg_rewrite.dir/monotonicity.cc.o.d"
  "libiceberg_rewrite.a"
  "libiceberg_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
