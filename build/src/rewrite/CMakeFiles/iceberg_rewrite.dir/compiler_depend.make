# Empty compiler generated dependencies file for iceberg_rewrite.
# This may be replaced when dependencies are built.
