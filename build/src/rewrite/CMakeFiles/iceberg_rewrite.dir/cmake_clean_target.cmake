file(REMOVE_RECURSE
  "libiceberg_rewrite.a"
)
