
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/apriori.cc" "src/rewrite/CMakeFiles/iceberg_rewrite.dir/apriori.cc.o" "gcc" "src/rewrite/CMakeFiles/iceberg_rewrite.dir/apriori.cc.o.d"
  "/root/repo/src/rewrite/equality_inference.cc" "src/rewrite/CMakeFiles/iceberg_rewrite.dir/equality_inference.cc.o" "gcc" "src/rewrite/CMakeFiles/iceberg_rewrite.dir/equality_inference.cc.o.d"
  "/root/repo/src/rewrite/iceberg_view.cc" "src/rewrite/CMakeFiles/iceberg_rewrite.dir/iceberg_view.cc.o" "gcc" "src/rewrite/CMakeFiles/iceberg_rewrite.dir/iceberg_view.cc.o.d"
  "/root/repo/src/rewrite/memo_rewrite.cc" "src/rewrite/CMakeFiles/iceberg_rewrite.dir/memo_rewrite.cc.o" "gcc" "src/rewrite/CMakeFiles/iceberg_rewrite.dir/memo_rewrite.cc.o.d"
  "/root/repo/src/rewrite/monotonicity.cc" "src/rewrite/CMakeFiles/iceberg_rewrite.dir/monotonicity.cc.o" "gcc" "src/rewrite/CMakeFiles/iceberg_rewrite.dir/monotonicity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/iceberg_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/iceberg_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/fme/CMakeFiles/iceberg_fme.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/iceberg_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/iceberg_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iceberg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/iceberg_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iceberg_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
