# Empty dependencies file for iceberg_optimizer.
# This may be replaced when dependencies are built.
