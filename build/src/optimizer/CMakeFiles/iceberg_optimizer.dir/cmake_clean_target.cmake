file(REMOVE_RECURSE
  "libiceberg_optimizer.a"
)
