file(REMOVE_RECURSE
  "CMakeFiles/iceberg_optimizer.dir/iceberg_optimizer.cc.o"
  "CMakeFiles/iceberg_optimizer.dir/iceberg_optimizer.cc.o.d"
  "libiceberg_optimizer.a"
  "libiceberg_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
