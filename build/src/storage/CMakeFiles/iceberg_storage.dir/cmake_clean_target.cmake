file(REMOVE_RECURSE
  "libiceberg_storage.a"
)
