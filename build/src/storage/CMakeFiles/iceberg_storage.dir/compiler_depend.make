# Empty compiler generated dependencies file for iceberg_storage.
# This may be replaced when dependencies are built.
