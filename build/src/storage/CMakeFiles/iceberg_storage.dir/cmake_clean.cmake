file(REMOVE_RECURSE
  "CMakeFiles/iceberg_storage.dir/index.cc.o"
  "CMakeFiles/iceberg_storage.dir/index.cc.o.d"
  "CMakeFiles/iceberg_storage.dir/table.cc.o"
  "CMakeFiles/iceberg_storage.dir/table.cc.o.d"
  "libiceberg_storage.a"
  "libiceberg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
