# Empty dependencies file for iceberg_common.
# This may be replaced when dependencies are built.
