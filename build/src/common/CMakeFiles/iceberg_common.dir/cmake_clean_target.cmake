file(REMOVE_RECURSE
  "libiceberg_common.a"
)
