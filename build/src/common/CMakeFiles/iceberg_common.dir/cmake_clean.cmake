file(REMOVE_RECURSE
  "CMakeFiles/iceberg_common.dir/status.cc.o"
  "CMakeFiles/iceberg_common.dir/status.cc.o.d"
  "CMakeFiles/iceberg_common.dir/string_util.cc.o"
  "CMakeFiles/iceberg_common.dir/string_util.cc.o.d"
  "CMakeFiles/iceberg_common.dir/value.cc.o"
  "CMakeFiles/iceberg_common.dir/value.cc.o.d"
  "libiceberg_common.a"
  "libiceberg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
