file(REMOVE_RECURSE
  "libiceberg_engine.a"
)
