file(REMOVE_RECURSE
  "CMakeFiles/iceberg_engine.dir/csv.cc.o"
  "CMakeFiles/iceberg_engine.dir/csv.cc.o.d"
  "CMakeFiles/iceberg_engine.dir/database.cc.o"
  "CMakeFiles/iceberg_engine.dir/database.cc.o.d"
  "libiceberg_engine.a"
  "libiceberg_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
