# Empty compiler generated dependencies file for iceberg_engine.
# This may be replaced when dependencies are built.
