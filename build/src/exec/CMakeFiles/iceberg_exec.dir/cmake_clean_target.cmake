file(REMOVE_RECURSE
  "libiceberg_exec.a"
)
