file(REMOVE_RECURSE
  "CMakeFiles/iceberg_exec.dir/aggregator.cc.o"
  "CMakeFiles/iceberg_exec.dir/aggregator.cc.o.d"
  "CMakeFiles/iceberg_exec.dir/executor.cc.o"
  "CMakeFiles/iceberg_exec.dir/executor.cc.o.d"
  "CMakeFiles/iceberg_exec.dir/join_pipeline.cc.o"
  "CMakeFiles/iceberg_exec.dir/join_pipeline.cc.o.d"
  "libiceberg_exec.a"
  "libiceberg_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
