# Empty compiler generated dependencies file for iceberg_exec.
# This may be replaced when dependencies are built.
