file(REMOVE_RECURSE
  "CMakeFiles/iceberg_catalog.dir/fd.cc.o"
  "CMakeFiles/iceberg_catalog.dir/fd.cc.o.d"
  "CMakeFiles/iceberg_catalog.dir/schema.cc.o"
  "CMakeFiles/iceberg_catalog.dir/schema.cc.o.d"
  "libiceberg_catalog.a"
  "libiceberg_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
