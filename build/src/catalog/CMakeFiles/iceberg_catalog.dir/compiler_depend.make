# Empty compiler generated dependencies file for iceberg_catalog.
# This may be replaced when dependencies are built.
