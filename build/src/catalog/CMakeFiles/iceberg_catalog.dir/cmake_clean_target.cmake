file(REMOVE_RECURSE
  "libiceberg_catalog.a"
)
