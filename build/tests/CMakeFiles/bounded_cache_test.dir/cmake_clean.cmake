file(REMOVE_RECURSE
  "CMakeFiles/bounded_cache_test.dir/bounded_cache_test.cc.o"
  "CMakeFiles/bounded_cache_test.dir/bounded_cache_test.cc.o.d"
  "bounded_cache_test"
  "bounded_cache_test.pdb"
  "bounded_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
