# Empty compiler generated dependencies file for memo_rewrite_test.
# This may be replaced when dependencies are built.
