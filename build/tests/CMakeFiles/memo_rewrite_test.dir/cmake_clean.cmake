file(REMOVE_RECURSE
  "CMakeFiles/memo_rewrite_test.dir/memo_rewrite_test.cc.o"
  "CMakeFiles/memo_rewrite_test.dir/memo_rewrite_test.cc.o.d"
  "memo_rewrite_test"
  "memo_rewrite_test.pdb"
  "memo_rewrite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memo_rewrite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
