file(REMOVE_RECURSE
  "CMakeFiles/nljp_test.dir/nljp_test.cc.o"
  "CMakeFiles/nljp_test.dir/nljp_test.cc.o.d"
  "nljp_test"
  "nljp_test.pdb"
  "nljp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nljp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
