# Empty dependencies file for nljp_test.
# This may be replaced when dependencies are built.
