file(REMOVE_RECURSE
  "CMakeFiles/iceberg_view_test.dir/iceberg_view_test.cc.o"
  "CMakeFiles/iceberg_view_test.dir/iceberg_view_test.cc.o.d"
  "iceberg_view_test"
  "iceberg_view_test.pdb"
  "iceberg_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
