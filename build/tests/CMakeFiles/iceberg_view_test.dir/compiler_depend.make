# Empty compiler generated dependencies file for iceberg_view_test.
# This may be replaced when dependencies are built.
