# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/fme_test[1]_include.cmake")
include("/root/repo/build/tests/subsumption_test[1]_include.cmake")
include("/root/repo/build/tests/monotonicity_test[1]_include.cmake")
include("/root/repo/build/tests/apriori_test[1]_include.cmake")
include("/root/repo/build/tests/nljp_test[1]_include.cmake")
include("/root/repo/build/tests/memo_rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/sql_features_test[1]_include.cmake")
include("/root/repo/build/tests/iceberg_view_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/bounded_cache_test[1]_include.cmake")
