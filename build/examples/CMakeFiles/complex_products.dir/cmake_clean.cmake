file(REMOVE_RECURSE
  "CMakeFiles/complex_products.dir/complex_products.cpp.o"
  "CMakeFiles/complex_products.dir/complex_products.cpp.o.d"
  "complex_products"
  "complex_products.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
