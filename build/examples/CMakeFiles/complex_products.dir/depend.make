# Empty dependencies file for complex_products.
# This may be replaced when dependencies are built.
