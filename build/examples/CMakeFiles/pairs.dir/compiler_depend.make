# Empty compiler generated dependencies file for pairs.
# This may be replaced when dependencies are built.
