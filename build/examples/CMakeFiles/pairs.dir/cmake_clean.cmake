file(REMOVE_RECURSE
  "CMakeFiles/pairs.dir/pairs.cpp.o"
  "CMakeFiles/pairs.dir/pairs.cpp.o.d"
  "pairs"
  "pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
