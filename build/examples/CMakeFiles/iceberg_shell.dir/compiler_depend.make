# Empty compiler generated dependencies file for iceberg_shell.
# This may be replaced when dependencies are built.
