
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/iceberg_shell.cpp" "examples/CMakeFiles/iceberg_shell.dir/iceberg_shell.cpp.o" "gcc" "examples/CMakeFiles/iceberg_shell.dir/iceberg_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/iceberg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/iceberg_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/iceberg_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/nljp/CMakeFiles/iceberg_nljp.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/iceberg_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/fme/CMakeFiles/iceberg_fme.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/iceberg_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/iceberg_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/iceberg_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/iceberg_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iceberg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/iceberg_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iceberg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
