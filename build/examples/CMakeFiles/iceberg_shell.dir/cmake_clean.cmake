file(REMOVE_RECURSE
  "CMakeFiles/iceberg_shell.dir/iceberg_shell.cpp.o"
  "CMakeFiles/iceberg_shell.dir/iceberg_shell.cpp.o.d"
  "iceberg_shell"
  "iceberg_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
