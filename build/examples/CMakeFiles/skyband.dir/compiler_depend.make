# Empty compiler generated dependencies file for skyband.
# This may be replaced when dependencies are built.
