file(REMOVE_RECURSE
  "CMakeFiles/skyband.dir/skyband.cpp.o"
  "CMakeFiles/skyband.dir/skyband.cpp.o.d"
  "skyband"
  "skyband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
