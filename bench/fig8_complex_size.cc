// Reproduces Figure 8: the complex query's running time as the unpivoted
// input grows, HAVING threshold fixed (the paper fixes 5000 at 2x10^5
// rows; we fix a threshold with comparable selectivity at bench scale).
// Expected shape: all systems grow with size; Smart-Iceberg lowest except
// possibly at the smallest size, where the threshold is not selective and
// a parallel baseline can edge it out (the paper saw Vendor A win at 50k).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"

int main() {
  using namespace iceberg;
  using namespace iceberg::bench;

  const int threshold = 60;
  std::printf("=== Figure 8: complex vs input size (threshold=%d) ===\n\n",
              threshold);
  std::printf("%-10s %12s %12s %12s\n", "rows", "postgres(s)", "vendorA(s)",
              "smart(s)");
  const std::string sql = ComplexSql(threshold);
  for (size_t base_rows : {Scaled(1000), Scaled(2000), Scaled(4000),
                           Scaled(6000)}) {
    auto db = MakeProductDb(base_rows);
    TablePtr product = *db->GetTable("product");
    double base = TimeBaseline(db.get(), sql, ExecOptions::Postgres());
    double vendor = TimeBaseline(db.get(), sql, ExecOptions::VendorA());
    double smart = TimeIceberg(db.get(), sql, IcebergOptions::All());
    std::printf("%-10zu %12.3f %12.3f %12.3f\n", product->num_rows(), base,
                vendor, smart);
  }
  return 0;
}
