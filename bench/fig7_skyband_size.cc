// Reproduces Figure 7: skyband running times as the input table grows,
// HAVING threshold fixed. Expected shape: every system slows with size;
// Smart-Iceberg stays lowest, and the gap widens (baseline join work grows
// quadratically while pruning keeps inner evaluations near the number of
// promising bindings).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"

int main() {
  using namespace iceberg;
  using namespace iceberg::bench;

  std::printf("=== Figure 7: skyband vs input size (k=50) ===\n\n");
  std::printf("%-10s %12s %12s %12s\n", "rows", "postgres(s)", "vendorA(s)",
              "smart(s)");
  const std::string sql = SkybandSql("hits", "hruns", 50);
  for (size_t rows : {Scaled(2000), Scaled(4000), Scaled(8000),
                      Scaled(12000)}) {
    auto db = MakeScoreDb(rows);
    double base = TimeBaseline(db.get(), sql, ExecOptions::Postgres());
    double vendor = TimeBaseline(db.get(), sql, ExecOptions::VendorA());
    double smart = TimeIceberg(db.get(), sql, IcebergOptions::All());
    std::printf("%-10zu %12.3f %12.3f %12.3f\n", rows, base, vendor, smart);
  }
  return 0;
}
