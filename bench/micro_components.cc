// Google-benchmark microbenchmarks for the core components: the FME-based
// subsumption derivation (compile-time cost of Section 5.2), subsumption
// evaluation, cache lookup with and without the cache index, index probes,
// and accumulator merging. These quantify the constant factors behind the
// figure-level results.

#include <benchmark/benchmark.h>

#include "src/expr/aggregate.h"
#include "src/fme/subsumption.h"
#include "src/parser/parser.h"
#include "src/storage/table.h"

namespace iceberg {
namespace {

fme::SubsumptionSpec SkybandSpec() {
  fme::SubsumptionSpec spec;
  ExprPtr theta = *ParseExpression(
      "l.x <= r.x AND l.y <= r.y AND (l.x < r.x OR l.y < r.y)");
  std::vector<Expr*> refs;
  CollectColumnRefs(theta, &refs);
  for (Expr* ref : refs) {
    int base = (ref->qualifier == "l" || ref->qualifier == "L") ? 0 : 2;
    ref->resolved_index = base + (ref->column == "x" ? 0 : 1);
  }
  SplitConjuncts(theta, &spec.theta);
  spec.binding_offsets = {0, 1};
  spec.is_left_offset = [](size_t off) { return off < 2; };
  spec.types_by_offset.assign(4, DataType::kInt64);
  return spec;
}

void BM_DeriveSubsumptionSkyband(benchmark::State& state) {
  fme::SubsumptionSpec spec = SkybandSpec();
  for (auto _ : state) {
    auto test = fme::DeriveSubsumption(spec);
    benchmark::DoNotOptimize(test);
  }
}
BENCHMARK(BM_DeriveSubsumptionSkyband);

void BM_SubsumptionEval(benchmark::State& state) {
  auto test = fme::DeriveSubsumption(SkybandSpec());
  Row w{Value::Int(3), Value::Int(7)};
  Row wp{Value::Int(4), Value::Int(9)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(test->Subsumes(w, wp));
  }
}
BENCHMARK(BM_SubsumptionEval);

void BM_HashIndexProbe(benchmark::State& state) {
  Table t("t", Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  for (int i = 0; i < 100000; ++i) {
    t.AppendUnchecked({Value::Int(i % 1000), Value::Int(i)});
  }
  t.BuildHashIndexByIds({0});
  const HashIndex& idx = t.hash_index(0);
  int64_t key = 0;
  for (auto _ : state) {
    Row probe{Value::Int(key)};
    benchmark::DoNotOptimize(idx.Lookup(probe));
    key = (key + 1) % 1000;
  }
}
BENCHMARK(BM_HashIndexProbe);

void BM_OrderedIndexRangeScan(benchmark::State& state) {
  Table t("t", Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  for (int i = 0; i < 100000; ++i) {
    t.AppendUnchecked({Value::Int(i % 1000), Value::Int(i)});
  }
  t.BuildOrderedIndexByIds({0, 1});
  const OrderedIndex& idx = t.ordered_index(0);
  for (auto _ : state) {
    Row bound{Value::Int(995)};
    benchmark::DoNotOptimize(idx.LowerBoundScan(bound, false));
  }
}
BENCHMARK(BM_OrderedIndexRangeScan);

/// The Fig.-4 CI contrast in micro form: memo lookup via hash index vs a
/// linear scan of the cache table.
void BM_CacheLookupHash(benchmark::State& state) {
  std::unordered_map<Row, size_t, RowHash, RowEq> cache;
  for (int i = 0; i < 10000; ++i) {
    cache.emplace(Row{Value::Int(i), Value::Int(i * 3 % 977)}, i);
  }
  int64_t k = 0;
  for (auto _ : state) {
    Row key{Value::Int(k), Value::Int(k * 3 % 977)};
    benchmark::DoNotOptimize(cache.find(key));
    k = (k + 1) % 10000;
  }
}
BENCHMARK(BM_CacheLookupHash);

void BM_CacheLookupLinear(benchmark::State& state) {
  std::vector<Row> cache;
  for (int i = 0; i < 10000; ++i) {
    cache.push_back(Row{Value::Int(i), Value::Int(i * 3 % 977)});
  }
  RowEq eq;
  int64_t k = 0;
  for (auto _ : state) {
    Row key{Value::Int(k), Value::Int(k * 3 % 977)};
    const Row* found = nullptr;
    for (const Row& row : cache) {
      if (eq(row, key)) {
        found = &row;
        break;
      }
    }
    benchmark::DoNotOptimize(found);
    k = (k + 1) % 10000;
  }
}
BENCHMARK(BM_CacheLookupLinear);

void BM_AccumulatorMergePartial(benchmark::State& state) {
  Accumulator source(AggFunc::kAvg);
  for (int i = 0; i < 100; ++i) source.Add(Value::Int(i));
  Row partial = source.PartialState();
  for (auto _ : state) {
    Accumulator acc(AggFunc::kAvg);
    acc.MergePartial(partial);
    benchmark::DoNotOptimize(acc.Final());
  }
}
BENCHMARK(BM_AccumulatorMergePartial);

void BM_RowHashing(benchmark::State& state) {
  Row row{Value::Int(123456), Value::Int(789), Value::Str("attr_name")};
  RowHash hasher;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher(row));
  }
}
BENCHMARK(BM_RowHashing);

}  // namespace
}  // namespace iceberg

BENCHMARK_MAIN();
