// PR 5 microbenchmarks: vectorized columnar scans vs the row-at-a-time
// reference. The micro section measures scan+filter throughput — a compiled
// predicate run row-by-row (RunPredicate) against the same predicate run in
// batch mode over column chunks (FilterBatch), with and without zone-map
// skipping in play. The end-to-end section A/B-flips the process-wide
// vectorize chicken bit around workload queries on the baseline executor.
// Emits JSONL via --json= (BENCH_PR5.json in EXPERIMENTS.md); "speedup" is
// row-time / batch-time (micro) and off-time / on-time (end-to-end). Any
// row-count disagreement between the two paths aborts the run.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"
#include "src/expr/compiled.h"
#include "src/expr/expr.h"
#include "src/storage/column_chunk.h"
#include "src/storage/table.h"

namespace iceberg {
namespace bench {
namespace {

ExprPtr ColIx(int index) {
  ExprPtr c = Col("c" + std::to_string(index));
  c->resolved_index = index;
  return c;
}

// Columns: c0 uniform [0,64), c1 uniform [0,64), c2 uniform [0,1024),
// c3 = row index (sorted — the zone-skipping target).
Table MakeScanTable(size_t n) {
  Table table(Schema({{"c0", DataType::kInt64},
                      {"c1", DataType::kInt64},
                      {"c2", DataType::kInt64},
                      {"c3", DataType::kInt64}}));
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (size_t i = 0; i < n; ++i) {
    table.AppendUnchecked({Value::Int(static_cast<int64_t>(next() % 64)),
                           Value::Int(static_cast<int64_t>(next() % 64)),
                           Value::Int(static_cast<int64_t>(next() % 1024)),
                           Value::Int(static_cast<int64_t>(i))});
  }
  return table;
}

void BenchScanFilter(JsonWriter* json, const char* name, const ExprPtr& expr,
                     const Table& table, int reps) {
  CompiledExpr prog = CompiledExpr::Compile(*expr);
  if (!prog.valid() || !prog.batchable()) {
    std::fprintf(stderr, "%s: predicate did not compile batchable\n", name);
    std::exit(1);
  }
  ColumnChunkSetPtr chunks = table.GetOrBuildChunks();

  constexpr int kTrials = 3;
  size_t hits_row = 0;
  double row_s = 0;
  EvalScratch eval;
  for (int t = 0; t < kTrials; ++t) {
    hits_row = 0;
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      for (size_t i = 0; i < table.num_rows(); ++i) {
        if (prog.RunPredicate(table.row(i), &eval)) ++hits_row;
      }
    }
    double s = timer.Seconds();
    if (t == 0 || s < row_s) row_s = s;
  }

  size_t hits_batch = 0;
  size_t skipped = 0;
  double batch_s = 0;
  BatchScratch batch;
  std::vector<uint32_t> sel(ColumnChunkSet::kChunkRows);
  for (int t = 0; t < kTrials; ++t) {
    hits_batch = 0;
    skipped = 0;
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      for (const ColumnChunk& chunk : chunks->chunks()) {
        if (prog.has_zone_checks() && prog.ZoneRefutes(chunk, 0, nullptr)) {
          ++skipped;
          continue;
        }
        for (size_t k = 0; k < chunk.rows; ++k) {
          sel[k] = static_cast<uint32_t>(k);
        }
        hits_batch += prog.FilterBatch(chunk, 0, nullptr, sel.data(),
                                       chunk.rows, sel.data(), &batch);
      }
    }
    double s = timer.Seconds();
    if (t == 0 || s < batch_s) batch_s = s;
  }

  if (hits_row != hits_batch) {
    std::fprintf(stderr, "MISMATCH in %s: row %zu vs batch %zu hits\n", name,
                 hits_row, hits_batch);
    std::exit(1);
  }
  double speedup = batch_s > 0 ? row_s / batch_s : 0.0;
  std::printf("%-28s row %8.2f ms   batch %8.2f ms   %5.2fx  "
              "(%zu hits, %zu chunks skipped)\n",
              name, row_s * 1e3, batch_s * 1e3, speedup, hits_batch / reps,
              skipped / static_cast<size_t>(reps));
  json->Record(std::string("micro ") + name + " row", 1, row_s * 1e3, 1.0);
  json->Record(std::string("micro ") + name + " batch", 1, batch_s * 1e3,
               speedup);
}

void BenchEndToEnd(JsonWriter* json, const char* label, ExecOptions exec,
                   const std::vector<NamedQuery>& queries, Database* db) {
  std::printf("\nend-to-end %s (baseline executor, %d thread%s):\n", label,
              exec.num_threads, exec.num_threads == 1 ? "" : "s");
  constexpr int kTrials = 3;
  for (const NamedQuery& q : queries) {
    size_t rows_off = 0, rows_on = 0;
    double off_s = 0, on_s = 0;
    SetVectorizedExecEnabled(false);
    for (int t = 0; t < kTrials; ++t) {
      double s = TimeBaseline(db, q.sql, exec, &rows_off);
      if (t == 0 || s < off_s) off_s = s;
    }
    SetVectorizedExecEnabled(true);
    for (int t = 0; t < kTrials; ++t) {
      double s = TimeBaseline(db, q.sql, exec, &rows_on);
      if (t == 0 || s < on_s) on_s = s;
    }
    if (rows_off != rows_on) {
      std::fprintf(stderr, "MISMATCH in %s: %zu vs %zu rows\n",
                   q.name.c_str(), rows_off, rows_on);
      std::exit(1);
    }
    double speedup = on_s > 0 ? off_s / on_s : 0.0;
    std::printf("  %-28s off %8.1f ms   on %8.1f ms   %5.2fx\n",
                q.name.c_str(), off_s * 1e3, on_s * 1e3, speedup);
    json->Record(q.name + " " + label + " vectorize=off", exec.num_threads,
                 off_s * 1e3, 1.0);
    json->Record(q.name + " " + label + " vectorize=on", exec.num_threads,
                 on_s * 1e3, speedup);
  }
}

int Main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  JsonWriter json(flags.json_path);
  const int threads = flags.threads <= 0 ? 1 : flags.threads;

  Table table = MakeScanTable(Scaled(262144));
  const int reps = static_cast<int>(Scaled(40));
  std::printf("scan+filter (%zu rows x %d reps):\n", table.num_rows(), reps);
  // Fused single compare over the dense int lanes — the dominant residual.
  BenchScanFilter(&json, "scan fused-cmp",
                  Bin(BinaryOp::kLt, ColIx(0), LitInt(8)), table, reps);
  // Conjunction of compares: full batch VM with a selection-vector chain.
  BenchScanFilter(
      &json, "scan conjunction",
      AndAll({Bin(BinaryOp::kLt, ColIx(0), LitInt(32)),
              Bin(BinaryOp::kGe, ColIx(1), LitInt(16)),
              Bin(BinaryOp::kLt, Bin(BinaryOp::kAdd, ColIx(0), ColIx(1)),
                  ColIx(2))}),
      table, reps);
  // Range on the sorted column: zone maps refute ~97% of the chunks.
  BenchScanFilter(
      &json, "scan zone-skip",
      AndAll({Bin(BinaryOp::kGe, ColIx(3),
                  LitInt(static_cast<int64_t>(table.num_rows() / 64))),
              Bin(BinaryOp::kLt, ColIx(3),
                  LitInt(static_cast<int64_t>(table.num_rows() / 32))),
              Bin(BinaryOp::kLt, ColIx(0), LitInt(48))}),
      table, reps);

  std::unique_ptr<Database> db = MakeScoreDb(Scaled(3000));
  const std::vector<NamedQuery> queries = {
      {"Q1 skyband(hits,hruns) k=50", SkybandSql("hits", "hruns", 50), false},
      {"Q2 skyband(h2,sb) k=50", SkybandSql("h2", "sb", 50), false},
      {"Q4 pairs c=6 k=20 AVG", PairsSql(6, 20, "AVG"), true},
      {"Q8 player-avg skyband k=30", PlayerAvgSkybandSql(30), false},
  };
  // Seq-scan plans: where the vectorized path carries the join work.
  ExecOptions scan_exec;
  scan_exec.num_threads = threads;
  scan_exec.use_indexes = false;
  BenchEndToEnd(&json, "seqscan", scan_exec, queries, db.get());
  // Default plans (ordered-index range scans win the inner levels): the
  // chicken bit must be a no-op here, not a regression.
  ExecOptions default_exec;
  default_exec.num_threads = threads;
  BenchEndToEnd(&json, "default", default_exec, queries, db.get());

  SetVectorizedExecEnabled(true);
  json.RecordMetrics("vectorized_scan end-of-run");
  FinishBenchTrace(flags);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace iceberg

int main(int argc, char** argv) { return iceberg::bench::Main(argc, argv); }
