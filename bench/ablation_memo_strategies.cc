// Ablation: NLJP-internal memoization (Section 6) vs the static
// memoization rewrite (Appendix C, Listing 8) vs baseline, on a skyband
// with duplicate-rich bindings. Also contrasts the pruning-predicate
// strength: full derived p>= vs equality-only memo hits.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"
#include "src/rewrite/memo_rewrite.h"

int main() {
  using namespace iceberg;
  using namespace iceberg::bench;

  const size_t rows = Scaled(8000);
  auto db = MakeScoreDb(rows);
  const std::string sql = SkybandSql("hits", "hruns", 50);
  std::printf("=== Ablation: memoization strategies, %zu rows ===\n\n", rows);

  double base = TimeBaseline(db.get(), sql, ExecOptions::Postgres());
  std::printf("%-26s %10.3f s\n", "baseline (full join)", base);

  // NLJP memoization only.
  {
    IcebergReport report;
    double t = TimeIceberg(db.get(), sql,
                           IcebergOptions::Only(false, true, false), nullptr,
                           &report);
    std::printf("%-26s %10.3f s  (memo_hits=%zu of %zu bindings)\n",
                "NLJP memoization", t, report.nljp_stats.memo_hits,
                report.nljp_stats.bindings_total);
  }

  // Static rewrite (Appendix C).
  {
    Result<QueryBlock> block = db->Prepare(sql);
    if (!block.ok()) return 1;
    TablePartition part;
    part.left = {0};
    part.right = {1};
    Result<IcebergView> view = AnalyzeIceberg(*block, part);
    if (!view.ok()) return 1;
    Timer timer;
    Result<MemoRewriteResult> rewrite = ExecuteStaticMemoRewrite(*view);
    if (!rewrite.ok()) {
      std::fprintf(stderr, "static rewrite failed: %s\n",
                   rewrite.status().ToString().c_str());
      return 1;
    }
    std::printf("%-26s %10.3f s  (|LJT|=%zu of |L|=%zu)\n",
                "static rewrite (Listing 8)", timer.Seconds(),
                rewrite->distinct_bindings, rewrite->l_rows);
  }

  // Full NLJP (memo + pruning) for reference.
  {
    IcebergReport report;
    double t = TimeIceberg(db.get(), sql, IcebergOptions::All(), nullptr,
                           &report);
    std::printf("%-26s %10.3f s  (pruned=%zu)\n", "NLJP memo+prune", t,
                report.nljp_stats.pruned);
  }
  std::printf(
      "\nexpected shape: both memoization strategies beat the baseline by "
      "roughly the\nbinding-duplication factor; adding pruning dominates "
      "both.\n");
  return 0;
}
