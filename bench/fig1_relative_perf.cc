// Reproduces Figure 1: running times of the eight workload queries on
// baseline PostgreSQL-style execution, the Vendor A profile (parallel),
// and Smart-Iceberg with each optimization in isolation and all combined.
// Times are printed in seconds and normalized against the baseline (the
// paper normalizes bar heights the same way).
//
// Expected shape (paper): "all" wins everywhere, by 10-300x; pruning gives
// the largest isolated speedups; memoization alone helps Q1-Q3 (duplicate
// bindings); a-priori applies only to Q4-Q7 and is the smallest in
// isolation; Vendor A (4 workers) sits a constant factor below baseline
// and may edge out the sequential Smart-Iceberg on Q7/Q8.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"

int main() {
  using namespace iceberg;
  using namespace iceberg::bench;

  const size_t rows = Scaled(12000);
  std::printf("=== Figure 1: relative performance, %zu score rows ===\n\n",
              rows);
  auto db = MakeScoreDb(rows);

  std::printf("%-28s %9s %9s %9s %9s %9s %9s\n", "query", "base", "vendorA",
              "apriori", "memo", "prune", "all");
  std::printf("%-28s %9s %9s %9s %9s %9s %9s\n", "", "(s)", "(s)", "(s)",
              "(s)", "(s)", "(s)");
  for (const NamedQuery& q : Figure1Queries()) {
    size_t base_rows_out = 0;
    double base = TimeBaseline(db.get(), q.sql, ExecOptions::Postgres(),
                               &base_rows_out);
    double vendor = TimeBaseline(db.get(), q.sql, ExecOptions::VendorA());
    double apriori =
        q.apriori_applies
            ? TimeIceberg(db.get(), q.sql,
                          IcebergOptions::Only(true, false, false))
            : -1.0;
    double memo = TimeIceberg(db.get(), q.sql,
                              IcebergOptions::Only(false, true, false));
    double prune = TimeIceberg(db.get(), q.sql,
                               IcebergOptions::Only(false, false, true));
    size_t all_rows_out = 0;
    double all =
        TimeIceberg(db.get(), q.sql, IcebergOptions::All(), &all_rows_out);
    if (base_rows_out != all_rows_out) {
      std::fprintf(stderr, "RESULT MISMATCH on %s: %zu vs %zu\n",
                   q.name.c_str(), base_rows_out, all_rows_out);
      return 1;
    }
    std::printf("%-28s %9.3f %9.3f ", q.name.c_str(), base, vendor);
    if (apriori < 0) {
      std::printf("%9s ", "n/a");
    } else {
      std::printf("%9.3f ", apriori);
    }
    std::printf("%9.3f %9.3f %9.3f   (all: %.0fx, rows=%zu)\n", memo, prune,
                all, base / all, base_rows_out);
  }
  std::printf(
      "\nnormalized (baseline = 1.0; smaller is better, like the paper's "
      "bars)\n");
  return 0;
}
