// Reproduces Figure 6: the complex (Listing 3) query's running time as the
// HAVING threshold varies, over the unpivoted product table. Expected
// shape: baselines are flat; Smart-Iceberg wins, and because this HAVING
// is a >=-type condition, raising the threshold makes the query MORE
// picky, so the advantage GROWS with the threshold — the reverse of
// Fig. 5, as the paper notes.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"

int main() {
  using namespace iceberg;
  using namespace iceberg::bench;

  const size_t base_rows = Scaled(4000);
  auto db = MakeProductDb(base_rows);
  TablePtr product = *db->GetTable("product");
  std::printf("=== Figure 6: complex vs HAVING threshold, %zu rows ===\n\n",
              product->num_rows());
  std::printf("%-10s %12s %12s %12s %10s\n", "threshold", "postgres(s)",
              "vendorA(s)", "smart(s)", "results");

  for (int threshold : {10, 25, 50, 75, 100, 150}) {
    std::string sql = ComplexSql(threshold);
    double base = TimeBaseline(db.get(), sql, ExecOptions::Postgres());
    double vendor = TimeBaseline(db.get(), sql, ExecOptions::VendorA());
    size_t out_rows = 0;
    double smart = TimeIceberg(db.get(), sql, IcebergOptions::All(),
                               &out_rows);
    std::printf("%-10d %12.3f %12.3f %12.3f %10zu\n", threshold, base, vendor,
                smart, out_rows);
  }
  return 0;
}
