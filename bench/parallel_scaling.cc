// Morsel-driven parallel scaling: runs the eight workload queries at 1, 2,
// 4 and 8 worker threads on both engines (baseline executor and the full
// Smart-Iceberg/NLJP stack) and reports the speedup over the 1-thread run.
//
// Expected shape: near-linear baseline scaling up to the physical core
// count (the outer join loop dominates and morsels load-balance the skewed
// per-tuple cost); NLJP scales less than the baseline because pruning and
// memoization leave little work per binding, and racy cache misses add a
// few redundant inner evaluations. On a single-core host every row of the
// table is ~1.0x — the harness still verifies that results are identical
// at every thread count.
//
// --threads=N limits the sweep to {1, N}; --json=PATH appends one JSONL
// record per (query, engine, thread-count) measurement.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"

int main(int argc, char** argv) {
  using namespace iceberg;
  using namespace iceberg::bench;

  BenchFlags flags = ParseBenchFlags(argc, argv);
  JsonWriter json(flags.json_path);

  const size_t rows = Scaled(3000);
  std::vector<int> counts = {1, 2, 4, 8};
  if (flags.threads > 0) counts = {1, flags.threads};

  std::printf("=== Parallel scaling, %zu score rows ===\n\n", rows);
  auto db = MakeScoreDb(rows);

  for (const char* engine : {"base", "nljp"}) {
    const bool iceberg_engine = std::string(engine) == "nljp";
    std::printf("%-28s", iceberg_engine ? "smart-iceberg (NLJP)"
                                        : "baseline executor");
    for (int t : counts) std::printf("   t=%d (s)  spdup", t);
    std::printf("\n");
    for (const NamedQuery& q : Figure1Queries()) {
      std::printf("%-28s", q.name.c_str());
      double serial_seconds = 0;
      size_t serial_rows = 0;
      for (int t : counts) {
        double seconds;
        size_t rows_out = 0;
        if (iceberg_engine) {
          IcebergOptions options = IcebergOptions::All();
          options.base_exec.num_threads = t;
          seconds = TimeIceberg(db.get(), q.sql, options, &rows_out);
        } else {
          ExecOptions exec = ExecOptions::Postgres();
          exec.num_threads = t;
          seconds = TimeBaseline(db.get(), q.sql, exec, &rows_out);
        }
        if (t == counts.front()) {
          serial_seconds = seconds;
          serial_rows = rows_out;
        } else if (rows_out != serial_rows) {
          std::fprintf(stderr,
                       "RESULT MISMATCH on %s [%s] at %d threads: %zu vs "
                       "%zu rows\n",
                       q.name.c_str(), engine, t, rows_out, serial_rows);
          return 1;
        }
        double speedup = seconds > 0 ? serial_seconds / seconds : 1.0;
        std::printf(" %9.3f %6.2fx", seconds, speedup);
        json.Record(q.name + " [" + engine + "]", t, seconds * 1000.0,
                    speedup);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "speedups are relative to the 1-thread run of the same engine; "
      "row counts are verified identical at every thread count\n");
  json.RecordMetrics("parallel_scaling end-of-run");
  FinishBenchTrace(flags);
  return 0;
}
