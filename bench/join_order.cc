// PR 10 join-order A/B: the cost-based optimizer (statistics +
// cardinality estimation + left-deep enumeration, src/plan/cost/) flipped
// off and on around the baseline executor, with predicate transfer ON in
// both states — the CBO must earn its keep on top of the transfer graph,
// not by re-claiming its wins.
//
// Two regimes, reported separately and honestly:
//
//  - The stock Fig. 1 queries (Q1-Q8) are self-joins whose FROM order is
//    already near-optimal (symmetric shapes, no selective tail relation);
//    this leg measures *overhead* (the no-regression claim; the ratio
//    must stay ~1.0 and the enumerator usually keeps FROM order).
//  - The reorder variants place a highly selective roster relation LAST
//    in FROM order, joined through edges the transfer graph is partly
//    blind to (the season-offset equality s.year = a.year + 1 is
//    col-vs-expression, so transfer can restrict the dominance side only
//    by pid, not by season). In FROM order the dominance BNL runs over
//    every surviving row before the roster kills them; the enumerator
//    fronts the roster relation and the BNL runs over a sliver. This leg
//    is the win artifact (reorders > 0, speedup is the claim under test).
//
// Any row disagreement between the two states aborts the run. Emits JSONL
// via --json= (BENCH_PR10.json in EXPERIMENTS.md):
//   {"query":...,"threads":N,"ms_off":...,"ms_on":...,"speedup":...,
//    "reorders":N}

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"
#include "src/common/value.h"
#include "src/engine/database.h"
#include "src/exec/exec_options.h"
#include "src/obs/metrics.h"

namespace iceberg {
namespace bench {
namespace {

constexpr int kTrials = 5;

struct Measurement {
  double ms = 0;
  TablePtr rows;
  uint64_t reorders = 0;  // cbo.reorders delta across the best trial
};

uint64_t Reorders() {
  return MetricsRegistry::Global().GetCounter("cbo.reorders")->value();
}

Measurement RunBest(Database* db, const std::string& sql, int threads,
                    bool cbo) {
  Measurement best;
  for (int t = 0; t < kTrials; ++t) {
    ExecOptions exec;
    exec.num_threads = threads;
    exec.cbo = cbo;
    const uint64_t reorders_before = Reorders();
    Timer timer;
    Result<TablePtr> result = db->Query(sql, exec);
    const double ms = timer.Seconds() * 1e3;
    if (!result.ok()) {
      std::fprintf(stderr, "query failed (cbo=%d): %s\n%s\n", cbo ? 1 : 0,
                   result.status().ToString().c_str(), sql.c_str());
      std::exit(1);
    }
    if (t == 0 || ms < best.ms) {
      best.ms = ms;
      best.rows = *result;
      best.reorders = Reorders() - reorders_before;
    }
  }
  return best;
}

void ExpectIdentical(const std::string& name, const TablePtr& off,
                     const TablePtr& on) {
  bool same = off->num_rows() == on->num_rows();
  if (same) {
    std::vector<Row> a = off->rows(), b = on->rows();
    std::sort(a.begin(), a.end(), RowLess());
    std::sort(b.begin(), b.end(), RowLess());
    for (size_t i = 0; same && i < a.size(); ++i) {
      same = CompareRows(a[i], b[i]) == 0;
    }
  }
  if (!same) {
    std::fprintf(stderr, "%s: cbo on/off results disagree (%zu vs %zu rows)\n",
                 name.c_str(), off->num_rows(), on->num_rows());
    std::exit(1);
  }
}

void RunAB(Database* db, JsonWriter* json, const std::string& name,
           const std::string& sql, int threads) {
  Measurement off = RunBest(db, sql, threads, false);
  Measurement on = RunBest(db, sql, threads, true);
  ExpectIdentical(name, off.rows, on.rows);
  const double speedup = on.ms > 0 ? off.ms / on.ms : 0.0;
  std::printf("  %-42s t=%d  off %8.2f ms  on %8.2f ms  %5.2fx  reorders %llu\n",
              name.c_str(), threads, off.ms, on.ms, speedup,
              (unsigned long long)on.reorders);
  std::fflush(stdout);
  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"query\":\"%s\",\"threads\":%d,\"ms_off\":%.3f,"
                "\"ms_on\":%.3f,\"speedup\":%.3f,\"reorders\":%llu}",
                name.c_str(), threads, off.ms, on.ms, speedup,
                (unsigned long long)on.reorders);
  json->RecordRaw(line);
}

/// Dominance skyband anchored on a next-season roster, roster LAST in
/// FROM order. The s.pid = a.pid edge lets transfer restrict `a` to the
/// roster's players across all seasons, but the season-offset equality
/// s.year = a.year + 1 is transfer-blind: FROM order still runs the
/// a x b dominance BNL for every season of those players, the reordered
/// plan only for the one season that can reach the output.
std::string RosterAnchoredSkybandSql(const std::string& a1,
                                     const std::string& a2, int k, int teamid,
                                     int year, int min_stat) {
  std::string filter =
      min_stat > 0 ? " AND s.hits >= " + std::to_string(min_stat) : "";
  return "SELECT a.pid, a.year, COUNT(*) "
         "FROM score a, score b, score s "
         "WHERE a." + a1 + " <= b." + a1 + " AND a." + a2 + " <= b." + a2 +
         " AND (a." + a1 + " < b." + a1 + " OR a." + a2 + " < b." + a2 + ")" +
         " AND s.teamid = " + std::to_string(teamid) +
         " AND s.year = " + std::to_string(year) + filter +
         " AND s.pid = a.pid AND s.year = a.year + 1 "
         "GROUP BY a.pid, a.year HAVING COUNT(*) <= " + std::to_string(k);
}

}  // namespace
}  // namespace bench
}  // namespace iceberg

int main(int argc, char** argv) {
  using namespace iceberg;
  using namespace iceberg::bench;

  BenchFlags flags = ParseBenchFlags(argc, argv);
  JsonWriter json(flags.json_path);

  const size_t rows = Scaled(3000);
  std::unique_ptr<Database> db = MakeScoreDb(rows);
  // MakeScoreDb sweeps all players once per season (players = rows/12,
  // 2 rounds): 6 seasons, 1985..1990. The roster anchors pick mid-range
  // seasons so the prior season (year - 1) exists.

  const std::vector<int> thread_counts = flags.threads > 0
                                             ? std::vector<int>{flags.threads}
                                             : std::vector<int>{1, 8};

  std::printf("join-order A/B over score(%zu rows), transfer ON both ways\n\n",
              rows);
  std::printf("stock Fig. 1 queries (FROM order is near-optimal; this leg "
              "measures overhead):\n");
  for (int threads : thread_counts) {
    for (const NamedQuery& q : Figure1Queries()) {
      RunAB(db.get(), &json, q.name, q.sql, threads);
    }
  }

  std::printf("\nreorder variants (selective roster last in FROM order; "
              "this leg measures the win):\n");
  struct Variant {
    std::string name;
    std::string sql;
  };
  const std::vector<Variant> variants = {
      {"JO1 skyband(hits,hruns) roster team=5 y=1987",
       RosterAnchoredSkybandSql("hits", "hruns", 50, 5, 1987, 0)},
      {"JO2 skyband(h2,sb) top-roster team=12 y=1988",
       RosterAnchoredSkybandSql("h2", "sb", 80, 12, 1988, 40)},
      {"JO3 skyband(hits,hruns) roster team=21 y=1989",
       RosterAnchoredSkybandSql("hits", "hruns", 30, 21, 1989, 0)},
  };
  for (int threads : thread_counts) {
    for (const Variant& v : variants) {
      RunAB(db.get(), &json, v.name, v.sql, threads);
    }
  }

  json.RecordMetrics("join_order end-of-run");
  FinishBenchTrace(flags);
  return 0;
}
