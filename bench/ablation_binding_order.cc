// Ablation: Q_B exploration order (the paper leaves the binding order
// unspecified and flags intelligent ordering as future work, citing its
// impact on pruning effectiveness). We compare natural, ascending, and
// descending binding orders on skyband queries.
//
// Expected shape: for the anti-monotone dominance skyband, descending
// order discovers heavily-dominated (unpromising) regions early and prunes
// more than ascending order.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"
#include "src/nljp/nljp.h"

int main() {
  using namespace iceberg;
  using namespace iceberg::bench;

  const size_t rows = Scaled(8000);
  auto db = MakeScoreDb(rows);
  std::printf("=== Ablation: binding order of Q_B, %zu rows ===\n\n", rows);
  std::printf("%-12s %10s %10s %10s %10s\n", "order", "time(s)", "pruned",
              "inner", "memo");

  const std::string sql = SkybandSql("hits", "hruns", 50);
  struct OrderCase {
    const char* name;
    BindingOrder order;
  };
  for (const OrderCase& c :
       {OrderCase{"natural", BindingOrder::kNatural},
        OrderCase{"ascending", BindingOrder::kSortedAsc},
        OrderCase{"descending", BindingOrder::kSortedDesc}}) {
    IcebergOptions options = IcebergOptions::All();
    options.binding_order = c.order;
    IcebergReport report;
    double seconds = TimeIceberg(db.get(), sql, options, nullptr, &report);
    std::printf("%-12s %10.3f %10zu %10zu %10zu\n", c.name, seconds,
                report.nljp_stats.pruned,
                report.nljp_stats.inner_evaluations,
                report.nljp_stats.memo_hits);
  }
  return 0;
}
