// Observability overhead micro-benchmark (PR4 acceptance gate).
//
// Measures the cost of the instrumentation that is now compiled into every
// hot path:
//   - a disabled TraceSpan (one relaxed atomic load + branch),
//   - an enabled TraceSpan (clock read + per-thread buffer append),
//   - a Counter increment and a Histogram record (relaxed fetch_adds),
// and then runs the pruning+memoization workload query end-to-end with
// tracing off and on. The gate: the estimated cost of the *disabled*
// instrumentation must stay under 2% of query runtime — the price of
// leaving tracing compiled in but switched off.
//
// --json=PATH appends the per-measurement lines plus one summary line:
//   {"bench":"obs_overhead","disabled_span_ns":...,"counter_add_ns":...,
//    "histogram_record_ns":...,"workload_ms_trace_off":...,
//    "workload_ms_trace_on":...,"spans_per_run":...,
//    "disabled_overhead_pct":...,"enabled_overhead_pct":...}

// PR9 extends the gate to the flight recorder: the per-attempt record cost
// is measured directly, the pruning+memo query is served through the full
// session layer (admission + retry) at 1 and 8 concurrent sessions with
// the query log off vs on (slow-capture threshold armed but unreachable,
// so the check runs and no capture fires), and the estimated record
// overhead must stay under 1% of the served query time at both widths:
//   {"bench":"obs_overhead_querylog","sessions":...,"record_ns":...,
//    "ms_log_off":...,"ms_log_on":...,"measured_overhead_pct":...,
//    "estimated_overhead_pct":...}

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"
#include "src/obs/query_log.h"
#include "src/server/session.h"

namespace {

using namespace iceberg;
using namespace iceberg::bench;

/// Nanoseconds per iteration of `body`, measured over `iters` runs.
template <typename Fn>
double NsPerOp(size_t iters, Fn body) {
  Timer timer;
  for (size_t i = 0; i < iters; ++i) body(i);
  return timer.Seconds() * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  JsonWriter json(flags.json_path);
  const int threads = flags.threads <= 0 ? 1 : flags.threads;
  const size_t kOps = 20'000'000;
  const int kTrials = 5;

  std::printf("=== Observability overhead ===\n\n");

  // Primitive costs. The disabled-span loop is the number the tentpole
  // promises: tracing off must cost one branch on a cached atomic flag.
  SetTraceEnabled(false);
  double disabled_span_ns =
      NsPerOp(kOps, [](size_t) { TraceSpan span("bench.noop", "bench"); });

  SetTraceEnabled(true);
  ClearTrace();
  // Fewer iterations: each enabled span appends to the thread buffer.
  double enabled_span_ns =
      NsPerOp(kOps / 100, [](size_t) { TraceSpan span("bench.noop", "bench"); });
  ClearTrace();
  SetTraceEnabled(false);

  Counter* counter = ICEBERG_COUNTER("bench.obs_overhead_ops");
  double counter_add_ns = NsPerOp(kOps, [&](size_t) { counter->Increment(); });

  Histogram* hist = ICEBERG_HISTOGRAM("bench.obs_overhead_us");
  double histogram_record_ns =
      NsPerOp(kOps, [&](size_t i) { hist->Record(static_cast<int64_t>(i & 1023)); });

  std::printf("disabled TraceSpan   %8.2f ns/op\n", disabled_span_ns);
  std::printf("enabled TraceSpan    %8.2f ns/op\n", enabled_span_ns);
  std::printf("Counter::Increment   %8.2f ns/op\n", counter_add_ns);
  std::printf("Histogram::Record    %8.2f ns/op\n", histogram_record_ns);

  // End-to-end: the pruning+memoization iceberg query, best of kTrials,
  // tracing off vs on.
  const size_t rows = Scaled(8000);
  auto db = MakeScoreDb(rows);
  const NamedQuery q = Figure1Queries().front();
  IcebergOptions options = IcebergOptions::All();
  options.base_exec.num_threads = threads;

  double off_s = 0;
  for (int t = 0; t < kTrials; ++t) {
    double s = TimeIceberg(db.get(), q.sql, options);
    if (t == 0 || s < off_s) off_s = s;
  }

  SetTraceEnabled(true);
  ClearTrace();
  double on_s = 0;
  for (int t = 0; t < kTrials; ++t) {
    double s = TimeIceberg(db.get(), q.sql, options);
    if (t == 0 || s < on_s) on_s = s;
  }
  size_t spans_per_run = SnapshotTrace().size() / kTrials;
  if (!flags.trace_path.empty()) FinishBenchTrace(flags);
  ClearTrace();
  SetTraceEnabled(false);

  // With tracing off the per-query instrumentation cost is the disabled
  // spans: estimate it against the measured run time. Enabled overhead is
  // measured directly.
  double disabled_overhead_pct =
      off_s > 0 ? (disabled_span_ns * 1e-9 * static_cast<double>(spans_per_run)) /
                      off_s * 100.0
                : 0.0;
  double enabled_overhead_pct = off_s > 0 ? (on_s - off_s) / off_s * 100.0 : 0.0;

  std::printf("\nworkload: %s  (%zu rows, threads=%d)\n", q.name.c_str(), rows,
              threads);
  std::printf("trace off   %8.1f ms\n", off_s * 1e3);
  std::printf("trace on    %8.1f ms   (%zu spans/run)\n", on_s * 1e3,
              spans_per_run);
  std::printf("disabled instrumentation overhead  %6.3f%%  (gate: < 2%%)\n",
              disabled_overhead_pct);
  std::printf("enabled tracing overhead           %6.3f%%\n",
              enabled_overhead_pct);

  json.Record("obs disabled span ns", threads, disabled_span_ns * 1e-6, 1.0);
  json.Record(q.name + " trace=off", threads, off_s * 1e3, 1.0);
  json.Record(q.name + " trace=on", threads, on_s * 1e3,
              on_s > 0 ? off_s / on_s : 1.0);
  char summary[512];
  std::snprintf(
      summary, sizeof(summary),
      "{\"bench\":\"obs_overhead\",\"disabled_span_ns\":%.2f,"
      "\"enabled_span_ns\":%.2f,\"counter_add_ns\":%.2f,"
      "\"histogram_record_ns\":%.2f,\"workload_ms_trace_off\":%.3f,"
      "\"workload_ms_trace_on\":%.3f,\"spans_per_run\":%zu,"
      "\"disabled_overhead_pct\":%.4f,\"enabled_overhead_pct\":%.3f}",
      disabled_span_ns, enabled_span_ns, counter_add_ns, histogram_record_ns,
      off_s * 1e3, on_s * 1e3, spans_per_run, disabled_overhead_pct,
      enabled_overhead_pct);
  json.RecordRaw(summary);
  json.RecordMetrics("obs_overhead end-of-run");

  if (disabled_overhead_pct >= 2.0) {
    std::fprintf(stderr, "FAIL: disabled instrumentation overhead %.3f%% >= 2%%\n",
                 disabled_overhead_pct);
    return 1;
  }

  // --- Flight recorder: per-record cost, then served A/B. ---
  std::printf("\n=== Query-log (flight recorder) overhead ===\n\n");

  const bool log_was_enabled = QueryLogEnabled();
  SetQueryLogEnabled(false);
  double record_disabled_ns = NsPerOp(kOps, [](size_t) {
    QueryLog::Global().Record(QueryRecord());
  });

  SetQueryLogEnabled(true);
  // A representative record: one repeated shape (the realistic serving
  // pattern — per-op distinct shapes would grow the shape registry, which
  // real traffic does not), strings sized like real ones.
  double record_ns = NsPerOp(kOps / 20, [](size_t i) {
    QueryRecord rec;
    rec.query_id = i + 1;
    rec.session_id = 1;
    rec.iceberg = true;
    rec.shape_hash = 0x9e3779b97f4a7c15ull;
    rec.shape =
        "select l.id, count(*) from object l, object r where l.x <= r.x";
    rec.latency_us = 1000 + (i & 1023);
    rec.governor_verdict = "ok";
    rec.plan_provenance = "hit";
    rec.rows_returned = 4000;
    QueryLog::Global().Record(std::move(rec));
  });
  QueryLog::Global().Clear();

  std::printf("QueryLog::Record (disabled) %8.2f ns/op\n", record_disabled_ns);
  std::printf("QueryLog::Record (enabled)  %8.2f ns/op\n", record_ns);

  // Served A/B: the same query through the full serving layer. Record
  // emission is once per attempt (milliseconds apart), so the estimate
  // gated here is record cost / served time; the measured delta is
  // reported alongside (it is dominated by run-to-run noise at these
  // ratios, which is exactly the point).
  ServerConfig server_config;
  server_config.admission.max_concurrent = 8;
  server_config.admission.max_queue_depth = 64;
  server_config.admission.queue_timeout_ms = 60000;
  const int kPerSession = 3;
  const int kServeTrials = 3;

  auto serve_seconds = [&](int sessions) {
    IcebergServer server(db.get(), server_config);
    double best = 0;
    for (int trial = 0; trial < kServeTrials; ++trial) {
      std::atomic<int> failures{0};
      Timer timer;
      std::vector<std::thread> workers;
      for (int s = 0; s < sessions; ++s) {
        workers.emplace_back([&]() {
          auto session = server.OpenSession();
          for (int i = 0; i < kPerSession; ++i) {
            QueryOutcome outcome = session->Execute(q.sql);
            if (!outcome.status.ok()) failures.fetch_add(1);
          }
        });
      }
      for (std::thread& w : workers) w.join();
      double s = timer.Seconds();
      if (failures.load() != 0) {
        std::fprintf(stderr, "FAIL: served query failed under bench\n");
        std::exit(1);
      }
      if (trial == 0 || s < best) best = s;
    }
    return best;
  };

  bool gate_failed = false;
  for (int sessions : {1, 8}) {
    SetQueryLogEnabled(false);
    double served_off_s = serve_seconds(sessions);

    SetQueryLogEnabled(true);
    // Armed but unreachable: the threshold check runs on every attempt,
    // no capture ever fires (capture cost is a slow-path, not overhead).
    uint64_t prev_slow_us = SlowQueryThresholdUs();
    SetSlowQueryThresholdUs(uint64_t{1} << 62);
    QueryLog::Global().Clear();
    double served_on_s = serve_seconds(sessions);
    SetSlowQueryThresholdUs(prev_slow_us);
    QueryLog::Global().Clear();

    double per_query_s =
        served_off_s / static_cast<double>(sessions * kPerSession);
    double estimated_pct =
        per_query_s > 0 ? record_ns * 1e-9 / per_query_s * 100.0 : 0.0;
    double measured_pct =
        served_off_s > 0 ? (served_on_s - served_off_s) / served_off_s * 100.0
                         : 0.0;

    std::printf("\nserved x%d sessions (%d queries/session)\n", sessions,
                kPerSession);
    std::printf("log off     %8.1f ms\n", served_off_s * 1e3);
    std::printf("log on      %8.1f ms\n", served_on_s * 1e3);
    std::printf("estimated record overhead  %8.4f%%  (gate: < 1%%)\n",
                estimated_pct);
    std::printf("measured delta             %8.3f%%\n", measured_pct);

    char ql_summary[512];
    std::snprintf(
        ql_summary, sizeof(ql_summary),
        "{\"bench\":\"obs_overhead_querylog\",\"sessions\":%d,"
        "\"record_ns\":%.2f,\"record_disabled_ns\":%.2f,"
        "\"ms_log_off\":%.3f,\"ms_log_on\":%.3f,"
        "\"measured_overhead_pct\":%.3f,\"estimated_overhead_pct\":%.4f}",
        sessions, record_ns, record_disabled_ns, served_off_s * 1e3,
        served_on_s * 1e3, measured_pct, estimated_pct);
    json.RecordRaw(ql_summary);

    if (estimated_pct >= 1.0) {
      std::fprintf(stderr,
                   "FAIL: query-log overhead %.4f%% >= 1%% at %d sessions\n",
                   estimated_pct, sessions);
      gate_failed = true;
    }
  }
  SetQueryLogEnabled(log_was_enabled);

  return gate_failed ? 1 : 0;
}
