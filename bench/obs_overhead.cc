// Observability overhead micro-benchmark (PR4 acceptance gate).
//
// Measures the cost of the instrumentation that is now compiled into every
// hot path:
//   - a disabled TraceSpan (one relaxed atomic load + branch),
//   - an enabled TraceSpan (clock read + per-thread buffer append),
//   - a Counter increment and a Histogram record (relaxed fetch_adds),
// and then runs the pruning+memoization workload query end-to-end with
// tracing off and on. The gate: the estimated cost of the *disabled*
// instrumentation must stay under 2% of query runtime — the price of
// leaving tracing compiled in but switched off.
//
// --json=PATH appends the per-measurement lines plus one summary line:
//   {"bench":"obs_overhead","disabled_span_ns":...,"counter_add_ns":...,
//    "histogram_record_ns":...,"workload_ms_trace_off":...,
//    "workload_ms_trace_on":...,"spans_per_run":...,
//    "disabled_overhead_pct":...,"enabled_overhead_pct":...}

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"

namespace {

using namespace iceberg;
using namespace iceberg::bench;

/// Nanoseconds per iteration of `body`, measured over `iters` runs.
template <typename Fn>
double NsPerOp(size_t iters, Fn body) {
  Timer timer;
  for (size_t i = 0; i < iters; ++i) body(i);
  return timer.Seconds() * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  JsonWriter json(flags.json_path);
  const int threads = flags.threads <= 0 ? 1 : flags.threads;
  const size_t kOps = 20'000'000;
  const int kTrials = 5;

  std::printf("=== Observability overhead ===\n\n");

  // Primitive costs. The disabled-span loop is the number the tentpole
  // promises: tracing off must cost one branch on a cached atomic flag.
  SetTraceEnabled(false);
  double disabled_span_ns =
      NsPerOp(kOps, [](size_t) { TraceSpan span("bench.noop", "bench"); });

  SetTraceEnabled(true);
  ClearTrace();
  // Fewer iterations: each enabled span appends to the thread buffer.
  double enabled_span_ns =
      NsPerOp(kOps / 100, [](size_t) { TraceSpan span("bench.noop", "bench"); });
  ClearTrace();
  SetTraceEnabled(false);

  Counter* counter = ICEBERG_COUNTER("bench.obs_overhead_ops");
  double counter_add_ns = NsPerOp(kOps, [&](size_t) { counter->Increment(); });

  Histogram* hist = ICEBERG_HISTOGRAM("bench.obs_overhead_us");
  double histogram_record_ns =
      NsPerOp(kOps, [&](size_t i) { hist->Record(static_cast<int64_t>(i & 1023)); });

  std::printf("disabled TraceSpan   %8.2f ns/op\n", disabled_span_ns);
  std::printf("enabled TraceSpan    %8.2f ns/op\n", enabled_span_ns);
  std::printf("Counter::Increment   %8.2f ns/op\n", counter_add_ns);
  std::printf("Histogram::Record    %8.2f ns/op\n", histogram_record_ns);

  // End-to-end: the pruning+memoization iceberg query, best of kTrials,
  // tracing off vs on.
  const size_t rows = Scaled(8000);
  auto db = MakeScoreDb(rows);
  const NamedQuery q = Figure1Queries().front();
  IcebergOptions options = IcebergOptions::All();
  options.base_exec.num_threads = threads;

  double off_s = 0;
  for (int t = 0; t < kTrials; ++t) {
    double s = TimeIceberg(db.get(), q.sql, options);
    if (t == 0 || s < off_s) off_s = s;
  }

  SetTraceEnabled(true);
  ClearTrace();
  double on_s = 0;
  for (int t = 0; t < kTrials; ++t) {
    double s = TimeIceberg(db.get(), q.sql, options);
    if (t == 0 || s < on_s) on_s = s;
  }
  size_t spans_per_run = SnapshotTrace().size() / kTrials;
  if (!flags.trace_path.empty()) FinishBenchTrace(flags);
  ClearTrace();
  SetTraceEnabled(false);

  // With tracing off the per-query instrumentation cost is the disabled
  // spans: estimate it against the measured run time. Enabled overhead is
  // measured directly.
  double disabled_overhead_pct =
      off_s > 0 ? (disabled_span_ns * 1e-9 * static_cast<double>(spans_per_run)) /
                      off_s * 100.0
                : 0.0;
  double enabled_overhead_pct = off_s > 0 ? (on_s - off_s) / off_s * 100.0 : 0.0;

  std::printf("\nworkload: %s  (%zu rows, threads=%d)\n", q.name.c_str(), rows,
              threads);
  std::printf("trace off   %8.1f ms\n", off_s * 1e3);
  std::printf("trace on    %8.1f ms   (%zu spans/run)\n", on_s * 1e3,
              spans_per_run);
  std::printf("disabled instrumentation overhead  %6.3f%%  (gate: < 2%%)\n",
              disabled_overhead_pct);
  std::printf("enabled tracing overhead           %6.3f%%\n",
              enabled_overhead_pct);

  json.Record("obs disabled span ns", threads, disabled_span_ns * 1e-6, 1.0);
  json.Record(q.name + " trace=off", threads, off_s * 1e3, 1.0);
  json.Record(q.name + " trace=on", threads, on_s * 1e3,
              on_s > 0 ? off_s / on_s : 1.0);
  char summary[512];
  std::snprintf(
      summary, sizeof(summary),
      "{\"bench\":\"obs_overhead\",\"disabled_span_ns\":%.2f,"
      "\"enabled_span_ns\":%.2f,\"counter_add_ns\":%.2f,"
      "\"histogram_record_ns\":%.2f,\"workload_ms_trace_off\":%.3f,"
      "\"workload_ms_trace_on\":%.3f,\"spans_per_run\":%zu,"
      "\"disabled_overhead_pct\":%.4f,\"enabled_overhead_pct\":%.3f}",
      disabled_span_ns, enabled_span_ns, counter_add_ns, histogram_record_ns,
      off_s * 1e3, on_s * 1e3, spans_per_run, disabled_overhead_pct,
      enabled_overhead_pct);
  json.RecordRaw(summary);
  json.RecordMetrics("obs_overhead end-of-run");

  if (disabled_overhead_pct >= 2.0) {
    std::fprintf(stderr, "FAIL: disabled instrumentation overhead %.3f%% >= 2%%\n",
                 disabled_overhead_pct);
    return 1;
  }
  return 0;
}
