// Reproduces Figure 4: Q1 execution times under index configurations.
//   PK        — primary-key index only (no secondary B-tree, no cache
//               index): the baseline must block-scan; Smart-Iceberg's
//               inner query Q_R(b) scans too, and memo lookups are linear.
//   PK+BT     — adds the secondary B-tree on the compared attributes: the
//               paper observed ~2x for PostgreSQL; NLJP's Q_R(b) probes.
//   PK+BT+CI  — adds the cache index (hash on binding values): memo
//               lookups become O(1) — the paper observed another ~6x.
//
// Expected shape: baseline PK+BT ~2x over PK; Smart-Iceberg beats baseline
// in every configuration; CI adds a further multiple.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"

int main() {
  using namespace iceberg;
  using namespace iceberg::bench;

  const size_t rows = Scaled(12000);
  const std::string sql = SkybandSql("hits", "hruns", 50);
  std::printf("=== Figure 4: Q1 under index configurations, %zu rows ===\n\n",
              rows);

  struct Config {
    const char* name;
    bool bt;  // secondary ordered index available
    bool ci;  // cache index on bindings
  };
  const Config configs[] = {
      {"PK", false, false},
      {"PK+BT", true, false},
      {"PK+BT+CI", true, true},
  };

  std::printf("%-10s %12s %12s\n", "config", "postgres(s)", "smart(s)");
  for (const Config& c : configs) {
    auto db = MakeScoreDb(rows);
    if (!c.bt) {
      // Drop all secondary indexes, keeping only the PK hash index.
      TablePtr score = *db->GetTable("score");
      score->DropIndexes();
      Status st = db->CreateHashIndex("score", {"pid", "year", "round"});
      if (!st.ok()) return 1;
    }
    ExecOptions base;
    base.use_indexes = c.bt;  // without BT the probe degenerates anyway
    double base_s = TimeBaseline(db.get(), sql, base);

    IcebergOptions smart = IcebergOptions::All();
    smart.use_indexes = c.bt;
    smart.cache_index = c.ci;
    IcebergReport report;
    double smart_s = TimeIceberg(db.get(), sql, smart, nullptr, &report);
    std::printf("%-10s %12.3f %12.3f   (smart %0.fx over this baseline)\n",
                c.name, base_s, smart_s, base_s / smart_s);
  }
  return 0;
}
