#ifndef SMARTICEBERG_BENCH_BENCH_UTIL_H_
#define SMARTICEBERG_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction harnesses. Each bench binary
// regenerates one table/figure of the paper: it runs the workload on every
// system configuration and prints the measured series next to the shape
// the paper reports. Absolute times differ from the paper (different
// hardware, an in-memory engine instead of PostgreSQL, reduced data sizes
// tuned by ICEBERG_BENCH_SCALE); the claims under test are the relative
// shapes.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/engine/database.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace iceberg {
namespace bench {

/// Global size multiplier from the environment (default 1.0).
inline double Scale() {
  const char* s = std::getenv("ICEBERG_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

inline size_t Scaled(size_t n) {
  return static_cast<size_t>(static_cast<double>(n) * Scale());
}

/// Command-line flags shared by the bench binaries.
struct BenchFlags {
  /// --threads=N: worker threads for both engines (0 = auto, 1 = serial).
  int threads = 0;
  /// --json=PATH: append one machine-readable JSON line per measurement.
  std::string json_path;
  /// --trace=PATH: enable tracing and dump Chrome trace_event JSON here
  /// when the bench exits (load in Perfetto / chrome://tracing).
  std::string trace_path;
};

/// Parses --threads= / --json= / --trace=; unknown arguments abort with
/// usage (bench binaries take no other arguments). A --trace= flag turns
/// tracing on for the whole run.
inline BenchFlags ParseBenchFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      flags.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      flags.json_path = arg + 7;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      flags.trace_path = arg + 8;
      SetTraceEnabled(true);
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\nusage: %s [--threads=N] "
                   "[--json=PATH] [--trace=PATH]\n",
                   arg, argv[0]);
      std::exit(2);
    }
  }
  return flags;
}

/// Writes the collected trace if --trace= was given; call once before the
/// bench main returns.
inline void FinishBenchTrace(const BenchFlags& flags) {
  if (flags.trace_path.empty()) return;
  if (DumpTrace(flags.trace_path)) {
    std::fprintf(stderr, "trace: wrote %zu spans to %s\n",
                 SnapshotTrace().size(), flags.trace_path.c_str());
  } else {
    std::fprintf(stderr, "trace: cannot open %s\n", flags.trace_path.c_str());
  }
}

/// Emits one JSON object per line (JSONL), the machine-readable companion
/// to the human tables: {"query":...,"threads":N,"ms":...,"speedup":...}.
/// Disabled (all calls no-ops) when constructed with an empty path.
class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path) {
    if (!path.empty()) {
      file_ = std::fopen(path.c_str(), "a");
      if (file_ == nullptr) {
        std::fprintf(stderr, "cannot open %s for append\n", path.c_str());
        std::exit(2);
      }
    }
  }
  ~JsonWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void Record(const std::string& query, int threads, double ms,
              double speedup) {
    if (file_ == nullptr) return;
    std::fprintf(file_,
                 "{\"query\":\"%s\",\"threads\":%d,\"ms\":%.3f,"
                 "\"speedup\":%.3f}\n",
                 Escaped(query).c_str(), threads, ms, speedup);
    std::fflush(file_);
  }

  /// Appends one line with the metrics-registry delta since `since` (or the
  /// full registry state when `since` is empty), tagged for correlation
  /// with the measurement lines: {"metrics_tag":...,"metrics":{...}}.
  void RecordMetrics(const std::string& tag,
                     const MetricsSnapshot* since = nullptr) {
    if (file_ == nullptr) return;
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    if (since != nullptr) snap = snap.DiffSince(*since);
    std::fprintf(file_, "{\"metrics_tag\":\"%s\",\"metrics\":%s}\n",
                 Escaped(tag).c_str(), snap.ToJson().c_str());
    std::fflush(file_);
  }

  /// Appends an arbitrary pre-rendered JSON line (obs_overhead's summary).
  void RecordRaw(const std::string& json_line) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\n", json_line.c_str());
    std::fflush(file_);
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::FILE* file_ = nullptr;
};

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Runs a query on the baseline executor and reports seconds; aborts the
/// process on error (benches are not expected to fail).
inline double TimeBaseline(Database* db, const std::string& sql,
                           ExecOptions exec, size_t* rows = nullptr) {
  Timer timer;
  Result<TablePtr> result = db->Query(sql, exec);
  if (!result.ok()) {
    std::fprintf(stderr, "baseline failed: %s\nquery: %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  if (rows != nullptr) *rows = (*result)->num_rows();
  return timer.Seconds();
}

inline double TimeIceberg(Database* db, const std::string& sql,
                          IcebergOptions options, size_t* rows = nullptr,
                          IcebergReport* report = nullptr) {
  Timer timer;
  Result<TablePtr> result = db->QueryIceberg(sql, options, report);
  if (!result.ok()) {
    std::fprintf(stderr, "smart-iceberg failed: %s\nquery: %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  if (rows != nullptr) *rows = (*result)->num_rows();
  return timer.Seconds();
}

}  // namespace bench
}  // namespace iceberg

#endif  // SMARTICEBERG_BENCH_BENCH_UTIL_H_
