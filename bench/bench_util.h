#ifndef SMARTICEBERG_BENCH_BENCH_UTIL_H_
#define SMARTICEBERG_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction harnesses. Each bench binary
// regenerates one table/figure of the paper: it runs the workload on every
// system configuration and prints the measured series next to the shape
// the paper reports. Absolute times differ from the paper (different
// hardware, an in-memory engine instead of PostgreSQL, reduced data sizes
// tuned by ICEBERG_BENCH_SCALE); the claims under test are the relative
// shapes.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/engine/database.h"

namespace iceberg {
namespace bench {

/// Global size multiplier from the environment (default 1.0).
inline double Scale() {
  const char* s = std::getenv("ICEBERG_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

inline size_t Scaled(size_t n) {
  return static_cast<size_t>(static_cast<double>(n) * Scale());
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Runs a query on the baseline executor and reports seconds; aborts the
/// process on error (benches are not expected to fail).
inline double TimeBaseline(Database* db, const std::string& sql,
                           ExecOptions exec, size_t* rows = nullptr) {
  Timer timer;
  Result<TablePtr> result = db->Query(sql, exec);
  if (!result.ok()) {
    std::fprintf(stderr, "baseline failed: %s\nquery: %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  if (rows != nullptr) *rows = (*result)->num_rows();
  return timer.Seconds();
}

inline double TimeIceberg(Database* db, const std::string& sql,
                          IcebergOptions options, size_t* rows = nullptr,
                          IcebergReport* report = nullptr) {
  Timer timer;
  Result<TablePtr> result = db->QueryIceberg(sql, options, report);
  if (!result.ok()) {
    std::fprintf(stderr, "smart-iceberg failed: %s\nquery: %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  if (rows != nullptr) *rows = (*result)->num_rows();
  return timer.Seconds();
}

}  // namespace bench
}  // namespace iceberg

#endif  // SMARTICEBERG_BENCH_BENCH_UTIL_H_
