// Reproduces Figure 2: data distributions for the two attribute pairings
// and their consequence — the same skyband query returns a different
// fraction of records depending on the pairing (the paper reports 1.8% on
// the correlated pair vs 3.1% on the trade-off pair at k=500).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"

int main() {
  using namespace iceberg;
  using namespace iceberg::bench;

  const size_t rows = Scaled(12000);
  auto db = MakeScoreDb(rows);
  TablePtr score = *db->GetTable("score");
  std::printf("=== Figure 2: attribute-pair distributions, %zu rows ===\n\n",
              rows);

  auto stats = [&](const char* a, const char* b) {
    size_t ca = *score->schema().FindColumn(a);
    size_t cb = *score->schema().FindColumn(b);
    double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
    double n = static_cast<double>(score->num_rows());
    for (const Row& row : score->rows()) {
      double x = row[ca].AsDouble(), y = row[cb].AsDouble();
      sa += x;
      sb += y;
      saa += x * x;
      sbb += y * y;
      sab += x * y;
    }
    double cov = sab / n - (sa / n) * (sb / n);
    double va = saa / n - (sa / n) * (sa / n);
    double vb = sbb / n - (sb / n) * (sb / n);
    double corr = cov / std::sqrt(va > 0 ? va * vb : 1);
    std::printf("pair (%s, %s): mean=(%.1f, %.1f) correlation=%+.2f\n", a, b,
                sa / n, sb / n, corr);
    return corr;
  };
  stats("hits", "hruns");
  stats("h2", "sb");

  // Skyband selectivity contrast at a fixed k (scaled from the paper's
  // k=500 at 3x10^5 rows).
  int k = static_cast<int>(20 * Scale() * 2.5) + 1;
  for (const char* pair : {"hits,hruns", "h2,sb"}) {
    std::string a(pair, std::string(pair).find(','));
    std::string b(std::string(pair).substr(a.size() + 1));
    size_t out_rows = 0;
    TimeIceberg(db.get(), SkybandSql(a, b, k), IcebergOptions::All(),
                &out_rows);
    std::printf("skyband k=%d on (%s): %zu rows = %.1f%% of records\n", k,
                pair, out_rows,
                100.0 * static_cast<double>(out_rows) /
                    static_cast<double>(score->num_rows()));
  }
  std::printf(
      "\nexpected shape: the correlated pair (hits,hruns) yields a sparser "
      "skyband\nthan the trade-off pair (h2,sb), as in the paper's 1.8%% vs "
      "3.1%%.\n");
  return 0;
}
