// Serving-layer throughput: QPS versus concurrent sessions at a fixed
// per-query latency budget. Each session is one client thread issuing
// governed iceberg statements back-to-back through the IcebergServer
// (admission control + cross-query NLJP cache promotion); per-query
// execution stays serial (default_threads = 1), so all scaling comes from
// session concurrency. The PR-6 acceptance bar is >= 2x QPS going from 1
// to 4 sessions with no admission starvation.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/server/session.h"

namespace iceberg {
namespace bench {
namespace {

Database MakeDb(size_t rows) {
  Database db;
  Status st = db.CreateTable("object", Schema({{"id", DataType::kInt64},
                                               {"x", DataType::kInt64},
                                               {"y", DataType::kInt64}}));
  if (!st.ok()) std::exit(1);
  st = db.DeclareKey("object", {"id"});
  if (!st.ok()) std::exit(1);
  for (size_t i = 0; i < rows; ++i) {
    uint64_t h = i * 0x9e3779b97f4a7c15ull;
    st = db.Insert("object",
                   {Value::Int(static_cast<int64_t>(i)),
                    Value::Int(static_cast<int64_t>(h % 97)),
                    Value::Int(static_cast<int64_t>((h >> 32) % 89))});
    if (!st.ok()) std::exit(1);
  }
  return db;
}

/// A small statement mix: the dominance iceberg query at three HAVING
/// thresholds, so the cross-query cache registry sees repeated shapes
/// with distinct fingerprints (distinct literals = distinct cache keys).
std::vector<std::string> StatementMix() {
  std::vector<std::string> mix;
  for (int threshold : {50, 40, 60}) {
    mix.push_back(
        "SELECT L.id, COUNT(*) FROM object L, object R "
        "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
        "GROUP BY L.id HAVING COUNT(*) <= " +
        std::to_string(threshold));
  }
  return mix;
}

struct RunResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  int64_t max_queue_wait_us = 0;
};

RunResult RunConfig(size_t rows, int num_sessions, double duration_s) {
  Database db = MakeDb(rows);
  ServerConfig config;
  config.admission.max_concurrent = static_cast<size_t>(num_sessions);
  config.admission.max_queue_depth = 2 * static_cast<size_t>(num_sessions);
  config.admission.queue_timeout_ms = 5000;
  config.admission.memory_budget_bytes =
      static_cast<size_t>(num_sessions) * (64u << 20);
  config.retry.max_attempts = 4;
  config.default_threads = 1;
  IcebergServer server(&db, config);

  const std::vector<std::string> mix = StatementMix();
  std::atomic<bool> stop{false};
  std::mutex mu;
  RunResult result;
  std::vector<double> latencies_ms;

  std::vector<std::thread> clients;
  for (int s = 0; s < num_sessions; ++s) {
    clients.emplace_back([&, s] {
      auto session = server.OpenSession();
      size_t i = static_cast<size_t>(s);  // desynchronize the mix
      std::vector<double> local_ms;
      uint64_t ok = 0, shed = 0, failed = 0;
      int64_t max_wait = 0;
      while (!stop.load(std::memory_order_acquire)) {
        Timer timer;
        QueryOutcome outcome = session->Execute(mix[i++ % mix.size()]);
        if (outcome.status.ok()) {
          ++ok;
          local_ms.push_back(timer.Seconds() * 1e3);
        } else if (outcome.status.IsRetryable()) {
          ++shed;
        } else {
          ++failed;
        }
        max_wait = std::max(max_wait, outcome.queue_wait_us);
      }
      std::lock_guard<std::mutex> lock(mu);
      result.ok += ok;
      result.shed += shed;
      result.failed += failed;
      result.max_queue_wait_us =
          std::max(result.max_queue_wait_us, max_wait);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
    });
  }

  Timer wall;
  while (wall.Seconds() < duration_s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  double elapsed = wall.Seconds();

  result.qps = static_cast<double>(result.ok) / elapsed;
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    auto pct = [&](double p) {
      size_t idx = static_cast<size_t>(p * (latencies_ms.size() - 1));
      return latencies_ms[idx];
    };
    result.p50_ms = pct(0.50);
    result.p99_ms = pct(0.99);
  }
  return result;
}

int Main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  JsonWriter json(flags.json_path);

  const size_t rows = Scaled(48);
  const double duration_s = 1.0;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  std::printf("Concurrent serving QPS (dominance iceberg query, %zu rows,\n"
              "1 worker thread per query; scaling comes from sessions)\n"
              "cores available: %u — session scaling is bounded by cores;\n"
              "on a single-core host expect ~1.0x with flat p50 (no lock\n"
              "serialization) and p99 growing with the run queue\n\n",
              rows, cores);
  std::printf("%9s %10s %10s %10s %6s %6s %6s %12s\n", "sessions", "qps",
              "p50_ms", "p99_ms", "ok", "shed", "fail", "max_wait_us");

  double qps_1 = 0;
  for (int sessions : {1, 2, 4, 8}) {
    RunResult r = RunConfig(rows, sessions, duration_s);
    if (sessions == 1) qps_1 = r.qps;
    double speedup = qps_1 > 0 ? r.qps / qps_1 : 0;
    std::printf("%9d %10.1f %10.3f %10.3f %6llu %6llu %6llu %12lld  (%.2fx)\n",
                sessions, r.qps, r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.failed),
                static_cast<long long>(r.max_queue_wait_us), speedup);
    char line[512];
    std::snprintf(line, sizeof(line),
                  "{\"bench\":\"concurrent_qps\",\"sessions\":%d,"
                  "\"cores\":%u,\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
                  "\"ok\":%llu,\"shed\":%llu,\"failed\":%llu,"
                  "\"speedup_vs_1\":%.3f}",
                  sessions, cores, r.qps, r.p50_ms, r.p99_ms,
                  static_cast<unsigned long long>(r.ok),
                  static_cast<unsigned long long>(r.shed),
                  static_cast<unsigned long long>(r.failed), speedup);
    json.RecordRaw(line);
    if (r.failed != 0) {
      std::fprintf(stderr, "FAIL: %llu non-retryable failures\n",
                   static_cast<unsigned long long>(r.failed));
      return 1;
    }
  }
  FinishBenchTrace(flags);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace iceberg

int main(int argc, char** argv) { return iceberg::bench::Main(argc, argv); }
