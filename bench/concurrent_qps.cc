// Serving-layer throughput: QPS versus concurrent sessions at a fixed
// per-query latency budget. Each session is one client thread issuing
// governed iceberg statements back-to-back through the IcebergServer
// (admission control + cross-query NLJP cache promotion + shape-keyed
// plan cache); per-query execution stays serial (default_threads = 1),
// so all scaling comes from session concurrency. The PR-6 acceptance bar
// is >= 2x QPS going from 1 to 4 sessions with no admission starvation;
// PR-7 adds a plan-cache A/B at every point: the hot mix (one query
// shape, rotating literals) must win with the cache on, and the cold mix
// (structurally distinct shapes) must not regress.
//
// Flags: --mix=hot|cold selects the statement mix (default hot). The
// speedup_vs_1 column is reported only while sessions <= cores; past
// that the host is oversubscribed and the ratio measures scheduler
// behavior, not the server, so the table prints n/a and the JSON line
// carries "speedup_vs_1":null,"oversubscribed":true.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/expr/compiled.h"
#include "src/server/session.h"

namespace iceberg {
namespace bench {
namespace {

Database MakeDb(size_t rows) {
  Database db;
  Status st = db.CreateTable("object", Schema({{"id", DataType::kInt64},
                                               {"x", DataType::kInt64},
                                               {"y", DataType::kInt64}}));
  if (!st.ok()) std::exit(1);
  st = db.DeclareKey("object", {"id"});
  if (!st.ok()) std::exit(1);
  for (size_t i = 0; i < rows; ++i) {
    uint64_t h = i * 0x9e3779b97f4a7c15ull;
    st = db.Insert("object",
                   {Value::Int(static_cast<int64_t>(i)),
                    Value::Int(static_cast<int64_t>(h % 97)),
                    Value::Int(static_cast<int64_t>((h >> 32) % 89))});
    if (!st.ok()) std::exit(1);
  }
  return db;
}

/// Hot mix: the dominance iceberg query at three HAVING thresholds — one
/// query shape, distinct literals. The plan cache captures on the first
/// statement and replays for every later one; the cross-query cache
/// registry still sees distinct fingerprints (distinct literals =
/// distinct cache keys).
std::vector<std::string> HotMix() {
  std::vector<std::string> mix;
  for (int threshold : {50, 40, 60}) {
    mix.push_back(
        "SELECT L.id, COUNT(*) FROM object L, object R "
        "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
        "GROUP BY L.id HAVING COUNT(*) <= " +
        std::to_string(threshold));
  }
  return mix;
}

/// Cold mix: structurally distinct statements (different shapes), so
/// plan-cache replay buys nothing past each shape's first capture. The
/// cache-on run must match the cache-off run — this is the no-regression
/// leg of the A/B.
std::vector<std::string> ColdMix() {
  return {
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING COUNT(*) <= 50",
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(*) <= 40",
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.y <= R.y AND L.x <= R.x "
      "GROUP BY L.id HAVING COUNT(*) <= 60",
      "SELECT id FROM object WHERE x > 48 AND y > 40",
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x < R.x AND L.y < R.y GROUP BY L.id HAVING COUNT(*) <= 30",
  };
}

struct RunResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  int64_t max_queue_wait_us = 0;
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
};

RunResult RunConfig(size_t rows, int num_sessions, double duration_s,
                    const std::vector<std::string>& mix, bool plan_cache) {
  const bool cache_prev = PlanCacheEnabled();
  SetPlanCacheEnabled(plan_cache);
  ClearProgramTemplateCache();

  Database db = MakeDb(rows);
  ServerConfig config;
  config.admission.max_concurrent = static_cast<size_t>(num_sessions);
  config.admission.max_queue_depth = 2 * static_cast<size_t>(num_sessions);
  config.admission.queue_timeout_ms = 5000;
  config.admission.memory_budget_bytes =
      static_cast<size_t>(num_sessions) * (64u << 20);
  config.retry.max_attempts = 4;
  config.default_threads = 1;
  IcebergServer server(&db, config);

  std::atomic<bool> stop{false};
  std::mutex mu;
  RunResult result;
  std::vector<double> latencies_ms;
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  std::vector<std::thread> clients;
  for (int s = 0; s < num_sessions; ++s) {
    clients.emplace_back([&, s] {
      auto session = server.OpenSession();
      size_t i = static_cast<size_t>(s);  // desynchronize the mix
      std::vector<double> local_ms;
      uint64_t ok = 0, shed = 0, failed = 0;
      int64_t max_wait = 0;
      while (!stop.load(std::memory_order_acquire)) {
        Timer timer;
        QueryOutcome outcome = session->Execute(mix[i++ % mix.size()]);
        if (outcome.status.ok()) {
          ++ok;
          local_ms.push_back(timer.Seconds() * 1e3);
        } else if (outcome.status.IsRetryable()) {
          ++shed;
        } else {
          ++failed;
        }
        max_wait = std::max(max_wait, outcome.queue_wait_us);
      }
      std::lock_guard<std::mutex> lock(mu);
      result.ok += ok;
      result.shed += shed;
      result.failed += failed;
      result.max_queue_wait_us =
          std::max(result.max_queue_wait_us, max_wait);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
    });
  }

  Timer wall;
  while (wall.Seconds() < duration_s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  double elapsed = wall.Seconds();

  MetricsSnapshot delta = MetricsRegistry::Global().Snapshot().DiffSince(before);
  result.plan_hits = delta.counters["plan_cache.hits"];
  result.plan_misses = delta.counters["plan_cache.misses"];

  result.qps = static_cast<double>(result.ok) / elapsed;
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    auto pct = [&](double p) {
      size_t idx = static_cast<size_t>(p * (latencies_ms.size() - 1));
      return latencies_ms[idx];
    };
    result.p50_ms = pct(0.50);
    result.p99_ms = pct(0.99);
  }
  SetPlanCacheEnabled(cache_prev);
  ClearProgramTemplateCache();
  return result;
}

int Main(int argc, char** argv) {
  // Peel --mix= off before the shared flag parser (which rejects unknowns).
  std::string mix_name = "hot";
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--mix=", 6) == 0) {
      mix_name = argv[i] + 6;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (mix_name != "hot" && mix_name != "cold") {
    std::fprintf(stderr, "unknown --mix=%s (expected hot or cold)\n",
                 mix_name.c_str());
    return 2;
  }
  BenchFlags flags =
      ParseBenchFlags(static_cast<int>(rest.size()), rest.data());
  JsonWriter json(flags.json_path);

  const std::vector<std::string> mix =
      mix_name == "hot" ? HotMix() : ColdMix();
  const size_t rows = Scaled(48);
  const double duration_s = 1.0;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  std::printf("Concurrent serving QPS (mix=%s: %zu statement(s), %zu rows,\n"
              "1 worker thread per query; scaling comes from sessions)\n"
              "cores available: %u — speedup_vs_1 is suppressed once\n"
              "sessions exceed cores (oversubscribed: the ratio measures\n"
              "the host scheduler, not the server)\n\n",
              mix_name.c_str(), mix.size(), rows, cores);
  std::printf("%9s %6s %10s %10s %10s %6s %6s %6s %8s %8s %12s\n",
              "sessions", "cache", "qps", "p50_ms", "p99_ms", "ok", "shed",
              "fail", "p_hits", "p_miss", "max_wait_us");

  double qps_1_on = 0, qps_1_off = 0;
  for (int sessions : {1, 2, 4, 8}) {
    for (bool cache : {false, true}) {
      RunResult r = RunConfig(rows, sessions, duration_s, mix, cache);
      double& qps_1 = cache ? qps_1_on : qps_1_off;
      if (sessions == 1) qps_1 = r.qps;
      const bool oversubscribed =
          static_cast<unsigned>(sessions) > cores;
      double speedup = qps_1 > 0 ? r.qps / qps_1 : 0;
      char speedup_col[32];
      if (oversubscribed) {
        std::snprintf(speedup_col, sizeof(speedup_col), "(n/a: >cores)");
      } else {
        std::snprintf(speedup_col, sizeof(speedup_col), "(%.2fx)", speedup);
      }
      std::printf(
          "%9d %6s %10.1f %10.3f %10.3f %6llu %6llu %6llu %8llu %8llu "
          "%12lld  %s\n",
          sessions, cache ? "on" : "off", r.qps, r.p50_ms, r.p99_ms,
          static_cast<unsigned long long>(r.ok),
          static_cast<unsigned long long>(r.shed),
          static_cast<unsigned long long>(r.failed),
          static_cast<unsigned long long>(r.plan_hits),
          static_cast<unsigned long long>(r.plan_misses),
          static_cast<long long>(r.max_queue_wait_us), speedup_col);
      char speedup_json[32];
      if (oversubscribed) {
        std::snprintf(speedup_json, sizeof(speedup_json), "null");
      } else {
        std::snprintf(speedup_json, sizeof(speedup_json), "%.3f", speedup);
      }
      char line[640];
      std::snprintf(
          line, sizeof(line),
          "{\"bench\":\"concurrent_qps\",\"mix\":\"%s\",\"sessions\":%d,"
          "\"cores\":%u,\"plan_cache\":%s,\"qps\":%.1f,\"p50_ms\":%.3f,"
          "\"p99_ms\":%.3f,\"ok\":%llu,\"shed\":%llu,\"failed\":%llu,"
          "\"plan_cache_hits\":%llu,\"plan_cache_misses\":%llu,"
          "\"speedup_vs_1\":%s,\"oversubscribed\":%s}",
          mix_name.c_str(), sessions, cores, cache ? "true" : "false",
          r.qps, r.p50_ms, r.p99_ms,
          static_cast<unsigned long long>(r.ok),
          static_cast<unsigned long long>(r.shed),
          static_cast<unsigned long long>(r.failed),
          static_cast<unsigned long long>(r.plan_hits),
          static_cast<unsigned long long>(r.plan_misses), speedup_json,
          oversubscribed ? "true" : "false");
      json.RecordRaw(line);
      if (r.failed != 0) {
        std::fprintf(stderr, "FAIL: %llu non-retryable failures\n",
                     static_cast<unsigned long long>(r.failed));
        return 1;
      }
      if (mix_name == "hot" && cache && r.plan_hits == 0) {
        std::fprintf(stderr,
                     "FAIL: hot mix with cache on recorded no plan-cache "
                     "hits\n");
        return 1;
      }
    }
  }
  FinishBenchTrace(flags);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace iceberg

int main(int argc, char** argv) { return iceberg::bench::Main(argc, argv); }
