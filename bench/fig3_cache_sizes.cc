// Reproduces Figure 3: NLJP cache sizes (kB and entries) at the end of
// execution for the eight workload queries with all optimizations on.
// Expected shape: caches stay small (the paper: none above 3,000 kB, most
// below 500 kB) except the four-way pairs queries, where the cache can
// approach the input size (the paper calls out Q5 at >60% of input rows).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"

int main() {
  using namespace iceberg;
  using namespace iceberg::bench;

  const size_t rows = Scaled(12000);
  auto db = MakeScoreDb(rows);
  std::printf("=== Figure 3: cache sizes, %zu score rows ===\n\n", rows);
  std::printf("%-28s %12s %12s %10s %10s\n", "query", "cache(kB)", "entries",
              "memo_hits", "pruned");

  double total_kb = 0;
  size_t count = 0;
  for (const NamedQuery& q : Figure1Queries()) {
    IcebergReport report;
    TimeIceberg(db.get(), q.sql, IcebergOptions::All(), nullptr, &report);
    if (!report.used_nljp) {
      std::printf("%-28s %12s\n", q.name.c_str(), "n/a (no NLJP)");
      continue;
    }
    const NljpStats& s = report.nljp_stats;
    std::printf("%-28s %12.1f %12zu %10zu %10zu\n", q.name.c_str(),
                static_cast<double>(s.cache_bytes) / 1024.0, s.cache_entries,
                s.memo_hits, s.pruned);
    total_kb += static_cast<double>(s.cache_bytes) / 1024.0;
    ++count;
  }
  if (count > 0) {
    std::printf("\nmean cache size: %.1f kB over %zu NLJP queries\n",
                total_kb / static_cast<double>(count), count);
  }
  return 0;
}
