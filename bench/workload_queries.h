#ifndef SMARTICEBERG_BENCH_WORKLOAD_QUERIES_H_
#define SMARTICEBERG_BENCH_WORKLOAD_QUERIES_H_

// The representative query workload of Section 8: eight queries following
// the skyband (Listing 2), pairs (Listing 4), and complex (Listing 3)
// templates, cast over the synthetic baseball dataset.

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/baseball.h"

namespace iceberg {
namespace bench {

/// Builds the per-season score database at the bench's default scale
/// (the paper used 3x10^5 rows on PostgreSQL; our baseline engine gets the
/// same plans but we default to 12k rows so the full harness runs in
/// minutes — override with ICEBERG_BENCH_SCALE).
inline std::unique_ptr<Database> MakeScoreDb(size_t rows) {
  auto db = std::make_unique<Database>();
  BaseballConfig config;
  config.num_rows = rows;
  config.num_players = rows / 12;
  config.stat_granularity = 4;  // paper-like duplicate density
  Status st = RegisterBaseball(db.get(), config);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return db;
}

inline std::unique_ptr<Database> MakeProductDb(size_t base_rows) {
  auto db = std::make_unique<Database>();
  BaseballConfig config;
  config.num_rows = base_rows + 10;
  config.num_players = base_rows / 8 + 10;
  config.stat_granularity = 4;
  Status st = RegisterProduct(db.get(), config, base_rows);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return db;
}

/// Two-dimensional skyband over seasonal records (Q1-Q3 template):
/// records dominated by at most k others on the attribute pair (a1, a2).
inline std::string SkybandSql(const std::string& a1, const std::string& a2,
                              int k) {
  return "SELECT L.pid, L.year, L.round, COUNT(*) "
         "FROM score L, score R "
         "WHERE L." + a1 + " <= R." + a1 + " AND L." + a2 + " <= R." + a2 +
         " AND (L." + a1 + " < R." + a1 + " OR L." + a2 + " < R." + a2 +
         ") GROUP BY L.pid, L.year, L.round HAVING COUNT(*) <= " +
         std::to_string(k);
}

/// The pairs query (Q4-Q7 template): player pairs with at least c seasons
/// together, dominated by at most k other pairs; `agg` is AVG or SUM.
inline std::string PairsSql(int c, int k, const std::string& agg) {
  return "WITH pair AS "
         " (SELECT s1.pid AS pid1, s2.pid AS pid2, " +
         agg + "(s1.hits) AS hits1, " + agg + "(s1.hruns) AS hruns1, " +
         agg + "(s2.hits) AS hits2, " + agg +
         "(s2.hruns) AS hruns2 "
         "  FROM score s1, score s2 "
         "  WHERE s1.teamid = s2.teamid AND s1.year = s2.year "
         "    AND s1.round = s2.round AND s1.pid < s2.pid "
         "  GROUP BY s1.pid, s2.pid HAVING COUNT(*) >= " +
         std::to_string(c) +
         ") "
         "SELECT L.pid1, L.pid2, COUNT(*) FROM pair L, pair R "
         "WHERE R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1 "
         "  AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2 "
         "  AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1 "
         "    OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2) "
         "GROUP BY L.pid1, L.pid2 HAVING COUNT(*) <= " +
         std::to_string(k);
}

/// Selective pairs variant (the Q5-Q7 template windowed to recent
/// seasons). The stock pairs CTE self-joins score on identical
/// (teamid, year, round) columns with no per-side filter, so predicate
/// transfer proves it a no-op and stands down. Restricting s2 to a season
/// window makes the edge live: s2's local predicate seeds its selection,
/// the (teamid, year, round) Bloom transfers back to s1, and every s1 row
/// outside the window dies before the CTE join (soundly — the join
/// equality on year implies s1.year >= min_year).
inline std::string WindowedPairsSql(int c, int k, const std::string& agg,
                                    int min_year) {
  return "WITH pair AS "
         " (SELECT s1.pid AS pid1, s2.pid AS pid2, " +
         agg + "(s1.hits) AS hits1, " + agg + "(s1.hruns) AS hruns1, " +
         agg + "(s2.hits) AS hits2, " + agg +
         "(s2.hruns) AS hruns2 "
         "  FROM score s1, score s2 "
         "  WHERE s1.teamid = s2.teamid AND s1.year = s2.year "
         "    AND s1.round = s2.round AND s1.pid < s2.pid "
         "    AND s2.year >= " +
         std::to_string(min_year) +
         "  GROUP BY s1.pid, s2.pid HAVING COUNT(*) >= " +
         std::to_string(c) +
         ") "
         "SELECT L.pid1, L.pid2, COUNT(*) FROM pair L, pair R "
         "WHERE R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1 "
         "  AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2 "
         "  AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1 "
         "    OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2) "
         "GROUP BY L.pid1, L.pid2 HAVING COUNT(*) <= " +
         std::to_string(k);
}

/// Selective pairs variant with the cost concentrated where transfer can
/// reach it: the pair-vs-pair dominance BNL (level 1) runs for every L
/// pair, but only pairs whose first player sits on one team's roster in
/// one season (relation `s`, level 2) can reach the output. Without
/// transfer every doomed L pair still pays the full dominance scan of R;
/// with it, s's surviving pids transfer to L before the BNL starts.
inline std::string RosterPairsSql(int c, int k, const std::string& agg,
                                  int teamid, int year) {
  return "WITH pair AS "
         " (SELECT s1.pid AS pid1, s2.pid AS pid2, " +
         agg + "(s1.hits) AS hits1, " + agg + "(s1.hruns) AS hruns1, " +
         agg + "(s2.hits) AS hits2, " + agg +
         "(s2.hruns) AS hruns2 "
         "  FROM score s1, score s2 "
         "  WHERE s1.teamid = s2.teamid AND s1.year = s2.year "
         "    AND s1.round = s2.round AND s1.pid < s2.pid "
         "  GROUP BY s1.pid, s2.pid HAVING COUNT(*) >= " +
         std::to_string(c) +
         ") "
         "SELECT L.pid1, L.pid2, COUNT(*) FROM pair L, pair R, score s "
         "WHERE L.pid1 = s.pid AND s.teamid = " +
         std::to_string(teamid) + " AND s.year = " + std::to_string(year) +
         " AND R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1 "
         "  AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2 "
         "  AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1 "
         "    OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2) "
         "GROUP BY L.pid1, L.pid2 HAVING COUNT(*) <= " +
         std::to_string(k);
}

/// Selective Q8 variant: the player-average skyband restricted to one
/// team's roster in one season. The roster relation `s` carries local
/// predicates, its surviving pids transfer to L (level 0), and the
/// dominance BNL against R at level 1 — the query's dominant cost — runs
/// only for roster players instead of every player.
inline std::string RosterSkybandSql(int k, int teamid, int year) {
  return "WITH player AS "
         " (SELECT pid, AVG(hits) AS h, AVG(hruns) AS hr FROM score s "
         "  GROUP BY pid HAVING COUNT(*) >= 1) "
         "SELECT L.pid, COUNT(*) FROM player L, player R, score s "
         "WHERE L.pid = s.pid AND s.teamid = " +
         std::to_string(teamid) + " AND s.year = " + std::to_string(year) +
         " AND L.h < R.h AND L.hr < R.hr "
         "GROUP BY L.pid HAVING COUNT(*) <= " +
         std::to_string(k);
}

/// Q8: averages statistics per player first (objects of interest are
/// players), then a skyband with the simpler join condition.
inline std::string PlayerAvgSkybandSql(int k) {
  return "WITH player AS "
         " (SELECT pid, AVG(hits) AS h, AVG(hruns) AS hr FROM score s "
         "  GROUP BY pid HAVING COUNT(*) >= 1) "
         "SELECT L.pid, COUNT(*) FROM player L, player R "
         "WHERE L.h < R.h AND L.hr < R.hr "
         "GROUP BY L.pid HAVING COUNT(*) <= " +
         std::to_string(k);
}

/// The complex query (Listing 3) over the unpivoted product table.
inline std::string ComplexSql(int threshold) {
  return "SELECT S1.id, S1.attr, S2.attr, COUNT(*) "
         "FROM product S1, product S2, product T1, product T2 "
         "WHERE S1.id = S2.id AND T1.id = T2.id "
         "AND S1.category = T1.category "
         "AND T1.attr = S1.attr AND T2.attr = S2.attr "
         "AND T1.val > S1.val AND T2.val > S2.val "
         "GROUP BY S1.id, S1.attr, S2.attr HAVING COUNT(*) >= " +
         std::to_string(threshold);
}

struct NamedQuery {
  std::string name;
  std::string sql;
  bool apriori_applies;
};

/// The eight queries of Fig. 1. Q1-Q3 are skybands over different
/// attribute pairs and thresholds; Q4-Q7 are pairs queries with varying
/// (c, k) and aggregation; Q8 is the player-average skyband.
inline std::vector<NamedQuery> Figure1Queries() {
  return {
      {"Q1 skyband(hits,hruns) k=50", SkybandSql("hits", "hruns", 50), false},
      {"Q2 skyband(h2,sb) k=50", SkybandSql("h2", "sb", 50), false},
      {"Q3 skyband(hits,hruns) k=200", SkybandSql("hits", "hruns", 200),
       false},
      {"Q4 pairs c=6 k=20 AVG", PairsSql(6, 20, "AVG"), true},
      {"Q5 pairs c=4 k=50 SUM", PairsSql(4, 50, "SUM"), true},
      {"Q6 pairs c=8 k=10 AVG", PairsSql(8, 10, "AVG"), true},
      {"Q7 pairs c=4 k=100 SUM", PairsSql(4, 100, "SUM"), true},
      {"Q8 player-avg skyband k=30", PlayerAvgSkybandSql(30), false},
  };
}

}  // namespace bench
}  // namespace iceberg

#endif  // SMARTICEBERG_BENCH_WORKLOAD_QUERIES_H_
