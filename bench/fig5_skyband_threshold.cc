// Reproduces Figure 5: skyband running times (log-scale in the paper) as
// the HAVING threshold k varies. Expected shape: baseline and Vendor A are
// flat (they apply HAVING last); Smart-Iceberg is fastest at small k and
// its advantage shrinks as the query becomes less picky, while still
// winning at the largest threshold.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"

int main() {
  using namespace iceberg;
  using namespace iceberg::bench;

  const size_t rows = Scaled(8000);
  auto db = MakeScoreDb(rows);
  std::printf("=== Figure 5: skyband vs HAVING threshold, %zu rows ===\n\n",
              rows);
  std::printf("%-10s %12s %12s %12s %10s\n", "k", "postgres(s)",
              "vendorA(s)", "smart(s)", "results");

  for (int k : {1, 5, 25, 50, 100, 250}) {
    std::string sql = SkybandSql("hits", "hruns", k);
    double base = TimeBaseline(db.get(), sql, ExecOptions::Postgres());
    double vendor = TimeBaseline(db.get(), sql, ExecOptions::VendorA());
    size_t out_rows = 0;
    double smart = TimeIceberg(db.get(), sql, IcebergOptions::All(),
                               &out_rows);
    std::printf("%-10d %12.3f %12.3f %12.3f %10zu\n", k, base, vendor, smart,
                out_rows);
  }
  return 0;
}
