// PR 8 predicate-transfer A/B: the fixpoint Bloom-propagation graph
// (src/exec/transfer_graph.h) flipped off and on around the baseline
// executor.
//
// Two regimes, reported separately and honestly:
//
//  - The stock Fig. 1 queries (Q1-Q8) are self-joins over identical key
//    columns with no per-side filters; the graph proves those edges
//    no-ops and stands down, so this leg measures *overhead* (the
//    no-regression claim; rows_eliminated must be 0 and the ratio ~1.0).
//  - The selective variants (Q5w-Q7w window the pairs CTE to recent
//    seasons, Q8w restricts the skyband to one team's roster) give the
//    graph real asymmetry to exploit; this leg is the win artifact
//    (rows_eliminated > 0, speedup is the claim under test).
//
// Any row disagreement between the two states aborts the run. Emits JSONL
// via --json= (BENCH_PR8.json in EXPERIMENTS.md):
//   {"query":...,"threads":N,"ms_off":...,"ms_on":...,"speedup":...,
//    "rows_eliminated":...,"transfer_passes":...}

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"
#include "src/common/value.h"
#include "src/engine/database.h"
#include "src/exec/exec_options.h"

namespace iceberg {
namespace bench {
namespace {

constexpr int kTrials = 3;

struct Measurement {
  double ms = 0;
  TablePtr rows;
  ExecStats stats;
};

Measurement RunBest(Database* db, const std::string& sql, int threads,
                    bool transfer) {
  Measurement best;
  for (int t = 0; t < kTrials; ++t) {
    ExecOptions exec;
    exec.num_threads = threads;
    exec.predicate_transfer = transfer;
    ExecStats stats;
    Timer timer;
    Result<TablePtr> result = db->Query(sql, exec, &stats);
    const double ms = timer.Seconds() * 1e3;
    if (!result.ok()) {
      std::fprintf(stderr, "query failed (transfer=%d): %s\n%s\n",
                   transfer ? 1 : 0, result.status().ToString().c_str(),
                   sql.c_str());
      std::exit(1);
    }
    if (t == 0 || ms < best.ms) {
      best.ms = ms;
      best.rows = *result;
      best.stats = stats;
    }
  }
  return best;
}

void ExpectIdentical(const std::string& name, const TablePtr& off,
                     const TablePtr& on) {
  bool same = off->num_rows() == on->num_rows();
  if (same) {
    std::vector<Row> a = off->rows(), b = on->rows();
    std::sort(a.begin(), a.end(), RowLess());
    std::sort(b.begin(), b.end(), RowLess());
    for (size_t i = 0; same && i < a.size(); ++i) {
      same = CompareRows(a[i], b[i]) == 0;
    }
  }
  if (!same) {
    std::fprintf(stderr,
                 "%s: transfer on/off results disagree (%zu vs %zu rows)\n",
                 name.c_str(), off->num_rows(), on->num_rows());
    std::exit(1);
  }
}

void RunAB(Database* db, JsonWriter* json, const std::string& name,
           const std::string& sql, int threads) {
  Measurement off = RunBest(db, sql, threads, false);
  Measurement on = RunBest(db, sql, threads, true);
  ExpectIdentical(name, off.rows, on.rows);
  const double speedup = on.ms > 0 ? off.ms / on.ms : 0.0;
  std::printf("  %-38s t=%d  off %8.2f ms  on %8.2f ms  %5.2fx  "
              "eliminated %zu (passes %zu)\n",
              name.c_str(), threads, off.ms, on.ms, speedup,
              on.stats.transfer_rows_eliminated, on.stats.transfer_passes);
  std::fflush(stdout);
  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"query\":\"%s\",\"threads\":%d,\"ms_off\":%.3f,"
                "\"ms_on\":%.3f,\"speedup\":%.3f,\"rows_eliminated\":%zu,"
                "\"transfer_passes\":%zu}",
                name.c_str(), threads, off.ms, on.ms, speedup,
                on.stats.transfer_rows_eliminated, on.stats.transfer_passes);
  json->RecordRaw(line);
}

}  // namespace
}  // namespace bench
}  // namespace iceberg

int main(int argc, char** argv) {
  using namespace iceberg;
  using namespace iceberg::bench;

  BenchFlags flags = ParseBenchFlags(argc, argv);
  JsonWriter json(flags.json_path);

  const size_t rows = Scaled(3000);
  std::unique_ptr<Database> db = MakeScoreDb(rows);
  // The generator sweeps all players once per season: 12 rows/player and
  // 2 rounds mean 6 seasons, 1985..1990. The windows below keep the last
  // two; the roster variant picks a mid-range season.
  constexpr int kWindowYear = 1989;
  constexpr int kRosterTeam = 5;
  constexpr int kRosterYear = 1987;

  const std::vector<int> thread_counts = flags.threads > 0
                                             ? std::vector<int>{flags.threads}
                                             : std::vector<int>{1, 8};

  std::printf("predicate-transfer A/B over score(%zu rows)\n\n", rows);
  std::printf("stock Fig. 1 queries (self-join edges are provable no-ops; "
              "this leg measures overhead):\n");
  for (int threads : thread_counts) {
    for (const NamedQuery& q : Figure1Queries()) {
      RunAB(db.get(), &json, q.name, q.sql, threads);
    }
  }

  std::printf("\nselective variants (live transfer edges; this leg measures "
              "the win):\n");
  struct Variant {
    std::string name;
    std::string sql;
  };
  const std::vector<Variant> variants = {
      {"Q5w roster pairs c=4 k=50 SUM team=" + std::to_string(kRosterTeam),
       RosterPairsSql(4, 50, "SUM", kRosterTeam, kRosterYear)},
      {"Q6w pairs c=2 k=10 AVG year>=" + std::to_string(kWindowYear),
       WindowedPairsSql(2, 10, "AVG", kWindowYear)},
      {"Q7w roster pairs c=4 k=100 SUM team=12",
       RosterPairsSql(4, 100, "SUM", 12, 1988)},
      {"Q8w roster skyband k=30 team=" + std::to_string(kRosterTeam) +
           " year=" + std::to_string(kRosterYear),
       RosterSkybandSql(30, kRosterTeam, kRosterYear)},
  };
  for (int threads : thread_counts) {
    for (const Variant& v : variants) {
      RunAB(db.get(), &json, v.name, v.sql, threads);
    }
  }

  json.RecordMetrics("predicate_transfer end-of-run");
  FinishBenchTrace(flags);
  return 0;
}
