// PR 3 microbenchmarks: compiled expression programs vs the reference
// interpreter, packed aggregation keys vs Row keys, and the end-to-end
// effect on workload queries with the engine flipped off/on. Emits JSONL
// via --json= (BENCH_PR3.json in EXPERIMENTS.md); "speedup" is
// interpreted-time / compiled-time for the micro sections and off-time /
// on-time for the end-to-end section.

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "bench/workload_queries.h"
#include "src/exec/key_codec.h"
#include "src/expr/compiled.h"
#include "src/expr/evaluator.h"
#include "src/expr/expr.h"

namespace iceberg {
namespace bench {
namespace {

ExprPtr ColIx(int index) {
  ExprPtr c = Col("c" + std::to_string(index));
  c->resolved_index = index;
  return c;
}

// The skyband residual shape: two <= conjuncts plus a strict-dominance OR.
ExprPtr SkybandPredicate() {
  return AndAll({
      Bin(BinaryOp::kLe, ColIx(0), ColIx(2)),
      Bin(BinaryOp::kLe, ColIx(1), ColIx(3)),
      Bin(BinaryOp::kOr, Bin(BinaryOp::kLt, ColIx(0), ColIx(2)),
          Bin(BinaryOp::kLt, ColIx(1), ColIx(3))),
  });
}

// A projection-style arithmetic expression with a fused comparison.
ExprPtr ArithmeticPredicate() {
  return Bin(BinaryOp::kLt,
             Bin(BinaryOp::kSub,
                 Bin(BinaryOp::kMul,
                     Bin(BinaryOp::kAdd, ColIx(0), ColIx(1)), LitInt(2)),
                 ColIx(3)),
             LitInt(120));
}

std::vector<Row> MakeRows(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (size_t i = 0; i < n; ++i) {
    Row row;
    for (int c = 0; c < 4; ++c) {
      row.push_back(Value::Int(static_cast<int64_t>(next() % 64)));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void BenchExprEval(JsonWriter* json, const char* name, const ExprPtr& expr,
                   const std::vector<Row>& rows, int reps) {
  // Best of three trials per side: min time is the robust estimator under
  // scheduler noise (both sides run the identical trial count).
  constexpr int kTrials = 3;
  size_t hits_interp = 0;
  double interp_s = 0;
  for (int t = 0; t < kTrials; ++t) {
    hits_interp = 0;
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      for (const Row& row : rows) {
        if (EvaluatePredicate(*expr, row)) ++hits_interp;
      }
    }
    double s = timer.Seconds();
    if (t == 0 || s < interp_s) interp_s = s;
  }

  CompiledExpr prog = CompiledExpr::Compile(*expr);
  EvalScratch scratch;
  size_t hits_compiled = 0;
  double compiled_s = 0;
  for (int t = 0; t < kTrials; ++t) {
    hits_compiled = 0;
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      for (const Row& row : rows) {
        if (prog.RunPredicate(row, &scratch)) ++hits_compiled;
      }
    }
    double s = timer.Seconds();
    if (t == 0 || s < compiled_s) compiled_s = s;
  }

  if (hits_interp != hits_compiled) {
    std::fprintf(stderr, "MISMATCH in %s: %zu vs %zu\n", name, hits_interp,
                 hits_compiled);
    std::exit(1);
  }
  double speedup = compiled_s > 0 ? interp_s / compiled_s : 0.0;
  std::printf("%-28s interpreted %8.2f ms   compiled %8.2f ms   %5.2fx  (%s)\n",
              name, interp_s * 1e3, compiled_s * 1e3, speedup,
              prog.Summary().c_str());
  json->Record(std::string("micro ") + name + " interpreted", 1,
               interp_s * 1e3, 1.0);
  json->Record(std::string("micro ") + name + " compiled", 1,
               compiled_s * 1e3, speedup);
}

void BenchAggKeys(JsonWriter* json, const std::vector<Row>& rows, int reps) {
  // Group by three of the four columns — the hot AddRow key path with the
  // expression cost held constant (direct column gathers) so the measured
  // difference is the key representation itself.
  const std::vector<size_t> key_cols = {0, 1, 2};

  constexpr int kTrials = 3;
  size_t groups_row = 0;
  double row_s = 0;
  for (int t = 0; t < kTrials; ++t) {
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      std::unordered_map<Row, size_t, RowHash, RowEq> counts;
      Row key;
      key.reserve(key_cols.size());
      for (const Row& row : rows) {
        key.clear();
        for (size_t c : key_cols) key.push_back(row[c]);
        ++counts[key];
      }
      groups_row = counts.size();
    }
    double s = timer.Seconds();
    if (t == 0 || s < row_s) row_s = s;
  }

  KeyCodec codec = KeyCodec::ForTypes(
      {DataType::kInt64, DataType::kInt64, DataType::kInt64});
  size_t groups_packed = 0;
  double packed_s = 0;
  for (int t = 0; t < kTrials; ++t) {
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      std::unordered_map<PackedKey, size_t, PackedKeyHash, PackedKeyEq>
          counts;
      PackedKey key;
      for (const Row& row : rows) {
        codec.EncodeAt(row, key_cols, &key);
        ++counts[key];
      }
      groups_packed = counts.size();
    }
    double s = timer.Seconds();
    if (t == 0 || s < packed_s) packed_s = s;
  }

  if (groups_row != groups_packed) {
    std::fprintf(stderr, "MISMATCH in agg-key: %zu vs %zu groups\n",
                 groups_row, groups_packed);
    std::exit(1);
  }
  double speedup = packed_s > 0 ? row_s / packed_s : 0.0;
  std::printf("%-28s row keys    %8.2f ms   packed   %8.2f ms   %5.2fx  "
              "(%zu groups)\n",
              "agg-key", row_s * 1e3, packed_s * 1e3, speedup, groups_row);
  json->Record("micro agg-key row", 1, row_s * 1e3, 1.0);
  json->Record("micro agg-key packed", 1, packed_s * 1e3, speedup);
}

void BenchEndToEnd(JsonWriter* json, int threads) {
  std::unique_ptr<Database> db = MakeScoreDb(Scaled(3000));
  const std::vector<NamedQuery> queries = {
      {"Q1 skyband(hits,hruns) k=50", SkybandSql("hits", "hruns", 50), false},
      {"Q4 pairs c=6 k=20 AVG", PairsSql(6, 20, "AVG"), true},
      {"Q8 player-avg skyband k=30", PlayerAvgSkybandSql(30), false},
  };
  ExecOptions exec;
  exec.num_threads = threads;
  std::printf("\nend-to-end (baseline executor, %d thread%s, scale %zu "
              "rows):\n",
              threads, threads == 1 ? "" : "s", Scaled(3000));
  constexpr int kTrials = 3;
  for (const NamedQuery& q : queries) {
    size_t rows_off = 0, rows_on = 0;
    double off_s = 0, on_s = 0;
    SetCompiledExprEnabled(false);
    for (int t = 0; t < kTrials; ++t) {
      double s = TimeBaseline(db.get(), q.sql, exec, &rows_off);
      if (t == 0 || s < off_s) off_s = s;
    }
    SetCompiledExprEnabled(true);
    for (int t = 0; t < kTrials; ++t) {
      double s = TimeBaseline(db.get(), q.sql, exec, &rows_on);
      if (t == 0 || s < on_s) on_s = s;
    }
    if (rows_off != rows_on) {
      std::fprintf(stderr, "MISMATCH in %s: %zu vs %zu rows\n",
                   q.name.c_str(), rows_off, rows_on);
      std::exit(1);
    }
    double speedup = on_s > 0 ? off_s / on_s : 0.0;
    std::printf("  %-28s off %8.1f ms   on %8.1f ms   %5.2fx\n",
                q.name.c_str(), off_s * 1e3, on_s * 1e3, speedup);
    json->Record(q.name + " compiled=off", threads, off_s * 1e3, 1.0);
    json->Record(q.name + " compiled=on", threads, on_s * 1e3, speedup);
  }
}

int Main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  JsonWriter json(flags.json_path);
  const int threads = flags.threads <= 0 ? 1 : flags.threads;

  std::vector<Row> rows = MakeRows(4096);
  const int reps = static_cast<int>(Scaled(400));
  std::printf("expression evaluation (%zu rows x %d reps):\n", rows.size(),
              reps);
  BenchExprEval(&json, "expr skyband-residual", SkybandPredicate(), rows,
                reps);
  BenchExprEval(&json, "expr arithmetic", ArithmeticPredicate(), rows, reps);
  BenchExprEval(&json, "expr fused-cmp",
                Bin(BinaryOp::kLt, ColIx(0), LitInt(32)), rows, reps);
  std::printf("\naggregation keys (%zu rows x %d reps):\n", rows.size(), reps);
  BenchAggKeys(&json, rows, reps);
  BenchEndToEnd(&json, threads);
  SetCompiledExprEnabled(true);
  json.RecordMetrics("micro_eval end-of-run");
  FinishBenchTrace(flags);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace iceberg

int main(int argc, char** argv) { return iceberg::bench::Main(argc, argv); }
