#include "src/server/chaos.h"

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <thread>

#include "src/obs/metrics.h"

namespace iceberg {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic 1-in-N decision for (stream, site, ordinal).
bool Hit(uint64_t stream, uint64_t site, uint64_t ordinal, uint32_t every) {
  if (every == 0) return false;
  return SplitMix64(stream ^ (site * 0xd1342543de82ef95ull) ^ ordinal) %
             every ==
         0;
}

// The global config behind a mutex-guarded copy; reads are frequent only
// at query setup (MakeProbe), never per check, so a mutex is fine and
// keeps the struct copyable without atomics.
std::mutex g_chaos_mu;
ChaosConfig g_chaos;

constexpr uint64_t kSiteCancel = 1;
constexpr uint64_t kSiteAllocFail = 2;
constexpr uint64_t kSiteShedStorm = 3;
constexpr uint64_t kSiteDelay = 4;

}  // namespace

ChaosConfig ChaosConfig::Soak(uint64_t seed) {
  // Per-site rates are per *governor call*, so the per-attempt failure
  // probability scales with query size. These rates are calibrated for
  // serving-scale queries (the shell's demo statements run ~2-5*10^4
  // checks and ~10^4 reservations per attempt): roughly 10% of attempts
  // draw a cancel, ~15% an allocation failure, so most statements finish
  // inside a default retry budget — visibly recovering, not always dying.
  // Tests that drive tiny tables want much hotter rates; they build their
  // own ChaosConfig instead.
  ChaosConfig c;
  c.seed = seed;
  c.cancel_every = 249989;   // primes: sites decorrelate across ordinals
  c.alloc_fail_every = 49999;
  c.shed_storm_every = 4999;
  c.delay_every = 997;
  c.delay_us = 20;
  return c;
}

void ChaosSchedule::SetGlobal(ChaosConfig config) {
  std::lock_guard<std::mutex> lock(g_chaos_mu);
  g_chaos = config;
}

ChaosConfig ChaosSchedule::Global() {
  std::lock_guard<std::mutex> lock(g_chaos_mu);
  return g_chaos;
}

uint64_t ChaosSchedule::StreamId(uint64_t session_id,
                                 uint64_t statement_ordinal,
                                 uint64_t attempt) {
  return SplitMix64(SplitMix64(session_id) ^
                    SplitMix64(statement_ordinal * 0x2545f4914f6cdd1dull) ^
                    attempt);
}

struct ChaosSchedule::BoundProbe::State {
  ChaosConfig config;
  uint64_t stream = 0;
  std::atomic<QueryGovernor*> governor{nullptr};
  // Per-probe injection tallies (the probe may be called from any worker
  // thread, hence atomics; read at attempt end via injected()).
  std::atomic<uint64_t> delays{0};
  std::atomic<uint64_t> shed_storms{0};
  std::atomic<uint64_t> cancels{0};
  std::atomic<uint64_t> alloc_failures{0};
};

ChaosSchedule::BoundProbe::Counts ChaosSchedule::BoundProbe::injected() const {
  Counts counts;
  if (state_ == nullptr) return counts;
  counts.delays = state_->delays.load(std::memory_order_relaxed);
  counts.shed_storms = state_->shed_storms.load(std::memory_order_relaxed);
  counts.cancels = state_->cancels.load(std::memory_order_relaxed);
  counts.alloc_failures =
      state_->alloc_failures.load(std::memory_order_relaxed);
  return counts;
}

void ChaosSchedule::BoundProbe::Bind(QueryGovernor* governor) {
  if (state_ != nullptr) {
    state_->governor.store(governor, std::memory_order_release);
  }
}

ChaosSchedule::BoundProbe ChaosSchedule::MakeProbe(uint64_t stream_id) {
  BoundProbe bound;
  ChaosConfig config = Global();
  if (!config.enabled()) return bound;  // empty probe: zero overhead

  auto state = std::make_shared<BoundProbe::State>();
  state->config = config;
  state->stream = SplitMix64(config.seed ^ stream_id);
  bound.state_ = state;

  bound.probe.on_check = [state](size_t ordinal) -> Status {
    const ChaosConfig& c = state->config;
    if (Hit(state->stream, kSiteDelay, ordinal, c.delay_every)) {
      ICEBERG_COUNTER("chaos.injected_delays")->Increment();
      state->delays.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(c.delay_us));
    }
    if (Hit(state->stream, kSiteShedStorm, ordinal, c.shed_storm_every)) {
      QueryGovernor* governor =
          state->governor.load(std::memory_order_acquire);
      if (governor != nullptr) {
        ICEBERG_COUNTER("chaos.injected_shed_storms")->Increment();
        state->shed_storms.fetch_add(1, std::memory_order_relaxed);
        governor->ShedAdvisory(std::numeric_limits<size_t>::max());
      }
    }
    if (Hit(state->stream, kSiteCancel, ordinal, c.cancel_every)) {
      ICEBERG_COUNTER("chaos.injected_cancels")->Increment();
      state->cancels.fetch_add(1, std::memory_order_relaxed);
      return Status::Cancelled("chaos: injected spurious cancellation")
          .MarkRetryable();
    }
    return Status::OK();
  };
  bound.probe.on_reserve = [state](size_t ordinal, size_t bytes,
                                   const char* tag) -> Status {
    (void)bytes;
    (void)tag;
    const ChaosConfig& c = state->config;
    if (Hit(state->stream, kSiteAllocFail, ordinal, c.alloc_fail_every)) {
      ICEBERG_COUNTER("chaos.injected_alloc_failures")->Increment();
      state->alloc_failures.fetch_add(1, std::memory_order_relaxed);
      // Soft (TryReserve) call sites degrade — shed/skip the entry — and
      // the query completes exactly; hard sites fail the attempt with a
      // clean retryable status.
      return Status::ResourceExhausted("chaos: injected allocation failure")
          .MarkRetryable();
    }
    return Status::OK();
  };
  return bound;
}

}  // namespace iceberg
