#ifndef SMARTICEBERG_SERVER_ADMISSION_H_
#define SMARTICEBERG_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

#include "src/common/status.h"

namespace iceberg {

/// Apportions global memory and thread budgets across in-flight queries,
/// with bounded FIFO queueing and load shedding. Layered *above* the
/// per-query QueryGovernor: admission decides whether a query may run and
/// how much of the global pool it gets; the governor then enforces that
/// grant (as a shared budget, so overruns are retryable) while the query
/// executes.
///
/// Degradation ladder, never a crash:
///  1. free slot            -> run immediately with an equal share;
///  2. slots busy           -> queue FIFO, bounded by `max_queue_depth`;
///  3. queue full           -> shed the *incoming* query (newest-first
///                             shed order keeps queued work's progress);
///  4. queued too long      -> shed with Overloaded; the wait bound makes
///                             every queued query complete or shed within
///                             its deadline (no starvation: FIFO order is
///                             strict).
/// All sheds return Status::Overloaded — retryable by definition.
struct AdmissionConfig {
  /// Concurrently running queries (slots). At least 1.
  size_t max_concurrent = 4;
  /// Queries allowed to wait for a slot before the controller sheds
  /// incoming load.
  size_t max_queue_depth = 16;
  /// Longest a query may sit queued before it is shed (0 = wait forever).
  int64_t queue_timeout_ms = 2000;
  /// Global memory pool apportioned equally across slots (0 = ungoverned).
  /// Each admitted query is granted memory_budget_bytes / max_concurrent.
  size_t memory_budget_bytes = 0;
  /// Global worker-thread pool apportioned equally across slots
  /// (0 = leave the session's own thread setting untouched). Each admitted
  /// query is granted max(1, thread_budget / max_concurrent) workers.
  int thread_budget = 0;
};

class AdmissionController {
 public:
  /// What an admitted query was granted. Release the slot by passing the
  /// ticket back to Release() (the session layer wraps this in RAII).
  struct Ticket {
    bool admitted = false;
    /// Memory share for this query's governor (0 = ungoverned pool).
    size_t memory_grant_bytes = 0;
    /// Worker-thread share (0 = no thread governance configured).
    int thread_grant = 0;
    /// Microseconds spent queued before admission.
    int64_t queue_wait_us = 0;
    /// Queue length observed at the moment of admission (queries still
    /// waiting behind this one) — per-query congestion attribution for the
    /// flight recorder.
    size_t queue_depth_at_admit = 0;
  };

  explicit AdmissionController(AdmissionConfig config);

  /// Blocks until a slot is granted, the queue bound sheds the query, or
  /// the queue timeout expires. Returns Overloaded (always retryable) on
  /// either shed.
  Result<Ticket> Admit();

  /// Returns the ticket's slot to the pool and wakes the longest-waiting
  /// queued query.
  void Release(const Ticket& ticket);

  // ---- The apportionment arithmetic (pure; unit-tested directly) ----
  static size_t MemoryGrant(const AdmissionConfig& config) {
    if (config.memory_budget_bytes == 0) return 0;
    size_t slots = config.max_concurrent > 0 ? config.max_concurrent : 1;
    return config.memory_budget_bytes / slots;
  }
  static int ThreadGrant(const AdmissionConfig& config) {
    if (config.thread_budget <= 0) return 0;
    size_t slots = config.max_concurrent > 0 ? config.max_concurrent : 1;
    int grant = static_cast<int>(
        static_cast<size_t>(config.thread_budget) / slots);
    return grant > 0 ? grant : 1;
  }

  // ---- Introspection ----
  const AdmissionConfig& config() const { return config_; }
  size_t in_flight() const;
  size_t queued() const;
  uint64_t admitted_total() const;
  uint64_t shed_queue_full_total() const;
  uint64_t shed_timeout_total() const;

 private:
  AdmissionConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t in_flight_ = 0;
  /// FIFO of waiter ids; the front waiter owns the next free slot, which
  /// makes admission order strict and starvation impossible.
  std::deque<uint64_t> waiters_;
  uint64_t next_waiter_ = 1;
  uint64_t admitted_ = 0;
  uint64_t shed_queue_full_ = 0;
  uint64_t shed_timeout_ = 0;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_SERVER_ADMISSION_H_
