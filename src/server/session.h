#ifndef SMARTICEBERG_SERVER_SESSION_H_
#define SMARTICEBERG_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/database.h"
#include "src/nljp/shared_cache.h"
#include "src/server/admission.h"
#include "src/server/plan_cache.h"
#include "src/server/retry.h"
#include "src/common/shape.h"

namespace iceberg {

/// Serving-layer configuration: admission apportionment, retry semantics,
/// and cross-query cache sizing.
struct ServerConfig {
  AdmissionConfig admission;
  RetryPolicy retry;
  /// Worker threads per query when the admission controller has no thread
  /// budget configured (thread_budget == 0). 1 keeps per-query execution
  /// serial so concurrency comes from sessions, the bench's QPS model.
  int default_threads = 1;
  /// Cross-query NLJP cache registry bounds (distinct statement shapes
  /// kept, entry cap per shape).
  size_t cache_registry_max_caches = 8;
  size_t cache_registry_max_entries = 4096;
  /// Bound on cached plan traces (distinct statement shapes × catalog
  /// versions × option sets); LRU past it. The cache itself can be turned
  /// off process-wide with SetPlanCacheEnabled / ICEBERG_PLAN_CACHE=0.
  size_t plan_cache_max_entries = 64;
  /// Engine options template for iceberg-path statements. Per-attempt
  /// fields (governor, cache key/registry, thread count) are overwritten
  /// by the session; everything else (technique toggles, vectorize,
  /// profile) is taken from here.
  IcebergOptions iceberg;
};

/// Everything one statement submission produced, across all retry
/// attempts. Per-attempt state (governor, ExecStats, IcebergReport) is
/// constructed fresh for every attempt — governors are single-use and
/// reports append — so `report`/`stats` describe exactly the final
/// attempt, and EXPLAIN ANALYZE metric reconciliation stays exact under
/// retries (`attempts` says how many governor lifecycles ran).
struct QueryOutcome {
  Status status;
  TablePtr table;  // null on failure
  /// Attempts executed (>= 1); attempts - 1 were retried transients.
  int attempts = 0;
  /// Total deterministic backoff slept between attempts, milliseconds.
  int64_t backoff_total_ms = 0;
  /// Snapshot-conflict invalidations among the retried attempts.
  int snapshot_conflicts = 0;
  /// Final attempt's optimizer report (iceberg path) and baseline stats.
  IcebergReport report;
  ExecStats exec_stats;
  /// Statement identity: literal-preserving fingerprint (the cross-query
  /// cache key component) and literal-abstracted shape hash
  /// (observability).
  uint64_t fingerprint = 0;
  uint64_t shape_hash = 0;
  /// Queue wait of the final (successful or last-failed) admission, us.
  int64_t queue_wait_us = 0;
};

class Session;

/// Multi-session serving facade over one Database: a catalog-wide
/// reader/writer lock gives queries a stable snapshot while they run,
/// an AdmissionController apportions global memory/thread budgets, a
/// NljpCacheRegistry promotes NLJP memo/pruning caches across queries and
/// sessions, and the per-session retry loop turns every transient
/// (admission shed, queue timeout, snapshot conflict, shared-budget
/// exhaustion, chaos injection) into bounded deterministic backoff.
///
/// Concurrency contract:
///  - statements execute under the shared (read) catalog lock; DDL and
///    DML go through the server's exclusive write path, so a mutation
///    never races a running reader;
///  - a statement pins every table's snapshot at submit; if a mutation
///    lands while it is queued, validation at execution start fails with
///    a retryable snapshot conflict rather than reading torn state;
///  - version-keyed derived state (column-chunk caches, cross-query NLJP
///    caches) invalidates lazily — the version in the key rotates.
class IcebergServer {
 public:
  explicit IcebergServer(Database* db, ServerConfig config = ServerConfig());

  /// Opens a session with a fresh id. The session borrows the server (the
  /// server must outlive it) and is single-threaded by itself; open one
  /// per client thread.
  std::unique_ptr<Session> OpenSession();

  // ---- Exclusive write path ----
  Status Insert(const std::string& table, Row row);
  /// Runs `fn` on the database under the exclusive catalog lock (DDL,
  /// bulk loads). Blocks until running readers drain.
  Status Mutate(const std::function<Status(Database&)>& fn);

  Database* database() { return db_; }
  const ServerConfig& config() const { return config_; }
  AdmissionController& admission() { return admission_; }
  NljpCacheRegistry& cache_registry() { return cache_registry_; }
  PlanCache& plan_cache() { return plan_cache_; }

 private:
  friend class Session;

  Database* db_;
  ServerConfig config_;
  AdmissionController admission_;
  NljpCacheRegistry cache_registry_;
  PlanCache plan_cache_;
  /// Catalog-wide reader/writer lock: statements shared, mutations
  /// exclusive.
  std::shared_mutex catalog_mu_;
  std::atomic<uint64_t> next_session_id_{1};
};

/// One client's statement stream. Not thread-safe by itself — use one
/// session per thread; sessions of the same server run concurrently.
class Session {
 public:
  /// Runs `sql` through the Smart-Iceberg path with admission control,
  /// snapshot pinning, chaos probes, and the retry policy. Never throws;
  /// the outcome's status is OK, or a non-retryable failure, or the last
  /// retryable failure after the policy's attempts were exhausted.
  QueryOutcome Execute(const std::string& sql);

  /// Same serving hardening, baseline executor (differential reference).
  QueryOutcome ExecuteBaseline(const std::string& sql);

  /// Convenience: Execute each statement in order.
  std::vector<QueryOutcome> ExecuteAll(const std::vector<std::string>& sqls);

  /// Routes to the server's exclusive write path.
  Status Insert(const std::string& table, Row row);

  uint64_t id() const { return id_; }
  /// Statements submitted so far (the chaos stream ordinal source).
  uint64_t statements_submitted() const { return statement_ordinal_; }

  /// Per-session retry override (defaults to the server policy; the
  /// jitter seed is mixed with the session id at OpenSession so sessions
  /// desynchronize their backoff).
  RetryPolicy& retry_policy() { return retry_; }

 private:
  friend class IcebergServer;
  Session(IcebergServer* server, uint64_t id, RetryPolicy retry)
      : server_(server), id_(id), retry_(retry) {}

  /// The shared retry/admission/chaos harness around one engine call.
  QueryOutcome Run(const std::string& sql, bool use_iceberg);

  IcebergServer* server_;
  uint64_t id_;
  RetryPolicy retry_;
  uint64_t statement_ordinal_ = 0;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_SERVER_SESSION_H_
