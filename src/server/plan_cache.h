#ifndef SMARTICEBERG_SERVER_PLAN_CACHE_H_
#define SMARTICEBERG_SERVER_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "src/optimizer/iceberg_optimizer.h"

namespace iceberg {

/// Folds the planning-relevant IcebergOptions knobs into one word of the
/// plan-cache key: a trace captured under one technique configuration must
/// never replay under another (e.g. a no-NLJP decision recorded with
/// memoization disabled). Per-attempt fields (governor, thread count,
/// cache registry/key) do not shape the decisions and are excluded.
uint64_t PlanOptionsFingerprint(const IcebergOptions& options);

/// Process-wide cache of optimizer decision traces, keyed by
/// (statement shape, catalog version, planning options). Repeated
/// statements that differ only in literal values replay the captured
/// decisions — skipping the scored a-priori search, the NLJP partition
/// search, and (via artifact injection) the monotonicity scan and
/// subsumption derivation — while every literal-dependent computation
/// (reducer evaluation, execution) reruns against the fresh literals.
///
/// Soundness:
///  - the catalog version hash is part of the key, so any mutation rotates
///    the key and stale traces become unreachable (lazy invalidation, the
///    same scheme as NljpCacheRegistry); Insert additionally drops the
///    previous catalog generation's entry for the shape and counts it as
///    plan_cache.invalidations;
///  - Lookup verifies the stored literal-abstracted shape text, so a
///    64-bit shape-hash collision degrades to a miss, never a wrong trace;
///  - the optimizer re-verifies every recorded decision that is cheap to
///    re-check (reducer safety, NLJP applicability) and falls back to a
///    full optimization when the trace does not transfer.
///
/// Thread-safe: lookups take a shared lock; inserts take an exclusive
/// lock. Entries are immutable shared_ptr<const PlanTrace>, so replays
/// proceed lock-free after lookup, even across an eviction.
class PlanCache {
 public:
  /// `max_entries` bounds the resident traces; least-recently-used entries
  /// are evicted past it (0 means unbounded).
  explicit PlanCache(size_t max_entries = 64) : max_entries_(max_entries) {}

  struct Key {
    uint64_t shape_hash = 0;    // QueryShape::shape_hash
    uint64_t catalog_hash = 0;  // Database::CatalogVersionHash()
    uint64_t options_fp = 0;    // PlanOptionsFingerprint
  };

  /// Returns the trace for the key, or null. `shape_text` is the
  /// literal-abstracted statement (QueryShape::shape) and must match the
  /// stored one exactly. Counts plan_cache.{hits,misses}.
  std::shared_ptr<const PlanTrace> Lookup(const Key& key,
                                          const std::string& shape_text);

  /// Inserts a captured trace. Keeps the incumbent on a same-key race
  /// (first capture wins; both are valid). Drops the entry this shape had
  /// under the previous catalog version, and evicts the least-recently
  /// used entry when full.
  void Insert(const Key& key, const std::string& shape_text,
              std::shared_ptr<const PlanTrace> trace);

  void Clear();

  size_t size() const;
  size_t max_entries() const { return max_entries_; }

 private:
  struct Entry {
    std::string shape;
    std::shared_ptr<const PlanTrace> trace;
    /// Monotone recency stamp; the eviction victim has the minimum.
    std::atomic<uint64_t> stamp{0};
  };

  static uint64_t MapKey(const Key& key);

  const size_t max_entries_;
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> entries_;
  /// shape_hash ^ options_fp -> catalog hash of the resident entry, used
  /// to distinguish "mutation invalidated this shape" from a cold miss.
  std::unordered_map<uint64_t, uint64_t> generations_;
  std::atomic<uint64_t> clock_{0};
};

}  // namespace iceberg

#endif  // SMARTICEBERG_SERVER_PLAN_CACHE_H_
