#include "src/server/plan_cache.h"

#include <mutex>
#include <utility>

#include "src/obs/metrics.h"

namespace iceberg {

uint64_t PlanOptionsFingerprint(const IcebergOptions& options) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(options.enable_apriori ? 1 : 0);
  mix(options.enable_memo ? 1 : 0);
  mix(options.enable_prune ? 1 : 0);
  mix(options.cache_index ? 1 : 0);
  mix(options.use_indexes ? 1 : 0);
  mix(static_cast<uint64_t>(options.binding_order));
  mix(options.max_cache_entries);
  // The CBO join-order schedule in a trace is only meaningful to replays
  // planned with the same CBO state (both the session option and the
  // process-wide chicken bit), so both rotate the fingerprint.
  mix(options.base_exec.cbo && CboEnabled() ? 1 : 0);
  return h;
}

uint64_t PlanCache::MapKey(const Key& key) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(key.shape_hash);
  mix(key.catalog_hash);
  mix(key.options_fp);
  return h;
}

std::shared_ptr<const PlanTrace> PlanCache::Lookup(
    const Key& key, const std::string& shape_text) {
  const uint64_t map_key = MapKey(key);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(map_key);
    if (it != entries_.end() && it->second->shape == shape_text) {
      it->second->stamp.store(
          clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      ICEBERG_COUNTER("plan_cache.hits")->Increment();
      return it->second->trace;
    }
  }
  ICEBERG_COUNTER("plan_cache.misses")->Increment();
  return nullptr;
}

void PlanCache::Insert(const Key& key, const std::string& shape_text,
                       std::shared_ptr<const PlanTrace> trace) {
  if (trace == nullptr || !trace->captured) return;
  const uint64_t map_key = MapKey(key);
  const uint64_t shape_key = key.shape_hash ^ key.options_fp;

  auto entry = std::make_shared<Entry>();
  entry->shape = shape_text;
  entry->trace = std::move(trace);
  entry->stamp.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);

  std::unique_lock<std::shared_mutex> lock(mu_);
  // A mutation rotated the catalog hash since this shape was last cached:
  // the old generation's entry is unreachable now — drop it and account
  // the invalidation (distinguishing it from plain cold misses).
  auto gen = generations_.find(shape_key);
  if (gen != generations_.end() && gen->second != key.catalog_hash) {
    Key stale = key;
    stale.catalog_hash = gen->second;
    if (entries_.erase(MapKey(stale)) > 0) {
      ICEBERG_COUNTER("plan_cache.invalidations")->Increment();
    }
  }
  generations_[shape_key] = key.catalog_hash;
  // Keep the generation map from outliving its purpose (it only informs
  // the invalidation counter).
  if (max_entries_ > 0 && generations_.size() > max_entries_ * 4) {
    generations_.clear();
    generations_[shape_key] = key.catalog_hash;
  }

  auto it = entries_.find(map_key);
  if (it != entries_.end()) {
    // Lost a capture race; the incumbent trace is just as valid.
    return;
  }
  entries_.emplace(map_key, std::move(entry));
  if (max_entries_ > 0 && entries_.size() > max_entries_) {
    auto victim = entries_.end();
    uint64_t victim_stamp = ~0ull;
    for (auto e = entries_.begin(); e != entries_.end(); ++e) {
      uint64_t s = e->second->stamp.load(std::memory_order_relaxed);
      if (s < victim_stamp) {
        victim_stamp = s;
        victim = e;
      }
    }
    if (victim != entries_.end()) {
      entries_.erase(victim);
      ICEBERG_COUNTER("plan_cache.evictions")->Increment();
    }
  }
}

void PlanCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_.clear();
  generations_.clear();
}

size_t PlanCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

}  // namespace iceberg
