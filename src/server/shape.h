#ifndef SMARTICEBERG_SERVER_SHAPE_H_
#define SMARTICEBERG_SERVER_SHAPE_H_

#include <cstdint>
#include <string>

namespace iceberg {

/// Normalized identity of a SQL statement, in two strengths:
///
///  - `fingerprint` hashes the statement with case and whitespace
///    normalized but *literals kept*. Two statements with equal
///    fingerprints compute the same result over the same table versions,
///    which is what makes it a sound cross-query cache key (the NLJP memo
///    stores concrete inner-query results — they depend on the literals).
///  - `shape_hash` additionally abstracts numeric and string literals to a
///    placeholder (mongo's queryShapeHash idea), grouping "the same query
///    with different constants". Used for observability (per-shape
///    metrics), never for result caching.
struct QueryShape {
  uint64_t fingerprint = 0;
  uint64_t shape_hash = 0;
  std::string normalized;  // lower-cased, whitespace-collapsed statement
  std::string shape;       // normalized with literals replaced by '?'
};

/// Computes both normal forms in one pass. Case is lowered and whitespace
/// collapsed only *outside* single-quoted string literals; quotes escape
/// nothing in this SQL subset. Purely lexical — no parse is needed, so it
/// is cheap enough to run on every statement a session submits.
QueryShape ComputeQueryShape(const std::string& sql);

}  // namespace iceberg

#endif  // SMARTICEBERG_SERVER_SHAPE_H_
