#include "src/server/session.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "src/engine/analyze.h"
#include "src/engine/query_record.h"
#include "src/expr/compiled.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"
#include "src/obs/trace.h"
#include "src/server/chaos.h"

namespace iceberg {

IcebergServer::IcebergServer(Database* db, ServerConfig config)
    : db_(db),
      config_(config),
      admission_(config.admission),
      cache_registry_(config.cache_registry_max_caches,
                      config.cache_registry_max_entries),
      plan_cache_(config.plan_cache_max_entries) {}

std::unique_ptr<Session> IcebergServer::OpenSession() {
  uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  RetryPolicy retry = config_.retry;
  // Desynchronize backoff across sessions deterministically.
  retry.jitter_seed ^= id * 0x9e3779b97f4a7c15ull;
  ICEBERG_COUNTER("server.sessions_opened")->Increment();
  return std::unique_ptr<Session>(new Session(this, id, retry));
}

Status IcebergServer::Insert(const std::string& table, Row row) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  return db_->Insert(table, std::move(row));
}

Status IcebergServer::Mutate(const std::function<Status(Database&)>& fn) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  return fn(*db_);
}

namespace {

/// RAII slot return for an admission ticket.
struct TicketGuard {
  AdmissionController* controller;
  AdmissionController::Ticket ticket;
  ~TicketGuard() { controller->Release(ticket); }
};

bool PinsStillValid(
    const std::vector<std::pair<std::string, TableSnapshot>>& pins,
    const std::vector<std::pair<std::string, TableSnapshot>>& now) {
  if (pins.size() != now.size()) return false;
  for (size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].first != now[i].first ||
        pins[i].second.version != now[i].second.version) {
      return false;
    }
  }
  return true;
}

}  // namespace

QueryOutcome Session::Run(const std::string& sql, bool use_iceberg) {
  const uint64_t ordinal = ++statement_ordinal_;
  const ServerConfig& config = server_->config();

  QueryOutcome outcome;
  QueryShape shape = ComputeQueryShape(sql);
  outcome.fingerprint = shape.fingerprint;
  outcome.shape_hash = shape.shape_hash;

  // Flight recorder: one record per attempt, all sharing one query id.
  // `recording` is latched per statement so a mid-statement flip of the
  // chicken bit cannot tear a retry sequence.
  const bool recording = QueryLogEnabled();
  const uint64_t query_id = recording ? QueryLog::NextQueryId() : 0;
  std::string prev_status_name;

  const int max_attempts = retry_.max_attempts <= 0 ? 1 : retry_.max_attempts;
  for (int attempt = 1;; ++attempt) {
    outcome.attempts = attempt;
    ICEBERG_COUNTER("server.attempts")->Increment();

    QueryRecord rec;
    rec.start_us = TraceNowMicros();
    if (recording) {
      rec.query_id = query_id;
      rec.session_id = id_;
      rec.attempt = static_cast<uint32_t>(attempt);
      rec.iceberg = use_iceberg;
      rec.shape_hash = shape.shape_hash;
      rec.shape = shape.shape;
      rec.retry_cause = prev_status_name;
    }

    // --- Submit: pin every table's snapshot under the shared lock. ---
    std::vector<std::pair<std::string, TableSnapshot>> pins;
    uint64_t catalog_hash = 0;
    {
      std::shared_lock<std::shared_mutex> lock(server_->catalog_mu_);
      pins = server_->db_->SnapshotTables();
      catalog_hash = server_->db_->CatalogVersionHash();
    }

    // --- Admission: blocks, queues bounded, or sheds (retryable). ---
    Status st;
    Result<AdmissionController::Ticket> admitted =
        server_->admission_.Admit();
    if (admitted.ok()) {
      TicketGuard guard{&server_->admission_, *admitted};
      outcome.queue_wait_us = guard.ticket.queue_wait_us;
      rec.admission_wait_us =
          static_cast<uint64_t>(guard.ticket.queue_wait_us);
      rec.queue_depth_at_admit = guard.ticket.queue_depth_at_admit;

      // --- Fresh per-attempt state (satellite: governors are single-use
      // and reports/stats append, so reuse across attempts would double
      // count in EXPLAIN ANALYZE reconciliation). ---
      ChaosSchedule::BoundProbe chaos = ChaosSchedule::MakeProbe(
          ChaosSchedule::StreamId(id_, ordinal, attempt));
      QueryGovernor::Limits limits;
      limits.memory_budget_bytes = guard.ticket.memory_grant_bytes;
      limits.shared_budget = guard.ticket.memory_grant_bytes > 0;
      auto governor =
          std::make_shared<QueryGovernor>(limits, chaos.probe);
      chaos.Bind(governor.get());
      const int threads = guard.ticket.thread_grant > 0
                              ? guard.ticket.thread_grant
                              : config.default_threads;
      IcebergReport report;
      ExecStats stats;

      // --- Execute under the shared lock: mutations cannot race us;
      // mutations that landed while we were queued invalidate the pins
      // and surface as a clean retryable conflict instead. ---
      Result<TablePtr> result = Status::Internal("not executed");
      {
        std::shared_lock<std::shared_mutex> lock(server_->catalog_mu_);
        // This attempt is recorded here, with its admission/retry context;
        // suppress the Database layer's own record for the nested call.
        QueryLogScope suppress;
        if (!PinsStillValid(pins, server_->db_->SnapshotTables())) {
          ++outcome.snapshot_conflicts;
          ICEBERG_COUNTER("server.snapshot_conflicts")->Increment();
          result = Status::Overloaded(
              "snapshot conflict: catalog mutated while queued");
        } else if (use_iceberg) {
          IcebergOptions options = config.iceberg;
          options.governor = governor;
          options.base_exec.governor = governor;
          options.base_exec.num_threads = threads;
          options.cache_registry = &server_->cache_registry_;
          uint64_t key = shape.fingerprint ^ catalog_hash;
          options.cache_key = key != 0 ? key : 1;
          // Plan cache: replay the decision trace captured for this shape
          // over this catalog version, or capture one on this (post-
          // admission, snapshot-validated) attempt. The key pins shape,
          // catalog version and planning options; the engine re-verifies
          // the trace and falls back to a full plan when it does not
          // transfer.
          PlanTrace capture_buf;
          std::shared_ptr<const PlanTrace> replay_trace;
          PlanCache::Key pkey{shape.shape_hash, catalog_hash,
                              PlanOptionsFingerprint(config.iceberg)};
          if (PlanCacheEnabled()) {
            replay_trace = server_->plan_cache_.Lookup(pkey, shape.shape);
            if (replay_trace != nullptr) {
              options.replay = replay_trace.get();
            } else {
              options.capture = &capture_buf;
            }
          }
          result = server_->db_->QueryIceberg(sql, options, &report);
          if (result.ok() && capture_buf.captured) {
            server_->plan_cache_.Insert(
                pkey, shape.shape,
                std::make_shared<const PlanTrace>(std::move(capture_buf)));
          }
          stats = report.exec_stats;
        } else {
          ExecOptions exec = config.iceberg.base_exec;
          exec.governor = governor;
          exec.num_threads = threads;
          result = server_->db_->Query(sql, exec, &stats);
        }
      }

      // Assemble the record's execution fields while the governor and the
      // chaos probe are still alive — everything comes from this attempt's
      // own run-local state, never from global counters.
      if (recording) {
        FillRecordStatus(&rec,
                         result.ok() ? Status::OK() : result.status());
        rec.latency_us =
            static_cast<uint64_t>(TraceNowMicros() - rec.start_us);
        FillRecordGovernor(&rec, governor.get());
        ChaosSchedule::BoundProbe::Counts injected = chaos.injected();
        rec.chaos_delays = injected.delays;
        rec.chaos_shed_storms = injected.shed_storms;
        rec.chaos_cancels = injected.cancels;
        rec.chaos_alloc_failures = injected.alloc_failures;
        if (use_iceberg) {
          FillRecordStats(&rec, report);
        } else {
          FillRecordStats(&rec, stats);
        }
        if (result.ok()) rec.rows_returned = (*result)->num_rows();
        uint64_t slow_us = SlowQueryThresholdUs();
        if (slow_us != 0 && rec.latency_us >= slow_us && result.ok()) {
          int64_t end_us = rec.start_us + static_cast<int64_t>(rec.latency_us);
          if (use_iceberg) {
            rec.slow_capture = MakeSlowCapture(
                RenderAnalyzeIceberg(report, MetricsSnapshot(),
                                     rec.rows_returned,
                                     static_cast<int64_t>(rec.latency_us)),
                rec.start_us, end_us);
          } else {
            std::shared_lock<std::shared_mutex> lock(server_->catalog_mu_);
            ExecOptions plan_exec = config.iceberg.base_exec;
            Result<std::string> plan = server_->db_->ExplainBaseline(
                sql, plan_exec);
            if (plan.ok()) {
              rec.slow_capture = MakeSlowCapture(
                  RenderAnalyzeBaseline(stats, *plan, MetricsSnapshot(),
                                        rec.rows_returned,
                                        static_cast<int64_t>(rec.latency_us)),
                  rec.start_us, end_us);
            }
          }
        }
      }

      if (result.ok()) {
        outcome.status = Status::OK();
        outcome.table = std::move(result).value();
        outcome.report = std::move(report);
        outcome.exec_stats = stats;
        ICEBERG_COUNTER("server.queries_ok")->Increment();
        if (recording) QueryLog::Global().Record(std::move(rec));
        return outcome;
      }
      st = result.status();
      outcome.report = std::move(report);
      outcome.exec_stats = stats;
    } else {
      st = admitted.status();
      // Shed before admission: the record carries the shed status and the
      // time burned waiting, but no governor/execution fields (none ran).
      if (recording) {
        FillRecordStatus(&rec, st);
        rec.latency_us =
            static_cast<uint64_t>(TraceNowMicros() - rec.start_us);
      }
    }

    const bool will_retry =
        retry_.ShouldRetry(st, attempt) && attempt < max_attempts;
    if (recording) {
      rec.will_retry = will_retry;
      prev_status_name = rec.status;
    }
    if (will_retry) {
      int64_t backoff = retry_.BackoffMs(attempt);
      outcome.backoff_total_ms += backoff;
      rec.backoff_ms = static_cast<uint64_t>(backoff);
      ICEBERG_COUNTER("server.retries")->Increment();
      if (recording) QueryLog::Global().Record(std::move(rec));
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
      continue;
    }
    if (recording) QueryLog::Global().Record(std::move(rec));
    outcome.status = st;
    if (st.IsRetryable()) {
      ICEBERG_COUNTER("server.queries_shed")->Increment();
    } else {
      ICEBERG_COUNTER("server.queries_failed")->Increment();
    }
    return outcome;
  }
}

QueryOutcome Session::Execute(const std::string& sql) {
  return Run(sql, /*use_iceberg=*/true);
}

QueryOutcome Session::ExecuteBaseline(const std::string& sql) {
  return Run(sql, /*use_iceberg=*/false);
}

std::vector<QueryOutcome> Session::ExecuteAll(
    const std::vector<std::string>& sqls) {
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(sqls.size());
  for (const auto& sql : sqls) outcomes.push_back(Execute(sql));
  return outcomes;
}

Status Session::Insert(const std::string& table, Row row) {
  return server_->Insert(table, std::move(row));
}

}  // namespace iceberg
