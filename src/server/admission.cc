#include "src/server/admission.h"

#include <algorithm>
#include <chrono>

#include "src/obs/metrics.h"

namespace iceberg {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  if (config_.max_concurrent == 0) config_.max_concurrent = 1;
}

Result<AdmissionController::Ticket> AdmissionController::Admit() {
  auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);

  if (in_flight_ >= config_.max_concurrent &&
      waiters_.size() >= config_.max_queue_depth) {
    ++shed_queue_full_;
    ICEBERG_COUNTER("admission.shed_queue_full")->Increment();
    return Status::Overloaded("admission queue full (" +
                              std::to_string(waiters_.size()) +
                              " queued); retry with backoff");
  }

  const uint64_t my_id = next_waiter_++;
  waiters_.push_back(my_id);
  auto runnable = [&] {
    return in_flight_ < config_.max_concurrent && !waiters_.empty() &&
           waiters_.front() == my_id;
  };

  bool admitted;
  if (config_.queue_timeout_ms > 0) {
    admitted = cv_.wait_for(
        lock, std::chrono::milliseconds(config_.queue_timeout_ms), runnable);
  } else {
    cv_.wait(lock, runnable);
    admitted = true;
  }
  if (!admitted) {
    waiters_.erase(std::find(waiters_.begin(), waiters_.end(), my_id));
    ++shed_timeout_;
    ICEBERG_COUNTER("admission.shed_queue_timeout")->Increment();
    // Our departure may make the new front waiter runnable.
    cv_.notify_all();
    return Status::Overloaded("admission queue timeout after " +
                              std::to_string(config_.queue_timeout_ms) +
                              "ms; retry with backoff");
  }

  waiters_.pop_front();
  ++in_flight_;
  ++admitted_;

  Ticket ticket;
  ticket.admitted = true;
  ticket.memory_grant_bytes = MemoryGrant(config_);
  ticket.thread_grant = ThreadGrant(config_);
  ticket.queue_wait_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  ticket.queue_depth_at_admit = waiters_.size();
  ICEBERG_COUNTER("admission.admitted")->Increment();
  ICEBERG_HISTOGRAM("admission.queue_wait_us")
      ->Record(static_cast<uint64_t>(ticket.queue_wait_us));
  ICEBERG_GAUGE("admission.in_flight")->Set(static_cast<int64_t>(in_flight_));
  return ticket;
}

void AdmissionController::Release(const Ticket& ticket) {
  if (!ticket.admitted) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_ > 0) --in_flight_;
    ICEBERG_GAUGE("admission.in_flight")
        ->Set(static_cast<int64_t>(in_flight_));
  }
  // All waiters recheck; only the FIFO front proceeds.
  cv_.notify_all();
}

size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size();
}

uint64_t AdmissionController::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::shed_queue_full_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_queue_full_;
}

uint64_t AdmissionController::shed_timeout_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_timeout_;
}

}  // namespace iceberg
