#include "src/server/retry.h"

namespace iceberg {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

int64_t RetryPolicy::BackoffMs(int attempt) const {
  if (attempt <= 0) return 0;
  int64_t base = initial_backoff_ms > 0 ? initial_backoff_ms : 1;
  // Exponential growth with overflow-safe capping.
  for (int k = 1; k < attempt && base < max_backoff_ms; ++k) base *= 2;
  if (max_backoff_ms > 0 && base > max_backoff_ms) base = max_backoff_ms;
  if (base <= 1) return base;
  // Deterministic jitter: uniformly in [ceil(base/2), base], derived only
  // from (seed, attempt) so replays produce the identical schedule.
  uint64_t r = SplitMix64(jitter_seed ^ static_cast<uint64_t>(attempt));
  int64_t half = (base + 1) / 2;
  return half + static_cast<int64_t>(r % static_cast<uint64_t>(base - half + 1));
}

}  // namespace iceberg
