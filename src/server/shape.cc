#include "src/server/shape.h"

#include <cctype>

namespace iceberg {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

QueryShape ComputeQueryShape(const std::string& sql) {
  QueryShape out;
  std::string& norm = out.normalized;
  std::string& shape = out.shape;
  norm.reserve(sql.size());
  shape.reserve(sql.size());

  size_t i = 0;
  const size_t n = sql.size();
  bool pending_space = false;
  auto emit = [&](char c, bool literal) {
    // Collapse runs of whitespace to one space, and trim the ends lazily.
    if (pending_space && !norm.empty()) {
      norm.push_back(' ');
      shape.push_back(' ');
    }
    pending_space = false;
    norm.push_back(c);
    if (!literal) shape.push_back(c);
  };

  while (i < n) {
    char c = sql[i];
    if (c == '\'') {
      // String literal: copied verbatim into the fingerprint form,
      // abstracted to '?' in the shape form.
      size_t start = i++;
      while (i < n && sql[i] != '\'') ++i;
      if (i < n) ++i;  // closing quote
      if (pending_space && !norm.empty()) {
        norm.push_back(' ');
        shape.push_back(' ');
      }
      pending_space = false;
      norm.append(sql, start, i - start);
      shape.push_back('?');
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) &&
        (norm.empty() || !(std::isalnum(static_cast<unsigned char>(
                               norm.back())) ||
                           norm.back() == '_'))) {
      // Numeric literal (not an identifier suffix like "t1"): keep the
      // digits in the fingerprint, abstract to '?' in the shape.
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        ++i;
      }
      if (pending_space && !norm.empty()) {
        norm.push_back(' ');
        shape.push_back(' ');
      }
      pending_space = false;
      norm.append(sql, start, i - start);
      shape.push_back('?');
      continue;
    }
    emit(static_cast<char>(std::tolower(static_cast<unsigned char>(c))),
         /*literal=*/false);
    ++i;
  }

  out.fingerprint = Fnv1a(norm);
  out.shape_hash = Fnv1a(shape);
  return out;
}

}  // namespace iceberg
