#ifndef SMARTICEBERG_SERVER_RETRY_H_
#define SMARTICEBERG_SERVER_RETRY_H_

#include <cstdint>

#include "src/common/status.h"

namespace iceberg {

/// Bounded exponential backoff with deterministic jitter, applied only to
/// retryable statuses (Status::IsRetryable()): admission sheds, queue
/// timeouts, snapshot conflicts, shared-budget exhaustion, and
/// chaos-injected transients. Non-retryable failures (parse errors, user
/// cancels, intrinsic per-query limits) are never retried — re-running
/// them repeats the same outcome deterministically.
///
/// Jitter is a pure function of (seed, attempt), not of wall clock or a
/// global RNG, so a chaos run replayed from its seed backs off through the
/// identical schedule.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries, 0 = disabled —
  /// treated as 1).
  int max_attempts = 4;
  int64_t initial_backoff_ms = 1;
  int64_t max_backoff_ms = 64;
  /// Backoff base: attempt k (0-based retry index) waits
  /// initial * 2^k, capped at max, then jittered to [1/2, 1] of that.
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;

  /// Whether `status` warrants another attempt after `attempt` completed
  /// attempts (attempt >= 1).
  bool ShouldRetry(const Status& status, int attempt) const {
    if (status.ok() || !status.IsRetryable()) return false;
    return attempt < (max_attempts <= 0 ? 1 : max_attempts);
  }

  /// Backoff before retry number `attempt` (1-based: the wait after the
  /// first failed attempt is BackoffMs(1)). Deterministic.
  int64_t BackoffMs(int attempt) const;

  /// A policy that never retries (sessions that want raw failures).
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

}  // namespace iceberg

#endif  // SMARTICEBERG_SERVER_RETRY_H_
