#ifndef SMARTICEBERG_SERVER_CHAOS_H_
#define SMARTICEBERG_SERVER_CHAOS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/exec/governor.h"

namespace iceberg {

/// A seeded, process-wide fault-injection schedule, layered on the
/// GovernorProbe hooks so faults land exactly at governor check/reserve
/// sites — the places real pressure surfaces. Every injection decision is
/// a pure function of (seed, query stream id, site, ordinal); thread
/// interleaving, wall clock, and global RNG state play no part, so any
/// failure a chaos run produces is replayable from its seed and the
/// per-session statement script alone.
///
/// Faults injected (each gated by its own ~1/N rate; 0 disables the site):
///  - spurious cancellation: Check() fails with a *retryable* Cancelled
///    (modeling a dropped client connection);
///  - allocation failure: Reserve() fails with a *retryable*
///    ResourceExhausted (modeling transient global memory pressure). Soft
///    (advisory) reservations degrade — caches shed/skip — and the query
///    still completes exactly; hard reservations fail the attempt cleanly;
///  - cache-shed storm: the governor's reclaimer is forced to drop all
///    advisory state at a check site (always safe — advisory state only
///    accelerates);
///  - slow morsel: a short busy delay at a check site, widening race
///    windows so tsan and the soak test see more interleavings.
struct ChaosConfig {
  uint64_t seed = 0;  // 0 = chaos disabled everywhere
  /// Inject a retryable cancel at ~1/N governor checks (0 = off).
  uint32_t cancel_every = 0;
  /// Fail ~1/N reservations with retryable ResourceExhausted (0 = off).
  uint32_t alloc_fail_every = 0;
  /// Force a full advisory shed at ~1/N governor checks (0 = off).
  uint32_t shed_storm_every = 0;
  /// Sleep `delay_us` at ~1/N governor checks (0 = off).
  uint32_t delay_every = 0;
  uint32_t delay_us = 50;

  bool enabled() const {
    return seed != 0 && (cancel_every | alloc_fail_every | shed_storm_every |
                         delay_every) != 0;
  }

  /// A moderately hostile default profile for serving-scale queries
  /// (~10^4-10^5 governor calls per attempt — the shell's \chaos uses
  /// this): every fault class active, tuned so most attempts complete
  /// and retries absorb most of the rest. Per-call rates scale with
  /// query size, so tests over tiny tables set much hotter rates
  /// directly instead of using this profile.
  static ChaosConfig Soak(uint64_t seed);
};

/// Process-wide chaos control. The serving layer asks for a probe per
/// query attempt; direct Database calls (no probe installed) are never
/// chaos-injected.
class ChaosSchedule {
 public:
  /// Atomically replaces the global schedule ({} disables chaos).
  static void SetGlobal(ChaosConfig config);
  static ChaosConfig Global();

  /// Builds the fault-injection probe for one query attempt.
  /// `stream_id` must identify the attempt deterministically — the session
  /// layer uses hash(session id, statement ordinal, attempt) — so the
  /// injection pattern is independent of scheduling. The returned probe is
  /// self-contained and cheap when chaos is disabled.
  ///
  /// Shed storms need the governor the probe ends up installed in; because
  /// the probe must exist *before* the governor is constructed, the caller
  /// binds it afterwards: MakeProbe(...) -> construct governor with
  /// .probe -> Bind(governor).
  struct BoundProbe {
    GovernorProbe probe;
    /// Enables shed-storm injection by pointing the probe at its owner.
    /// The governor must outlive all probe invocations (it owns the
    /// probe, so it trivially does).
    void Bind(QueryGovernor* governor);

    /// Injections this probe actually fired, by fault class — the
    /// per-attempt attribution the flight recorder stores alongside the
    /// process-wide chaos.injected_* counters. All zeros when chaos is
    /// disabled (no state allocated).
    struct Counts {
      uint64_t delays = 0;
      uint64_t shed_storms = 0;
      uint64_t cancels = 0;
      uint64_t alloc_failures = 0;
    };
    Counts injected() const;

   private:
    friend class ChaosSchedule;
    struct State;
    std::shared_ptr<State> state_;
  };
  static BoundProbe MakeProbe(uint64_t stream_id);

  /// Convenience for deriving stream ids.
  static uint64_t StreamId(uint64_t session_id, uint64_t statement_ordinal,
                           uint64_t attempt);
};

}  // namespace iceberg

#endif  // SMARTICEBERG_SERVER_CHAOS_H_
