#ifndef SMARTICEBERG_ENGINE_DATABASE_H_
#define SMARTICEBERG_ENGINE_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exec/executor.h"
#include "src/optimizer/iceberg_optimizer.h"
#include "src/parser/parser.h"
#include "src/plan/query_block.h"
#include "src/storage/table.h"

namespace iceberg {

/// The public facade of the Smart-Iceberg library: a small in-memory
/// database with a SQL-subset front end, a conventional baseline executor
/// (PostgreSQL- or "Vendor A"-style), and the Smart-Iceberg optimizer that
/// applies generalized a-priori, memoization, and NLJP pruning
/// automatically.
///
/// Typical usage:
///
///   Database db;
///   db.CreateTable("object", Schema({{"id", DataType::kInt64},
///                                    {"x", DataType::kInt64},
///                                    {"y", DataType::kInt64}}));
///   db.DeclareKey("object", {"id"});
///   db.Insert("object", {Value::Int(1), Value::Int(3), Value::Int(5)});
///   auto result = db.QueryIceberg(
///       "SELECT L.id, COUNT(*) FROM object L, object R "
///       "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
///       "GROUP BY L.id HAVING COUNT(*) <= 50");
class Database {
 public:
  Database() = default;

  // ---- Schema management ----
  Status CreateTable(const std::string& name, Schema schema);
  /// Registers an existing table (e.g. from a workload generator).
  Status RegisterTable(TablePtr table);
  /// Declares `columns` a key: adds the FD columns -> all columns.
  Status DeclareKey(const std::string& table, const std::vector<std::string>& columns);
  /// Declares an arbitrary functional dependency lhs -> rhs.
  Status DeclareFd(const std::string& table, const std::vector<std::string>& lhs,
                   const std::vector<std::string>& rhs);
  Status Insert(const std::string& table, Row row);
  Status CreateOrderedIndex(const std::string& table, const std::vector<std::string>& columns);
  Status CreateHashIndex(const std::string& table, const std::vector<std::string>& columns);
  Result<TablePtr> GetTable(const std::string& name) const;
  Result<CatalogEntry> GetEntry(const std::string& name) const;
  /// Drops all secondary indexes of a table (Fig. 4 experiments).
  Status DropIndexes(const std::string& table);

  /// Pins a snapshot of every registered table: (lower-cased name,
  /// snapshot). The serving layer calls this under its catalog read lock
  /// when a query is submitted, and re-validates the pins when execution
  /// starts, so mutations that landed while the query was queued surface
  /// as a clean retryable conflict.
  std::vector<std::pair<std::string, TableSnapshot>> SnapshotTables() const;

  /// Order-independent fingerprint of all table versions; changes whenever
  /// any registered table mutates. Used (with the query fingerprint) to
  /// key cross-query caches so they invalidate lazily on mutation.
  uint64_t CatalogVersionHash() const;

  // ---- Query execution ----
  /// Parses and runs `sql` on the baseline executor (full join, then
  /// grouping, then HAVING). CTEs and FROM-subqueries are materialized.
  /// When `exec.governor` is set, the whole statement (including CTEs) runs
  /// under its deadline/cancellation/budget; trips surface as Cancelled or
  /// ResourceExhausted, never as a hang or abort.
  Result<TablePtr> Query(const std::string& sql,
                         ExecOptions exec = ExecOptions(),
                         ExecStats* stats = nullptr);

  /// Parses and runs `sql` through the Smart-Iceberg optimizer. Each CTE is
  /// optimized independently (the "pairs" query benefits from a-priori in
  /// its WITH block and pruning in its main block). When `options.governor`
  /// is set it governs every stage; graceful degradations (cache shedding,
  /// fallback) are recorded in `report->degradations`.
  Result<TablePtr> QueryIceberg(const std::string& sql,
                                IcebergOptions options = IcebergOptions(),
                                IcebergReport* report = nullptr);

  /// EXPLAIN for either engine.
  Result<std::string> ExplainBaseline(const std::string& sql,
                                      ExecOptions exec = ExecOptions());
  Result<std::string> ExplainIceberg(const std::string& sql,
                                     IcebergOptions options = IcebergOptions());

  /// EXPLAIN ANALYZE: executes the statement, then returns the plan tree
  /// annotated with measured wall times, row counts, cache effectiveness,
  /// and the exact metrics-registry delta of the run, as rows of a
  /// one-column "QUERY PLAN" table. `sql` may carry the EXPLAIN ANALYZE
  /// prefix or be a bare statement. Query()/QueryIceberg() route here
  /// automatically when the statement starts with EXPLAIN ANALYZE.
  Result<TablePtr> ExplainAnalyzeBaseline(const std::string& sql,
                                          ExecOptions exec = ExecOptions());
  Result<TablePtr> ExplainAnalyzeIceberg(
      const std::string& sql, IcebergOptions options = IcebergOptions());

  /// Parses and binds `sql` into a QueryBlock against the catalog
  /// (materializing CTEs/subqueries with the baseline executor). Exposed
  /// for tests and tooling.
  Result<QueryBlock> Prepare(const std::string& sql);

 private:
  /// The actual engine entry points behind Query()/QueryIceberg(). The
  /// public wrappers add flight-recorder emission for top-level direct
  /// calls (suppressed under a QueryLogScope, i.e. when the serving layer
  /// already records the attempt).
  Result<TablePtr> QueryImpl(const std::string& sql, ExecOptions exec,
                             ExecStats* stats);
  Result<TablePtr> QueryIcebergImpl(const std::string& sql,
                                    IcebergOptions options,
                                    IcebergReport* report);

  /// Applies the block's ORDER BY / LIMIT to a materialized result.
  static TablePtr ApplyOrderAndLimit(const QueryBlock& block,
                                     TablePtr result);

  /// Derives the FDs of a materialized query result: GROUP BY columns that
  /// are projected form a key; DISTINCT output rows form a key of all
  /// columns.
  static FdSet DerivedFds(const QueryBlock& block, const Schema& out_schema);

  /// Materializes one parsed select with the chosen engine; recursive over
  /// FROM-subqueries. `scope` holds CTE results visible to this block.
  Result<CatalogEntry> Materialize(
      const ParsedSelect& select,
      const std::map<std::string, CatalogEntry>& scope, bool use_iceberg,
      const IcebergOptions& iceberg_options, const ExecOptions& exec,
      ExecStats* stats, IcebergReport* report);

  /// Binds a block whose FROM-subqueries were already materialized.
  Result<QueryBlock> BindSelect(
      const ParsedSelect& select,
      const std::map<std::string, CatalogEntry>& scope,
      const std::map<std::string, CatalogEntry>& inline_tables);

  std::map<std::string, CatalogEntry> tables_;  // lower-cased name -> entry
};

}  // namespace iceberg

#endif  // SMARTICEBERG_ENGINE_DATABASE_H_
