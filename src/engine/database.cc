#include "src/engine/database.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/common/shape.h"
#include "src/common/string_util.h"
#include "src/engine/analyze.h"
#include "src/engine/query_record.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"
#include "src/obs/trace.h"

namespace iceberg {

Status Database::CreateTable(const std::string& name, Schema schema) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  CatalogEntry entry;
  entry.table = std::make_shared<Table>(name, std::move(schema));
  tables_.emplace(std::move(key), std::move(entry));
  return Status::OK();
}

Status Database::RegisterTable(TablePtr table) {
  std::string key = ToLower(table->name());
  if (key.empty()) return Status::InvalidArgument("table needs a name");
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + table->name());
  }
  CatalogEntry entry;
  entry.table = std::move(table);
  tables_.emplace(std::move(key), std::move(entry));
  return Status::OK();
}

Status Database::DeclareKey(const std::string& table,
                            const std::vector<std::string>& columns) {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) return Status::NotFound("no table: " + table);
  std::vector<std::string> all;
  for (const Column& c : it->second.table->schema().columns()) {
    all.push_back(c.name);
  }
  it->second.fds.Add(columns, all);
  return Status::OK();
}

Status Database::DeclareFd(const std::string& table,
                           const std::vector<std::string>& lhs,
                           const std::vector<std::string>& rhs) {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) return Status::NotFound("no table: " + table);
  it->second.fds.Add(lhs, rhs);
  return Status::OK();
}

Status Database::Insert(const std::string& table, Row row) {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) return Status::NotFound("no table: " + table);
  return it->second.table->Append(std::move(row));
}

Status Database::CreateOrderedIndex(const std::string& table,
                                    const std::vector<std::string>& columns) {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) return Status::NotFound("no table: " + table);
  Result<size_t> r = it->second.table->BuildOrderedIndex(columns);
  return r.ok() ? Status::OK() : r.status();
}

Status Database::CreateHashIndex(const std::string& table,
                                 const std::vector<std::string>& columns) {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) return Status::NotFound("no table: " + table);
  Result<size_t> r = it->second.table->BuildHashIndex(columns);
  return r.ok() ? Status::OK() : r.status();
}

Result<TablePtr> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  return it->second.table;
}

Result<CatalogEntry> Database::GetEntry(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  return it->second;
}

std::vector<std::pair<std::string, TableSnapshot>> Database::SnapshotTables()
    const {
  std::vector<std::pair<std::string, TableSnapshot>> pins;
  pins.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) {
    pins.emplace_back(name, entry.table->Snapshot());
  }
  return pins;
}

uint64_t Database::CatalogVersionHash() const {
  // FNV-1a over (name, version, rows); map iteration is name-ordered so
  // the hash is deterministic for a given catalog state.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& [name, entry] : tables_) {
    for (char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    mix(entry.table->version());
    mix(entry.table->num_rows());
  }
  return h;
}

Status Database::DropIndexes(const std::string& table) {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) return Status::NotFound("no table: " + table);
  it->second.table->DropIndexes();
  return Status::OK();
}

FdSet Database::DerivedFds(const QueryBlock& block,
                           const Schema& out_schema) {
  FdSet fds;
  if (block.group_by.empty()) {
    if (block.distinct) {
      // DISTINCT output: all columns form a key (trivially, each row is
      // unique), which downstream reasoning can use.
      std::vector<std::string> all;
      for (const Column& c : out_schema.columns()) all.push_back(c.name);
      fds.Add(all, all);
    }
    return fds;
  }
  // If every GROUP BY column is projected, the projected names form a key.
  std::vector<std::string> key;
  for (const ExprPtr& g : block.group_by) {
    bool found = false;
    for (size_t i = 0; i < block.select.size(); ++i) {
      const ExprPtr& e = block.select[i].expr;
      if (e->kind == ExprKind::kColumnRef &&
          e->resolved_index == g->resolved_index) {
        key.push_back(out_schema.column(i).name);
        found = true;
        break;
      }
    }
    if (!found) return fds;  // a grouping column is not visible downstream
  }
  std::vector<std::string> all;
  for (const Column& c : out_schema.columns()) all.push_back(c.name);
  fds.Add(key, all);
  return fds;
}

Result<QueryBlock> Database::BindSelect(
    const ParsedSelect& select,
    const std::map<std::string, CatalogEntry>& scope,
    const std::map<std::string, CatalogEntry>& inline_tables) {
  TableResolver resolver = [this, &scope, &inline_tables](
                               const std::string& name) -> Result<CatalogEntry> {
    std::string key = ToLower(name);
    auto inl = inline_tables.find(key);
    if (inl != inline_tables.end()) return inl->second;
    auto cte = scope.find(key);
    if (cte != scope.end()) return cte->second;
    auto base = tables_.find(key);
    if (base != tables_.end()) return base->second;
    return Status::NotFound("unknown relation: " + name);
  };
  Binder binder(resolver);
  return binder.Bind(select);
}

Result<CatalogEntry> Database::Materialize(
    const ParsedSelect& select,
    const std::map<std::string, CatalogEntry>& scope, bool use_iceberg,
    const IcebergOptions& iceberg_options, const ExecOptions& exec,
    ExecStats* stats, IcebergReport* report) {
  // Materialize FROM-subqueries bottom-up, exposing them as inline tables
  // under their aliases.
  std::map<std::string, CatalogEntry> inline_tables;
  ParsedSelect rewritten = select;
  for (ParsedTableRef& ref : rewritten.from) {
    if (ref.subquery == nullptr) continue;
    ICEBERG_ASSIGN_OR_RETURN(
        CatalogEntry entry,
        Materialize(*ref.subquery, scope, use_iceberg, iceberg_options, exec,
                    stats, report));
    entry.table->SetName(ref.alias);
    std::string key = ToLower(ref.alias);
    if (inline_tables.count(key) > 0) {
      return Status::BindError("duplicate subquery alias: " + ref.alias);
    }
    inline_tables.emplace(key, std::move(entry));
    ref.subquery = nullptr;
    ref.table_name = ref.alias;
  }

  ICEBERG_ASSIGN_OR_RETURN(QueryBlock block,
                           BindSelect(rewritten, scope, inline_tables));
  TablePtr result;
  if (use_iceberg) {
    IcebergOptimizer optimizer(iceberg_options);
    ICEBERG_ASSIGN_OR_RETURN(result, optimizer.Run(block, report));
  } else {
    Executor executor(exec);
    ICEBERG_ASSIGN_OR_RETURN(result, executor.Execute(block, stats));
  }
  result = ApplyOrderAndLimit(block, std::move(result));
  CatalogEntry entry;
  entry.table = std::move(result);
  entry.fds = DerivedFds(block, entry.table->schema());
  return entry;
}

TablePtr Database::ApplyOrderAndLimit(const QueryBlock& block,
                                      TablePtr result) {
  if (block.order_by.empty() &&
      (block.limit < 0 ||
       block.limit >= static_cast<int64_t>(result->num_rows()))) {
    return result;
  }
  std::vector<Row> rows = result->rows();
  if (!block.order_by.empty()) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (const QueryBlock::OrderSpec& spec :
                            block.order_by) {
                         int c = a[spec.output_column].Compare(
                             b[spec.output_column]);
                         if (c != 0) return spec.ascending ? c < 0 : c > 0;
                       }
                       return false;
                     });
  }
  if (block.limit >= 0 &&
      rows.size() > static_cast<size_t>(block.limit)) {
    rows.resize(static_cast<size_t>(block.limit));
  }
  auto sorted = std::make_shared<Table>(result->name(), result->schema());
  for (Row& row : rows) sorted->AppendUnchecked(std::move(row));
  return sorted;
}

Result<TablePtr> Database::Query(const std::string& sql, ExecOptions exec,
                                 ExecStats* stats) {
  // Flight-recorder emission for top-level direct calls. The serving layer
  // opens a QueryLogScope around its Database call (it records the attempt
  // itself, with admission/retry context this layer cannot see), and the
  // scope also suppresses the nested Query() an EXPLAIN ANALYZE statement
  // re-enters with.
  if (!QueryLogEnabled() || QueryLogScope::Active()) {
    return QueryImpl(sql, exec, stats);
  }
  QueryLogScope scope;
  QueryShape shape = ComputeQueryShape(sql);
  ExecStats run_stats;
  int64_t start_us = TraceNowMicros();
  Result<TablePtr> result = QueryImpl(sql, exec, &run_stats);
  int64_t end_us = TraceNowMicros();
  if (stats != nullptr) stats->Accumulate(run_stats);

  QueryRecord rec;
  rec.query_id = QueryLog::NextQueryId();
  rec.iceberg = false;
  rec.shape_hash = shape.shape_hash;
  rec.shape = shape.shape;
  rec.start_us = start_us;
  rec.latency_us = static_cast<uint64_t>(end_us - start_us);
  FillRecordStatus(&rec, result.ok() ? Status::OK() : result.status());
  if (result.ok()) rec.rows_returned = (*result)->num_rows();
  FillRecordStats(&rec, run_stats);
  FillRecordGovernor(&rec, exec.governor.get());
  uint64_t slow_us = SlowQueryThresholdUs();
  if (slow_us != 0 && rec.latency_us >= slow_us && result.ok()) {
    Result<std::string> plan = ExplainBaseline(sql, exec);
    if (plan.ok()) {
      rec.slow_capture = MakeSlowCapture(
          RenderAnalyzeBaseline(run_stats, *plan, MetricsSnapshot(),
                                rec.rows_returned,
                                static_cast<int64_t>(rec.latency_us)),
          start_us, end_us);
    }
  }
  QueryLog::Global().Record(std::move(rec));
  return result;
}

Result<TablePtr> Database::QueryImpl(const std::string& sql, ExecOptions exec,
                                     ExecStats* stats) {
  // Check before parsing so an expired deadline or pre-tripped token never
  // starts work.
  if (exec.governor != nullptr) ICEBERG_RETURN_NOT_OK(exec.governor->Check());
  TraceSpan span("query.baseline", "query");
  ICEBERG_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseSql(sql));
  if (parsed.explain) {
    // ToString() renders the statement without its EXPLAIN prefix.
    std::string inner = parsed.ToString();
    if (parsed.analyze) return ExplainAnalyzeBaseline(inner, exec);
    ICEBERG_ASSIGN_OR_RETURN(std::string plan, ExplainBaseline(inner, exec));
    return AnalyzeTextTable(plan);
  }
  std::map<std::string, CatalogEntry> scope;
  for (const auto& [name, cte] : parsed.ctes) {
    ICEBERG_ASSIGN_OR_RETURN(
        CatalogEntry entry,
        Materialize(*cte, scope, /*use_iceberg=*/false, IcebergOptions(),
                    exec, stats, nullptr));
    entry.table->SetName(name);
    scope.emplace(ToLower(name), std::move(entry));
  }
  ICEBERG_ASSIGN_OR_RETURN(
      CatalogEntry entry,
      Materialize(*parsed.select, scope, /*use_iceberg=*/false,
                  IcebergOptions(), exec, stats, nullptr));
  return entry.table;
}

Result<TablePtr> Database::QueryIceberg(const std::string& sql,
                                        IcebergOptions options,
                                        IcebergReport* report) {
  // See Query(): top-level direct calls emit one flight-recorder record;
  // served and nested (EXPLAIN ANALYZE) calls are scope-suppressed.
  if (!QueryLogEnabled() || QueryLogScope::Active()) {
    return QueryIcebergImpl(sql, options, report);
  }
  QueryLogScope scope;
  QueryShape shape = ComputeQueryShape(sql);
  IcebergReport run_report;
  int64_t start_us = TraceNowMicros();
  Result<TablePtr> result = QueryIcebergImpl(sql, options, &run_report);
  int64_t end_us = TraceNowMicros();

  QueryRecord rec;
  rec.query_id = QueryLog::NextQueryId();
  rec.iceberg = true;
  rec.shape_hash = shape.shape_hash;
  rec.shape = shape.shape;
  rec.start_us = start_us;
  rec.latency_us = static_cast<uint64_t>(end_us - start_us);
  FillRecordStatus(&rec, result.ok() ? Status::OK() : result.status());
  if (result.ok()) rec.rows_returned = (*result)->num_rows();
  FillRecordStats(&rec, run_report);
  FillRecordGovernor(&rec, options.governor.get());
  uint64_t slow_us = SlowQueryThresholdUs();
  if (slow_us != 0 && rec.latency_us >= slow_us && result.ok()) {
    rec.slow_capture = MakeSlowCapture(
        RenderAnalyzeIceberg(run_report, MetricsSnapshot(),
                             rec.rows_returned,
                             static_cast<int64_t>(rec.latency_us)),
        start_us, end_us);
  }
  QueryLog::Global().Record(std::move(rec));
  if (report != nullptr) *report = std::move(run_report);
  return result;
}

Result<TablePtr> Database::QueryIcebergImpl(const std::string& sql,
                                            IcebergOptions options,
                                            IcebergReport* report) {
  if (options.governor != nullptr) {
    ICEBERG_RETURN_NOT_OK(options.governor->Check());
  }
  TraceSpan span("query.iceberg", "query");
  ICEBERG_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseSql(sql));
  if (parsed.explain) {
    std::string inner = parsed.ToString();
    if (parsed.analyze) return ExplainAnalyzeIceberg(inner, options);
    ICEBERG_ASSIGN_OR_RETURN(std::string plan,
                             ExplainIceberg(inner, options));
    return AnalyzeTextTable(plan);
  }
  // Plan-cache eligibility: a trace captures/replays the decisions of
  // exactly one optimized block. Statements with CTEs or FROM-subqueries
  // optimize several blocks against intermediate tables, so the cache is
  // bypassed for them (they still run, just always fully optimized).
  if (options.capture != nullptr || options.replay != nullptr) {
    bool multi_block = !parsed.ctes.empty();
    for (const ParsedTableRef& ref : parsed.select->from) {
      if (ref.subquery != nullptr) multi_block = true;
    }
    if (multi_block) {
      options.capture = nullptr;
      options.replay = nullptr;
      ICEBERG_COUNTER("plan_cache.bypasses")->Increment();
      if (report != nullptr) report->plan_provenance = "bypass";
    }
  }
  std::map<std::string, CatalogEntry> scope;
  for (const auto& [name, cte] : parsed.ctes) {
    ICEBERG_ASSIGN_OR_RETURN(
        CatalogEntry entry,
        Materialize(*cte, scope, /*use_iceberg=*/true, options,
                    options.base_exec, nullptr, report));
    entry.table->SetName(name);
    scope.emplace(ToLower(name), std::move(entry));
  }
  ICEBERG_ASSIGN_OR_RETURN(
      CatalogEntry entry,
      Materialize(*parsed.select, scope, /*use_iceberg=*/true, options,
                  options.base_exec, nullptr, report));
  return entry.table;
}

Result<TablePtr> Database::ExplainAnalyzeBaseline(const std::string& sql,
                                                  ExecOptions exec) {
  ICEBERG_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseSql(sql));
  std::string inner = parsed.ToString();  // strips any EXPLAIN prefix
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  auto start = std::chrono::steady_clock::now();
  ExecStats stats;
  ICEBERG_ASSIGN_OR_RETURN(TablePtr result, Query(inner, exec, &stats));
  int64_t total_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  ICEBERG_ASSIGN_OR_RETURN(std::string plan, ExplainBaseline(inner, exec));
  return AnalyzeTextTable(RenderAnalyzeBaseline(stats, plan, delta,
                                                result->num_rows(),
                                                total_us));
}

Result<TablePtr> Database::ExplainAnalyzeIceberg(const std::string& sql,
                                                 IcebergOptions options) {
  ICEBERG_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseSql(sql));
  std::string inner = parsed.ToString();
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  auto start = std::chrono::steady_clock::now();
  IcebergReport report;
  ICEBERG_ASSIGN_OR_RETURN(TablePtr result,
                           QueryIceberg(inner, options, &report));
  int64_t total_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  return AnalyzeTextTable(RenderAnalyzeIceberg(report, delta,
                                               result->num_rows(),
                                               total_us));
}

Result<std::string> Database::ExplainBaseline(const std::string& sql,
                                              ExecOptions exec) {
  ICEBERG_ASSIGN_OR_RETURN(QueryBlock block, Prepare(sql));
  Executor executor(exec);
  return executor.Explain(block);
}

Result<std::string> Database::ExplainIceberg(const std::string& sql,
                                             IcebergOptions options) {
  ICEBERG_ASSIGN_OR_RETURN(QueryBlock block, Prepare(sql));
  IcebergOptimizer optimizer(options);
  return optimizer.Explain(block);
}

Result<QueryBlock> Database::Prepare(const std::string& sql) {
  ICEBERG_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseSql(sql));
  std::map<std::string, CatalogEntry> scope;
  for (const auto& [name, cte] : parsed.ctes) {
    ICEBERG_ASSIGN_OR_RETURN(
        CatalogEntry entry,
        Materialize(*cte, scope, /*use_iceberg=*/false, IcebergOptions(),
                    ExecOptions(), nullptr, nullptr));
    entry.table->SetName(name);
    scope.emplace(ToLower(name), std::move(entry));
  }
  // Materialize FROM-subqueries of the main block, then bind it.
  std::map<std::string, CatalogEntry> inline_tables;
  ParsedSelect rewritten = *parsed.select;
  for (ParsedTableRef& ref : rewritten.from) {
    if (ref.subquery == nullptr) continue;
    ICEBERG_ASSIGN_OR_RETURN(
        CatalogEntry entry,
        Materialize(*ref.subquery, scope, /*use_iceberg=*/false,
                    IcebergOptions(), ExecOptions(), nullptr, nullptr));
    entry.table->SetName(ref.alias);
    inline_tables.emplace(ToLower(ref.alias), std::move(entry));
    ref.subquery = nullptr;
    ref.table_name = ref.alias;
  }
  return BindSelect(rewritten, scope, inline_tables);
}

}  // namespace iceberg
