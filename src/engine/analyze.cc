#include "src/engine/analyze.h"

#include <cstdio>
#include <vector>

namespace iceberg {

namespace {

std::string Ms(int64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms", static_cast<double>(us) / 1000.0);
  return buf;
}

std::string Pct(size_t part, size_t whole) {
  if (whole == 0) return "0.0%";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                100.0 * static_cast<double>(part) /
                    static_cast<double>(whole));
  return buf;
}

void AppendList(std::string* out, const std::vector<size_t>& v) {
  *out += "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) *out += ",";
    *out += std::to_string(v[i]);
  }
  *out += "]";
}

void AppendList64(std::string* out, const std::vector<int64_t>& v) {
  *out += "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) *out += ",";
    *out += std::to_string(v[i]);
  }
  *out += "]";
}

/// Worker utilization: busy time inside morsel callbacks / slowest worker's
/// busy time, averaged — 100% means perfectly balanced morsel scheduling.
std::string Utilization(const std::vector<int64_t>& busy_us) {
  int64_t max_busy = 0;
  int64_t total = 0;
  for (int64_t b : busy_us) {
    if (b > max_busy) max_busy = b;
    total += b;
  }
  if (max_busy == 0 || busy_us.empty()) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                100.0 * static_cast<double>(total) /
                    (static_cast<double>(max_busy) *
                     static_cast<double>(busy_us.size())));
  return buf;
}

void AppendIndented(std::string* out, const std::string& text,
                    const std::string& indent) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    if (nl > pos) *out += indent + text.substr(pos, nl - pos) + "\n";
    pos = nl + 1;
  }
}

}  // namespace

TablePtr AnalyzeTextTable(const std::string& text) {
  auto table = std::make_shared<Table>(
      "explain", Schema({{"QUERY PLAN", DataType::kString}}));
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    table->AppendUnchecked({Value::Str(text.substr(pos, nl - pos))});
    pos = nl + 1;
  }
  return table;
}

std::string RenderAnalyzeIceberg(const IcebergReport& report,
                                 const MetricsSnapshot& delta,
                                 size_t output_rows, int64_t total_us) {
  const NljpStats& n = report.nljp_stats;
  std::string out;
  out += "Iceberg Query  (actual time=" + Ms(total_us) +
         ", output_rows=" + std::to_string(output_rows) + ")\n";
  out += "  Optimize: infer_fds=" + Ms(report.timing.infer_us) +
         ", apriori_pick=" + Ms(report.timing.apriori_pick_us) +
         ", apriori_apply=" + Ms(report.timing.apriori_apply_us) +
         ", pick_nljp=" + Ms(report.timing.pick_nljp_us);
  if (!report.plan_provenance.empty()) {
    out += "  [plan_cache=" + report.plan_provenance + "]";
  }
  out += "\n";
  for (const std::string& step : report.steps) {
    out += "  decision: " + step + "\n";
  }
  for (const IcebergReport::Reduction& r : report.reductions) {
    out += "  -> AprioriReducer on " + r.alias + "  (rows " +
           std::to_string(r.rows_before) + " -> " +
           std::to_string(r.rows_after) + ", " +
           Pct(r.rows_before - r.rows_after, r.rows_before) + " removed)\n";
  }
  if (report.used_nljp) {
    out += "  -> NLJP  (actual time=" + Ms(report.timing.execute_us) +
           ", bindings=" + std::to_string(n.bindings_total) + ")\n";
    AppendIndented(&out, report.nljp_explain, "       ");
    out += "     memo: hits=" + std::to_string(n.memo_hits) + " (" +
           Pct(n.memo_hits, n.bindings_total) + " of bindings)\n";
    out += "     prune: skipped=" + std::to_string(n.pruned) + " (" +
           Pct(n.pruned, n.bindings_total) + " of bindings), " +
           "subsumption_tests=" + std::to_string(n.prune_tests) + "\n";
    out += "     inner Q_R: evaluations=" +
           std::to_string(n.inner_evaluations) + " (" +
           Pct(n.inner_evaluations, n.bindings_total) + " of bindings)";
    if (n.inner_pairs_examined > 0) {
      out += ", pairs_examined=" + std::to_string(n.inner_pairs_examined);
    }
    out += "\n";
    if (n.inner_batch_rows > 0 || n.inner_chunks_skipped > 0) {
      out += "     vectorized: batch_rows=" +
             std::to_string(n.inner_batch_rows) +
             ", chunks_skipped=" + std::to_string(n.inner_chunks_skipped) +
             "\n";
    }
    if (n.transfer_probes > 0 || n.transfer_passes > 0) {
      out += "     transfer (Q_B): passes=" +
             std::to_string(n.transfer_passes) +
             ", filters=" + std::to_string(n.transfer_filters_built) +
             ", hits=" + std::to_string(n.transfer_hits) + "/" +
             std::to_string(n.transfer_probes) +
             ", eliminated=" + std::to_string(n.transfer_rows_eliminated) +
             " (build=" + Ms(n.transfer_build_ns / 1000) + ")\n";
    }
    out += "     cache: entries=" + std::to_string(n.cache_entries) +
           ", bytes=" + std::to_string(n.cache_bytes) +
           ", evictions=" + std::to_string(n.cache_evictions) +
           ", shed=" + std::to_string(n.cache_shed_entries) + "\n";
    if (n.workers > 1) {
      out += "     workers=" + std::to_string(n.workers) +
             " utilization=" + Utilization(n.busy_us_per_worker) +
             " bindings_per_worker=";
      AppendList(&out, n.bindings_per_worker);
      out += " busy_us_per_worker=";
      AppendList64(&out, n.busy_us_per_worker);
      out += "\n";
    }
    if (n.cancel_checks > 0) {
      out += "     governor: checks=" + std::to_string(n.cancel_checks) +
             ", budget_peak_bytes=" + std::to_string(n.budget_bytes_peak) +
             "\n";
    }
  } else {
    const ExecStats& e = report.exec_stats;
    out += "  -> Baseline Executor  (actual time=" +
           Ms(report.timing.execute_us) +
           ", pairs=" + std::to_string(e.join_pairs_examined) +
           ", rows_joined=" + std::to_string(e.rows_joined) +
           ", groups=" + std::to_string(e.groups_created) + " -> " +
           std::to_string(e.groups_output) + " after HAVING)\n";
    if (!e.level_rows.empty()) {
      out += "     cardinality: actual_rows_per_level=";
      AppendList(&out, e.level_rows);
      out += "\n";
    }
    if (e.batch_rows > 0 || e.chunks_skipped > 0) {
      out += "     vectorized: batch_rows=" + std::to_string(e.batch_rows) +
             ", chunks_skipped=" + std::to_string(e.chunks_skipped) + "\n";
    }
    if (e.transfer_probes > 0 || e.transfer_passes > 0) {
      out += "     transfer: passes=" + std::to_string(e.transfer_passes) +
             ", filters=" + std::to_string(e.transfer_filters_built) +
             ", hits=" + std::to_string(e.transfer_hits) + "/" +
             std::to_string(e.transfer_probes) +
             ", eliminated=" + std::to_string(e.transfer_rows_eliminated) +
             ", chunks_refuted=" +
             std::to_string(e.transfer_chunks_refuted) +
             " (build=" + Ms(e.transfer_build_ns / 1000) + ")\n";
    }
    if (e.workers > 1) {
      out += "     workers=" + std::to_string(e.workers) +
             " utilization=" + Utilization(e.busy_us_per_worker) + "\n";
    }
  }
  for (const std::string& d : report.degradations) {
    out += "  degraded: " + d + "\n";
  }
  out += "metrics: " + delta.ToJson() + "\n";
  return out;
}

std::string RenderAnalyzeBaseline(const ExecStats& stats,
                                  const std::string& plan,
                                  const MetricsSnapshot& delta,
                                  size_t output_rows, int64_t total_us) {
  std::string out;
  out += "Baseline Query  (actual time=" + Ms(total_us) +
         ", output_rows=" + std::to_string(output_rows) + ")\n";
  AppendIndented(&out, plan, "  ");
  out += "  join: pairs_examined=" + std::to_string(stats.join_pairs_examined) +
         ", rows_joined=" + std::to_string(stats.rows_joined) +
         ", index_probes=" + std::to_string(stats.index_probes) + "\n";
  if (!stats.level_rows.empty()) {
    // Actual cumulative rows surviving each pipeline level; the plan text
    // above carries the estimator's est_rows= per level for comparison.
    out += "  cardinality: actual_rows_per_level=";
    AppendList(&out, stats.level_rows);
    out += "\n";
  }
  if (stats.batch_rows > 0 || stats.chunks_skipped > 0) {
    out += "  vectorized: batch_rows=" + std::to_string(stats.batch_rows) +
           ", chunks_skipped=" + std::to_string(stats.chunks_skipped) + "\n";
  }
  if (stats.transfer_probes > 0 || stats.transfer_passes > 0) {
    out += "  transfer: passes=" + std::to_string(stats.transfer_passes) +
           ", filters=" + std::to_string(stats.transfer_filters_built) +
           ", hits=" + std::to_string(stats.transfer_hits) + "/" +
           std::to_string(stats.transfer_probes) +
           ", eliminated=" + std::to_string(stats.transfer_rows_eliminated) +
           ", chunks_refuted=" + std::to_string(stats.transfer_chunks_refuted) +
           " (build=" + Ms(stats.transfer_build_ns / 1000) + ")\n";
  }
  out += "  aggregate: groups=" + std::to_string(stats.groups_created) +
         " -> " + std::to_string(stats.groups_output) +
         " after HAVING  (finalize time=" + Ms(stats.finalize_us) + ")\n";
  if (stats.workers > 1) {
    out += "  workers=" + std::to_string(stats.workers) +
           " utilization=" + Utilization(stats.busy_us_per_worker) +
           " rows_joined_per_worker=";
    AppendList(&out, stats.rows_joined_per_worker);
    out += " busy_us_per_worker=";
    AppendList64(&out, stats.busy_us_per_worker);
    out += "\n";
  }
  if (stats.cancel_checks > 0) {
    out += "  governor: checks=" + std::to_string(stats.cancel_checks) +
           ", budget_peak_bytes=" + std::to_string(stats.budget_bytes_peak) +
           "\n";
  }
  out += "metrics: " + delta.ToJson() + "\n";
  return out;
}

}  // namespace iceberg
