#ifndef SMARTICEBERG_ENGINE_QUERY_RECORD_H_
#define SMARTICEBERG_ENGINE_QUERY_RECORD_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/exec/exec_options.h"
#include "src/exec/governor.h"
#include "src/obs/query_log.h"
#include "src/optimizer/iceberg_optimizer.h"

namespace iceberg {

/// Assembly of flight-recorder QueryRecords from the engine's run-local
/// stats blocks — the same sources EXPLAIN ANALYZE renders, so a record's
/// numbers reconcile exactly with the analyze tree and the metrics delta
/// of its statement. Lives in the engine layer (not obs) because the
/// sources (ExecStats, IcebergReport, QueryGovernor) are engine types the
/// observability library must not depend on.

/// Status name / message / retryability.
void FillRecordStatus(QueryRecord* rec, const Status& st);

/// Governor verdict ("ok" or the poison status name), checks, peak bytes,
/// shed entries. No-op when `governor` is null (record keeps "" verdict).
void FillRecordGovernor(QueryRecord* rec, const QueryGovernor* governor);

/// Transfer-schedule fields from a baseline run's ExecStats.
void FillRecordStats(QueryRecord* rec, const ExecStats& stats);

/// Transfer-schedule fields from an iceberg run: the executor's ExecStats
/// plus the NLJP Q_B pipeline's share (EXPLAIN ANALYZE shows them as two
/// tree lines; the record stores the statement total), and the plan-cache
/// provenance string.
void FillRecordStats(QueryRecord* rec, const IcebergReport& report);

/// Builds the slow-query capture payload: the rendered EXPLAIN ANALYZE
/// tree followed by the trace-span slice overlapping [start_us, end_us]
/// (Chrome-trace JSON; omitted when tracing is disabled or the slice is
/// empty). The tree is rendered by the caller from run-local stats — no
/// re-execution and no registry snapshots on the query path.
std::shared_ptr<const std::string> MakeSlowCapture(
    const std::string& analyze_tree, int64_t start_us, int64_t end_us);

}  // namespace iceberg

#endif  // SMARTICEBERG_ENGINE_QUERY_RECORD_H_
