#include "src/engine/query_record.h"

#include <vector>

#include "src/obs/trace.h"

namespace iceberg {

void FillRecordStatus(QueryRecord* rec, const Status& st) {
  rec->status = StatusCodeName(st.code());
  rec->error = st.message();
  rec->retryable = st.IsRetryable();
}

void FillRecordGovernor(QueryRecord* rec, const QueryGovernor* governor) {
  if (governor == nullptr) return;
  Status poison = governor->poison_status();
  rec->governor_verdict = poison.ok() ? "ok" : StatusCodeName(poison.code());
  rec->governor_checks = governor->checks_performed();
  rec->governor_peak_bytes = governor->bytes_peak();
  rec->governor_shed_entries = governor->cache_shed_entries();
}

void FillRecordStats(QueryRecord* rec, const ExecStats& stats) {
  rec->transfer_passes += stats.transfer_passes;
  rec->transfer_filters_built += stats.transfer_filters_built;
  rec->transfer_rows_eliminated += stats.transfer_rows_eliminated;
  rec->transfer_filter_bytes += stats.transfer_filter_bytes;
}

void FillRecordStats(QueryRecord* rec, const IcebergReport& report) {
  FillRecordStats(rec, report.exec_stats);
  const NljpStats& n = report.nljp_stats;
  rec->transfer_passes += n.transfer_passes;
  rec->transfer_filters_built += n.transfer_filters_built;
  rec->transfer_rows_eliminated += n.transfer_rows_eliminated;
  rec->transfer_filter_bytes += n.transfer_filter_bytes;
  rec->plan_provenance = report.plan_provenance;
}

std::shared_ptr<const std::string> MakeSlowCapture(
    const std::string& analyze_tree, int64_t start_us, int64_t end_us) {
  std::string capture = "=== slow query capture ===\n";
  capture += analyze_tree;
  if (capture.back() != '\n') capture += '\n';
  if (TraceEnabled()) {
    std::vector<TraceEvent> slice = SnapshotTraceRange(start_us, end_us);
    if (!slice.empty()) {
      capture += "--- trace slice [" + std::to_string(start_us) + "us, " +
                 std::to_string(end_us) + "us] (" +
                 std::to_string(slice.size()) + " spans) ---\n";
      capture += TraceToChromeJson(slice);
      capture += '\n';
    }
  }
  return std::make_shared<const std::string>(std::move(capture));
}

}  // namespace iceberg
