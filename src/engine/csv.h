#ifndef SMARTICEBERG_ENGINE_CSV_H_
#define SMARTICEBERG_ENGINE_CSV_H_

#include <iosfwd>
#include <string>

#include "src/common/status.h"
#include "src/engine/database.h"

namespace iceberg {

/// CSV options: comma-separated, first line is the header. Fields are
/// parsed according to the target table's column types; empty fields become
/// NULL. Quoting supports double quotes with "" escapes.
struct CsvOptions {
  char delimiter = ',';
  bool header = true;
};

/// Parses CSV text into an existing table (columns are matched by header
/// name when present, by position otherwise).
Status LoadCsv(Database* db, const std::string& table,
               std::istream& input, const CsvOptions& options = CsvOptions());

/// Convenience: load from a file path.
Status LoadCsvFile(Database* db, const std::string& table,
                   const std::string& path,
                   const CsvOptions& options = CsvOptions());

/// Writes a table (or query result) as CSV with a header line.
Status WriteCsv(const Table& table, std::ostream& output,
                const CsvOptions& options = CsvOptions());

/// Renders a result table as aligned text (for the shell example).
std::string FormatTable(const Table& table, size_t max_rows = 50);

}  // namespace iceberg

#endif  // SMARTICEBERG_ENGINE_CSV_H_
