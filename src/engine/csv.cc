#include "src/engine/csv.h"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace iceberg {

namespace {

/// Splits one CSV record honoring double-quote escaping.
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

Result<Value> ParseField(const std::string& text, DataType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case DataType::kInt64: {
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("not an integer: '" + text + "'");
      }
      return Value::Int(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("not a number: '" + text + "'");
      }
      return Value::Double(v);
    }
    default:
      return Value::Str(text);
  }
}

std::string EscapeField(const std::string& text, char delimiter) {
  bool needs_quotes = text.find(delimiter) != std::string::npos ||
                      text.find('"') != std::string::npos ||
                      text.find('\n') != std::string::npos;
  if (!needs_quotes) return text;
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Status LoadCsv(Database* db, const std::string& table, std::istream& input,
               const CsvOptions& options) {
  ICEBERG_ASSIGN_OR_RETURN(TablePtr target, db->GetTable(table));
  const Schema& schema = target->schema();

  std::string line;
  // Column order: identity by default, permuted by header when present.
  std::vector<size_t> column_of_field;
  if (options.header) {
    if (!std::getline(input, line)) {
      return Status::InvalidArgument("empty CSV input");
    }
    for (const std::string& name : SplitCsvLine(line, options.delimiter)) {
      ICEBERG_ASSIGN_OR_RETURN(size_t idx, schema.GetColumnIndex(name));
      column_of_field.push_back(idx);
    }
  } else {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      column_of_field.push_back(i);
    }
  }

  size_t line_number = options.header ? 1 : 0;
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.delimiter);
    if (fields.size() != column_of_field.size()) {
      ICEBERG_LOG(WARN) << "csv load into '" << table << "' aborted at line "
                        << line_number << ": expected "
                        << column_of_field.size() << " fields, got "
                        << fields.size();
      return Status::ParseError(
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(column_of_field.size()) + " fields, got " +
          std::to_string(fields.size()) + " in \"" + line + "\"");
    }
    Row row(schema.num_columns(), Value::Null());
    for (size_t f = 0; f < fields.size(); ++f) {
      size_t col = column_of_field[f];
      Result<Value> v = ParseField(fields[f], schema.column(col).type);
      if (!v.ok()) {
        ICEBERG_LOG(WARN) << "csv load into '" << table << "' aborted at line "
                          << line_number << ", column "
                          << schema.column(col).name << ": "
                          << v.status().message();
        return Status::ParseError(
            "line " + std::to_string(line_number) + ", field " +
            std::to_string(f + 1) + " (column " + schema.column(col).name +
            "): " + v.status().message());
      }
      row[col] = std::move(*v);
    }
    ICEBERG_RETURN_NOT_OK(db->Insert(table, std::move(row)));
  }
  return Status::OK();
}

Status LoadCsvFile(Database* db, const std::string& table,
                   const std::string& path, const CsvOptions& options) {
  std::ifstream input(path);
  if (!input.is_open()) {
    return Status::NotFound("cannot open: " + path);
  }
  return LoadCsv(db, table, input, options);
}

Status WriteCsv(const Table& table, std::ostream& output,
                const CsvOptions& options) {
  const Schema& schema = table.schema();
  if (options.header) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      if (i > 0) output << options.delimiter;
      output << EscapeField(schema.column(i).name, options.delimiter);
    }
    output << "\n";
  }
  for (const Row& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) output << options.delimiter;
      if (row[i].is_null()) {
        // empty field
      } else if (row[i].is_string()) {
        output << EscapeField(row[i].AsString(), options.delimiter);
      } else {
        output << row[i].ToString();
      }
    }
    output << "\n";
  }
  return Status::OK();
}

std::string FormatTable(const Table& table, size_t max_rows) {
  const Schema& schema = table.schema();
  std::vector<size_t> widths(schema.num_columns());
  auto cell = [](const Value& v) {
    return v.is_string() ? v.AsString() : v.ToString();
  };
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    widths[i] = schema.column(i).name.size();
  }
  size_t shown = std::min(max_rows, table.num_rows());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      widths[i] = std::max(widths[i], cell(table.row(r)[i]).size());
    }
  }
  std::ostringstream out;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out << " | ";
    out << schema.column(i).name
        << std::string(widths[i] - schema.column(i).name.size(), ' ');
  }
  out << "\n";
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out << "-+-";
    out << std::string(widths[i], '-');
  }
  out << "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      if (i > 0) out << " | ";
      std::string text = cell(table.row(r)[i]);
      out << text << std::string(widths[i] - text.size(), ' ');
    }
    out << "\n";
  }
  if (table.num_rows() > shown) {
    out << "... (" << table.num_rows() - shown << " more rows)\n";
  }
  out << "(" << table.num_rows() << " rows)\n";
  return out.str();
}

}  // namespace iceberg
