#ifndef SMARTICEBERG_ENGINE_ANALYZE_H_
#define SMARTICEBERG_ENGINE_ANALYZE_H_

#include <string>

#include "src/exec/exec_options.h"
#include "src/obs/metrics.h"
#include "src/optimizer/iceberg_optimizer.h"
#include "src/storage/table.h"

namespace iceberg {

/// Rendering of EXPLAIN ANALYZE output (PostgreSQL-style: the annotated
/// plan is returned as rows of a one-column "QUERY PLAN" table).
///
/// The numbers in the tree come from the same run-local stats blocks that
/// Executor / NljpOperator publish into the global metrics registry, and
/// `delta` is the registry diff across exactly this statement — so the tree
/// and the trailing `metrics:` line always reconcile, at any thread count.

/// Wraps multi-line text as a one-column "QUERY PLAN" table.
TablePtr AnalyzeTextTable(const std::string& text);

/// Annotated tree for an iceberg-optimized run.
std::string RenderAnalyzeIceberg(const IcebergReport& report,
                                 const MetricsSnapshot& delta,
                                 size_t output_rows, int64_t total_us);

/// Annotated tree for a baseline run; `plan` is Executor::Explain's output.
std::string RenderAnalyzeBaseline(const ExecStats& stats,
                                  const std::string& plan,
                                  const MetricsSnapshot& delta,
                                  size_t output_rows, int64_t total_us);

}  // namespace iceberg

#endif  // SMARTICEBERG_ENGINE_ANALYZE_H_
