#ifndef SMARTICEBERG_PARSER_TOKEN_H_
#define SMARTICEBERG_PARSER_TOKEN_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace iceberg {

enum class TokenKind {
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kSymbol,  // ( ) , . * = <> < <= > >= + - / ;
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // keywords are upper-cased, identifiers as written
  size_t position = 0;  // byte offset for error messages
};

/// Lexes a SQL string into tokens. Keywords are recognized
/// case-insensitively. Comments ("--" to end of line) are skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// True if `word` (upper-case) is a reserved SQL keyword in our subset.
bool IsKeyword(const std::string& upper_word);

}  // namespace iceberg

#endif  // SMARTICEBERG_PARSER_TOKEN_H_
