#ifndef SMARTICEBERG_PARSER_AST_H_
#define SMARTICEBERG_PARSER_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/expr/expr.h"

namespace iceberg {

struct ParsedSelect;
using ParsedSelectPtr = std::shared_ptr<ParsedSelect>;

/// One entry in a FROM clause: either a named relation (base table or CTE)
/// or an inline subquery, with an optional alias.
struct ParsedTableRef {
  std::string table_name;     // empty when subquery is set
  ParsedSelectPtr subquery;   // nullptr for named relations
  std::string alias;          // defaults to table_name when empty
};

struct ParsedSelectItem {
  ExprPtr expr;
  std::string alias;  // may be empty
};

struct ParsedOrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// A single SELECT block of our SQL subset:
///   SELECT [DISTINCT] items FROM refs [WHERE e] [GROUP BY es] [HAVING e]
struct ParsedSelect {
  bool distinct = false;
  std::vector<ParsedSelectItem> items;
  std::vector<ParsedTableRef> from;
  ExprPtr where;                 // nullptr if absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;                // nullptr if absent
  std::vector<ParsedOrderItem> order_by;
  int64_t limit = -1;            // -1 = no LIMIT

  std::string ToString() const;
};

/// A full statement: optional WITH clauses followed by a main SELECT,
/// optionally prefixed by EXPLAIN / EXPLAIN ANALYZE.
struct ParsedQuery {
  std::vector<std::pair<std::string, ParsedSelectPtr>> ctes;
  ParsedSelectPtr select;
  /// EXPLAIN <query>: render the plan instead of executing.
  bool explain = false;
  /// EXPLAIN ANALYZE <query>: execute, then render the plan annotated
  /// with measured wall times / row counts / cache effectiveness.
  bool analyze = false;

  /// Renders the query itself; the EXPLAIN/ANALYZE prefix is NOT included,
  /// so the rendering round-trips as a plain executable statement.
  std::string ToString() const;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_PARSER_AST_H_
