#include "src/parser/token.h"

#include <cctype>
#include <set>

#include "src/common/string_util.h"

namespace iceberg {

bool IsKeyword(const std::string& upper_word) {
  static const std::set<std::string>* const kKeywords =
      new std::set<std::string>({
          "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",    "HAVING",
          "WITH",   "AS",    "AND",    "OR",     "NOT",   "IN",
          "COUNT",  "SUM",   "MIN",    "MAX",    "AVG",   "DISTINCT",
          "ORDER",  "ASC",   "DESC",   "LIMIT",  "NULL",  "TRUE",   "FALSE",
          "EXPLAIN", "ANALYZE",
      });
  return kKeywords->count(upper_word) > 0;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tokens.push_back({TokenKind::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenKind::kIdentifier, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        // Distinguish "1.5" from "t.col" — a dot followed by a digit is a
        // decimal point.
        if (i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
          is_double = true;
          ++i;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
            ++i;
          }
        }
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
          is_double = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
            ++i;
          }
        }
      }
      tokens.push_back({is_double ? TokenKind::kDoubleLiteral
                                  : TokenKind::kIntLiteral,
                        sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool terminated = false;
      while (i < n) {
        if (sql[i] == '\'') {
          // A doubled quote inside a string literal is an escaped quote.
          if (i + 1 < n && sql[i + 1] == '\'') {
            text += '\'';
            i += 2;
            continue;
          }
          terminated = true;
          ++i;  // closing quote
          break;
        }
        text += sql[i];
        ++i;
      }
      if (!terminated) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenKind::kStringLiteral, text, start});
      continue;
    }
    // Multi-char symbols first.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tokens.push_back(
            {TokenKind::kSymbol, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "()*,.;=<>+-/";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace iceberg
