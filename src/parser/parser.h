#ifndef SMARTICEBERG_PARSER_PARSER_H_
#define SMARTICEBERG_PARSER_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/parser/ast.h"

namespace iceberg {

/// Parses one SQL statement of the supported subset:
///
///   [WITH name AS (select) [, ...]]
///   SELECT [DISTINCT] expr [AS alias] [, ...]
///   FROM table [alias] | (select) alias [, ...]
///   [WHERE predicate]
///   [GROUP BY expr [, ...]]
///   [HAVING predicate]
///
/// Expressions support AND/OR/NOT, comparisons (= <> < <= > >=),
/// + - * /, parentheses, qualified column refs (t.col), numeric and string
/// literals, NULL/TRUE/FALSE, and the aggregates COUNT(*), COUNT(x),
/// COUNT(DISTINCT x), SUM, MIN, MAX, AVG.
Result<ParsedQuery> ParseSql(const std::string& sql);

/// Parses a standalone scalar/boolean expression (used by tests).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace iceberg

#endif  // SMARTICEBERG_PARSER_PARSER_H_
