#include "src/parser/parser.h"

#include <cstdlib>

#include "src/common/string_util.h"
#include "src/parser/token.h"

namespace iceberg {

namespace {

/// Recursive-descent parser over the token stream. All Parse* methods
/// return Result and never throw.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> ParseQuery() {
    ParsedQuery query;
    if (PeekKeyword("EXPLAIN")) {
      Advance();
      query.explain = true;
      if (PeekKeyword("ANALYZE")) {
        Advance();
        query.analyze = true;
      }
    }
    if (PeekKeyword("WITH")) {
      Advance();
      while (true) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected CTE name after WITH");
        }
        std::string name = Advance().text;
        ICEBERG_RETURN_NOT_OK(ExpectKeyword("AS"));
        ICEBERG_RETURN_NOT_OK(ExpectSymbol("("));
        ICEBERG_ASSIGN_OR_RETURN(ParsedSelectPtr cte, ParseSelect());
        ICEBERG_RETURN_NOT_OK(ExpectSymbol(")"));
        query.ctes.emplace_back(std::move(name), std::move(cte));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    ICEBERG_ASSIGN_OR_RETURN(query.select, ParseSelect());
    if (PeekSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input: '" + Peek().text + "'");
    }
    return query;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().kind != TokenKind::kEnd) {
      return Status::ParseError("unexpected trailing input: '" +
                                Peek().text + "'");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  Token Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kKeyword && t.text == kw;
  }
  bool PeekSymbol(const std::string& s, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kSymbol && t.text == s;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) {
      return Status::ParseError("expected " + kw + " but found '" +
                                Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!PeekSymbol(s)) {
      return Status::ParseError("expected '" + s + "' but found '" +
                                Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " (at offset " +
                              std::to_string(Peek().position) + ")");
  }

  Result<ParsedSelectPtr> ParseSelect() {
    ICEBERG_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto select = std::make_shared<ParsedSelect>();
    if (PeekKeyword("DISTINCT")) {
      Advance();
      select->distinct = true;
    }
    // Select items.
    while (true) {
      ParsedSelectItem item;
      ICEBERG_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (PeekKeyword("AS")) {
        Advance();
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().kind == TokenKind::kIdentifier) {
        item.alias = Advance().text;
      }
      select->items.push_back(std::move(item));
      if (PeekSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    // FROM.
    ICEBERG_RETURN_NOT_OK(ExpectKeyword("FROM"));
    while (true) {
      ParsedTableRef ref;
      if (PeekSymbol("(")) {
        Advance();
        ICEBERG_ASSIGN_OR_RETURN(ref.subquery, ParseSelect());
        ICEBERG_RETURN_NOT_OK(ExpectSymbol(")"));
      } else if (Peek().kind == TokenKind::kIdentifier) {
        ref.table_name = Advance().text;
      } else {
        return Error("expected table name or subquery in FROM");
      }
      if (PeekKeyword("AS")) {
        Advance();
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected alias after AS");
        }
        ref.alias = Advance().text;
      } else if (Peek().kind == TokenKind::kIdentifier) {
        ref.alias = Advance().text;
      }
      if (ref.alias.empty()) {
        if (ref.table_name.empty()) {
          return Error("subquery in FROM requires an alias");
        }
        ref.alias = ref.table_name;
      }
      select->from.push_back(std::move(ref));
      if (PeekSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    // WHERE.
    if (PeekKeyword("WHERE")) {
      Advance();
      ICEBERG_ASSIGN_OR_RETURN(select->where, ParseExpr());
    }
    // GROUP BY.
    if (PeekKeyword("GROUP")) {
      Advance();
      ICEBERG_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        ICEBERG_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        select->group_by.push_back(std::move(e));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    // HAVING.
    if (PeekKeyword("HAVING")) {
      Advance();
      ICEBERG_ASSIGN_OR_RETURN(select->having, ParseExpr());
    }
    // ORDER BY.
    if (PeekKeyword("ORDER")) {
      Advance();
      ICEBERG_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        ParsedOrderItem item;
        ICEBERG_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (PeekKeyword("ASC")) {
          Advance();
        } else if (PeekKeyword("DESC")) {
          Advance();
          item.ascending = false;
        }
        select->order_by.push_back(std::move(item));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    // LIMIT.
    if (PeekKeyword("LIMIT")) {
      Advance();
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("expected integer after LIMIT");
      }
      select->limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
    }
    return select;
  }

  // Expression grammar: or_expr.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      ICEBERG_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Bin(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      ICEBERG_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Bin(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("NOT")) {
      Advance();
      ICEBERG_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Not(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    BinaryOp op;
    if (PeekSymbol("=")) {
      op = BinaryOp::kEq;
    } else if (PeekSymbol("<>")) {
      op = BinaryOp::kNe;
    } else if (PeekSymbol("<=")) {
      op = BinaryOp::kLe;
    } else if (PeekSymbol(">=")) {
      op = BinaryOp::kGe;
    } else if (PeekSymbol("<")) {
      op = BinaryOp::kLt;
    } else if (PeekSymbol(">")) {
      op = BinaryOp::kGt;
    } else {
      return left;
    }
    Advance();
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return Bin(op, std::move(left), std::move(right));
  }

  Result<ExprPtr> ParseAdditive() {
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      BinaryOp op = PeekSymbol("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      ICEBERG_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Bin(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (PeekSymbol("*") || PeekSymbol("/")) {
      BinaryOp op = PeekSymbol("*") ? BinaryOp::kMul : BinaryOp::kDiv;
      Advance();
      ICEBERG_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Bin(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (PeekSymbol("-")) {
      Advance();
      ICEBERG_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      if (e->kind == ExprKind::kLiteral && e->literal.is_int()) {
        return LitInt(-e->literal.AsInt());
      }
      if (e->kind == ExprKind::kLiteral && e->literal.is_double()) {
        return LitDouble(-e->literal.AsDouble());
      }
      return Neg(std::move(e));
    }
    if (PeekSymbol("+")) Advance();
    return ParsePrimary();
  }

  Result<ExprPtr> ParseAggregate(const std::string& func_name) {
    ICEBERG_RETURN_NOT_OK(ExpectSymbol("("));
    AggFunc func;
    bool distinct = false;
    if (func_name == "COUNT") {
      if (PeekSymbol("*")) {
        Advance();
        ICEBERG_RETURN_NOT_OK(ExpectSymbol(")"));
        return Agg(AggFunc::kCountStar, nullptr);
      }
      if (PeekKeyword("DISTINCT")) {
        Advance();
        distinct = true;
      }
      func = distinct ? AggFunc::kCountDistinct : AggFunc::kCount;
    } else if (func_name == "SUM") {
      func = AggFunc::kSum;
    } else if (func_name == "MIN") {
      func = AggFunc::kMin;
    } else if (func_name == "MAX") {
      func = AggFunc::kMax;
    } else {
      func = AggFunc::kAvg;
    }
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    ICEBERG_RETURN_NOT_OK(ExpectSymbol(")"));
    // COUNT(1) is COUNT(*) in our engine (the constant is never NULL).
    if (func == AggFunc::kCount && arg->kind == ExprKind::kLiteral &&
        !arg->literal.is_null()) {
      return Agg(AggFunc::kCountStar, nullptr);
    }
    return Agg(func, std::move(arg));
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kIntLiteral) {
      int64_t v = std::strtoll(Advance().text.c_str(), nullptr, 10);
      return LitInt(v);
    }
    if (t.kind == TokenKind::kDoubleLiteral) {
      double v = std::strtod(Advance().text.c_str(), nullptr);
      return LitDouble(v);
    }
    if (t.kind == TokenKind::kStringLiteral) {
      return Lit(Value::Str(Advance().text));
    }
    if (t.kind == TokenKind::kKeyword) {
      if (t.text == "NULL") {
        Advance();
        return Lit(Value::Null());
      }
      if (t.text == "TRUE") {
        Advance();
        return Lit(Value::Bool(true));
      }
      if (t.text == "FALSE") {
        Advance();
        return Lit(Value::Bool(false));
      }
      if (t.text == "COUNT" || t.text == "SUM" || t.text == "MIN" ||
          t.text == "MAX" || t.text == "AVG") {
        std::string func = Advance().text;
        return ParseAggregate(func);
      }
      return Error("unexpected keyword '" + t.text + "' in expression");
    }
    if (t.kind == TokenKind::kIdentifier) {
      std::string first = Advance().text;
      if (PeekSymbol(".")) {
        Advance();
        if (Peek().kind != TokenKind::kIdentifier &&
            Peek().kind != TokenKind::kKeyword) {
          return Error("expected column name after '.'");
        }
        std::string second = Advance().text;
        return Col(std::move(first), std::move(second));
      }
      return Col(std::move(first));
    }
    if (t.kind == TokenKind::kSymbol && t.text == "(") {
      Advance();
      ICEBERG_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      ICEBERG_RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }
    return Error("unexpected token '" + t.text + "' in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseSql(const std::string& sql) {
  ICEBERG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  ICEBERG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

std::string ParsedSelect::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    if (from[i].subquery != nullptr) {
      out += "(" + from[i].subquery->ToString() + ")";
    } else {
      out += from[i].table_name;
    }
    if (!from[i].alias.empty() && from[i].alias != from[i].table_name) {
      out += " " + from[i].alias;
    }
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

std::string ParsedQuery::ToString() const {
  std::string out;
  if (!ctes.empty()) {
    out += "WITH ";
    for (size_t i = 0; i < ctes.size(); ++i) {
      if (i > 0) out += ", ";
      out += ctes[i].first + " AS (" + ctes[i].second->ToString() + ")";
    }
    out += " ";
  }
  out += select->ToString();
  return out;
}

}  // namespace iceberg
