#ifndef SMARTICEBERG_WORKLOAD_BASKET_H_
#define SMARTICEBERG_WORKLOAD_BASKET_H_

#include <cstdint>

#include "src/engine/database.h"
#include "src/storage/table.h"

namespace iceberg {

/// Market-basket generator for the frequent-itemset queries of Listing 1.
/// Item popularity is Zipf-distributed and a configurable number of item
/// pairs are "planted" to co-occur frequently, so the iceberg query has a
/// small, known-to-be-nonempty answer.
struct BasketConfig {
  size_t num_baskets = 20000;
  size_t num_items = 2000;
  size_t min_basket_size = 2;
  size_t max_basket_size = 8;
  size_t planted_pairs = 15;     // pairs forced to co-occur often
  size_t planted_support = 60;   // co-occurrences per planted pair
  double zipf_skew = 1.1;
  uint64_t seed = 7;
};

/// Builds basket(bid, item) with key (bid, item): one row per item
/// occurrence; an item appears at most once per basket.
TablePtr MakeBaskets(const BasketConfig& config);

/// Registers `basket` with its key FD and the indexes the queries use.
Status RegisterBaskets(Database* db, const BasketConfig& config);

}  // namespace iceberg

#endif  // SMARTICEBERG_WORKLOAD_BASKET_H_
