#ifndef SMARTICEBERG_WORKLOAD_BASEBALL_H_
#define SMARTICEBERG_WORKLOAD_BASEBALL_H_

#include <cstdint>

#include "src/engine/database.h"
#include "src/storage/table.h"

namespace iceberg {

/// Synthetic stand-in for the Sean Lahman MLB season-statistics archive the
/// paper evaluates on (3x10^5 rows of per-player-season performance
/// records). The generator reproduces the distributional property the
/// paper's Fig. 2 highlights: different attribute pairings have very
/// different dominance densities —
///   (hits, hruns) are positively correlated (strong hitters excel at
///     both), so few records dominate many others and a k-skyband returns
///     a small fraction;
///   (h2, sb) trade off against each other (power hitters steal fewer
///     bases), producing a broad pareto frontier and a denser skyband.
struct BaseballConfig {
  size_t num_rows = 300000;
  uint64_t seed = 42;
  size_t num_players = 12000;
  int num_years = 30;
  int num_rounds = 2;     // season halves
  int num_teams = 30;
  /// Divides every statistic by this factor. The paper's full dataset has
  /// ~18 records per (hits, hruns) cell; benchmarks at reduced row counts
  /// use granularity > 1 to reproduce that duplicate density (which is
  /// what makes memoization effective, Fig. 1 Q1-Q3).
  int stat_granularity = 1;
};

/// Builds the pivoted table
///   score(pid, year, round, teamid, hits, hruns, h2, sb)
/// with key (pid, year, round). All statistics are non-negative integers.
TablePtr MakeBaseballScores(const BaseballConfig& config);

/// Builds the "unpivoted" organization used by the paper's *complex*
/// queries:
///   product(id, category, attr, val)
/// where id identifies a (player, year, round) record of `scores`,
/// category buckets records (id -> category holds), and each of the four
/// statistics becomes one (attr, val) row. `max_base_rows` limits how many
/// score rows are unpivoted (the paper caps this workload at 2x10^5 rows).
TablePtr MakeUnpivotedProduct(const Table& scores, size_t max_base_rows,
                              int num_categories = 25);

/// Registers `score` (and FDs/indexes matching the paper's setup: primary
/// key plus secondary B-tree indexes on the compared attribute pairs) in
/// the database.
Status RegisterBaseball(Database* db, const BaseballConfig& config);

/// Registers the unpivoted `product` table with key (id, attr), the FD
/// id -> category, and the paper's index configuration.
Status RegisterProduct(Database* db, const BaseballConfig& config,
                       size_t max_base_rows);

}  // namespace iceberg

#endif  // SMARTICEBERG_WORKLOAD_BASEBALL_H_
