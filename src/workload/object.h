#ifndef SMARTICEBERG_WORKLOAD_OBJECT_H_
#define SMARTICEBERG_WORKLOAD_OBJECT_H_

#include <cstdint>

#include "src/engine/database.h"
#include "src/storage/table.h"

namespace iceberg {

/// Point distributions standard in the skyline/skyband literature.
enum class PointDistribution {
  kIndependent,     // x, y uniform and independent
  kCorrelated,      // good on one dimension implies good on the other
  kAnticorrelated,  // dimensions trade off -> broad pareto frontier
};

struct ObjectConfig {
  size_t num_objects = 10000;
  PointDistribution distribution = PointDistribution::kIndependent;
  int64_t domain = 1000;  // coordinates in [0, domain)
  uint64_t seed = 11;
};

/// Builds object(id, x, y) with key (id) — the Listing-2 relation.
TablePtr MakeObjects(const ObjectConfig& config);

/// Registers `object` with its key FD and a B-tree index on (x, y).
Status RegisterObjects(Database* db, const ObjectConfig& config);

}  // namespace iceberg

#endif  // SMARTICEBERG_WORKLOAD_OBJECT_H_
