#include "src/workload/baseball.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace iceberg {

TablePtr MakeBaseballScores(const BaseballConfig& config) {
  Schema schema({{"pid", DataType::kInt64},
                 {"year", DataType::kInt64},
                 {"round", DataType::kInt64},
                 {"teamid", DataType::kInt64},
                 {"hits", DataType::kInt64},
                 {"hruns", DataType::kInt64},
                 {"h2", DataType::kInt64},
                 {"sb", DataType::kInt64}});
  auto table = std::make_shared<Table>("score", schema);

  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 1.0);

  // Latent per-player skill and speed; a player keeps them across seasons
  // (with drift), which creates the duplicate (hits, hruns) pairs that make
  // memoization pay off.
  std::vector<double> skill(config.num_players);
  std::vector<double> speed(config.num_players);
  std::vector<int> team(config.num_players);
  for (size_t p = 0; p < config.num_players; ++p) {
    skill[p] = uniform(rng);
    speed[p] = uniform(rng);
    team[p] = static_cast<int>(rng() % static_cast<uint64_t>(config.num_teams));
  }

  const int granularity = std::max(1, config.stat_granularity);
  auto clamp_stat = [granularity](double v, int lo, int hi) {
    int x = static_cast<int>(std::lround(v));
    return std::max(lo, std::min(hi, x)) / granularity;
  };

  size_t emitted = 0;
  int year = 0;
  while (emitted < config.num_rows) {
    for (size_t p = 0; p < config.num_players && emitted < config.num_rows;
         ++p) {
      for (int round = 0; round < config.num_rounds && emitted < config.num_rows;
           ++round) {
        double s = skill[p] + 0.05 * noise(rng);
        double v = speed[p] + 0.05 * noise(rng);
        // (hits, hruns): both increase with skill -> positively correlated.
        int hits = clamp_stat(20.0 + 160.0 * s + 8.0 * noise(rng), 0, 240);
        int hruns = clamp_stat(50.0 * s * s + 3.0 * noise(rng), 0, 70);
        // (h2, sb): doubles follow skill, steals follow speed which trades
        // off against power -> anti-correlated pair.
        int h2 = clamp_stat(5.0 + 40.0 * s + 3.0 * noise(rng), 0, 60);
        int sb = clamp_stat(60.0 * v * (1.2 - 0.8 * s) + 3.0 * noise(rng),
                            0, 110);
        table->AppendUnchecked({Value::Int(static_cast<int64_t>(p)),
                                Value::Int(1985 + year),
                                Value::Int(round),
                                Value::Int(team[p]),
                                Value::Int(hits),
                                Value::Int(hruns),
                                Value::Int(h2),
                                Value::Int(sb)});
        ++emitted;
      }
    }
    year = (year + 1) % config.num_years;
  }
  return table;
}

TablePtr MakeUnpivotedProduct(const Table& scores, size_t max_base_rows,
                              int num_categories) {
  Schema schema({{"id", DataType::kInt64},
                 {"category", DataType::kInt64},
                 {"attr", DataType::kString},
                 {"val", DataType::kInt64}});
  auto table = std::make_shared<Table>("product", schema);

  const Schema& in = scores.schema();
  size_t hits_col = *in.FindColumn("hits");
  size_t hruns_col = *in.FindColumn("hruns");
  size_t h2_col = *in.FindColumn("h2");
  size_t sb_col = *in.FindColumn("sb");
  size_t team_col = *in.FindColumn("teamid");

  size_t base = std::min(max_base_rows, scores.num_rows());
  for (size_t i = 0; i < base; ++i) {
    const Row& row = scores.row(i);
    int64_t id = static_cast<int64_t>(i);
    // Category buckets records by team (id -> category holds trivially).
    int64_t category = row[team_col].AsInt() % num_categories;
    table->AppendUnchecked({Value::Int(id), Value::Int(category),
                            Value::Str("hits"), row[hits_col]});
    table->AppendUnchecked({Value::Int(id), Value::Int(category),
                            Value::Str("hruns"), row[hruns_col]});
    table->AppendUnchecked({Value::Int(id), Value::Int(category),
                            Value::Str("h2"), row[h2_col]});
    table->AppendUnchecked({Value::Int(id), Value::Int(category),
                            Value::Str("sb"), row[sb_col]});
  }
  return table;
}

Status RegisterBaseball(Database* db, const BaseballConfig& config) {
  TablePtr scores = MakeBaseballScores(config);
  ICEBERG_RETURN_NOT_OK(db->RegisterTable(scores));
  ICEBERG_RETURN_NOT_OK(db->DeclareKey("score", {"pid", "year", "round"}));
  // PK-style hash index plus the paper's secondary B-tree indexes over the
  // compared attribute pairs ("BT" in Fig. 4).
  ICEBERG_RETURN_NOT_OK(
      db->CreateHashIndex("score", {"pid", "year", "round"}));
  ICEBERG_RETURN_NOT_OK(db->CreateOrderedIndex("score", {"hits", "hruns"}));
  ICEBERG_RETURN_NOT_OK(db->CreateOrderedIndex("score", {"h2", "sb"}));
  return Status::OK();
}

Status RegisterProduct(Database* db, const BaseballConfig& config,
                       size_t max_base_rows) {
  TablePtr scores = MakeBaseballScores(config);
  TablePtr product = MakeUnpivotedProduct(*scores, max_base_rows);
  ICEBERG_RETURN_NOT_OK(db->RegisterTable(product));
  ICEBERG_RETURN_NOT_OK(db->DeclareKey("product", {"id", "attr"}));
  ICEBERG_RETURN_NOT_OK(db->DeclareFd("product", {"id"}, {"category"}));
  ICEBERG_RETURN_NOT_OK(db->CreateHashIndex("product", {"id", "attr"}));
  ICEBERG_RETURN_NOT_OK(db->CreateHashIndex("product", {"category", "attr"}));
  ICEBERG_RETURN_NOT_OK(db->CreateHashIndex("product", {"id"}));
  ICEBERG_RETURN_NOT_OK(db->CreateOrderedIndex("product", {"val"}));
  return Status::OK();
}

}  // namespace iceberg
