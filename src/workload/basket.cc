#include "src/workload/basket.h"

#include <cmath>
#include <random>
#include <set>
#include <vector>

namespace iceberg {

TablePtr MakeBaskets(const BasketConfig& config) {
  Schema schema({{"bid", DataType::kInt64}, {"item", DataType::kInt64}});
  auto table = std::make_shared<Table>("basket", schema);

  std::mt19937_64 rng(config.seed);

  // Zipf sampling over item ids via inverse-CDF on precomputed weights.
  std::vector<double> cdf(config.num_items);
  double total = 0;
  for (size_t i = 0; i < config.num_items; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), config.zipf_skew);
    cdf[i] = total;
  }
  std::uniform_real_distribution<double> uniform(0.0, total);
  auto sample_item = [&]() {
    double u = uniform(rng);
    size_t lo = 0, hi = config.num_items - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<int64_t>(lo);
  };

  std::vector<std::set<int64_t>> baskets(config.num_baskets);
  std::uniform_int_distribution<size_t> size_dist(config.min_basket_size,
                                                  config.max_basket_size);
  for (size_t b = 0; b < config.num_baskets; ++b) {
    size_t size = size_dist(rng);
    while (baskets[b].size() < size) baskets[b].insert(sample_item());
  }

  // Plant frequent pairs among rare items so the answer is interesting:
  // pair p uses items (num_items-1-2p, num_items-2-2p).
  std::uniform_int_distribution<size_t> basket_pick(0,
                                                    config.num_baskets - 1);
  for (size_t p = 0; p < config.planted_pairs; ++p) {
    int64_t a = static_cast<int64_t>(config.num_items - 1 - 2 * p);
    int64_t b = static_cast<int64_t>(config.num_items - 2 - 2 * p);
    if (b < 0) break;
    for (size_t k = 0; k < config.planted_support; ++k) {
      size_t target = basket_pick(rng);
      baskets[target].insert(a);
      baskets[target].insert(b);
    }
  }

  for (size_t b = 0; b < config.num_baskets; ++b) {
    for (int64_t item : baskets[b]) {
      table->AppendUnchecked(
          {Value::Int(static_cast<int64_t>(b)), Value::Int(item)});
    }
  }
  return table;
}

Status RegisterBaskets(Database* db, const BasketConfig& config) {
  TablePtr baskets = MakeBaskets(config);
  ICEBERG_RETURN_NOT_OK(db->RegisterTable(baskets));
  ICEBERG_RETURN_NOT_OK(db->DeclareKey("basket", {"bid", "item"}));
  ICEBERG_RETURN_NOT_OK(db->CreateHashIndex("basket", {"bid"}));
  ICEBERG_RETURN_NOT_OK(db->CreateHashIndex("basket", {"item"}));
  return Status::OK();
}

}  // namespace iceberg
