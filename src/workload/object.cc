#include "src/workload/object.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace iceberg {

TablePtr MakeObjects(const ObjectConfig& config) {
  Schema schema({{"id", DataType::kInt64},
                 {"x", DataType::kInt64},
                 {"y", DataType::kInt64}});
  auto table = std::make_shared<Table>("object", schema);

  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 0.08);

  const double domain = static_cast<double>(config.domain);
  auto clamp = [&](double v) {
    return static_cast<int64_t>(
        std::max(0.0, std::min(domain - 1.0, std::floor(v))));
  };

  for (size_t i = 0; i < config.num_objects; ++i) {
    double x = 0, y = 0;
    switch (config.distribution) {
      case PointDistribution::kIndependent:
        x = uniform(rng);
        y = uniform(rng);
        break;
      case PointDistribution::kCorrelated: {
        // Tight diagonal: the skyline stays tiny, the classic benchmark
        // behaviour (correlated << independent << anticorrelated).
        double base = uniform(rng);
        x = base + 0.25 * noise(rng);
        y = base + 0.25 * noise(rng);
        break;
      }
      case PointDistribution::kAnticorrelated: {
        double base = uniform(rng);
        x = base + noise(rng);
        y = (1.0 - base) + noise(rng);
        break;
      }
    }
    table->AppendUnchecked({Value::Int(static_cast<int64_t>(i)),
                            Value::Int(clamp(x * domain)),
                            Value::Int(clamp(y * domain))});
  }
  return table;
}

Status RegisterObjects(Database* db, const ObjectConfig& config) {
  TablePtr objects = MakeObjects(config);
  ICEBERG_RETURN_NOT_OK(db->RegisterTable(objects));
  ICEBERG_RETURN_NOT_OK(db->DeclareKey("object", {"id"}));
  ICEBERG_RETURN_NOT_OK(db->CreateHashIndex("object", {"id"}));
  ICEBERG_RETURN_NOT_OK(db->CreateOrderedIndex("object", {"x", "y"}));
  return Status::OK();
}

}  // namespace iceberg
