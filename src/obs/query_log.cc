#include "src/obs/query_log.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace iceberg {

namespace {

bool QueryLogEnvDefault() {
  // Default ON; only an explicit "0" disables (chicken-bit convention).
  const char* env = std::getenv("ICEBERG_QUERY_LOG");
  return env == nullptr || env[0] == '\0' ||
         !(env[0] == '0' && env[1] == '\0');
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{QueryLogEnvDefault()};
  return enabled;
}

uint64_t SlowEnvDefault() {
  const char* env = std::getenv("ICEBERG_SLOW_QUERY_US");
  if (env == nullptr || env[0] == '\0') return 0;
  return std::strtoull(env, nullptr, 10);
}

std::atomic<uint64_t>& SlowThresholdFlag() {
  static std::atomic<uint64_t> threshold{SlowEnvDefault()};
  return threshold;
}

size_t CapacityEnvDefault() {
  const char* env = std::getenv("ICEBERG_QUERY_LOG_CAPACITY");
  if (env == nullptr || env[0] == '\0') return 1024;
  size_t cap = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  return cap == 0 ? 1024 : cap;
}

thread_local int g_scope_depth = 0;

}  // namespace

bool QueryLogEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetQueryLogEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

uint64_t SlowQueryThresholdUs() {
  return SlowThresholdFlag().load(std::memory_order_relaxed);
}

void SetSlowQueryThresholdUs(uint64_t us) {
  SlowThresholdFlag().store(us, std::memory_order_relaxed);
}

QueryLogScope::QueryLogScope() { ++g_scope_depth; }
QueryLogScope::~QueryLogScope() { --g_scope_depth; }
bool QueryLogScope::Active() { return g_scope_depth > 0; }

/// One ring shard: records land here when seq % kShards picks this shard,
/// at slot (seq / kShards) % per-shard capacity. `slots` grows lazily to
/// capacity and is then overwritten in place; a default-constructed slot
/// (query_id 0 and seq 0 at nonzero index) is "empty".
struct QueryLog::Shard {
  mutable std::mutex mu;
  std::vector<QueryRecord> slots;
};

QueryLog::~QueryLog() = default;

QueryLog::Shard& QueryLog::ShardFor(uint64_t seq) const {
  return shards_[seq % kShards];
}

QueryLog& QueryLog::Global() {
  static QueryLog* log = new QueryLog(CapacityEnvDefault());
  return *log;
}

uint64_t QueryLog::NextQueryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

QueryLog::QueryLog(size_t capacity) {
  per_shard_cap_ = std::max<size_t>(1, (capacity + kShards - 1) / kShards);
  capacity_ = per_shard_cap_ * kShards;
  shards_ = std::make_unique<Shard[]>(kShards);
  const char* keep = std::getenv("ICEBERG_SLOW_CAPTURE_KEEP");
  if (keep != nullptr && keep[0] != '\0') {
    capture_keep_ = static_cast<size_t>(std::strtoull(keep, nullptr, 10));
  }
}

void QueryLog::NoteShapeLatency(QueryRecord* rec) {
  if (rec->shape_hash == 0) return;
  uint64_t slo_us = 0;
  {
    std::lock_guard<std::mutex> lock(shape_mu_);
    auto& slot = shapes_[rec->shape_hash];
    if (slot == nullptr) {
      slot = std::make_unique<ShapeStats>();
      slot->shape = rec->shape;
    }
    slot->hist.Record(rec->latency_us);
    slo_us = slot->slo_us != 0 ? slot->slo_us : default_slo_us_;
    if (slo_us != 0 && rec->latency_us > slo_us) {
      rec->slo_violated = true;
      ++slot->violations;
    }
  }
  if (rec->slo_violated) ICEBERG_COUNTER("slo.violations")->Increment();
}

void QueryLog::EnforceCaptureBound(uint64_t new_capture_seq) {
  uint64_t evict_seq = 0;
  bool evict = false;
  {
    std::lock_guard<std::mutex> lock(capture_mu_);
    capture_seqs_.push_back(new_capture_seq);
    if (capture_seqs_.size() > capture_keep_) {
      evict_seq = capture_seqs_.front();
      capture_seqs_.erase(capture_seqs_.begin());
      evict = true;
    }
  }
  if (!evict) return;
  Shard& shard = ShardFor(evict_seq);
  size_t slot = (evict_seq / kShards) % per_shard_cap_;
  std::lock_guard<std::mutex> lock(shard.mu);
  if (slot < shard.slots.size() && shard.slots[slot].seq == evict_seq) {
    shard.slots[slot].slow_capture.reset();
  }
}

uint64_t QueryLog::Record(QueryRecord rec) {
  if (!QueryLogEnabled()) return 0;
  NoteShapeLatency(&rec);
  ICEBERG_HISTOGRAM("query.latency_us")->Record(rec.latency_us);
  ICEBERG_COUNTER("query_log.records")->Increment();
  uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  rec.seq = seq;
  bool has_capture = rec.slow_capture != nullptr;
  Shard& shard = ShardFor(seq);
  size_t slot = (seq / kShards) % per_shard_cap_;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (slot >= shard.slots.size()) {
      shard.slots.resize(slot + 1);
    } else {
      ICEBERG_COUNTER("query_log.overwrites")->Increment();
    }
    shard.slots[slot] = std::move(rec);
  }
  if (has_capture) EnforceCaptureBound(seq);
  return seq + 1;
}

std::vector<QueryRecord> QueryLog::Tail(size_t n) const {
  std::vector<QueryRecord> all;
  for (size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const QueryRecord& rec : shard.slots) {
      if (rec.query_id != 0) all.push_back(rec);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.seq < b.seq;
            });
  if (n != 0 && all.size() > n) {
    all.erase(all.begin(), all.end() - static_cast<ptrdiff_t>(n));
  }
  return all;
}

std::vector<QueryRecord> QueryLog::Slow(size_t n, uint64_t threshold_us) const {
  if (threshold_us == 0) threshold_us = SlowQueryThresholdUs();
  std::vector<QueryRecord> all = Tail(0);
  std::vector<QueryRecord> slow;
  for (QueryRecord& rec : all) {
    bool qualifies = threshold_us != 0 ? rec.latency_us >= threshold_us
                                       : rec.slow_capture != nullptr;
    if (qualifies) slow.push_back(std::move(rec));
  }
  if (n != 0 && slow.size() > n) {
    slow.erase(slow.begin(), slow.end() - static_cast<ptrdiff_t>(n));
  }
  return slow;
}

void QueryLog::Clear() {
  for (size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.slots.clear();
  }
  {
    std::lock_guard<std::mutex> lock(capture_mu_);
    capture_seqs_.clear();
  }
  std::lock_guard<std::mutex> lock(shape_mu_);
  shapes_.clear();
}

void QueryLog::SetDefaultSloUs(uint64_t us) {
  std::lock_guard<std::mutex> lock(shape_mu_);
  default_slo_us_ = us;
}

void QueryLog::SetShapeSloUs(uint64_t shape_hash, uint64_t us) {
  std::lock_guard<std::mutex> lock(shape_mu_);
  auto& slot = shapes_[shape_hash];
  if (slot == nullptr) slot = std::make_unique<ShapeStats>();
  slot->slo_us = us;
}

size_t QueryLog::captures_held() const {
  std::lock_guard<std::mutex> lock(capture_mu_);
  return capture_seqs_.size();
}

std::string QueryLog::RenderShapeTable() const {
  std::string out =
      "shape_hash        attempts   p50_us     p99_us     slo_us     "
      "violations shape\n";
  char line[512];
  std::lock_guard<std::mutex> lock(shape_mu_);
  for (const auto& [hash, stats] : shapes_) {
    HistogramSnapshot snap = stats->hist.Snapshot();
    uint64_t slo = stats->slo_us != 0 ? stats->slo_us : default_slo_us_;
    std::string shape = stats->shape.substr(0, 60);
    std::snprintf(line, sizeof(line),
                  "%016" PRIx64 "  %-9" PRIu64 "  %-9" PRIu64 "  %-9" PRIu64
                  "  %-9" PRIu64 "  %-9" PRIu64 "  %s\n",
                  hash, snap.count, snap.Percentile(50), snap.Percentile(99),
                  slo, stats->violations, shape.c_str());
    out += line;
  }
  return out;
}

std::string QueryLog::ToJson(const QueryRecord& r) {
  std::string out = "{";
  auto num = [&out](const char* key, uint64_t v, bool comma = true) {
    out += "\"";
    out += key;
    out += "\":";
    out += std::to_string(v);
    if (comma) out += ",";
  };
  auto str = [&out](const char* key, const std::string& v, bool comma = true) {
    out += "\"";
    out += key;
    out += "\":\"";
    out += JsonEscape(v);
    out += "\"";
    if (comma) out += ",";
  };
  auto boolean = [&out](const char* key, bool v, bool comma = true) {
    out += "\"";
    out += key;
    out += "\":";
    out += v ? "true" : "false";
    if (comma) out += ",";
  };
  num("seq", r.seq);
  num("query_id", r.query_id);
  num("session_id", r.session_id);
  num("attempt", r.attempt);
  boolean("iceberg", r.iceberg);
  char hash[32];
  std::snprintf(hash, sizeof(hash), "%016" PRIx64, r.shape_hash);
  str("shape_hash", hash);
  str("shape", r.shape);
  str("status", r.status);
  str("error", r.error);
  boolean("retryable", r.retryable);
  boolean("will_retry", r.will_retry);
  num("backoff_ms", r.backoff_ms);
  str("retry_cause", r.retry_cause);
  num("rows_returned", r.rows_returned);
  num("start_us", static_cast<uint64_t>(r.start_us < 0 ? 0 : r.start_us));
  num("latency_us", r.latency_us);
  num("admission_wait_us", r.admission_wait_us);
  num("queue_depth_at_admit", r.queue_depth_at_admit);
  str("governor_verdict", r.governor_verdict);
  num("governor_checks", r.governor_checks);
  num("governor_peak_bytes", r.governor_peak_bytes);
  num("governor_shed_entries", r.governor_shed_entries);
  num("chaos_delays", r.chaos_delays);
  num("chaos_shed_storms", r.chaos_shed_storms);
  num("chaos_cancels", r.chaos_cancels);
  num("chaos_alloc_failures", r.chaos_alloc_failures);
  str("plan_provenance", r.plan_provenance);
  num("transfer_passes", r.transfer_passes);
  num("transfer_filters_built", r.transfer_filters_built);
  num("transfer_rows_eliminated", r.transfer_rows_eliminated);
  num("transfer_filter_bytes", r.transfer_filter_bytes);
  boolean("slo_violated", r.slo_violated);
  if (r.slow_capture != nullptr) {
    str("slow_capture", *r.slow_capture, /*comma=*/false);
  } else {
    out += "\"slow_capture\":null";
  }
  out += "}";
  return out;
}

std::string QueryLog::RenderTable(const std::vector<QueryRecord>& recs) {
  std::string out =
      "seq    qid    sess  att eng      status            lat_us     "
      "wait_us    depth  gov_peak_b   cache         transfer(p/f/elim)   "
      "rows       chaos(d/s/c/a)\n";
  char line[512];
  for (const QueryRecord& r : recs) {
    char transfer[64];
    std::snprintf(transfer, sizeof(transfer), "%" PRIu64 "/%" PRIu64
                  "/%" PRIu64,
                  r.transfer_passes, r.transfer_filters_built,
                  r.transfer_rows_eliminated);
    char chaos[64];
    std::snprintf(chaos, sizeof(chaos),
                  "%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64,
                  r.chaos_delays, r.chaos_shed_storms, r.chaos_cancels,
                  r.chaos_alloc_failures);
    std::string status = r.status;
    if (r.will_retry) status += "*";
    if (r.slo_violated) status += "!";
    std::snprintf(line, sizeof(line),
                  "%-6" PRIu64 " %-6" PRIu64 " %-5" PRIu64 " %-3u %-8s %-17s "
                  "%-10" PRIu64 " %-10" PRIu64 " %-6" PRIu64 " %-12" PRIu64
                  " %-13s %-20s %-10" PRIu64 " %s%s\n",
                  r.seq, r.query_id, r.session_id, r.attempt,
                  r.iceberg ? "iceberg" : "baseline", status.c_str(),
                  r.latency_us, r.admission_wait_us, r.queue_depth_at_admit,
                  r.governor_peak_bytes,
                  r.plan_provenance.empty() ? "-" : r.plan_provenance.c_str(),
                  transfer, r.rows_returned, chaos,
                  r.slow_capture != nullptr ? " [captured]" : "");
    out += line;
  }
  if (recs.empty()) out += "(no records)\n";
  return out;
}

bool QueryLog::DumpJsonl(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  for (const QueryRecord& rec : Tail(0)) {
    std::string json = ToJson(rec);
    json += "\n";
    std::fwrite(json.data(), 1, json.size(), file);
  }
  std::fclose(file);
  return true;
}

}  // namespace iceberg
