#ifndef SMARTICEBERG_OBS_METRICS_H_
#define SMARTICEBERG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace iceberg {

/// A monotonically increasing named count. Increments are relaxed atomics:
/// no ordering is implied between counters, but every increment is counted
/// exactly once, so totals read at quiescence (end of query) are exact at
/// any thread count.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A named instantaneous value (peak bytes, headroom). Set/SetMax race
/// benignly: the final value is one of the concurrently written values
/// (SetMax converges to the true maximum).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Atomic delta for live-resource gauges (bytes held by in-flight
  /// structures); pass a negative delta on release.
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if it is larger (lock-free running maximum).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of one histogram; percentiles are estimated from the
/// log-scale bucket boundaries (each bucket spans one power of two, so the
/// estimate is within 2x of the true value — ample for latency triage).
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 64;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kBuckets> buckets{};

  /// Estimate of the p-th percentile observation (p in [0, 100]); 0 when
  /// empty. Interpolates linearly within the log-scale bucket containing
  /// the target rank, so the estimate is within the bucket's [2^(i-1), 2^i)
  /// span rather than pinned to its upper bound.
  uint64_t Percentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) /
                                                      static_cast<double>(count); }
};

/// A log-scale histogram of non-negative values (latencies, sizes): value v
/// lands in bucket bit_width(v), i.e. bucket i covers [2^(i-1), 2^i).
/// Recording is three relaxed fetch_adds — safe and exact under any number
/// of concurrent writers. The unit is the call site's choice; by convention
/// the metric name carries a unit suffix (_us, _ns, _bytes).
class Histogram {
 public:
  void Record(uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  }
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  static size_t BucketOf(uint64_t v) {
    size_t b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b < HistogramSnapshot::kBuckets ? b
                                           : HistogramSnapshot::kBuckets - 1;
  }

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, HistogramSnapshot::kBuckets> buckets_{};
};

/// Point-in-time copy of the whole registry. DiffSince subtracts a baseline
/// snapshot (counters and histogram buckets; gauges keep their current
/// value), which is how per-query deltas are reported: snapshot before,
/// run, snapshot after, diff.
/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters). Shared by every JSON renderer in
/// the observability layer (metrics, query log, traces).
std::string JsonEscape(const std::string& s);

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  MetricsSnapshot DiffSince(const MetricsSnapshot& base) const;
  std::string ToText() const;
  std::string ToJson() const;
};

/// The process-wide registry of named metrics. Registration (GetCounter /
/// GetGauge / GetHistogram) takes a mutex and returns a stable pointer that
/// lives for the process lifetime; hot paths register once (static local or
/// constructor-cached member) and then touch only the lock-free handle.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered metric (handles stay valid). Callers must be
  /// quiesced: a Reset concurrent with increments keeps the registry
  /// consistent but the zero point is undefined.
  void ResetAll();

  std::string RenderText() const { return Snapshot().ToText(); }
  std::string RenderJson() const { return Snapshot().ToJson(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace iceberg

/// Registers once (thread-safe static local), then compiles to one relaxed
/// fetch_add. Usage: ICEBERG_COUNTER("nljp.memo_hits")->Add(n);
#define ICEBERG_COUNTER(name)                                       \
  ([]() -> ::iceberg::Counter* {                                    \
    static ::iceberg::Counter* c =                                  \
        ::iceberg::MetricsRegistry::Global().GetCounter(name);      \
    return c;                                                       \
  }())

#define ICEBERG_GAUGE(name)                                         \
  ([]() -> ::iceberg::Gauge* {                                      \
    static ::iceberg::Gauge* g =                                    \
        ::iceberg::MetricsRegistry::Global().GetGauge(name);        \
    return g;                                                       \
  }())

#define ICEBERG_HISTOGRAM(name)                                     \
  ([]() -> ::iceberg::Histogram* {                                  \
    static ::iceberg::Histogram* h =                                \
        ::iceberg::MetricsRegistry::Global().GetHistogram(name);    \
    return h;                                                       \
  }())

#endif  // SMARTICEBERG_OBS_METRICS_H_
