#include "src/obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace iceberg {

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the target observation (1-based, ceil), then walk buckets.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      if (i == 0) return 0;  // bucket 0 holds only the value 0
      // Bucket i covers [2^(i-1), 2^i); interpolate linearly by the rank's
      // position within the bucket, capped at the inclusive upper bound.
      uint64_t lo = uint64_t{1} << (i - 1);
      uint64_t width = lo;
      double frac =
          static_cast<double>(rank - seen) / static_cast<double>(buckets[i]);
      uint64_t off = static_cast<uint64_t>(frac * static_cast<double>(width));
      uint64_t v = lo + off;
      uint64_t hi_inclusive = lo + width - 1;
      return v > hi_inclusive ? hi_inclusive : v;
    }
    seen += buckets[i];
  }
  return UINT64_MAX;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsSnapshot MetricsSnapshot::DiffSince(const MetricsSnapshot& base) const {
  MetricsSnapshot diff;
  for (const auto& [name, value] : counters) {
    auto it = base.counters.find(name);
    uint64_t prev = it == base.counters.end() ? 0 : it->second;
    diff.counters[name] = value >= prev ? value - prev : value;
  }
  diff.gauges = gauges;  // gauges are instantaneous, not cumulative
  for (const auto& [name, hist] : histograms) {
    auto it = base.histograms.find(name);
    if (it == base.histograms.end()) {
      diff.histograms[name] = hist;
      continue;
    }
    const HistogramSnapshot& prev = it->second;
    HistogramSnapshot d;
    d.count = hist.count >= prev.count ? hist.count - prev.count : hist.count;
    d.sum = hist.sum >= prev.sum ? hist.sum - prev.sum : hist.sum;
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      d.buckets[i] = hist.buckets[i] >= prev.buckets[i]
                         ? hist.buckets[i] - prev.buckets[i]
                         : hist.buckets[i];
    }
    diff.histograms[name] = d;
  }
  return diff;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "counter %-40s %" PRIu64 "\n",
                  name.c_str(), value);
    out += line;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(line, sizeof(line), "gauge   %-40s %" PRId64 "\n",
                  name.c_str(), value);
    out += line;
  }
  for (const auto& [name, hist] : histograms) {
    std::snprintf(line, sizeof(line),
                  "hist    %-40s count=%" PRIu64 " sum=%" PRIu64
                  " mean=%.1f p50<=%" PRIu64 " p95<=%" PRIu64 " p99<=%" PRIu64
                  "\n",
                  name.c_str(), hist.count, hist.sum, hist.Mean(),
                  hist.Percentile(50), hist.Percentile(95),
                  hist.Percentile(99));
    out += line;
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendJsonKey(std::string* out, const std::string& name, bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += '"';
  *out += JsonEscape(name);
  *out += "\":";
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    AppendJsonKey(&out, name, &first);
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    AppendJsonKey(&out, name, &first);
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    AppendJsonKey(&out, name, &first);
    out += "{\"count\":" + std::to_string(hist.count) +
           ",\"sum\":" + std::to_string(hist.sum) +
           ",\"p50\":" + std::to_string(hist.Percentile(50)) +
           ",\"p95\":" + std::to_string(hist.Percentile(95)) +
           ",\"p99\":" + std::to_string(hist.Percentile(99)) + "}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace iceberg
