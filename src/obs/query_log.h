#ifndef SMARTICEBERG_OBS_QUERY_LOG_H_
#define SMARTICEBERG_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace iceberg {

/// One query *attempt* as seen by the flight recorder: the serving layer
/// emits one record per admission/retry-loop iteration (a three-attempt
/// statement leaves three records), and the direct Database entry points
/// emit one per call. Every numeric field is assembled from the attempt's
/// own run-local stats blocks — the same sources EXPLAIN ANALYZE renders —
/// so a record reconciles exactly with the metrics delta for its statement.
struct QueryRecord {
  // Identity.
  uint64_t seq = 0;         ///< assigned by QueryLog::Record; global order
  uint64_t query_id = 0;    ///< one per statement submission (all attempts share it)
  uint64_t session_id = 0;  ///< 0 = direct Database call (no server session)
  uint32_t attempt = 1;     ///< 1-based attempt number within query_id
  bool iceberg = false;     ///< engine: iceberg-optimized vs baseline

  // Shape.
  uint64_t shape_hash = 0;
  std::string shape;  ///< normalized shape text (literals stripped); may be empty

  // Outcome.
  std::string status = "OK";  ///< StatusCodeName of the attempt's status
  std::string error;          ///< status message when not OK
  bool retryable = false;
  bool will_retry = false;  ///< the retry loop decided to run another attempt
  uint64_t backoff_ms = 0;  ///< backoff slept *after* this attempt (0 if none)
  std::string retry_cause;  ///< for attempt > 1: status name that caused the retry
  uint64_t rows_returned = 0;

  // Timing (TraceNowMicros timebase, so records correlate with trace spans).
  int64_t start_us = 0;
  uint64_t latency_us = 0;  ///< end-to-end, including admission wait

  // Admission.
  uint64_t admission_wait_us = 0;
  uint64_t queue_depth_at_admit = 0;

  // Governor.
  std::string governor_verdict;  ///< "" = no governor; "ok" or poison status name
  uint64_t governor_checks = 0;
  uint64_t governor_peak_bytes = 0;
  uint64_t governor_shed_entries = 0;

  // Chaos injections that actually fired against this attempt's probe.
  uint64_t chaos_delays = 0;
  uint64_t chaos_shed_storms = 0;
  uint64_t chaos_cancels = 0;
  uint64_t chaos_alloc_failures = 0;

  // Plan cache provenance: "", "bypass", "miss", "hit", "hit-fallback".
  std::string plan_provenance;

  // Predicate-transfer schedule stats.
  uint64_t transfer_passes = 0;
  uint64_t transfer_filters_built = 0;
  uint64_t transfer_rows_eliminated = 0;
  uint64_t transfer_filter_bytes = 0;

  // SLO / capture.
  bool slo_violated = false;
  /// Slow-query capture: EXPLAIN ANALYZE tree plus the trace-span slice
  /// overlapping the attempt, rendered by the emitter. Shared so ring
  /// eviction and Tail() copies stay cheap; only the N most recent captures
  /// are retained (older records keep their scalars, lose the capture).
  std::shared_ptr<const std::string> slow_capture;
};

/// Global switch for record emission (admission of records into the log;
/// the shell's `\querylog on|off` and the ICEBERG_QUERY_LOG env var — "0"
/// disables — both land here). Reading is one relaxed atomic load.
bool QueryLogEnabled();
void SetQueryLogEnabled(bool enabled);

/// Slow-query capture threshold in microseconds; 0 (the default) disarms
/// capture entirely. Initialized from ICEBERG_SLOW_QUERY_US.
uint64_t SlowQueryThresholdUs();
void SetSlowQueryThresholdUs(uint64_t us);

/// Thread-local suppression scope: while one is alive on this thread, the
/// Database entry points skip their own emission. Session::Run opens one
/// around the Database call so a served attempt yields exactly one record
/// (the session's), never two.
class QueryLogScope {
 public:
  QueryLogScope();
  ~QueryLogScope();
  QueryLogScope(const QueryLogScope&) = delete;
  QueryLogScope& operator=(const QueryLogScope&) = delete;
  static bool Active();
};

/// The process-wide flight recorder: a fixed-capacity ring of QueryRecords
/// sharded by sequence number. Publication takes one shard mutex (shards
/// are touched round-robin, so concurrent sessions rarely collide); all
/// heavy assembly happens on the query's own thread before Record() is
/// called. Layered on top: a per-shape latency histogram registry with
/// optional SLO thresholds, bounded slow-capture retention, and JSONL
/// export.
class QueryLog {
 public:
  /// Process singleton, sized from ICEBERG_QUERY_LOG_CAPACITY (default
  /// 1024 records, rounded up to a multiple of the shard count).
  static QueryLog& Global();

  /// Allocates the next statement-level query id (shared by all attempts).
  static uint64_t NextQueryId();

  explicit QueryLog(size_t capacity);
  ~QueryLog();

  /// Publishes one attempt record: assigns `seq`, feeds the per-shape
  /// latency histogram, applies the SLO check (sets rec.slo_violated and
  /// bumps `slo.violations`), enforces the slow-capture retention bound,
  /// and overwrites the oldest slot once the ring is full. No-op (returns
  /// 0) while the log is disabled. Returns the assigned seq + 1 (so 0
  /// means "not recorded").
  uint64_t Record(QueryRecord rec);

  /// The most recent `n` records, oldest first. n = 0 means everything
  /// still in the ring.
  std::vector<QueryRecord> Tail(size_t n = 0) const;

  /// The most recent `n` records whose latency meets `threshold_us`
  /// (default: the armed slow-query threshold; if that is 0, falls back to
  /// records carrying a capture). Oldest first.
  std::vector<QueryRecord> Slow(size_t n = 0, uint64_t threshold_us = 0) const;

  void Clear();
  size_t capacity() const { return capacity_; }

  /// SLO thresholds: per-shape overrides win over the default; 0 disables.
  void SetDefaultSloUs(uint64_t us);
  void SetShapeSloUs(uint64_t shape_hash, uint64_t us);

  /// Per-shape latency table: shape hash, attempts, p50/p99 (us), SLO
  /// threshold and violation count — the `\querylog shapes` surface.
  std::string RenderShapeTable() const;

  /// One record as a single-line JSON object (JSONL-ready).
  static std::string ToJson(const QueryRecord& rec);

  /// Human-oriented fixed-width table of `recs` (the `\queries` surface).
  static std::string RenderTable(const std::vector<QueryRecord>& recs);

  /// Writes every ring record as one JSON object per line; false when the
  /// file cannot be opened.
  bool DumpJsonl(const std::string& path) const;

  /// Number of records retaining a slow capture (test/monitoring surface).
  size_t captures_held() const;

 private:
  struct Shard;

  static constexpr size_t kShards = 8;
  /// Record seq `s` lives at shard s % kShards, slot (s / kShards) %
  /// per_shard_cap_ — deterministic, so capture eviction can find an old
  /// record without scanning.
  Shard& ShardFor(uint64_t seq) const;

  void NoteShapeLatency(QueryRecord* rec);
  void EnforceCaptureBound(uint64_t new_capture_seq);

  size_t capacity_ = 0;
  size_t per_shard_cap_ = 0;
  mutable std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> next_seq_{0};

  mutable std::mutex shape_mu_;
  struct ShapeStats {
    Histogram hist;
    uint64_t slo_us = 0;  // 0 = use default
    uint64_t violations = 0;
    std::string shape;  // first-seen normalized text, for rendering
  };
  std::map<uint64_t, std::unique_ptr<ShapeStats>> shapes_;
  uint64_t default_slo_us_ = 0;

  mutable std::mutex capture_mu_;
  std::vector<uint64_t> capture_seqs_;  // FIFO of seqs holding captures
  size_t capture_keep_ = 16;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_OBS_QUERY_LOG_H_
