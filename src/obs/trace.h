#ifndef SMARTICEBERG_OBS_TRACE_H_
#define SMARTICEBERG_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace iceberg {

/// One completed span, in the vocabulary of the Chrome trace_event format
/// ("X" complete events): a name, a category, a start timestamp and a
/// duration (both in microseconds since process start), and the recording
/// thread's stable trace id.
///
/// `name` and `cat` must be string literals (or otherwise outlive the
/// trace): spans store the pointer, never a copy, so a disabled span costs
/// nothing and an enabled one never allocates on the hot path.
struct TraceEvent {
  const char* name;
  const char* cat;
  int64_t start_us;
  int64_t dur_us;
  uint32_t tid;
};

/// Global tracing switch. Reading is one relaxed atomic load; flipping it
/// is safe at any time (spans that started enabled still record on
/// destruction). Initialized from the ICEBERG_TRACE environment variable
/// (any non-empty value other than "0" enables tracing at startup).
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

/// Microseconds since process start on the steady clock (the span
/// timebase; exposed for tests and for correlating with external logs).
int64_t TraceNowMicros();

/// A scoped phase timing. Construction when tracing is disabled is a
/// single branch on the cached atomic flag; when enabled, destruction
/// appends one TraceEvent to the calling thread's buffer (per-thread, so
/// workers never contend with each other).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "exec")
      : name_(name), cat_(cat), start_us_(TraceEnabled() ? TraceNowMicros() : -1) {}
  ~TraceSpan() { End(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early (idempotent; the destructor becomes a no-op).
  void End();

 private:
  const char* name_;
  const char* cat_;
  int64_t start_us_;  // -1 = disabled at construction / already ended
};

/// Per-thread buffer capacity, in events. Past the limit a buffer behaves
/// as a ring: the oldest event is overwritten and the process-wide
/// `trace.events_dropped` counter is incremented, so a long traced soak
/// holds bounded memory. Initialized from ICEBERG_TRACE_BUFFER_LIMIT
/// (default 65536); 0 means unbounded.
size_t TraceBufferLimit();
void SetTraceBufferLimit(size_t limit);

/// Copies every thread's recorded events, ordered by start time. The
/// buffers are left intact (dump-then-keep); ClearTrace() empties them.
std::vector<TraceEvent> SnapshotTrace();
/// SnapshotTrace() restricted to events overlapping [start_us, end_us]
/// (span start before end_us and span end at/after start_us) — the slice a
/// slow-query capture attaches to its record.
std::vector<TraceEvent> SnapshotTraceRange(int64_t start_us, int64_t end_us);
void ClearTrace();

/// Renders events as a chrome://tracing / Perfetto-loadable JSON document
/// (trace_event "X" complete events, one pid, per-thread tids).
std::string TraceToChromeJson(const std::vector<TraceEvent>& events);

/// SnapshotTrace() rendered with TraceToChromeJson and written to `path`;
/// returns false when the file cannot be opened.
bool DumpTrace(const std::string& path);

}  // namespace iceberg

#endif  // SMARTICEBERG_OBS_TRACE_H_
