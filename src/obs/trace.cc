#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "src/obs/metrics.h"

namespace iceberg {

namespace {

bool TraceEnvDefault() {
  const char* env = std::getenv("ICEBERG_TRACE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{TraceEnvDefault()};
  return enabled;
}

size_t TraceBufferLimitDefault() {
  const char* env = std::getenv("ICEBERG_TRACE_BUFFER_LIMIT");
  if (env == nullptr || env[0] == '\0') return 65536;
  return static_cast<size_t>(std::strtoull(env, nullptr, 10));
}

std::atomic<size_t>& BufferLimitFlag() {
  static std::atomic<size_t> limit{TraceBufferLimitDefault()};
  return limit;
}

/// Events recorded by one thread. The owning thread appends under the
/// buffer mutex (uncontended in steady state); SnapshotTrace/ClearTrace
/// take the same mutex from the draining thread, which is what makes the
/// hand-off tsan-clean even while workers are still recording. Past the
/// buffer limit the vector is treated as a ring: `next_slot` names the
/// oldest event, which the next append overwrites.
struct TraceBuffer {
  std::mutex mu;
  uint32_t tid = 0;
  size_t next_slot = 0;
  std::vector<TraceEvent> events;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

TraceBuffer* ThisThreadBuffer() {
  thread_local TraceBuffer* buffer = [] {
    auto owned = std::make_unique<TraceBuffer>();
    TraceBuffer* raw = owned.get();
    BufferRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    raw->tid = static_cast<uint32_t>(registry.buffers.size());
    registry.buffers.push_back(std::move(owned));
    return raw;
  }();
  return buffer;
}

}  // namespace

bool TraceEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetTraceEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

int64_t TraceNowMicros() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

size_t TraceBufferLimit() {
  return BufferLimitFlag().load(std::memory_order_relaxed);
}

void SetTraceBufferLimit(size_t limit) {
  BufferLimitFlag().store(limit, std::memory_order_relaxed);
}

void TraceSpan::End() {
  if (start_us_ < 0) return;
  int64_t end_us = TraceNowMicros();
  TraceBuffer* buffer = ThisThreadBuffer();
  TraceEvent event{name_, cat_, start_us_, end_us - start_us_, buffer->tid};
  size_t limit = TraceBufferLimit();
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(buffer->mu);
    if (limit == 0 || buffer->events.size() < limit) {
      buffer->events.push_back(event);
    } else {
      // At capacity: overwrite the oldest slot. The modulus is the live
      // size, not the (possibly shrunk) limit, so a mid-run limit change
      // keeps every slot reachable.
      buffer->events[buffer->next_slot % buffer->events.size()] = event;
      buffer->next_slot =
          (buffer->next_slot + 1) % buffer->events.size();
      dropped = true;
    }
  }
  if (dropped) ICEBERG_COUNTER("trace.events_dropped")->Increment();
  start_us_ = -1;
}

std::vector<TraceEvent> SnapshotTrace() {
  std::vector<TraceEvent> all;
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  return all;
}

std::vector<TraceEvent> SnapshotTraceRange(int64_t start_us, int64_t end_us) {
  std::vector<TraceEvent> all = SnapshotTrace();
  std::vector<TraceEvent> slice;
  for (const TraceEvent& e : all) {
    if (e.start_us <= end_us && e.start_us + e.dur_us >= start_us) {
      slice.push_back(e);
    }
  }
  return slice;
}

void ClearTrace() {
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
    buffer->next_slot = 0;
  }
}

std::string TraceToChromeJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                  "\"tid\":%u,\"ts\":%lld,\"dur\":%lld}",
                  i == 0 ? "" : ",", e.name, e.cat, e.tid,
                  static_cast<long long>(e.start_us),
                  static_cast<long long>(e.dur_us));
    out += buf;
  }
  out += "]}";
  return out;
}

bool DumpTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::string json = TraceToChromeJson(SnapshotTrace());
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  return true;
}

}  // namespace iceberg
