#ifndef SMARTICEBERG_STATS_HLL_H_
#define SMARTICEBERG_STATS_HLL_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace iceberg {

/// A HyperLogLog-style distinct-count sketch (Flajolet et al.), sized for
/// the optimizer's needs: 256 registers gives a relative standard error of
/// about 1.04/sqrt(256) = 6.5%, far below what join-selectivity formulas
/// (1/max(ndv)) are sensitive to. Inputs are pre-hashed 64-bit values; the
/// caller mixes Value::Hash through SplitMix so low-entropy key spaces
/// (sequential ids) still spread over the registers.
class HllSketch {
 public:
  static constexpr size_t kRegisters = 256;  // 2^8, one byte each
  static constexpr int kIndexBits = 8;

  HllSketch() : registers_(kRegisters, 0) {}

  /// Finalizes a raw hash into register index + rank-of-first-one.
  void AddHash(uint64_t hash) {
    const uint64_t h = Mix(hash);
    const size_t idx = static_cast<size_t>(h >> (64 - kIndexBits));
    const uint64_t rest = h << kIndexBits;
    // Rank of the leading one bit in the remaining 56 bits (1-based); an
    // all-zero remainder ranks past the end.
    uint8_t rank = 1;
    uint64_t probe = rest;
    while (rank <= 64 - kIndexBits && (probe & (1ull << 63)) == 0) {
      ++rank;
      probe <<= 1;
    }
    if (rank > registers_[idx]) registers_[idx] = rank;
  }

  /// Standard HLL estimate with the small-range (linear counting)
  /// correction; large-range corrections are unnecessary at 64-bit hashes.
  double Estimate() const {
    double sum = 0.0;
    size_t zeros = 0;
    for (uint8_t r : registers_) {
      sum += std::ldexp(1.0, -static_cast<int>(r));
      if (r == 0) ++zeros;
    }
    const double m = static_cast<double>(kRegisters);
    const double alpha = 0.7213 / (1.0 + 1.079 / m);
    double est = alpha * m * m / sum;
    if (est <= 2.5 * m && zeros > 0) {
      est = m * std::log(m / static_cast<double>(zeros));
    }
    return est;
  }

  size_t ApproxBytes() const { return registers_.capacity(); }

  /// SplitMix64 finalizer: turns weak input hashes (e.g. identity hashes
  /// of small ints) into well-distributed 64-bit values.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

 private:
  std::vector<uint8_t> registers_;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_STATS_HLL_H_
