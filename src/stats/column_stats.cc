#include "src/stats/column_stats.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/stats/hll.h"

namespace iceberg {

namespace {

/// Numeric view of a value for histogram purposes (ints coerce to double,
/// matching Value::Compare's cross-type ordering).
bool NumericOf(const Value& v, double* out) {
  if (v.is_int()) {
    *out = static_cast<double>(v.AsInt());
    return true;
  }
  if (v.is_double()) {
    *out = v.AsDouble();
    return true;
  }
  return false;
}

constexpr double kDefaultEqSelectivity = 0.01;
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;

}  // namespace

double ColumnStats::FractionLessOrEqual(double x) const {
  if (bounds.empty()) return kDefaultRangeSelectivity;
  if (x < bounds.front()) return 0.0;
  if (x >= bounds.back()) return 1.0;
  // bounds[0] is the minimum (lower edge of bucket 1); buckets 1..n-1 each
  // hold 1/(n-1) of the sample mass.
  const size_t n = bounds.size();
  auto it = std::upper_bound(bounds.begin(), bounds.end(), x);
  size_t idx = static_cast<size_t>(it - bounds.begin());  // >= 1 here
  const double lo = bounds[idx - 1];
  const double hi = bounds[idx];
  const double within = hi > lo ? (x - lo) / (hi - lo) : 1.0;
  return (static_cast<double>(idx - 1) + within) /
         static_cast<double>(n - 1);
}

double ColumnStats::EqSelectivity(const Value& v) const {
  if (row_count == 0 || v.is_null()) return 0.0;
  if (!min.is_null() && (v < min || v > max)) return 0.0;
  if (ndv >= 1.0) {
    const double nonnull = 1.0 - null_fraction();
    return std::min(1.0, nonnull / ndv);
  }
  return kDefaultEqSelectivity;
}

double ColumnStats::RangeSelectivity(BinaryOp op, const Value& v) const {
  if (row_count == 0 || v.is_null()) return 0.0;
  double x = 0.0;
  if (!NumericOf(v, &x)) {
    // String ranges: only the trivially refutable cases via min/max.
    switch (op) {
      case BinaryOp::kLt:
      case BinaryOp::kLe:
        if (!min.is_null() && v < min) return 0.0;
        if (!max.is_null() && v > max) return 1.0 - null_fraction();
        break;
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        if (!max.is_null() && v > max) return 0.0;
        if (!min.is_null() && v < min) return 1.0 - null_fraction();
        break;
      default:
        break;
    }
    return kDefaultRangeSelectivity;
  }
  const double nonnull = 1.0 - null_fraction();
  const double eq = EqSelectivity(v);
  switch (op) {
    case BinaryOp::kEq:
      return eq;
    case BinaryOp::kNe:
      return std::max(0.0, nonnull - eq);
    case BinaryOp::kLe:
      return nonnull * FractionLessOrEqual(x);
    case BinaryOp::kLt:
      return std::max(0.0, nonnull * FractionLessOrEqual(x) - eq);
    case BinaryOp::kGt:
      return std::max(0.0, nonnull * (1.0 - FractionLessOrEqual(x)));
    case BinaryOp::kGe:
      return std::min(nonnull,
                      nonnull * (1.0 - FractionLessOrEqual(x)) + eq);
    default:
      return kDefaultRangeSelectivity;
  }
}

std::string ColumnStats::ToString() const {
  std::string out = "rows=" + std::to_string(row_count) +
                    " nulls=" + std::to_string(null_count) +
                    " ndv=" + std::to_string(static_cast<int64_t>(ndv + 0.5));
  if (!min.is_null()) {
    out += " min=" + min.ToString() + " max=" + max.ToString();
  }
  if (!bounds.empty()) {
    out += " histogram=" + std::to_string(bounds.size() - 1) + " buckets";
  }
  return out;
}

std::shared_ptr<const TableStats> TableStats::Build(const Table& table,
                                                    uint64_t version) {
  auto stats = std::make_shared<TableStats>();
  stats->version_ = version;
  stats->row_count_ = table.num_rows();
  const size_t num_cols = table.schema().num_columns();
  stats->columns_.resize(num_cols);

  const size_t rows = table.num_rows();
  // Deterministic stride sample: every k-th row so repeated builds over
  // the same version see the same sample (stats must not wobble run to
  // run — plans would).
  const size_t stride = rows <= kSampleCap ? 1 : (rows + kSampleCap - 1) / kSampleCap;

  std::vector<double> numeric;
  numeric.reserve(std::min(rows, kSampleCap));
  for (size_t c = 0; c < num_cols; ++c) {
    ColumnStats& cs = stats->columns_[c];
    cs.row_count = rows;
    HllSketch sketch;
    numeric.clear();
    bool all_numeric = true;
    size_t sampled = 0;
    size_t sampled_nulls = 0;
    for (size_t i = 0; i < rows; i += stride) {
      const Value& v = table.row(i)[c];
      ++sampled;
      if (v.is_null()) {
        ++sampled_nulls;
        continue;
      }
      sketch.AddHash(v.Hash());
      if (cs.min.is_null() || v < cs.min) cs.min = v;
      if (cs.max.is_null() || v > cs.max) cs.max = v;
      double x;
      if (NumericOf(v, &x)) {
        numeric.push_back(x);
      } else {
        all_numeric = false;
      }
    }
    // Scale sampled counts back to the full table.
    const double scale =
        sampled == 0 ? 0.0
                     : static_cast<double>(rows) / static_cast<double>(sampled);
    cs.null_count = static_cast<size_t>(
        static_cast<double>(sampled_nulls) * scale + 0.5);
    cs.ndv = std::min(static_cast<double>(rows), sketch.Estimate());
    if (all_numeric && numeric.size() >= 2) {
      std::sort(numeric.begin(), numeric.end());
      const size_t buckets =
          std::min(kHistogramBuckets, numeric.size() - 1);
      cs.bounds.reserve(buckets + 1);
      cs.bounds.push_back(numeric.front());
      for (size_t b = 1; b <= buckets; ++b) {
        const size_t pos = b * (numeric.size() - 1) / buckets;
        const double bound = numeric[pos];
        if (bound > cs.bounds.back()) cs.bounds.push_back(bound);
      }
      if (cs.bounds.size() < 2) cs.bounds.clear();  // constant column
    }
  }
  ICEBERG_COUNTER("cbo.stats_builds")->Increment();
  return stats;
}

size_t TableStats::ApproxBytes() const {
  size_t bytes = sizeof(TableStats);
  for (const ColumnStats& cs : columns_) {
    bytes += sizeof(ColumnStats) + cs.bounds.capacity() * sizeof(double);
    if (cs.min.is_string()) bytes += cs.min.AsString().capacity();
    if (cs.max.is_string()) bytes += cs.max.AsString().capacity();
  }
  return bytes;
}

std::string TableStats::ToString(const Schema& schema) const {
  std::string out = "rows=" + std::to_string(row_count_) +
                    " version=" + std::to_string(version_) + "\n";
  for (size_t c = 0; c < columns_.size() && c < schema.num_columns(); ++c) {
    out += "  " + schema.column(c).name + ": " + columns_[c].ToString() + "\n";
  }
  return out;
}

TableStatsPtr GetOrBuildTableStats(const Table& table) {
  const uint64_t v = table.version();
  std::lock_guard<std::mutex> lock(table.stats_mutex_);
  if (table.stats_cache_ == nullptr || table.stats_cache_->version() != v) {
    table.stats_cache_ = TableStats::Build(table, v);
    table.stats_bytes_ = table.stats_cache_->ApproxBytes();
  }
  return table.stats_cache_;
}

}  // namespace iceberg
