#ifndef SMARTICEBERG_STATS_COLUMN_STATS_H_
#define SMARTICEBERG_STATS_COLUMN_STATS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/expr/expr.h"
#include "src/storage/table.h"

namespace iceberg {

/// System-R style statistics of one column: null fraction, min/max,
/// NDV (HyperLogLog estimate), and an equi-depth histogram over the
/// numeric domain. Strings keep only null/NDV/min/max (selectivity of
/// string ranges falls back to defaults).
struct ColumnStats {
  size_t row_count = 0;
  size_t null_count = 0;
  double ndv = 0.0;  // distinct non-null values (sketch estimate)
  Value min;         // NULL when the column has no non-null values
  Value max;
  /// Equi-depth bucket upper bounds over the sampled non-null numeric
  /// values; bucket i covers (bounds[i-1], bounds[i]] with equal sample
  /// mass. Empty for string columns (or all-NULL columns).
  std::vector<double> bounds;

  double null_fraction() const {
    return row_count == 0
               ? 0.0
               : static_cast<double>(null_count) / static_cast<double>(row_count);
  }

  /// Estimated fraction of rows with column = v (0 when v falls outside
  /// the observed [min, max]).
  double EqSelectivity(const Value& v) const;

  /// Estimated fraction of rows satisfying `col OP v` for a comparison
  /// operator, via histogram interpolation (defaults when no histogram).
  double RangeSelectivity(BinaryOp op, const Value& v) const;

  /// Fraction of non-null values <= x by histogram interpolation.
  double FractionLessOrEqual(double x) const;

  std::string ToString() const;
};

/// Per-version statistics of one table, built lazily and cached on the
/// table beside the PR-5 column-chunk cache (same version-stamp
/// invalidation: a mutation bumps the version and the stale entry is
/// simply never looked up again).
class TableStats {
 public:
  /// Scans the table (sampled above kSampleCap rows) and builds stats for
  /// every column.
  static std::shared_ptr<const TableStats> Build(const Table& table,
                                                 uint64_t version);

  uint64_t version() const { return version_; }
  size_t row_count() const { return row_count_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnStats& column(size_t i) const { return columns_[i]; }

  size_t ApproxBytes() const;

  /// Human-readable rendering for the shell's \stats command.
  std::string ToString(const Schema& schema) const;

  /// Rows scanned per column before deterministic stride sampling kicks in.
  static constexpr size_t kSampleCap = 65536;
  static constexpr size_t kHistogramBuckets = 64;

 private:
  uint64_t version_ = 0;
  size_t row_count_ = 0;
  std::vector<ColumnStats> columns_;
};

/// Returns the statistics of the table's current version, building (and
/// caching on the table) them on first use. Thread-safe; mirrors
/// Table::GetOrBuildChunks. The cached entry is keyed by the version
/// stamp, so any mutation invalidates it lazily.
TableStatsPtr GetOrBuildTableStats(const Table& table);

}  // namespace iceberg

#endif  // SMARTICEBERG_STATS_COLUMN_STATS_H_
