#ifndef SMARTICEBERG_STORAGE_INDEX_H_
#define SMARTICEBERG_STORAGE_INDEX_H_

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/value.h"

namespace iceberg {

/// A secondary index over a table, mapping a composite key (projection of a
/// row onto the indexed columns) to the row ids having that key.
///
/// Two physical forms are provided:
///  - OrderedIndex: a B-tree-like std::map supporting range scans; this is
///    the analogue of the paper's "BT" secondary B-tree index.
///  - HashIndex: exact-match lookups only; the analogue of the hash lookup
///    PostgreSQL would use for equality predicates.
class OrderedIndex {
 public:
  explicit OrderedIndex(std::vector<size_t> key_columns)
      : key_columns_(std::move(key_columns)) {}

  const std::vector<size_t>& key_columns() const { return key_columns_; }

  void Insert(const Row& row, size_t row_id);

  /// Row ids whose key equals `key` exactly.
  std::vector<size_t> Lookup(const Row& key) const;

  /// Row ids whose key is in [low, high] lexicographically (inclusive on
  /// both ends). Used by range predicates on a prefix of the key.
  std::vector<size_t> RangeLookup(const Row& low, const Row& high) const;

  /// Row ids with key >= low (lexicographic). `strict` excludes equality on
  /// the full key.
  std::vector<size_t> LowerBoundScan(const Row& low, bool strict) const;

  /// Row ids whose key *prefix* (first high.size() columns) is <= high.
  std::vector<size_t> UpperBoundScan(const Row& high) const;

  size_t num_entries() const { return entries_.size(); }

  /// Approximate heap footprint: per-entry tree-node overhead plus the
  /// materialized key rows (counted into Table::ApproxBytes).
  size_t ApproxBytes() const;

 private:
  Row ExtractKey(const Row& row) const;

  std::vector<size_t> key_columns_;
  std::multimap<Row, size_t, RowLess> entries_;
};

class HashIndex {
 public:
  explicit HashIndex(std::vector<size_t> key_columns)
      : key_columns_(std::move(key_columns)) {}

  const std::vector<size_t>& key_columns() const { return key_columns_; }

  void Insert(const Row& row, size_t row_id);
  const std::vector<size_t>* Lookup(const Row& key) const;

  size_t num_keys() const { return entries_.size(); }

  /// Approximate heap footprint: buckets, per-key node overhead, key rows,
  /// and the row-id postings vectors.
  size_t ApproxBytes() const;

 private:
  Row ExtractKey(const Row& row) const;

  std::vector<size_t> key_columns_;
  std::unordered_map<Row, std::vector<size_t>, RowHash, RowEq> entries_;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_STORAGE_INDEX_H_
