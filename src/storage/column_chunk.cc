#include "src/storage/column_chunk.h"

#include <algorithm>
#include <cmath>

#include "src/storage/table.h"

namespace iceberg {

namespace {

/// Largest int64 magnitude exactly representable as a double. Zone bounds
/// are compared through double coercion (mirroring Value::Compare), so a
/// chunk containing ints beyond this range cannot carry a trustworthy
/// double zone; such chunks simply opt out of skipping.
constexpr int64_t kMaxExactInt = int64_t{1} << 53;

}  // namespace

std::shared_ptr<const ColumnChunkSet> ColumnChunkSet::Build(
    const Table& table, uint64_t version) {
  auto set = std::shared_ptr<ColumnChunkSet>(new ColumnChunkSet());
  set->version_ = version;
  const size_t n = table.num_rows();
  set->num_rows_ = n;
  const size_t ncols = table.schema().num_columns();
  size_t bytes = sizeof(ColumnChunkSet);
  for (size_t begin = 0; begin < n; begin += kChunkRows) {
    const size_t rows = std::min(kChunkRows, n - begin);
    ColumnChunk chunk;
    chunk.begin = begin;
    chunk.rows = rows;
    chunk.cols.resize(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      ChunkColumn& col = chunk.cols[c];
      col.cells.resize(rows);
      bool saw_int = false, saw_dbl = false, saw_str = false;
      bool saw_nan = false, saw_big = false, have_zone = false;
      for (size_t k = 0; k < rows; ++k) {
        const Value& v = table.row(begin + k)[c];
        ColCell& cell = col.cells[k];
        cell.tag = static_cast<uint8_t>(v.tag());
        switch (v.tag()) {
          case 1: {
            const int64_t x = v.int_unchecked();
            cell.i = x;
            saw_int = true;
            if (x > kMaxExactInt || x < -kMaxExactInt) saw_big = true;
            const double xd = static_cast<double>(x);
            if (!have_zone) {
              col.min_i = col.max_i = x;
              col.min_d = col.max_d = xd;
              have_zone = true;
            } else {
              col.min_i = std::min(col.min_i, x);
              col.max_i = std::max(col.max_i, x);
              col.min_d = std::min(col.min_d, xd);
              col.max_d = std::max(col.max_d, xd);
            }
            break;
          }
          case 2: {
            const double x = v.double_unchecked();
            cell.d = x;
            saw_dbl = true;
            if (std::isnan(x)) {
              saw_nan = true;
              break;
            }
            if (!have_zone) {
              col.min_d = col.max_d = x;
              have_zone = true;
            } else {
              col.min_d = std::min(col.min_d, x);
              col.max_d = std::max(col.max_d, x);
            }
            break;
          }
          case 3:
            cell.s = &v.string_unchecked();
            saw_str = true;
            break;
          default:
            col.has_nulls = true;
            break;
        }
      }
      if (!saw_int && !saw_dbl && !saw_str) {
        col.kind = ChunkColumn::kAllNull;
      } else if (saw_str) {
        col.kind = (saw_int || saw_dbl) ? ChunkColumn::kMixed
                                        : ChunkColumn::kString;
      } else if (saw_int && saw_dbl) {
        col.kind = ChunkColumn::kMixed;
      } else {
        col.kind = saw_int ? ChunkColumn::kInt : ChunkColumn::kDouble;
      }
      col.zone_valid = have_zone && !saw_str && !saw_nan && !saw_big;
      col.zone_int = col.zone_valid && !saw_dbl;
      if (!col.has_nulls && col.kind == ChunkColumn::kInt) {
        col.ints.resize(rows);
        for (size_t k = 0; k < rows; ++k) col.ints[k] = col.cells[k].i;
      } else if (!col.has_nulls && col.kind == ChunkColumn::kDouble) {
        col.dbls.resize(rows);
        for (size_t k = 0; k < rows; ++k) col.dbls[k] = col.cells[k].d;
      }
      bytes += sizeof(ChunkColumn) + col.cells.capacity() * sizeof(ColCell) +
               col.ints.capacity() * sizeof(int64_t) +
               col.dbls.capacity() * sizeof(double);
    }
    bytes += sizeof(ColumnChunk);
    set->chunks_.push_back(std::move(chunk));
  }
  set->approx_bytes_ = bytes;
  return set;
}

}  // namespace iceberg
