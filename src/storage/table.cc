#include "src/storage/table.h"

#include <algorithm>

#include "src/common/logging.h"

namespace iceberg {

Status Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " +
        std::to_string(schema_.num_columns()));
  }
  AppendUnchecked(std::move(row));
  return Status::OK();
}

void Table::AppendUnchecked(Row row) {
  size_t row_id = rows_.size();
  for (auto& idx : ordered_indexes_) idx->Insert(row, row_id);
  for (auto& idx : hash_indexes_) idx->Insert(row, row_id);
  rows_.push_back(std::move(row));
  BumpVersion();
}

Result<size_t> Table::BuildOrderedIndex(
    const std::vector<std::string>& columns) {
  std::vector<size_t> cols;
  for (const std::string& c : columns) {
    ICEBERG_ASSIGN_OR_RETURN(size_t idx, schema_.GetColumnIndex(c));
    cols.push_back(idx);
  }
  auto index = std::make_unique<OrderedIndex>(cols);
  for (size_t i = 0; i < rows_.size(); ++i) index->Insert(rows_[i], i);
  ordered_indexes_.push_back(std::move(index));
  return ordered_indexes_.size() - 1;
}

Result<size_t> Table::BuildHashIndex(const std::vector<std::string>& columns) {
  std::vector<size_t> cols;
  for (const std::string& c : columns) {
    ICEBERG_ASSIGN_OR_RETURN(size_t idx, schema_.GetColumnIndex(c));
    cols.push_back(idx);
  }
  auto index = std::make_unique<HashIndex>(cols);
  for (size_t i = 0; i < rows_.size(); ++i) index->Insert(rows_[i], i);
  hash_indexes_.push_back(std::move(index));
  return hash_indexes_.size() - 1;
}

void Table::UpdateRow(size_t i, Row row) {
  ICEBERG_CHECK(ordered_indexes_.empty() && hash_indexes_.empty());
  ICEBERG_CHECK(i < rows_.size());
  rows_[i] = std::move(row);
  BumpVersion();
}

void Table::SortRowsCanonical() {
  ICEBERG_CHECK(ordered_indexes_.empty() && hash_indexes_.empty());
  std::sort(rows_.begin(), rows_.end(), RowLess());
  BumpVersion();
}

size_t Table::BuildOrderedIndexByIds(std::vector<size_t> columns) {
  auto index = std::make_unique<OrderedIndex>(std::move(columns));
  for (size_t i = 0; i < rows_.size(); ++i) index->Insert(rows_[i], i);
  ordered_indexes_.push_back(std::move(index));
  return ordered_indexes_.size() - 1;
}

size_t Table::BuildHashIndexByIds(std::vector<size_t> columns) {
  auto index = std::make_unique<HashIndex>(std::move(columns));
  for (size_t i = 0; i < rows_.size(); ++i) index->Insert(rows_[i], i);
  hash_indexes_.push_back(std::move(index));
  return hash_indexes_.size() - 1;
}

const OrderedIndex* Table::FindOrderedIndex(
    const std::vector<size_t>& columns) const {
  for (const auto& idx : ordered_indexes_) {
    if (idx->key_columns() == columns) return idx.get();
  }
  return nullptr;
}

const HashIndex* Table::FindHashIndex(const std::vector<size_t>& columns,
                                      std::vector<size_t>* key_order) const {
  for (const auto& idx : hash_indexes_) {
    const std::vector<size_t>& key = idx->key_columns();
    if (key.size() != columns.size()) continue;
    std::vector<size_t> sorted_key = key;
    std::vector<size_t> sorted_cols = columns;
    std::sort(sorted_key.begin(), sorted_key.end());
    std::sort(sorted_cols.begin(), sorted_cols.end());
    if (sorted_key == sorted_cols) {
      if (key_order != nullptr) *key_order = key;
      return idx.get();
    }
  }
  return nullptr;
}

void Table::DropIndexes() {
  ordered_indexes_.clear();
  hash_indexes_.clear();
}

size_t Table::ApproxBytes() const {
  size_t bytes = 0;
  for (const Row& row : rows_) {
    bytes += sizeof(Row) + row.capacity() * sizeof(Value);
    for (const Value& v : row) {
      if (v.is_string()) bytes += v.AsString().capacity();
    }
  }
  for (const auto& idx : ordered_indexes_) bytes += idx->ApproxBytes();
  for (const auto& idx : hash_indexes_) bytes += idx->ApproxBytes();
  {
    std::lock_guard<std::mutex> lock(chunks_mutex_);
    if (chunks_cache_ != nullptr) bytes += chunks_cache_->approx_bytes();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (stats_cache_ != nullptr) bytes += stats_bytes_;
  }
  return bytes;
}

ColumnChunkSetPtr Table::GetOrBuildChunks() const {
  const uint64_t v = version();
  std::lock_guard<std::mutex> lock(chunks_mutex_);
  if (chunks_cache_ == nullptr || chunks_cache_->version() != v) {
    chunks_cache_ = ColumnChunkSet::Build(*this, v);
  }
  return chunks_cache_;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = name_.empty() ? "<anon>" : name_;
  out += " ";
  out += schema_.ToString();
  out += " rows=" + std::to_string(rows_.size()) + "\n";
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    out += "  " + RowToString(rows_[i]) + "\n";
  }
  if (rows_.size() > max_rows) out += "  ...\n";
  return out;
}

}  // namespace iceberg
