#ifndef SMARTICEBERG_STORAGE_TABLE_H_
#define SMARTICEBERG_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/storage/column_chunk.h"
#include "src/storage/index.h"

namespace iceberg {

class TableStats;  // src/stats/column_stats.h
using TableStatsPtr = std::shared_ptr<const TableStats>;

/// A pinned read point of one table: the mutation-counter version and the
/// row count it implied. Queries pin a snapshot per referenced table when
/// they are submitted; the serving layer validates the pins when execution
/// actually starts (admission may have queued the query across a
/// mutation), so a stale read surfaces as a clean retryable conflict
/// instead of racing with the writer. Derived state (columnar chunk sets,
/// cross-query NLJP caches) is keyed by the same version and therefore
/// invalidates lazily: stale entries are simply never looked up again.
struct TableSnapshot {
  uint64_t version = 0;
  size_t num_rows = 0;
};

/// An in-memory row-store relation with optional secondary indexes.
///
/// Tables are append-only (sufficient for the analytical workloads the paper
/// evaluates). Indexes built before loading are maintained on Append;
/// indexes can also be built after loading with BuildOrderedIndex /
/// BuildHashIndex.
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Movable but not copyable (the chunk cache and version counter are
  // identity state). A moved-from table keeps no cached chunks; the rows'
  // heap buffer moves wholesale, so borrowed string pointers in the moved
  // cache would actually survive, but dropping it keeps the invariant
  // simple: cache lifetime == (table identity, version).
  Table(Table&& other) noexcept
      : name_(std::move(other.name_)),
        schema_(std::move(other.schema_)),
        rows_(std::move(other.rows_)),
        ordered_indexes_(std::move(other.ordered_indexes_)),
        hash_indexes_(std::move(other.hash_indexes_)) {
    version_.store(other.version_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  void SetName(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; fails if the arity does not match the schema.
  Status Append(Row row);

  /// Appends without validation (hot path for generators).
  void AppendUnchecked(Row row);

  /// Replaces row `i` in place. Secondary indexes are NOT maintained; only
  /// valid for index-free tables (e.g. the NLJP parameter table).
  void UpdateRow(size_t i, Row row);

  /// Sorts rows into canonical (lexicographic Value) order — used to make
  /// parallel execution output deterministic across thread counts.
  /// Secondary indexes are NOT maintained; only valid for index-free
  /// tables (query results).
  void SortRowsCanonical();

  /// Builds an ordered (B-tree-like) index over the named columns.
  Result<size_t> BuildOrderedIndex(const std::vector<std::string>& columns);

  /// Builds a hash index over the named columns.
  Result<size_t> BuildHashIndex(const std::vector<std::string>& columns);

  /// Index builders addressed by column ordinal (used when copying index
  /// definitions onto derived tables).
  size_t BuildOrderedIndexByIds(std::vector<size_t> columns);
  size_t BuildHashIndexByIds(std::vector<size_t> columns);

  size_t num_ordered_indexes() const { return ordered_indexes_.size(); }
  size_t num_hash_indexes() const { return hash_indexes_.size(); }
  const OrderedIndex& ordered_index(size_t i) const {
    return *ordered_indexes_[i];
  }
  const HashIndex& hash_index(size_t i) const { return *hash_indexes_[i]; }

  /// Finds an ordered index whose key columns exactly match `columns`
  /// (in order); nullptr if none.
  const OrderedIndex* FindOrderedIndex(
      const std::vector<size_t>& columns) const;

  /// Finds a hash index whose key-column *set* matches `columns` (any
  /// order); returns nullptr if none. The matching key order is written to
  /// `key_order` so callers can build probe keys correctly.
  const HashIndex* FindHashIndex(const std::vector<size_t>& columns,
                                 std::vector<size_t>* key_order) const;

  /// Drops all secondary indexes (used by the Fig. 4 index-configuration
  /// experiments).
  void DropIndexes();

  /// Approximate memory footprint in bytes: stored rows plus secondary
  /// indexes (ordered + hash) plus any cached columnar chunk set plus any
  /// cached column statistics, so governor budgets see the whole physical
  /// footprint.
  size_t ApproxBytes() const;

  /// Monotonic mutation counter. Every row mutation (append, in-place
  /// update, canonical sort) bumps it; columnar chunk sets are stamped with
  /// the version they were built from and discarded on mismatch.
  uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

  /// Pins the current read point. Callers must hold whatever lock makes
  /// the (version, num_rows) pair coherent (the serving layer's catalog
  /// read lock); the table itself only guarantees the individual loads.
  TableSnapshot Snapshot() const {
    return TableSnapshot{version(), num_rows()};
  }

  /// Whether a pinned snapshot still describes the live table (no
  /// mutation since the pin).
  bool SnapshotValid(const TableSnapshot& snap) const {
    return snap.version == version() && snap.num_rows == num_rows();
  }

  /// Returns the columnar decomposition of the current version, building
  /// (and caching) it on first use. Thread-safe; concurrent planners share
  /// one build. The returned set is immutable and borrows the rows'
  /// strings, so callers must re-check `set->version() == version()`
  /// before using it after any point the table could have mutated.
  ColumnChunkSetPtr GetOrBuildChunks() const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  void BumpVersion() {
    version_.fetch_add(1, std::memory_order_relaxed);
  }

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
  std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
  std::atomic<uint64_t> version_{1};
  mutable std::mutex chunks_mutex_;
  mutable ColumnChunkSetPtr chunks_cache_;

  /// Column-statistics cache slot, managed by GetOrBuildTableStats
  /// (src/stats/column_stats.h) and keyed by the same version stamp as the
  /// chunk cache: any mutation bumps version_ and the stale entry is never
  /// looked up again. `stats_bytes_` mirrors the cached entry's footprint
  /// so ApproxBytes can account it without the full TableStats type.
  friend TableStatsPtr GetOrBuildTableStats(const Table& table);
  mutable std::mutex stats_mutex_;
  mutable std::shared_ptr<const TableStats> stats_cache_;
  mutable size_t stats_bytes_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace iceberg

#endif  // SMARTICEBERG_STORAGE_TABLE_H_
