#ifndef SMARTICEBERG_STORAGE_TABLE_H_
#define SMARTICEBERG_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/storage/index.h"

namespace iceberg {

/// An in-memory row-store relation with optional secondary indexes.
///
/// Tables are append-only (sufficient for the analytical workloads the paper
/// evaluates). Indexes built before loading are maintained on Append;
/// indexes can also be built after loading with BuildOrderedIndex /
/// BuildHashIndex.
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void SetName(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; fails if the arity does not match the schema.
  Status Append(Row row);

  /// Appends without validation (hot path for generators).
  void AppendUnchecked(Row row);

  /// Replaces row `i` in place. Secondary indexes are NOT maintained; only
  /// valid for index-free tables (e.g. the NLJP parameter table).
  void UpdateRow(size_t i, Row row);

  /// Sorts rows into canonical (lexicographic Value) order — used to make
  /// parallel execution output deterministic across thread counts.
  /// Secondary indexes are NOT maintained; only valid for index-free
  /// tables (query results).
  void SortRowsCanonical();

  /// Builds an ordered (B-tree-like) index over the named columns.
  Result<size_t> BuildOrderedIndex(const std::vector<std::string>& columns);

  /// Builds a hash index over the named columns.
  Result<size_t> BuildHashIndex(const std::vector<std::string>& columns);

  /// Index builders addressed by column ordinal (used when copying index
  /// definitions onto derived tables).
  size_t BuildOrderedIndexByIds(std::vector<size_t> columns);
  size_t BuildHashIndexByIds(std::vector<size_t> columns);

  size_t num_ordered_indexes() const { return ordered_indexes_.size(); }
  size_t num_hash_indexes() const { return hash_indexes_.size(); }
  const OrderedIndex& ordered_index(size_t i) const {
    return *ordered_indexes_[i];
  }
  const HashIndex& hash_index(size_t i) const { return *hash_indexes_[i]; }

  /// Finds an ordered index whose key columns exactly match `columns`
  /// (in order); nullptr if none.
  const OrderedIndex* FindOrderedIndex(
      const std::vector<size_t>& columns) const;

  /// Finds a hash index whose key-column *set* matches `columns` (any
  /// order); returns nullptr if none. The matching key order is written to
  /// `key_order` so callers can build probe keys correctly.
  const HashIndex* FindHashIndex(const std::vector<size_t>& columns,
                                 std::vector<size_t>* key_order) const;

  /// Drops all secondary indexes (used by the Fig. 4 index-configuration
  /// experiments).
  void DropIndexes();

  /// Approximate memory footprint of the stored rows in bytes.
  size_t ApproxBytes() const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
  std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace iceberg

#endif  // SMARTICEBERG_STORAGE_TABLE_H_
