#include "src/storage/index.h"

namespace iceberg {

Row OrderedIndex::ExtractKey(const Row& row) const {
  Row key;
  key.reserve(key_columns_.size());
  for (size_t c : key_columns_) key.push_back(row[c]);
  return key;
}

void OrderedIndex::Insert(const Row& row, size_t row_id) {
  entries_.emplace(ExtractKey(row), row_id);
}

std::vector<size_t> OrderedIndex::Lookup(const Row& key) const {
  std::vector<size_t> out;
  auto range = entries_.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<size_t> OrderedIndex::RangeLookup(const Row& low,
                                              const Row& high) const {
  std::vector<size_t> out;
  auto it = entries_.lower_bound(low);
  for (; it != entries_.end(); ++it) {
    if (CompareRows(it->first, high) > 0) break;
    out.push_back(it->second);
  }
  return out;
}

std::vector<size_t> OrderedIndex::LowerBoundScan(const Row& low,
                                                 bool strict) const {
  std::vector<size_t> out;
  auto it = strict ? entries_.upper_bound(low) : entries_.lower_bound(low);
  for (; it != entries_.end(); ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<size_t> OrderedIndex::UpperBoundScan(const Row& high) const {
  std::vector<size_t> out;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    // Compare only the first high.size() key columns so a partial bound on
    // an index prefix includes all rows sharing the boundary prefix.
    bool within = true;
    for (size_t i = 0; i < high.size() && i < it->first.size(); ++i) {
      int c = it->first[i].Compare(high[i]);
      if (c > 0) {
        within = false;
        break;
      }
      if (c < 0) break;
    }
    if (!within) break;
    out.push_back(it->second);
  }
  return out;
}

Row HashIndex::ExtractKey(const Row& row) const {
  Row key;
  key.reserve(key_columns_.size());
  for (size_t c : key_columns_) key.push_back(row[c]);
  return key;
}

void HashIndex::Insert(const Row& row, size_t row_id) {
  entries_[ExtractKey(row)].push_back(row_id);
}

const std::vector<size_t>* HashIndex::Lookup(const Row& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

}  // namespace iceberg
