#include "src/storage/index.h"

namespace iceberg {

namespace {

/// Payload bytes of a materialized key row (header + values + string heap).
size_t RowFootprint(const Row& row) {
  size_t bytes = sizeof(Row) + row.capacity() * sizeof(Value);
  for (const Value& v : row) {
    if (v.is_string()) bytes += v.AsString().capacity();
  }
  return bytes;
}

/// Rough per-node bookkeeping overhead of the standard containers
/// (rb-tree node pointers/color, or hash-node next pointer + cached hash).
constexpr size_t kTreeNodeOverhead = 40;
constexpr size_t kHashNodeOverhead = 16;

}  // namespace

Row OrderedIndex::ExtractKey(const Row& row) const {
  Row key;
  key.reserve(key_columns_.size());
  for (size_t c : key_columns_) key.push_back(row[c]);
  return key;
}

void OrderedIndex::Insert(const Row& row, size_t row_id) {
  entries_.emplace(ExtractKey(row), row_id);
}

std::vector<size_t> OrderedIndex::Lookup(const Row& key) const {
  std::vector<size_t> out;
  auto range = entries_.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<size_t> OrderedIndex::RangeLookup(const Row& low,
                                              const Row& high) const {
  std::vector<size_t> out;
  auto it = entries_.lower_bound(low);
  for (; it != entries_.end(); ++it) {
    if (CompareRows(it->first, high) > 0) break;
    out.push_back(it->second);
  }
  return out;
}

std::vector<size_t> OrderedIndex::LowerBoundScan(const Row& low,
                                                 bool strict) const {
  std::vector<size_t> out;
  auto it = strict ? entries_.upper_bound(low) : entries_.lower_bound(low);
  for (; it != entries_.end(); ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<size_t> OrderedIndex::UpperBoundScan(const Row& high) const {
  std::vector<size_t> out;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    // Compare only the first high.size() key columns so a partial bound on
    // an index prefix includes all rows sharing the boundary prefix.
    bool within = true;
    for (size_t i = 0; i < high.size() && i < it->first.size(); ++i) {
      int c = it->first[i].Compare(high[i]);
      if (c > 0) {
        within = false;
        break;
      }
      if (c < 0) break;
    }
    if (!within) break;
    out.push_back(it->second);
  }
  return out;
}

size_t OrderedIndex::ApproxBytes() const {
  size_t bytes = sizeof(*this) + key_columns_.capacity() * sizeof(size_t);
  for (const auto& entry : entries_) {
    bytes += kTreeNodeOverhead + sizeof(entry) + RowFootprint(entry.first);
  }
  return bytes;
}

size_t HashIndex::ApproxBytes() const {
  size_t bytes = sizeof(*this) + key_columns_.capacity() * sizeof(size_t) +
                 entries_.bucket_count() * sizeof(void*);
  for (const auto& entry : entries_) {
    bytes += kHashNodeOverhead + sizeof(entry) + RowFootprint(entry.first) +
             entry.second.capacity() * sizeof(size_t);
  }
  return bytes;
}

Row HashIndex::ExtractKey(const Row& row) const {
  Row key;
  key.reserve(key_columns_.size());
  for (size_t c : key_columns_) key.push_back(row[c]);
  return key;
}

void HashIndex::Insert(const Row& row, size_t row_id) {
  entries_[ExtractKey(row)].push_back(row_id);
}

const std::vector<size_t>* HashIndex::Lookup(const Row& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

}  // namespace iceberg
