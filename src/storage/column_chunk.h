#ifndef SMARTICEBERG_STORAGE_COLUMN_CHUNK_H_
#define SMARTICEBERG_STORAGE_COLUMN_CHUNK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace iceberg {

class Table;

/// One lane of a columnar chunk: a tagged scalar whose tag order matches
/// Value's alternative order (NULL, int, double, string) and the compiled
/// engine's CVal tags, so the batch VM lowers cells with a tag copy and no
/// re-dispatch. Strings are borrowed pointers into the owning table's rows;
/// they stay valid exactly as long as the chunk set's version matches the
/// table's (see Table::GetOrBuildChunks).
struct ColCell {
  uint8_t tag = 0;  // 0 = NULL, 1 = int, 2 = double, 3 = string
  union {
    int64_t i;
    double d;
    const std::string* s;
  };
};

/// One column of one chunk: lane-ready cells for every row, optional dense
/// typed lanes for pure numeric populations, and a min/max zone over the
/// non-NULL values.
struct ChunkColumn {
  /// Shape of the chunk's population for this column. kInt/kDouble/kString
  /// mean every non-NULL value has that type; kMixed means types vary.
  enum Kind : uint8_t { kAllNull, kInt, kDouble, kString, kMixed };
  Kind kind = kAllNull;
  bool has_nulls = false;

  /// Tagged cells for every row of the chunk (always populated).
  std::vector<ColCell> cells;

  /// Dense typed lanes, present only when the population is purely int64
  /// (ints) or purely double (dbls) with no NULLs — the tight-loop layout.
  std::vector<int64_t> ints;
  std::vector<double> dbls;

  /// Zone map: [min, max] over the non-NULL population. Valid only when
  /// every non-NULL value is numeric and no NaN was seen. zone_int means
  /// every value is an int64, so the int fields are exact (the double
  /// fields are always filled for coerced comparisons).
  bool zone_valid = false;
  bool zone_int = false;
  int64_t min_i = 0, max_i = 0;
  double min_d = 0.0, max_d = 0.0;
};

/// A ~1024-row horizontal slice of a table, decomposed into columns.
struct ColumnChunk {
  size_t begin = 0;  // first covered table row id
  size_t rows = 0;
  std::vector<ChunkColumn> cols;
};

/// An immutable columnar projection of a Table at one version: fixed-size
/// chunks of tagged cells plus typed lanes and zone maps. Built lazily per
/// table (Table::GetOrBuildChunks) and discarded when the table mutates —
/// the stored string pointers borrow from the table's rows, so a chunk set
/// must never outlive the version it was built from.
class ColumnChunkSet {
 public:
  static constexpr size_t kChunkRows = 1024;

  /// Decomposes `table` (stamped with `version`, the table's version at
  /// build time).
  static std::shared_ptr<const ColumnChunkSet> Build(const Table& table,
                                                     uint64_t version);

  uint64_t version() const { return version_; }
  size_t num_rows() const { return num_rows_; }
  const std::vector<ColumnChunk>& chunks() const { return chunks_; }

  /// Approximate heap footprint of the decomposition (cells + typed lanes);
  /// charged to governor budgets and Table::ApproxBytes.
  size_t approx_bytes() const { return approx_bytes_; }

 private:
  ColumnChunkSet() = default;

  uint64_t version_ = 0;
  size_t num_rows_ = 0;
  std::vector<ColumnChunk> chunks_;
  size_t approx_bytes_ = 0;
};

using ColumnChunkSetPtr = std::shared_ptr<const ColumnChunkSet>;

}  // namespace iceberg

#endif  // SMARTICEBERG_STORAGE_COLUMN_CHUNK_H_
