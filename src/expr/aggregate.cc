#include "src/expr/aggregate.h"

#include "src/common/logging.h"

namespace iceberg {

bool IsAlgebraic(AggFunc func) {
  return func != AggFunc::kCountDistinct;
}

size_t PartialArity(AggFunc func) {
  switch (func) {
    case AggFunc::kAvg:
      return 2;
    case AggFunc::kCountDistinct:
      ICEBERG_CHECK(false);  // holistic; no bound-size partial exists
      return 0;
    default:
      return 1;
  }
}

void Accumulator::Add(const Value& v) {
  if (func_ == AggFunc::kCountStar) {
    ++count_;
    return;
  }
  if (v.is_null()) return;
  switch (func_) {
    case AggFunc::kCount:
      ++count_;
      break;
    case AggFunc::kCountDistinct:
      distinct_.insert(Row{v});
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      ++count_;
      sum_ += v.AsDouble();
      if (!v.is_int()) sum_is_int_ = false;
      break;
    case AggFunc::kMin:
      if (min_.is_null() || v.Compare(min_) < 0) min_ = v;
      break;
    case AggFunc::kMax:
      if (max_.is_null() || v.Compare(max_) > 0) max_ = v;
      break;
    default:
      ICEBERG_CHECK(false);
  }
}

Value Accumulator::Final() const {
  switch (func_) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int(count_);
    case AggFunc::kCountDistinct:
      return Value::Int(static_cast<int64_t>(distinct_.size()));
    case AggFunc::kSum:
      if (count_ == 0) return Value::Null();
      if (sum_is_int_) return Value::Int(static_cast<int64_t>(sum_));
      return Value::Double(sum_);
    case AggFunc::kAvg:
      if (count_ == 0) return Value::Null();
      return Value::Double(sum_ / static_cast<double>(count_));
    case AggFunc::kMin:
      return min_;
    case AggFunc::kMax:
      return max_;
  }
  return Value::Null();
}

Row Accumulator::PartialState() const {
  switch (func_) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return {Value::Int(count_)};
    case AggFunc::kSum:
      return {count_ == 0 ? Value::Null()
                          : (sum_is_int_
                                 ? Value::Int(static_cast<int64_t>(sum_))
                                 : Value::Double(sum_))};
    case AggFunc::kAvg:
      return {Value::Double(sum_), Value::Int(count_)};
    case AggFunc::kMin:
      return {min_};
    case AggFunc::kMax:
      return {max_};
    case AggFunc::kCountDistinct:
      ICEBERG_CHECK(false);
  }
  return {};
}

void Accumulator::MergePartial(const Row& state) {
  ICEBERG_CHECK(state.size() == PartialArity(func_));
  switch (func_) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      count_ += state[0].AsInt();
      break;
    case AggFunc::kSum:
      if (!state[0].is_null()) {
        ++count_;  // mark non-empty
        sum_ += state[0].AsDouble();
        if (!state[0].is_int()) sum_is_int_ = false;
      }
      break;
    case AggFunc::kAvg:
      sum_ += state[0].AsDouble();
      count_ += state[1].AsInt();
      break;
    case AggFunc::kMin:
      if (!state[0].is_null() &&
          (min_.is_null() || state[0].Compare(min_) < 0)) {
        min_ = state[0];
      }
      break;
    case AggFunc::kMax:
      if (!state[0].is_null() &&
          (max_.is_null() || state[0].Compare(max_) > 0)) {
        max_ = state[0];
      }
      break;
    case AggFunc::kCountDistinct:
      ICEBERG_CHECK(false);
  }
}

Accumulator Accumulator::FromPartial(AggFunc func, const Row& state) {
  Accumulator acc(func);
  acc.MergePartial(state);
  return acc;
}

void Accumulator::MergeFrom(const Accumulator& other) {
  ICEBERG_CHECK(func_ == other.func_);
  if (func_ == AggFunc::kCountDistinct) {
    distinct_.insert(other.distinct_.begin(), other.distinct_.end());
    return;
  }
  if (func_ == AggFunc::kSum) {
    count_ += other.count_;
    sum_ += other.sum_;
    sum_is_int_ = sum_is_int_ && other.sum_is_int_;
    return;
  }
  if (other.count_ != 0 || func_ == AggFunc::kMin || func_ == AggFunc::kMax ||
      func_ == AggFunc::kAvg || func_ == AggFunc::kCount ||
      func_ == AggFunc::kCountStar) {
    MergePartial(other.PartialState());
  }
}

}  // namespace iceberg
