#ifndef SMARTICEBERG_EXPR_EVALUATOR_H_
#define SMARTICEBERG_EXPR_EVALUATOR_H_

#include <unordered_map>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/expr/expr.h"

namespace iceberg {

/// Maps aggregate nodes (by identity) to their computed values for a group,
/// letting Evaluate handle post-aggregation expressions such as HAVING
/// conditions.
using AggValueMap = std::unordered_map<const Expr*, Value>;

/// Evaluates a bound expression against a row.
///
/// Column references must have resolved_index set (see plan/binder).
/// Aggregate nodes are looked up in `agg_values`; evaluating an aggregate
/// without a value map is an internal error.
///
/// Three-valued logic: comparisons and arithmetic on NULL yield NULL;
/// AND/OR use SQL Kleene semantics; NOT NULL is NULL. Predicate call sites
/// should use Value::AsBool() which treats NULL as false.
Value Evaluate(const Expr& e, const Row& row,
               const AggValueMap* agg_values = nullptr);

/// Convenience wrapper for predicates: evaluates and applies AsBool().
bool EvaluatePredicate(const Expr& e, const Row& row,
                       const AggValueMap* agg_values = nullptr);

}  // namespace iceberg

#endif  // SMARTICEBERG_EXPR_EVALUATOR_H_
