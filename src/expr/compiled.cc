#include "src/expr/compiled.h"

#include <atomic>
#include <cmath>

#include "src/common/logging.h"

namespace iceberg {

namespace {

std::atomic<bool> g_compiled_enabled{true};

// ----- CVal helpers ---------------------------------------------------------

inline CVal NullCV() { return CVal{}; }

inline CVal IntCV(int64_t v) {
  CVal c;
  c.tag = CVal::kInt;
  c.i = v;
  return c;
}

inline CVal DoubleCV(double v) {
  CVal c;
  c.tag = CVal::kDouble;
  c.d = v;
  return c;
}

inline CVal BoolCV(bool v) { return IntCV(v ? 1 : 0); }

inline CVal FromValue(const Value& v) {
  // Single dispatch on the variant index; Value's alternative order matches
  // the CVal tag order (NULL, int, double, string) by construction.
  CVal c;
  switch (v.tag()) {
    case 1:
      c.tag = CVal::kInt;
      c.i = v.int_unchecked();
      break;
    case 2:
      c.tag = CVal::kDouble;
      c.d = v.double_unchecked();
      break;
    case 3:
      c.tag = CVal::kStr;
      c.s = &v.string_unchecked();
      break;
    default:
      break;  // NULL
  }
  return c;
}

inline Value ToValue(const CVal& c) {
  switch (c.tag) {
    case CVal::kNull:
      return Value::Null();
    case CVal::kInt:
      return Value::Int(c.i);
    case CVal::kDouble:
      return Value::Double(c.d);
    case CVal::kStr:
      return Value::Str(*c.s);
  }
  return Value::Null();
}

inline double AsDoubleCV(const CVal& c) {
  return c.tag == CVal::kInt ? static_cast<double>(c.i) : c.d;
}

/// Value::AsBool semantics: NULL false, strings non-empty, numerics
/// non-zero.
inline bool Truthy(const CVal& c) {
  switch (c.tag) {
    case CVal::kNull:
      return false;
    case CVal::kInt:
      return c.i != 0;
    case CVal::kDouble:
      return c.d != 0.0;
    case CVal::kStr:
      return !c.s->empty();
  }
  return false;
}

/// Mirrors Value::Compare for non-NULL operands: numerics by value with
/// int<->double coercion, numerics before strings, strings bytewise.
inline int CompareCV(const CVal& l, const CVal& r) {
  const bool ln = l.tag == CVal::kInt || l.tag == CVal::kDouble;
  const bool rn = r.tag == CVal::kInt || r.tag == CVal::kDouble;
  if (ln && rn) {
    if (l.tag == CVal::kInt && r.tag == CVal::kInt) {
      return l.i < r.i ? -1 : (l.i > r.i ? 1 : 0);
    }
    double a = AsDoubleCV(l);
    double b = AsDoubleCV(r);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (ln) return -1;
  if (rn) return 1;
  int c = l.s->compare(*r.s);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

/// Lowers a comparison operator to its acceptance mask: bit (c+1) is set
/// when the operator passes for Compare() result c in {-1, 0, 1}.
inline uint8_t MaskOf(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return 0b010;
    case BinaryOp::kNe:
      return 0b101;
    case BinaryOp::kLt:
      return 0b001;
    case BinaryOp::kLe:
      return 0b011;
    case BinaryOp::kGt:
      return 0b100;
    case BinaryOp::kGe:
      return 0b110;
    default:
      ICEBERG_CHECK(false);
      return 0;
  }
}

inline bool ApplyMask(uint8_t mask, int c) { return (mask >> (c + 1)) & 1; }

/// Three-valued result of a fused column-vs-int64-constant comparison.
inline CVal CmpColConstIntCV(const ExprInstr& in, const Row& row) {
  const Value& col = row[static_cast<size_t>(in.a)];
  switch (col.tag()) {
    case 1: {
      int64_t v = col.int_unchecked();
      int c = (v > in.imm) - (v < in.imm);
      return BoolCV(ApplyMask(in.cmask, c));
    }
    case 2: {
      double v = col.double_unchecked();
      double b = static_cast<double>(in.imm);
      int c = (v > b) - (v < b);
      return BoolCV(ApplyMask(in.cmask, c));
    }
    case 3:
      // Strings order after numerics (Value::Compare).
      return BoolCV(ApplyMask(in.cmask, 1));
    default:
      return NullCV();
  }
}

/// Three-valued result of a fused column-vs-column comparison.
inline CVal CmpColColCV(const ExprInstr& in, const Row& row) {
  const Value& lv = row[static_cast<size_t>(in.a)];
  const Value& rv = row[static_cast<size_t>(in.b)];
  // Int-int is the dominant residual shape; compare branchlessly.
  if (lv.tag() == 1 && rv.tag() == 1) {
    int64_t a = lv.int_unchecked();
    int64_t b = rv.int_unchecked();
    return BoolCV(ApplyMask(in.cmask, (a > b) - (a < b)));
  }
  const CVal l = FromValue(lv);
  const CVal r = FromValue(rv);
  if (l.tag == CVal::kNull || r.tag == CVal::kNull) return NullCV();
  return BoolCV(ApplyMask(in.cmask, CompareCV(l, r)));
}

/// Kleene combine of the not-short-circuited AND case: definite false
/// dominates NULL.
inline CVal AndCombineCV(const CVal& l, const CVal& r) {
  if (r.tag != CVal::kNull && !Truthy(r)) return BoolCV(false);
  if (l.tag == CVal::kNull || r.tag == CVal::kNull) return NullCV();
  return BoolCV(true);
}

inline CVal OrCombineCV(const CVal& l, const CVal& r) {
  if (r.tag != CVal::kNull && Truthy(r)) return BoolCV(true);
  if (l.tag == CVal::kNull || r.tag == CVal::kNull) return NullCV();
  return BoolCV(false);
}

/// Arithmetic with the interpreter's coercions: NULL (or the string
/// carve-out) yields NULL, int op int stays int, anything else promotes to
/// double; division is always double and yields NULL on a zero divisor.
inline CVal ArithCV(BinaryOp op, const CVal& l, const CVal& r) {
  if (l.tag == CVal::kNull || r.tag == CVal::kNull || l.tag == CVal::kStr ||
      r.tag == CVal::kStr) {
    return NullCV();
  }
  switch (op) {
    case BinaryOp::kAdd:
      if (l.tag == CVal::kInt && r.tag == CVal::kInt) return IntCV(l.i + r.i);
      return DoubleCV(AsDoubleCV(l) + AsDoubleCV(r));
    case BinaryOp::kSub:
      if (l.tag == CVal::kInt && r.tag == CVal::kInt) return IntCV(l.i - r.i);
      return DoubleCV(AsDoubleCV(l) - AsDoubleCV(r));
    case BinaryOp::kMul:
      if (l.tag == CVal::kInt && r.tag == CVal::kInt) return IntCV(l.i * r.i);
      return DoubleCV(AsDoubleCV(l) * AsDoubleCV(r));
    case BinaryOp::kDiv: {
      double d = AsDoubleCV(r);
      return d == 0.0 ? NullCV() : DoubleCV(AsDoubleCV(l) / d);
    }
    default:
      ICEBERG_CHECK(false);
      return NullCV();
  }
}

// ----- compile-time analysis ------------------------------------------------

bool HasColumnOrAgg(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef || e.kind == ExprKind::kAggregate) {
    return true;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && HasColumnOrAgg(*c)) return true;
  }
  return false;
}

/// True when the subtree can be folded by the reference interpreter without
/// touching a row: no columns/aggregates, and no arithmetic/negation over a
/// string literal (which would throw in Evaluate).
bool SafeToFold(const Expr& e) {
  if (HasColumnOrAgg(e)) return false;
  if (e.kind == ExprKind::kBinary && !IsComparisonOp(e.bop) &&
      e.bop != BinaryOp::kAnd && e.bop != BinaryOp::kOr) {
    for (const ExprPtr& c : e.children) {
      if (c->kind == ExprKind::kLiteral && c->literal.is_string()) {
        return false;
      }
    }
  }
  if (e.kind == ExprKind::kUnary && e.uop == UnaryOp::kNeg &&
      e.children[0]->kind == ExprKind::kLiteral &&
      e.children[0]->literal.is_string()) {
    return false;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && !SafeToFold(*c)) return false;
  }
  return true;
}

}  // namespace

bool CompiledExprEnabled() {
  return g_compiled_enabled.load(std::memory_order_relaxed);
}

void SetCompiledExprEnabled(bool enabled) {
  g_compiled_enabled.store(enabled, std::memory_order_relaxed);
}

// ----- compiler -------------------------------------------------------------

namespace {

class Compiler {
 public:
  void Emit(const Expr& e) {
    // Constant folding: literal-only subtrees evaluate once at compile
    // time (division by zero folds to NULL like the interpreter).
    if (e.kind != ExprKind::kLiteral && SafeToFold(e)) {
      Row empty;
      PushConst(Evaluate(e, empty));
      return;
    }
    switch (e.kind) {
      case ExprKind::kLiteral:
        PushConst(e.literal);
        return;
      case ExprKind::kColumnRef: {
        ICEBERG_DCHECK(e.resolved_index >= 0);
        ExprInstr in;
        in.op = ExprOp::kPushColumn;
        in.a = e.resolved_index;
        Push(in, +1);
        return;
      }
      case ExprKind::kAggregate: {
        ExprInstr in;
        in.op = ExprOp::kPushAgg;
        in.agg = &e;
        Push(in, +1);
        return;
      }
      case ExprKind::kUnary: {
        Emit(*e.children[0]);
        ExprInstr in;
        in.op = e.uop == UnaryOp::kNot ? ExprOp::kNot : ExprOp::kNeg;
        Push(in, 0);
        return;
      }
      case ExprKind::kBinary:
        EmitBinary(e);
        return;
    }
  }

  std::vector<ExprInstr> code;
  std::vector<Value> consts;
  size_t max_depth = 0;
  size_t fused = 0;

 private:
  void Push(ExprInstr in, int delta) {
    code.push_back(in);
    depth_ += delta;
    if (static_cast<size_t>(depth_) > max_depth) {
      max_depth = static_cast<size_t>(depth_);
    }
  }

  void PushConst(Value v) {
    // Pool dedup keeps programs with repeated literals small.
    for (size_t i = 0; i < consts.size(); ++i) {
      if (consts[i].type() == v.type() &&
          (consts[i].is_null() || consts[i].Compare(v) == 0)) {
        ExprInstr in;
        in.op = ExprOp::kPushConst;
        in.a = static_cast<int32_t>(i);
        Push(in, +1);
        return;
      }
    }
    consts.push_back(std::move(v));
    ExprInstr in;
    in.op = ExprOp::kPushConst;
    in.a = static_cast<int32_t>(consts.size() - 1);
    Push(in, +1);
  }

  void EmitBinary(const Expr& e) {
    const Expr& l = *e.children[0];
    const Expr& r = *e.children[1];
    if (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr) {
      // Short-circuit block: [L] JumpIfDecided [R] Combine. The jump
      // canonicalizes the decided value (FALSE for AND, TRUE for OR) and
      // skips the right side, exactly matching the interpreter's order of
      // evaluation.
      Emit(l);
      size_t jump_at = code.size();
      ExprInstr j;
      j.op = e.bop == BinaryOp::kAnd ? ExprOp::kAndJump : ExprOp::kOrJump;
      Push(j, 0);
      Emit(r);
      ExprInstr c;
      c.op = e.bop == BinaryOp::kAnd ? ExprOp::kAndCombine
                                     : ExprOp::kOrCombine;
      Push(c, -1);
      code[jump_at].a = static_cast<int32_t>(code.size());
      return;
    }
    if (IsComparisonOp(e.bop)) {
      // Fused fast paths for the hot shapes of join residuals: column vs
      // int64 constant and column vs column.
      if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kLiteral &&
          r.literal.is_int()) {
        ExprInstr in;
        in.op = ExprOp::kCmpColConstInt;
        in.bop = e.bop;
        in.cmask = MaskOf(e.bop);
        in.a = l.resolved_index;
        in.imm = r.literal.AsInt();
        Push(in, +1);
        ++fused;
        return;
      }
      if (r.kind == ExprKind::kColumnRef && l.kind == ExprKind::kLiteral &&
          l.literal.is_int()) {
        ExprInstr in;
        in.op = ExprOp::kCmpColConstInt;
        in.bop = FlipComparison(e.bop);
        in.cmask = MaskOf(in.bop);
        in.a = r.resolved_index;
        in.imm = l.literal.AsInt();
        Push(in, +1);
        ++fused;
        return;
      }
      if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kColumnRef) {
        ExprInstr in;
        in.op = ExprOp::kCmpColCol;
        in.bop = e.bop;
        in.cmask = MaskOf(e.bop);
        in.a = l.resolved_index;
        in.b = r.resolved_index;
        Push(in, +1);
        ++fused;
        return;
      }
      Emit(l);
      Emit(r);
      ExprInstr in;
      in.op = ExprOp::kCompare;
      in.bop = e.bop;
      in.cmask = MaskOf(e.bop);
      Push(in, -1);
      return;
    }
    Emit(l);
    Emit(r);
    ExprInstr in;
    in.bop = e.bop;  // ArithCV dispatches on this in the merged super-ops
    switch (e.bop) {
      case BinaryOp::kAdd:
        in.op = ExprOp::kAdd;
        break;
      case BinaryOp::kSub:
        in.op = ExprOp::kSub;
        break;
      case BinaryOp::kMul:
        in.op = ExprOp::kMul;
        break;
      case BinaryOp::kDiv:
        in.op = ExprOp::kDiv;
        break;
      default:
        ICEBERG_CHECK(false);
    }
    Push(in, -1);
  }

  int depth_ = 0;
};

/// Merges adjacent instructions into super-ops: fused comparisons absorb a
/// following Kleene combine, and pushes feeding arithmetic or a general
/// comparison collapse into in-place ops. A window is only merged when no
/// jump lands strictly inside it (jump targets at the window start re-run
/// the whole merged op, which is the original semantics); targets are then
/// remapped onto the rewritten stream. One left-to-right pass suffices for
/// the left-leaning chains the parser produces: a merged op is itself the
/// "top" producer for the next window.
void PeepholeOptimize(std::vector<ExprInstr>* code) {
  auto is_arith = [](const ExprInstr& in) {
    return in.op == ExprOp::kAdd || in.op == ExprOp::kSub ||
           in.op == ExprOp::kMul || in.op == ExprOp::kDiv;
  };
  auto is_jump = [](const ExprInstr& in) {
    return in.op == ExprOp::kAndJump || in.op == ExprOp::kOrJump;
  };
  const size_t n = code->size();
  std::vector<char> is_target(n + 1, 0);
  for (const ExprInstr& in : *code) {
    if (is_jump(in)) is_target[static_cast<size_t>(in.a)] = 1;
  }
  std::vector<ExprInstr> out;
  out.reserve(n);
  std::vector<int32_t> remap(n + 1, -1);
  size_t i = 0;
  while (i < n) {
    remap[i] = static_cast<int32_t>(out.size());
    const ExprInstr& a = (*code)[i];
    if (i + 2 < n && !is_target[i + 1] && !is_target[i + 2] &&
        a.op == ExprOp::kPushColumn &&
        (*code)[i + 1].op == ExprOp::kPushColumn &&
        is_arith((*code)[i + 2])) {
      ExprInstr m = (*code)[i + 2];
      m.op = ExprOp::kArithColCol;
      m.a = a.a;
      m.b = (*code)[i + 1].a;
      out.push_back(m);
      i += 3;
      continue;
    }
    if (i + 1 < n && !is_target[i + 1]) {
      const ExprInstr& b = (*code)[i + 1];
      ExprInstr m;
      bool merged = true;
      if (a.op == ExprOp::kPushColumn && is_arith(b)) {
        m = b;
        m.op = ExprOp::kArithTopCol;
        m.a = a.a;
      } else if (a.op == ExprOp::kPushConst && is_arith(b)) {
        m = b;
        m.op = ExprOp::kArithTopConst;
        m.a = a.a;
      } else if (a.op == ExprOp::kPushConst && b.op == ExprOp::kCompare) {
        m = b;
        m.op = ExprOp::kCmpTopConst;
        m.a = a.a;
      } else if (a.op == ExprOp::kPushColumn && b.op == ExprOp::kCompare) {
        m = b;
        m.op = ExprOp::kCmpTopCol;
        m.a = a.a;
      } else if (a.op == ExprOp::kCmpColConstInt &&
                 (b.op == ExprOp::kAndCombine ||
                  b.op == ExprOp::kOrCombine)) {
        m = a;
        m.op = b.op == ExprOp::kAndCombine ? ExprOp::kAndCombineCmpCI
                                           : ExprOp::kOrCombineCmpCI;
      } else if (a.op == ExprOp::kCmpColCol &&
                 (b.op == ExprOp::kAndCombine ||
                  b.op == ExprOp::kOrCombine)) {
        m = a;
        m.op = b.op == ExprOp::kAndCombine ? ExprOp::kAndCombineCmpCC
                                           : ExprOp::kOrCombineCmpCC;
      } else {
        merged = false;
      }
      if (merged) {
        out.push_back(m);
        i += 2;
        continue;
      }
    }
    out.push_back(a);
    ++i;
  }
  remap[n] = static_cast<int32_t>(out.size());
  for (ExprInstr& in : out) {
    if (is_jump(in)) in.a = remap[static_cast<size_t>(in.a)];
  }
  *code = std::move(out);
}

}  // namespace

CompiledExpr CompiledExpr::Compile(const Expr& e) {
  Compiler c;
  c.Emit(e);
  PeepholeOptimize(&c.code);
  CompiledExpr prog;
  prog.code_ = std::move(c.code);
  prog.consts_ = std::move(c.consts);
  prog.max_stack_ = c.max_depth;
  prog.fused_ops_ = c.fused;
  prog.const_cvals_.reserve(prog.consts_.size());
  for (const Value& v : prog.consts_) {
    prog.const_cvals_.push_back(FromValue(v));  // string ptrs now stable
  }
  return prog;
}

const CVal* CompiledExpr::Execute(const Row& row, EvalScratch* scratch,
                                  const AggValueMap* agg_values) const {
  if (scratch->stack.size() < max_stack_) scratch->stack.resize(max_stack_);
  CVal* stack = scratch->stack.data();
  size_t sp = 0;  // next free slot
  const size_t n = code_.size();
  for (size_t pc = 0; pc < n; ++pc) {
    const ExprInstr& in = code_[pc];
    switch (in.op) {
      case ExprOp::kPushConst:
        stack[sp++] = const_cvals_[static_cast<size_t>(in.a)];
        break;
      case ExprOp::kPushColumn: {
        ICEBERG_DCHECK(static_cast<size_t>(in.a) < row.size());
        stack[sp++] = FromValue(row[static_cast<size_t>(in.a)]);
        break;
      }
      case ExprOp::kPushAgg: {
        ICEBERG_CHECK(agg_values != nullptr);
        auto it = agg_values->find(in.agg);
        ICEBERG_CHECK(it != agg_values->end());
        stack[sp++] = FromValue(it->second);
        break;
      }
      case ExprOp::kCompare: {
        const CVal r = stack[--sp];
        CVal& l = stack[sp - 1];
        if (l.tag == CVal::kNull || r.tag == CVal::kNull) {
          l = NullCV();
        } else {
          l = BoolCV(ApplyMask(in.cmask, CompareCV(l, r)));
        }
        break;
      }
      case ExprOp::kAdd:
      case ExprOp::kSub:
      case ExprOp::kMul:
      case ExprOp::kDiv: {
        const CVal r = stack[--sp];
        CVal& l = stack[sp - 1];
        l = ArithCV(in.bop, l, r);
        break;
      }
      case ExprOp::kNot: {
        CVal& v = stack[sp - 1];
        v = v.tag == CVal::kNull ? NullCV() : BoolCV(!Truthy(v));
        break;
      }
      case ExprOp::kNeg: {
        CVal& v = stack[sp - 1];
        if (v.tag == CVal::kInt) {
          v = IntCV(-v.i);
        } else if (v.tag == CVal::kDouble) {
          v = DoubleCV(-v.d);
        } else {
          v = NullCV();
        }
        break;
      }
      case ExprOp::kAndJump: {
        CVal& l = stack[sp - 1];
        if (l.tag != CVal::kNull && !Truthy(l)) {
          l = BoolCV(false);
          pc = static_cast<size_t>(in.a) - 1;
        }
        break;
      }
      case ExprOp::kOrJump: {
        CVal& l = stack[sp - 1];
        if (l.tag != CVal::kNull && Truthy(l)) {
          l = BoolCV(true);
          pc = static_cast<size_t>(in.a) - 1;
        }
        break;
      }
      case ExprOp::kAndCombine: {
        const CVal r = stack[--sp];
        CVal& l = stack[sp - 1];
        l = AndCombineCV(l, r);
        break;
      }
      case ExprOp::kOrCombine: {
        const CVal r = stack[--sp];
        CVal& l = stack[sp - 1];
        l = OrCombineCV(l, r);
        break;
      }
      case ExprOp::kCmpColConstInt:
        stack[sp++] = CmpColConstIntCV(in, row);
        break;
      case ExprOp::kCmpColCol:
        stack[sp++] = CmpColColCV(in, row);
        break;
      case ExprOp::kArithColCol: {
        const CVal l = FromValue(row[static_cast<size_t>(in.a)]);
        const CVal r = FromValue(row[static_cast<size_t>(in.b)]);
        stack[sp++] = ArithCV(in.bop, l, r);
        break;
      }
      case ExprOp::kArithTopCol: {
        CVal& l = stack[sp - 1];
        l = ArithCV(in.bop, l, FromValue(row[static_cast<size_t>(in.a)]));
        break;
      }
      case ExprOp::kArithTopConst: {
        CVal& l = stack[sp - 1];
        l = ArithCV(in.bop, l, const_cvals_[static_cast<size_t>(in.a)]);
        break;
      }
      case ExprOp::kCmpTopConst: {
        CVal& l = stack[sp - 1];
        const CVal& r = const_cvals_[static_cast<size_t>(in.a)];
        if (l.tag == CVal::kInt && r.tag == CVal::kInt) {
          l = BoolCV(ApplyMask(in.cmask, (l.i > r.i) - (l.i < r.i)));
        } else if (l.tag == CVal::kNull || r.tag == CVal::kNull) {
          l = NullCV();
        } else {
          l = BoolCV(ApplyMask(in.cmask, CompareCV(l, r)));
        }
        break;
      }
      case ExprOp::kCmpTopCol: {
        CVal& l = stack[sp - 1];
        const CVal r = FromValue(row[static_cast<size_t>(in.a)]);
        if (l.tag == CVal::kNull || r.tag == CVal::kNull) {
          l = NullCV();
        } else {
          l = BoolCV(ApplyMask(in.cmask, CompareCV(l, r)));
        }
        break;
      }
      case ExprOp::kAndCombineCmpCI: {
        CVal& l = stack[sp - 1];
        l = AndCombineCV(l, CmpColConstIntCV(in, row));
        break;
      }
      case ExprOp::kOrCombineCmpCI: {
        CVal& l = stack[sp - 1];
        l = OrCombineCV(l, CmpColConstIntCV(in, row));
        break;
      }
      case ExprOp::kAndCombineCmpCC: {
        CVal& l = stack[sp - 1];
        l = AndCombineCV(l, CmpColColCV(in, row));
        break;
      }
      case ExprOp::kOrCombineCmpCC: {
        CVal& l = stack[sp - 1];
        l = OrCombineCV(l, CmpColColCV(in, row));
        break;
      }
    }
  }
  ICEBERG_DCHECK(sp == 1);
  return &stack[0];
}

Value CompiledExpr::Run(const Row& row, EvalScratch* scratch,
                        const AggValueMap* agg_values) const {
  ICEBERG_DCHECK(valid());
  return ToValue(*Execute(row, scratch, agg_values));
}

bool CompiledExpr::RunPredicate(const Row& row, EvalScratch* scratch,
                                const AggValueMap* agg_values) const {
  ICEBERG_DCHECK(valid());
  return Truthy(*Execute(row, scratch, agg_values));
}

std::string CompiledExpr::Summary() const {
  std::string out = std::to_string(code_.size()) + " ops";
  if (fused_ops_ > 0) out += ", " + std::to_string(fused_ops_) + " fused";
  if (!consts_.empty()) {
    out += ", " + std::to_string(consts_.size()) + " const";
  }
  return out;
}

std::vector<CompiledExpr> CompileAll(const std::vector<ExprPtr>& exprs) {
  std::vector<CompiledExpr> progs;
  if (!CompiledExprEnabled()) return progs;
  progs.reserve(exprs.size());
  for (const ExprPtr& e : exprs) progs.push_back(CompiledExpr::Compile(*e));
  return progs;
}

}  // namespace iceberg
