#include "src/expr/compiled.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace iceberg {

namespace {

std::atomic<bool> g_compiled_enabled{true};

bool InitialPlanCacheEnabled() {
  const char* env = std::getenv("ICEBERG_PLAN_CACHE");
  return env == nullptr || env[0] != '0';
}

std::atomic<bool> g_plan_cache_enabled{InitialPlanCacheEnabled()};

// ----- CVal helpers ---------------------------------------------------------

inline CVal NullCV() { return CVal{}; }

inline CVal IntCV(int64_t v) {
  CVal c;
  c.tag = CVal::kInt;
  c.i = v;
  return c;
}

inline CVal DoubleCV(double v) {
  CVal c;
  c.tag = CVal::kDouble;
  c.d = v;
  return c;
}

inline CVal BoolCV(bool v) { return IntCV(v ? 1 : 0); }

inline CVal FromValue(const Value& v) {
  // Single dispatch on the variant index; Value's alternative order matches
  // the CVal tag order (NULL, int, double, string) by construction.
  CVal c;
  switch (v.tag()) {
    case 1:
      c.tag = CVal::kInt;
      c.i = v.int_unchecked();
      break;
    case 2:
      c.tag = CVal::kDouble;
      c.d = v.double_unchecked();
      break;
    case 3:
      c.tag = CVal::kStr;
      c.s = &v.string_unchecked();
      break;
    default:
      break;  // NULL
  }
  return c;
}

inline Value ToValue(const CVal& c) {
  switch (c.tag) {
    case CVal::kNull:
      return Value::Null();
    case CVal::kInt:
      return Value::Int(c.i);
    case CVal::kDouble:
      return Value::Double(c.d);
    case CVal::kStr:
      return Value::Str(*c.s);
  }
  return Value::Null();
}

inline double AsDoubleCV(const CVal& c) {
  return c.tag == CVal::kInt ? static_cast<double>(c.i) : c.d;
}

/// Value::AsBool semantics: NULL false, strings non-empty, numerics
/// non-zero.
inline bool Truthy(const CVal& c) {
  switch (c.tag) {
    case CVal::kNull:
      return false;
    case CVal::kInt:
      return c.i != 0;
    case CVal::kDouble:
      return c.d != 0.0;
    case CVal::kStr:
      return !c.s->empty();
  }
  return false;
}

/// Mirrors Value::Compare for non-NULL operands: numerics by value with
/// int<->double coercion, numerics before strings, strings bytewise.
inline int CompareCV(const CVal& l, const CVal& r) {
  const bool ln = l.tag == CVal::kInt || l.tag == CVal::kDouble;
  const bool rn = r.tag == CVal::kInt || r.tag == CVal::kDouble;
  if (ln && rn) {
    if (l.tag == CVal::kInt && r.tag == CVal::kInt) {
      return l.i < r.i ? -1 : (l.i > r.i ? 1 : 0);
    }
    double a = AsDoubleCV(l);
    double b = AsDoubleCV(r);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (ln) return -1;
  if (rn) return 1;
  int c = l.s->compare(*r.s);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

/// Lowers a comparison operator to its acceptance mask: bit (c+1) is set
/// when the operator passes for Compare() result c in {-1, 0, 1}.
inline uint8_t MaskOf(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return 0b010;
    case BinaryOp::kNe:
      return 0b101;
    case BinaryOp::kLt:
      return 0b001;
    case BinaryOp::kLe:
      return 0b011;
    case BinaryOp::kGt:
      return 0b100;
    case BinaryOp::kGe:
      return 0b110;
    default:
      ICEBERG_CHECK(false);
      return 0;
  }
}

inline bool ApplyMask(uint8_t mask, int c) { return (mask >> (c + 1)) & 1; }

/// Three-valued result of a fused column-vs-int64-constant comparison.
inline CVal CmpColConstIntCV(const ExprInstr& in, const Row& row) {
  const Value& col = row[static_cast<size_t>(in.a)];
  switch (col.tag()) {
    case 1: {
      int64_t v = col.int_unchecked();
      int c = (v > in.imm) - (v < in.imm);
      return BoolCV(ApplyMask(in.cmask, c));
    }
    case 2: {
      double v = col.double_unchecked();
      double b = static_cast<double>(in.imm);
      int c = (v > b) - (v < b);
      return BoolCV(ApplyMask(in.cmask, c));
    }
    case 3:
      // Strings order after numerics (Value::Compare).
      return BoolCV(ApplyMask(in.cmask, 1));
    default:
      return NullCV();
  }
}

/// Three-valued result of a fused column-vs-column comparison.
inline CVal CmpColColCV(const ExprInstr& in, const Row& row) {
  const Value& lv = row[static_cast<size_t>(in.a)];
  const Value& rv = row[static_cast<size_t>(in.b)];
  // Int-int is the dominant residual shape; compare branchlessly.
  if (lv.tag() == 1 && rv.tag() == 1) {
    int64_t a = lv.int_unchecked();
    int64_t b = rv.int_unchecked();
    return BoolCV(ApplyMask(in.cmask, (a > b) - (a < b)));
  }
  const CVal l = FromValue(lv);
  const CVal r = FromValue(rv);
  if (l.tag == CVal::kNull || r.tag == CVal::kNull) return NullCV();
  return BoolCV(ApplyMask(in.cmask, CompareCV(l, r)));
}

/// Kleene combine of the not-short-circuited AND case: definite false
/// dominates NULL.
inline CVal AndCombineCV(const CVal& l, const CVal& r) {
  if (r.tag != CVal::kNull && !Truthy(r)) return BoolCV(false);
  if (l.tag == CVal::kNull || r.tag == CVal::kNull) return NullCV();
  return BoolCV(true);
}

inline CVal OrCombineCV(const CVal& l, const CVal& r) {
  if (r.tag != CVal::kNull && Truthy(r)) return BoolCV(true);
  if (l.tag == CVal::kNull || r.tag == CVal::kNull) return NullCV();
  return BoolCV(false);
}

/// Symmetric Kleene combines for linear (batch) execution. The scalar
/// AndCombineCV/OrCombineCV above assume the left value was canonicalized
/// by the preceding short-circuit jump; in batch mode the jumps are no-ops,
/// so the left value can be a non-canonical definite-false (AND) or
/// definite-true (OR) and both operands must be inspected. Equivalent to
/// short-circuit evaluation because programs are pure.
inline CVal AndCombineSymCV(const CVal& l, const CVal& r) {
  const bool lf = l.tag != CVal::kNull && !Truthy(l);
  const bool rf = r.tag != CVal::kNull && !Truthy(r);
  if (lf || rf) return BoolCV(false);
  if (l.tag == CVal::kNull || r.tag == CVal::kNull) return NullCV();
  return BoolCV(true);
}

inline CVal OrCombineSymCV(const CVal& l, const CVal& r) {
  const bool lt = l.tag != CVal::kNull && Truthy(l);
  const bool rt = r.tag != CVal::kNull && Truthy(r);
  if (lt || rt) return BoolCV(true);
  if (l.tag == CVal::kNull || r.tag == CVal::kNull) return NullCV();
  return BoolCV(false);
}

/// Lifts a columnar cell to a stack value. ColCell's tag order matches
/// CVal's by construction (both mirror Value's alternative order).
inline CVal CellCV(const ColCell& c) {
  CVal v;
  v.tag = static_cast<CVal::Tag>(c.tag);
  switch (c.tag) {
    case 1:
      v.i = c.i;
      break;
    case 2:
      v.d = c.d;
      break;
    case 3:
      v.s = c.s;
      break;
    default:
      break;
  }
  return v;
}

/// CmpColConstIntCV over an already-lifted operand (batch lanes).
inline CVal CmpConstIntLaneCV(const ExprInstr& in, const CVal& col) {
  switch (col.tag) {
    case CVal::kInt: {
      const int c = (col.i > in.imm) - (col.i < in.imm);
      return BoolCV(ApplyMask(in.cmask, c));
    }
    case CVal::kDouble: {
      const double b = static_cast<double>(in.imm);
      const int c = (col.d > b) - (col.d < b);
      return BoolCV(ApplyMask(in.cmask, c));
    }
    case CVal::kStr:
      return BoolCV(ApplyMask(in.cmask, 1));
    default:
      return NullCV();
  }
}

/// General masked comparison over lifted operands (batch lanes).
inline CVal CmpLaneCV(uint8_t cmask, const CVal& l, const CVal& r) {
  if (l.tag == CVal::kNull || r.tag == CVal::kNull) return NullCV();
  if (l.tag == CVal::kInt && r.tag == CVal::kInt) {
    return BoolCV(ApplyMask(cmask, (l.i > r.i) - (l.i < r.i)));
  }
  return BoolCV(ApplyMask(cmask, CompareCV(l, r)));
}

/// Arithmetic with the interpreter's coercions: NULL (or the string
/// carve-out) yields NULL, int op int stays int, anything else promotes to
/// double; division is always double and yields NULL on a zero divisor.
inline CVal ArithCV(BinaryOp op, const CVal& l, const CVal& r) {
  if (l.tag == CVal::kNull || r.tag == CVal::kNull || l.tag == CVal::kStr ||
      r.tag == CVal::kStr) {
    return NullCV();
  }
  switch (op) {
    case BinaryOp::kAdd:
      if (l.tag == CVal::kInt && r.tag == CVal::kInt) return IntCV(l.i + r.i);
      return DoubleCV(AsDoubleCV(l) + AsDoubleCV(r));
    case BinaryOp::kSub:
      if (l.tag == CVal::kInt && r.tag == CVal::kInt) return IntCV(l.i - r.i);
      return DoubleCV(AsDoubleCV(l) - AsDoubleCV(r));
    case BinaryOp::kMul:
      if (l.tag == CVal::kInt && r.tag == CVal::kInt) return IntCV(l.i * r.i);
      return DoubleCV(AsDoubleCV(l) * AsDoubleCV(r));
    case BinaryOp::kDiv: {
      double d = AsDoubleCV(r);
      return d == 0.0 ? NullCV() : DoubleCV(AsDoubleCV(l) / d);
    }
    default:
      ICEBERG_CHECK(false);
      return NullCV();
  }
}

// ----- compile-time analysis ------------------------------------------------

bool HasColumnOrAgg(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef || e.kind == ExprKind::kAggregate) {
    return true;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && HasColumnOrAgg(*c)) return true;
  }
  return false;
}

/// True when the subtree can be folded by the reference interpreter without
/// touching a row: no columns/aggregates, and no arithmetic/negation over a
/// string literal (which would throw in Evaluate).
bool SafeToFold(const Expr& e) {
  if (HasColumnOrAgg(e)) return false;
  if (e.kind == ExprKind::kBinary && !IsComparisonOp(e.bop) &&
      e.bop != BinaryOp::kAnd && e.bop != BinaryOp::kOr) {
    for (const ExprPtr& c : e.children) {
      if (c->kind == ExprKind::kLiteral && c->literal.is_string()) {
        return false;
      }
    }
  }
  if (e.kind == ExprKind::kUnary && e.uop == UnaryOp::kNeg &&
      e.children[0]->kind == ExprKind::kLiteral &&
      e.children[0]->literal.is_string()) {
    return false;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && !SafeToFold(*c)) return false;
  }
  return true;
}

}  // namespace

bool CompiledExprEnabled() {
  return g_compiled_enabled.load(std::memory_order_relaxed);
}

void SetCompiledExprEnabled(bool enabled) {
  g_compiled_enabled.store(enabled, std::memory_order_relaxed);
}

bool PlanCacheEnabled() {
  return g_plan_cache_enabled.load(std::memory_order_relaxed);
}

void SetPlanCacheEnabled(bool enabled) {
  g_plan_cache_enabled.store(enabled, std::memory_order_relaxed);
}

// ----- compiler -------------------------------------------------------------

namespace {

class Compiler {
 public:
  /// `params` maps parameter literal nodes to their slot; non-null enables
  /// parameterized mode (program templates for the plan cache).
  explicit Compiler(const std::unordered_map<const Expr*, int>* params)
      : params_(params) {}

  void Emit(const Expr& e) {
    // Constant folding: literal-only subtrees evaluate once at compile
    // time (division by zero folds to NULL like the interpreter). In
    // parameterized mode folding is suppressed wholesale: a foldable
    // subtree is literal-only, so folding would bake parameter values
    // into the program where Rebind could no longer reach them.
    if (params_ == nullptr && e.kind != ExprKind::kLiteral && SafeToFold(e)) {
      Row empty;
      PushConst(Evaluate(e, empty));
      return;
    }
    switch (e.kind) {
      case ExprKind::kLiteral: {
        const int slot = ParamSlotOf(e);
        if (slot >= 0) {
          PushParamConst(e.literal, slot);
        } else {
          PushConst(e.literal);
        }
        return;
      }
      case ExprKind::kColumnRef: {
        ICEBERG_DCHECK(e.resolved_index >= 0);
        ExprInstr in;
        in.op = ExprOp::kPushColumn;
        in.a = e.resolved_index;
        Push(in, +1);
        return;
      }
      case ExprKind::kAggregate: {
        ExprInstr in;
        in.op = ExprOp::kPushAgg;
        in.agg = &e;
        Push(in, +1);
        return;
      }
      case ExprKind::kUnary: {
        Emit(*e.children[0]);
        ExprInstr in;
        in.op = e.uop == UnaryOp::kNot ? ExprOp::kNot : ExprOp::kNeg;
        Push(in, 0);
        return;
      }
      case ExprKind::kBinary:
        EmitBinary(e);
        return;
    }
  }

  /// Parameter slot of a literal node, -1 when it is not a parameter.
  int ParamSlotOf(const Expr& e) const {
    if (params_ == nullptr || e.kind != ExprKind::kLiteral) return -1;
    auto it = params_->find(&e);
    return it == params_->end() ? -1 : it->second;
  }

  std::vector<ExprInstr> code;
  std::vector<Value> consts;
  std::vector<std::pair<int32_t, int32_t>> const_slots;  // pool idx → slot
  size_t max_depth = 0;
  size_t fused = 0;

 private:
  void Push(ExprInstr in, int delta) {
    code.push_back(in);
    depth_ += delta;
    if (static_cast<size_t>(depth_) > max_depth) {
      max_depth = static_cast<size_t>(depth_);
    }
  }

  void PushConst(Value v) {
    // Pool dedup keeps programs with repeated literals small. Parameter
    // pool entries are excluded: patching one must never alias another
    // use of the same value.
    for (size_t i = 0; i < consts.size(); ++i) {
      if (i < is_param_const_.size() && is_param_const_[i]) continue;
      if (consts[i].type() == v.type() &&
          (consts[i].is_null() || consts[i].Compare(v) == 0)) {
        ExprInstr in;
        in.op = ExprOp::kPushConst;
        in.a = static_cast<int32_t>(i);
        Push(in, +1);
        return;
      }
    }
    consts.push_back(std::move(v));
    is_param_const_.push_back(0);
    ExprInstr in;
    in.op = ExprOp::kPushConst;
    in.a = static_cast<int32_t>(consts.size() - 1);
    Push(in, +1);
  }

  /// A parameter literal always gets a private pool entry plus a bind-site
  /// record so Rebind can patch it in place.
  void PushParamConst(const Value& v, int slot) {
    consts.push_back(v);
    is_param_const_.push_back(1);
    const int32_t pool = static_cast<int32_t>(consts.size() - 1);
    const_slots.emplace_back(pool, slot);
    ExprInstr in;
    in.op = ExprOp::kPushConst;
    in.a = pool;
    Push(in, +1);
  }

  void EmitBinary(const Expr& e) {
    const Expr& l = *e.children[0];
    const Expr& r = *e.children[1];
    if (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr) {
      // Short-circuit block: [L] JumpIfDecided [R] Combine. The jump
      // canonicalizes the decided value (FALSE for AND, TRUE for OR) and
      // skips the right side, exactly matching the interpreter's order of
      // evaluation.
      Emit(l);
      size_t jump_at = code.size();
      ExprInstr j;
      j.op = e.bop == BinaryOp::kAnd ? ExprOp::kAndJump : ExprOp::kOrJump;
      Push(j, 0);
      Emit(r);
      ExprInstr c;
      c.op = e.bop == BinaryOp::kAnd ? ExprOp::kAndCombine
                                     : ExprOp::kOrCombine;
      Push(c, -1);
      code[jump_at].a = static_cast<int32_t>(code.size());
      return;
    }
    if (IsComparisonOp(e.bop)) {
      // Fused fast paths for the hot shapes of join residuals: column vs
      // int64 constant and column vs column.
      if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kLiteral &&
          r.literal.is_int()) {
        ExprInstr in;
        in.op = ExprOp::kCmpColConstInt;
        in.bop = e.bop;
        in.cmask = MaskOf(e.bop);
        in.a = l.resolved_index;
        in.imm = r.literal.AsInt();
        in.imm_slot = ParamSlotOf(r);
        Push(in, +1);
        ++fused;
        return;
      }
      if (r.kind == ExprKind::kColumnRef && l.kind == ExprKind::kLiteral &&
          l.literal.is_int()) {
        ExprInstr in;
        in.op = ExprOp::kCmpColConstInt;
        in.bop = FlipComparison(e.bop);
        in.cmask = MaskOf(in.bop);
        in.a = r.resolved_index;
        in.imm = l.literal.AsInt();
        in.imm_slot = ParamSlotOf(l);
        Push(in, +1);
        ++fused;
        return;
      }
      if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kColumnRef) {
        ExprInstr in;
        in.op = ExprOp::kCmpColCol;
        in.bop = e.bop;
        in.cmask = MaskOf(e.bop);
        in.a = l.resolved_index;
        in.b = r.resolved_index;
        Push(in, +1);
        ++fused;
        return;
      }
      Emit(l);
      Emit(r);
      ExprInstr in;
      in.op = ExprOp::kCompare;
      in.bop = e.bop;
      in.cmask = MaskOf(e.bop);
      Push(in, -1);
      return;
    }
    Emit(l);
    Emit(r);
    ExprInstr in;
    in.bop = e.bop;  // ArithCV dispatches on this in the merged super-ops
    switch (e.bop) {
      case BinaryOp::kAdd:
        in.op = ExprOp::kAdd;
        break;
      case BinaryOp::kSub:
        in.op = ExprOp::kSub;
        break;
      case BinaryOp::kMul:
        in.op = ExprOp::kMul;
        break;
      case BinaryOp::kDiv:
        in.op = ExprOp::kDiv;
        break;
      default:
        ICEBERG_CHECK(false);
    }
    Push(in, -1);
  }

  const std::unordered_map<const Expr*, int>* params_ = nullptr;
  std::vector<char> is_param_const_;
  int depth_ = 0;
};

/// Merges adjacent instructions into super-ops: fused comparisons absorb a
/// following Kleene combine, and pushes feeding arithmetic or a general
/// comparison collapse into in-place ops. A window is only merged when no
/// jump lands strictly inside it (jump targets at the window start re-run
/// the whole merged op, which is the original semantics); targets are then
/// remapped onto the rewritten stream. One left-to-right pass suffices for
/// the left-leaning chains the parser produces: a merged op is itself the
/// "top" producer for the next window.
void PeepholeOptimize(std::vector<ExprInstr>* code) {
  auto is_arith = [](const ExprInstr& in) {
    return in.op == ExprOp::kAdd || in.op == ExprOp::kSub ||
           in.op == ExprOp::kMul || in.op == ExprOp::kDiv;
  };
  auto is_jump = [](const ExprInstr& in) {
    return in.op == ExprOp::kAndJump || in.op == ExprOp::kOrJump;
  };
  const size_t n = code->size();
  std::vector<char> is_target(n + 1, 0);
  for (const ExprInstr& in : *code) {
    if (is_jump(in)) is_target[static_cast<size_t>(in.a)] = 1;
  }
  std::vector<ExprInstr> out;
  out.reserve(n);
  std::vector<int32_t> remap(n + 1, -1);
  size_t i = 0;
  while (i < n) {
    remap[i] = static_cast<int32_t>(out.size());
    const ExprInstr& a = (*code)[i];
    if (i + 2 < n && !is_target[i + 1] && !is_target[i + 2] &&
        a.op == ExprOp::kPushColumn &&
        (*code)[i + 1].op == ExprOp::kPushColumn &&
        is_arith((*code)[i + 2])) {
      ExprInstr m = (*code)[i + 2];
      m.op = ExprOp::kArithColCol;
      m.a = a.a;
      m.b = (*code)[i + 1].a;
      out.push_back(m);
      i += 3;
      continue;
    }
    if (i + 1 < n && !is_target[i + 1]) {
      const ExprInstr& b = (*code)[i + 1];
      ExprInstr m;
      bool merged = true;
      if (a.op == ExprOp::kPushColumn && is_arith(b)) {
        m = b;
        m.op = ExprOp::kArithTopCol;
        m.a = a.a;
      } else if (a.op == ExprOp::kPushConst && is_arith(b)) {
        m = b;
        m.op = ExprOp::kArithTopConst;
        m.a = a.a;
      } else if (a.op == ExprOp::kPushConst && b.op == ExprOp::kCompare) {
        m = b;
        m.op = ExprOp::kCmpTopConst;
        m.a = a.a;
      } else if (a.op == ExprOp::kPushColumn && b.op == ExprOp::kCompare) {
        m = b;
        m.op = ExprOp::kCmpTopCol;
        m.a = a.a;
      } else if (a.op == ExprOp::kCmpColConstInt &&
                 (b.op == ExprOp::kAndCombine ||
                  b.op == ExprOp::kOrCombine)) {
        m = a;
        m.op = b.op == ExprOp::kAndCombine ? ExprOp::kAndCombineCmpCI
                                           : ExprOp::kOrCombineCmpCI;
      } else if (a.op == ExprOp::kCmpColCol &&
                 (b.op == ExprOp::kAndCombine ||
                  b.op == ExprOp::kOrCombine)) {
        m = a;
        m.op = b.op == ExprOp::kAndCombine ? ExprOp::kAndCombineCmpCC
                                           : ExprOp::kOrCombineCmpCC;
      } else {
        merged = false;
      }
      if (merged) {
        out.push_back(m);
        i += 2;
        continue;
      }
    }
    out.push_back(a);
    ++i;
  }
  remap[n] = static_cast<int32_t>(out.size());
  for (ExprInstr& in : out) {
    if (is_jump(in)) in.a = remap[static_cast<size_t>(in.a)];
  }
  *code = std::move(out);
}

}  // namespace

CompiledExpr CompiledExpr::BuildProgram(
    const Expr& e, const std::unordered_map<const Expr*, int>* params) {
  Compiler c(params);
  c.Emit(e);
  PeepholeOptimize(&c.code);
  CompiledExpr prog;
  prog.code_ = std::move(c.code);
  prog.consts_ = std::move(c.consts);
  prog.const_slots_ = std::move(c.const_slots);
  prog.max_stack_ = c.max_depth;
  prog.fused_ops_ = c.fused;
  prog.const_cvals_.reserve(prog.consts_.size());
  for (const Value& v : prog.consts_) {
    prog.const_cvals_.push_back(FromValue(v));  // string ptrs now stable
  }
  prog.batchable_ = true;
  for (const ExprInstr& in : prog.code_) {
    if (in.op == ExprOp::kPushAgg) prog.batchable_ = false;
  }
  // Zone checks come from the expression *tree*, not the instruction
  // stream: only top-level AND conjuncts may refute a whole chunk (a
  // comparison under an OR or NOT says nothing about the conjunction).
  std::function<void(const Expr&)> collect = [&](const Expr& node) {
    if (node.kind == ExprKind::kBinary && node.bop == BinaryOp::kAnd) {
      collect(*node.children[0]);
      collect(*node.children[1]);
      return;
    }
    if (node.kind != ExprKind::kBinary || !IsComparisonOp(node.bop)) return;
    const Expr& l = *node.children[0];
    const Expr& r = *node.children[1];
    auto numeric_literal = [](const Expr& x) {
      return x.kind == ExprKind::kLiteral &&
             (x.literal.is_int() || x.literal.is_double());
    };
    ZoneCheck zc;
    if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kColumnRef) {
      zc.col_col = true;
      zc.a = l.resolved_index;
      zc.b = r.resolved_index;
      zc.cmask = MaskOf(node.bop);
      prog.zone_checks_.push_back(zc);
      return;
    }
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    BinaryOp bop = node.bop;
    if (l.kind == ExprKind::kColumnRef && numeric_literal(r)) {
      col = &l;
      lit = &r;
    } else if (r.kind == ExprKind::kColumnRef && numeric_literal(l)) {
      col = &r;
      lit = &l;
      bop = FlipComparison(bop);  // normalize to col CMP literal
    } else {
      return;
    }
    zc.a = col->resolved_index;
    zc.cmask = MaskOf(bop);
    if (params != nullptr) {
      auto it = params->find(lit);
      if (it != params->end()) zc.imm_slot = it->second;
    }
    if (lit->literal.is_int()) {
      zc.imm_i = lit->literal.AsInt();
      zc.imm_d = static_cast<double>(zc.imm_i);
    } else {
      zc.imm_is_double = true;
      zc.imm_d = lit->literal.AsDouble();
    }
    if (std::isnan(zc.imm_d)) return;  // NaN never refutes anything
    prog.zone_checks_.push_back(zc);
  };
  collect(e);
  return prog;
}

// ----- program template cache -----------------------------------------------

namespace {

/// Process-wide MRU-bounded cache of parameterized program templates keyed
/// by ParamShapeSignature. Templates are immutable once published (held by
/// shared_ptr<const>; per-entry recency stamps are atomics bumped under the
/// shared lock), so lookups run concurrently and Rebind never touches
/// shared state. The key is a pure function of the bound expression's
/// structure — no catalog state — so entries never need invalidation.
class TemplateCache {
 public:
  static constexpr size_t kMaxEntries = 256;

  std::shared_ptr<const CompiledExpr> Lookup(const std::string& sig) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = map_.find(sig);
    if (it == map_.end()) return nullptr;
    it->second->stamp.store(NextStamp(), std::memory_order_relaxed);
    return it->second->tmpl;
  }

  void Insert(const std::string& sig,
              std::shared_ptr<const CompiledExpr> tmpl) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (map_.count(sig) > 0) return;  // lost a race; keep the incumbent
    if (map_.size() >= kMaxEntries) {
      auto victim = map_.begin();
      uint64_t oldest = UINT64_MAX;
      for (auto it = map_.begin(); it != map_.end(); ++it) {
        const uint64_t s = it->second->stamp.load(std::memory_order_relaxed);
        if (s < oldest) {
          oldest = s;
          victim = it;
        }
      }
      map_.erase(victim);
      ICEBERG_COUNTER("plan_cache.program_evictions")->Increment();
    }
    auto entry = std::make_shared<Entry>();
    entry->tmpl = std::move(tmpl);
    entry->stamp.store(NextStamp(), std::memory_order_relaxed);
    map_.emplace(sig, std::move(entry));
  }

  void Clear() {
    std::unique_lock<std::shared_mutex> lock(mu_);
    map_.clear();
  }

 private:
  struct Entry {
    std::shared_ptr<const CompiledExpr> tmpl;
    std::atomic<uint64_t> stamp{0};
  };

  uint64_t NextStamp() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> map_;
  std::atomic<uint64_t> clock_{0};
};

TemplateCache& GlobalTemplateCache() {
  static TemplateCache* cache = new TemplateCache;  // leaked: process-wide
  return *cache;
}

}  // namespace

void ClearProgramTemplateCache() { GlobalTemplateCache().Clear(); }

CompiledExpr CompiledExpr::CompileTemplate(
    const Expr& e, const std::vector<const Expr*>& literals,
    const std::vector<const Expr*>& aggregates) {
  std::unordered_map<const Expr*, int> params;
  params.reserve(literals.size());
  for (size_t i = 0; i < literals.size(); ++i) {
    params.emplace(literals[i], static_cast<int>(i));
  }
  CompiledExpr prog = BuildProgram(e, &params);
  prog.param_count_ = literals.size();
  prog.agg_count_ = aggregates.size();
  // Aggregate slot table, built against the *final* instruction stream so
  // it is immune to any emission or peephole reordering: the k-th
  // aggregate-bearing instruction (in code order) reads parameter slot
  // agg_slots_[k].
  std::unordered_map<const Expr*, int> agg_of;
  agg_of.reserve(aggregates.size());
  for (size_t i = 0; i < aggregates.size(); ++i) {
    agg_of.emplace(aggregates[i], static_cast<int>(i));
  }
  for (const ExprInstr& in : prog.code_) {
    if (in.agg == nullptr) continue;
    auto it = agg_of.find(in.agg);
    ICEBERG_CHECK(it != agg_of.end());
    prog.agg_slots_.push_back(it->second);
  }
  return prog;
}

CompiledExpr CompiledExpr::Rebind(
    const std::vector<const Expr*>& literals,
    const std::vector<const Expr*>& aggregates) const {
  if (literals.size() != param_count_ || aggregates.size() != agg_count_) {
    return CompiledExpr();  // invalid; caller falls back to a fresh compile
  }
  CompiledExpr out;
  out.code_ = code_;
  out.consts_ = consts_;
  out.max_stack_ = max_stack_;
  out.fused_ops_ = fused_ops_;
  out.batchable_ = batchable_;
  out.const_slots_ = const_slots_;
  out.agg_slots_ = agg_slots_;
  out.param_count_ = param_count_;
  out.agg_count_ = agg_count_;
  for (const auto& [pool, slot] : const_slots_) {
    out.consts_[static_cast<size_t>(pool)] =
        literals[static_cast<size_t>(slot)]->literal;
  }
  // const_cvals_ must borrow from *this program's* pool, never the
  // template's (the template may be evicted while this program runs).
  out.const_cvals_.reserve(out.consts_.size());
  for (const Value& v : out.consts_) out.const_cvals_.push_back(FromValue(v));
  size_t agg_k = 0;
  for (ExprInstr& in : out.code_) {
    if (in.agg != nullptr) {
      if (agg_k >= agg_slots_.size()) return CompiledExpr();
      in.agg = aggregates[static_cast<size_t>(agg_slots_[agg_k++])];
    }
    if (in.imm_slot >= 0) {
      const Value& v = literals[static_cast<size_t>(in.imm_slot)]->literal;
      if (!v.is_int()) return CompiledExpr();  // signature mismatch
      in.imm = v.AsInt();
    }
  }
  std::vector<ZoneCheck> checks;
  checks.reserve(zone_checks_.size());
  for (ZoneCheck zc : zone_checks_) {
    if (zc.imm_slot >= 0) {
      const Value& v = literals[static_cast<size_t>(zc.imm_slot)]->literal;
      if (v.is_int()) {
        zc.imm_is_double = false;
        zc.imm_i = v.AsInt();
        zc.imm_d = static_cast<double>(zc.imm_i);
      } else if (v.is_double()) {
        zc.imm_is_double = true;
        zc.imm_d = v.AsDouble();
      } else {
        return CompiledExpr();  // signature mismatch
      }
      if (std::isnan(zc.imm_d)) continue;  // NaN must never refute
    }
    checks.push_back(zc);
  }
  out.zone_checks_ = std::move(checks);
  return out;
}

namespace {

/// True when the expression reads any row or group input (a column ref or
/// an aggregate) — i.e. it is not a pure constant.
bool ReferencesData(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef || e.kind == ExprKind::kAggregate) {
    return true;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && ReferencesData(*c)) return true;
  }
  return false;
}

}  // namespace

CompiledExpr CompiledExpr::Compile(const Expr& e) {
  if (!PlanCacheEnabled()) return BuildProgram(e, nullptr);
  std::vector<const Expr*> literals;
  std::vector<const Expr*> aggregates;
  CollectParamNodes(e, &literals, &aggregates);
  // Nothing to re-bind: template and program would coincide, so the cache
  // buys nothing over a plain compile.
  if (literals.empty()) return BuildProgram(e, nullptr);
  // A pure-constant expression (no column or aggregate input) folds to a
  // single push; parameterizing it would trade that for an interpreted
  // arithmetic chain. Let folding have it.
  if (!ReferencesData(e)) return BuildProgram(e, nullptr);
  const std::string sig = ParamShapeSignature(e);
  std::shared_ptr<const CompiledExpr> tmpl = GlobalTemplateCache().Lookup(sig);
  if (tmpl != nullptr) {
    CompiledExpr prog = tmpl->Rebind(literals, aggregates);
    if (prog.valid()) {
      ICEBERG_COUNTER("plan_cache.program_hits")->Increment();
      ICEBERG_COUNTER("plan_cache.rebinds")->Increment();
      return prog;
    }
    // Structural mismatch despite an equal signature cannot happen, but
    // fall back to a fresh compile rather than trust a wrong template.
  }
  ICEBERG_COUNTER("plan_cache.program_misses")->Increment();
  auto built =
      std::make_shared<CompiledExpr>(CompileTemplate(e, literals, aggregates));
  // The hit and miss paths must produce the *same* program (template shape,
  // not the folded plain shape), so even the first execution of a shape
  // returns the rebound instantiation.
  CompiledExpr prog = built->Rebind(literals, aggregates);
  ICEBERG_DCHECK(prog.valid());
  GlobalTemplateCache().Insert(sig, std::move(built));
  return prog;
}

namespace {

/// One side of a zone check, lowered to a (possibly degenerate) numeric
/// interval, a NULL, or a string. `known` is false when the side carries
/// no usable zone information.
struct ZoneSide {
  bool known = false;
  bool is_null = false;   // scalar NULL, or an all-NULL chunk column
  bool is_str = false;    // string scalar (chunk string columns are unknown)
  bool int_only = false;  // the int64 bounds are exact
  int64_t lo_i = 0, hi_i = 0;
  double lo_d = 0.0, hi_d = 0.0;
};

ZoneSide ZoneOfSlot(int32_t slot, size_t base, const Row* partial,
                    const ColumnChunk& chunk) {
  ZoneSide z;
  if (static_cast<size_t>(slot) < base) {
    if (partial == nullptr) return z;
    const Value& v = (*partial)[static_cast<size_t>(slot)];
    switch (v.tag()) {
      case 1:
        z.known = true;
        z.int_only = true;
        z.lo_i = z.hi_i = v.int_unchecked();
        z.lo_d = z.hi_d = static_cast<double>(z.lo_i);
        break;
      case 2: {
        const double d = v.double_unchecked();
        if (std::isnan(d)) return z;
        z.known = true;
        z.lo_d = z.hi_d = d;
        break;
      }
      case 3:
        z.known = true;
        z.is_str = true;
        break;
      default:
        z.known = true;
        z.is_null = true;
        break;
    }
    return z;
  }
  const ChunkColumn& col = chunk.cols[static_cast<size_t>(slot) - base];
  if (col.kind == ChunkColumn::kAllNull) {
    z.known = true;
    z.is_null = true;
    return z;
  }
  if (!col.zone_valid) return z;
  z.known = true;
  z.int_only = col.zone_int;
  z.lo_i = col.min_i;
  z.hi_i = col.max_i;
  z.lo_d = col.min_d;
  z.hi_d = col.max_d;
  return z;
}

/// Possible Compare() outcomes {-1, 0, +1} between values drawn from the
/// two intervals, as an acceptance-mask-compatible bitset.
uint8_t PossibleOutcomes(const ZoneSide& l, const ZoneSide& r) {
  if (l.is_str && r.is_str) return 0b111;  // no string zones: anything
  if (l.is_str) return 0b100;              // strings order after numerics
  if (r.is_str) return 0b001;
  bool lt, eq, gt;
  if (l.int_only && r.int_only) {
    lt = l.lo_i < r.hi_i;
    eq = l.lo_i <= r.hi_i && r.lo_i <= l.hi_i;
    gt = l.hi_i > r.lo_i;
  } else {
    lt = l.lo_d < r.hi_d;
    eq = l.lo_d <= r.hi_d && r.lo_d <= l.hi_d;
    gt = l.hi_d > r.lo_d;
  }
  return static_cast<uint8_t>((lt ? 0b001 : 0) | (eq ? 0b010 : 0) |
                              (gt ? 0b100 : 0));
}

}  // namespace

bool CompiledExpr::ZoneRefutes(const ColumnChunk& chunk, size_t base,
                               const Row* partial) const {
  for (const ZoneCheck& zc : zone_checks_) {
    ZoneSide l = ZoneOfSlot(zc.a, base, partial, chunk);
    if (!l.known) continue;
    ZoneSide r;
    if (zc.col_col) {
      r = ZoneOfSlot(zc.b, base, partial, chunk);
      if (!r.known) continue;
    } else {
      r.known = true;
      r.int_only = !zc.imm_is_double;
      r.lo_i = r.hi_i = zc.imm_i;
      r.lo_d = r.hi_d = zc.imm_d;
    }
    // A NULL side makes the conjunct NULL for every row, which a predicate
    // rejects — the whole chunk is refuted.
    if (l.is_null || r.is_null) return true;
    if ((PossibleOutcomes(l, r) & zc.cmask) == 0) return true;
  }
  return false;
}

size_t CompiledExpr::FilterBatch(const ColumnChunk& chunk, size_t base,
                                 const Row* partial, const uint32_t* sel,
                                 size_t n, uint32_t* out,
                                 BatchScratch* scratch) const {
  ICEBERG_DCHECK(valid() && batchable_);
  if (n == 0) return 0;

  // Whole-program fast paths: the dominant residual shapes (one fused
  // comparison) run as tight loops over the dense typed lanes, writing the
  // selection vector directly with no per-lane tag dispatch.
  if (code_.size() == 1) {
    const ExprInstr& in = code_[0];
    if (in.op == ExprOp::kCmpColConstInt &&
        static_cast<size_t>(in.a) >= base) {
      const ChunkColumn& col = chunk.cols[static_cast<size_t>(in.a) - base];
      const uint8_t cmask = in.cmask;
      if (!col.ints.empty()) {
        const int64_t* lanes = col.ints.data();
        const int64_t imm = in.imm;
        size_t m = 0;
        for (size_t k = 0; k < n; ++k) {
          const uint32_t lane = sel[k];
          const int64_t v = lanes[lane];
          out[m] = lane;
          m += (cmask >> ((v > imm) - (v < imm) + 1)) & 1u;
        }
        return m;
      }
      if (!col.dbls.empty()) {
        const double* lanes = col.dbls.data();
        const double imm = static_cast<double>(in.imm);
        size_t m = 0;
        for (size_t k = 0; k < n; ++k) {
          const uint32_t lane = sel[k];
          const double v = lanes[lane];
          out[m] = lane;
          m += (cmask >> ((v > imm) - (v < imm) + 1)) & 1u;
        }
        return m;
      }
    }
    if (in.op == ExprOp::kCmpColCol) {
      const uint8_t cmask = in.cmask;
      auto int_lanes = [&](int32_t slot) -> const int64_t* {
        if (static_cast<size_t>(slot) < base) return nullptr;
        const ChunkColumn& c = chunk.cols[static_cast<size_t>(slot) - base];
        return c.ints.empty() ? nullptr : c.ints.data();
      };
      const int64_t* la = int_lanes(in.a);
      const int64_t* lb = int_lanes(in.b);
      if (la != nullptr && lb != nullptr) {
        size_t m = 0;
        for (size_t k = 0; k < n; ++k) {
          const uint32_t lane = sel[k];
          const int64_t a = la[lane];
          const int64_t b = lb[lane];
          out[m] = lane;
          m += (cmask >> ((a > b) - (a < b) + 1)) & 1u;
        }
        return m;
      }
      // One side is an outer scalar: the block-NLJ Theta-join shape
      // (outer value vs every inner lane).
      auto outer_int = [&](int32_t slot, int64_t* v) {
        if (static_cast<size_t>(slot) >= base || partial == nullptr) {
          return false;
        }
        const Value& val = (*partial)[static_cast<size_t>(slot)];
        if (val.tag() != 1) return false;
        *v = val.int_unchecked();
        return true;
      };
      int64_t scalar = 0;
      if (lb != nullptr && outer_int(in.a, &scalar)) {
        size_t m = 0;
        for (size_t k = 0; k < n; ++k) {
          const uint32_t lane = sel[k];
          const int64_t b = lb[lane];
          out[m] = lane;
          m += (cmask >> ((scalar > b) - (scalar < b) + 1)) & 1u;
        }
        return m;
      }
      if (la != nullptr && outer_int(in.b, &scalar)) {
        size_t m = 0;
        for (size_t k = 0; k < n; ++k) {
          const uint32_t lane = sel[k];
          const int64_t a = la[lane];
          out[m] = lane;
          m += (cmask >> ((a > scalar) - (a < scalar) + 1)) & 1u;
        }
        return m;
      }
    }
  }

  // General path: instruction-major linear execution over a slot-major
  // lane matrix. Jumps are no-ops and combines are symmetric (see the
  // header contract); each opcode runs one tight loop over the selected
  // lanes.
  if (scratch->slots.size() < max_stack_ * n) {
    scratch->slots.resize(max_stack_ * n);
  }
  CVal* slots = scratch->slots.data();
  auto slot = [&](size_t s) { return slots + s * n; };

  struct Src {
    const ColCell* cells = nullptr;  // per-lane when non-null
    CVal scalar;                     // broadcast otherwise
  };
  auto resolve = [&](int32_t a) {
    Src s;
    if (static_cast<size_t>(a) < base) {
      ICEBERG_DCHECK(partial != nullptr);
      s.scalar = FromValue((*partial)[static_cast<size_t>(a)]);
    } else {
      s.cells = chunk.cols[static_cast<size_t>(a) - base].cells.data();
    }
    return s;
  };
  auto at = [&](const Src& s, uint32_t lane) {
    return s.cells == nullptr ? s.scalar : CellCV(s.cells[lane]);
  };

  size_t sp = 0;  // next free slot
  for (const ExprInstr& in : code_) {
    switch (in.op) {
      case ExprOp::kPushConst: {
        CVal* d = slot(sp++);
        const CVal c = const_cvals_[static_cast<size_t>(in.a)];
        for (size_t k = 0; k < n; ++k) d[k] = c;
        break;
      }
      case ExprOp::kPushColumn: {
        CVal* d = slot(sp++);
        const Src s = resolve(in.a);
        if (s.cells == nullptr) {
          for (size_t k = 0; k < n; ++k) d[k] = s.scalar;
        } else {
          for (size_t k = 0; k < n; ++k) d[k] = CellCV(s.cells[sel[k]]);
        }
        break;
      }
      case ExprOp::kPushAgg:
        ICEBERG_CHECK(false);  // excluded by batchable()
        break;
      case ExprOp::kCompare: {
        const CVal* r = slot(--sp);
        CVal* l = slot(sp - 1);
        for (size_t k = 0; k < n; ++k) l[k] = CmpLaneCV(in.cmask, l[k], r[k]);
        break;
      }
      case ExprOp::kAdd:
      case ExprOp::kSub:
      case ExprOp::kMul:
      case ExprOp::kDiv: {
        const CVal* r = slot(--sp);
        CVal* l = slot(sp - 1);
        for (size_t k = 0; k < n; ++k) l[k] = ArithCV(in.bop, l[k], r[k]);
        break;
      }
      case ExprOp::kNot: {
        CVal* v = slot(sp - 1);
        for (size_t k = 0; k < n; ++k) {
          v[k] = v[k].tag == CVal::kNull ? NullCV() : BoolCV(!Truthy(v[k]));
        }
        break;
      }
      case ExprOp::kNeg: {
        CVal* v = slot(sp - 1);
        for (size_t k = 0; k < n; ++k) {
          if (v[k].tag == CVal::kInt) {
            v[k] = IntCV(-v[k].i);
          } else if (v[k].tag == CVal::kDouble) {
            v[k] = DoubleCV(-v[k].d);
          } else {
            v[k] = NullCV();
          }
        }
        break;
      }
      case ExprOp::kAndJump:
      case ExprOp::kOrJump:
        break;  // linear execution; the symmetric combines subsume them
      case ExprOp::kAndCombine: {
        const CVal* r = slot(--sp);
        CVal* l = slot(sp - 1);
        for (size_t k = 0; k < n; ++k) l[k] = AndCombineSymCV(l[k], r[k]);
        break;
      }
      case ExprOp::kOrCombine: {
        const CVal* r = slot(--sp);
        CVal* l = slot(sp - 1);
        for (size_t k = 0; k < n; ++k) l[k] = OrCombineSymCV(l[k], r[k]);
        break;
      }
      case ExprOp::kCmpColConstInt: {
        CVal* d = slot(sp++);
        const Src s = resolve(in.a);
        if (s.cells == nullptr) {
          const CVal c = CmpConstIntLaneCV(in, s.scalar);
          for (size_t k = 0; k < n; ++k) d[k] = c;
        } else {
          for (size_t k = 0; k < n; ++k) {
            d[k] = CmpConstIntLaneCV(in, CellCV(s.cells[sel[k]]));
          }
        }
        break;
      }
      case ExprOp::kCmpColCol: {
        CVal* d = slot(sp++);
        const Src a = resolve(in.a);
        const Src b = resolve(in.b);
        for (size_t k = 0; k < n; ++k) {
          d[k] = CmpLaneCV(in.cmask, at(a, sel[k]), at(b, sel[k]));
        }
        break;
      }
      case ExprOp::kArithColCol: {
        CVal* d = slot(sp++);
        const Src a = resolve(in.a);
        const Src b = resolve(in.b);
        for (size_t k = 0; k < n; ++k) {
          d[k] = ArithCV(in.bop, at(a, sel[k]), at(b, sel[k]));
        }
        break;
      }
      case ExprOp::kArithTopCol: {
        CVal* l = slot(sp - 1);
        const Src a = resolve(in.a);
        for (size_t k = 0; k < n; ++k) {
          l[k] = ArithCV(in.bop, l[k], at(a, sel[k]));
        }
        break;
      }
      case ExprOp::kArithTopConst: {
        CVal* l = slot(sp - 1);
        const CVal c = const_cvals_[static_cast<size_t>(in.a)];
        for (size_t k = 0; k < n; ++k) l[k] = ArithCV(in.bop, l[k], c);
        break;
      }
      case ExprOp::kCmpTopConst: {
        CVal* l = slot(sp - 1);
        const CVal c = const_cvals_[static_cast<size_t>(in.a)];
        for (size_t k = 0; k < n; ++k) l[k] = CmpLaneCV(in.cmask, l[k], c);
        break;
      }
      case ExprOp::kCmpTopCol: {
        CVal* l = slot(sp - 1);
        const Src a = resolve(in.a);
        for (size_t k = 0; k < n; ++k) {
          l[k] = CmpLaneCV(in.cmask, l[k], at(a, sel[k]));
        }
        break;
      }
      case ExprOp::kAndCombineCmpCI: {
        CVal* l = slot(sp - 1);
        const Src a = resolve(in.a);
        for (size_t k = 0; k < n; ++k) {
          l[k] = AndCombineSymCV(l[k],
                                 CmpConstIntLaneCV(in, at(a, sel[k])));
        }
        break;
      }
      case ExprOp::kOrCombineCmpCI: {
        CVal* l = slot(sp - 1);
        const Src a = resolve(in.a);
        for (size_t k = 0; k < n; ++k) {
          l[k] = OrCombineSymCV(l[k], CmpConstIntLaneCV(in, at(a, sel[k])));
        }
        break;
      }
      case ExprOp::kAndCombineCmpCC: {
        CVal* l = slot(sp - 1);
        const Src a = resolve(in.a);
        const Src b = resolve(in.b);
        for (size_t k = 0; k < n; ++k) {
          l[k] = AndCombineSymCV(
              l[k], CmpLaneCV(in.cmask, at(a, sel[k]), at(b, sel[k])));
        }
        break;
      }
      case ExprOp::kOrCombineCmpCC: {
        CVal* l = slot(sp - 1);
        const Src a = resolve(in.a);
        const Src b = resolve(in.b);
        for (size_t k = 0; k < n; ++k) {
          l[k] = OrCombineSymCV(
              l[k], CmpLaneCV(in.cmask, at(a, sel[k]), at(b, sel[k])));
        }
        break;
      }
    }
  }
  ICEBERG_DCHECK(sp == 1);
  const CVal* top = slot(0);
  size_t m = 0;
  for (size_t k = 0; k < n; ++k) {
    if (Truthy(top[k])) out[m++] = sel[k];
  }
  return m;
}

const CVal* CompiledExpr::Execute(const Row& row, EvalScratch* scratch,
                                  const AggValueMap* agg_values) const {
  if (scratch->stack.size() < max_stack_) scratch->stack.resize(max_stack_);
  CVal* stack = scratch->stack.data();
  size_t sp = 0;  // next free slot
  const size_t n = code_.size();
  for (size_t pc = 0; pc < n; ++pc) {
    const ExprInstr& in = code_[pc];
    switch (in.op) {
      case ExprOp::kPushConst:
        stack[sp++] = const_cvals_[static_cast<size_t>(in.a)];
        break;
      case ExprOp::kPushColumn: {
        ICEBERG_DCHECK(static_cast<size_t>(in.a) < row.size());
        stack[sp++] = FromValue(row[static_cast<size_t>(in.a)]);
        break;
      }
      case ExprOp::kPushAgg: {
        ICEBERG_CHECK(agg_values != nullptr);
        auto it = agg_values->find(in.agg);
        ICEBERG_CHECK(it != agg_values->end());
        stack[sp++] = FromValue(it->second);
        break;
      }
      case ExprOp::kCompare: {
        const CVal r = stack[--sp];
        CVal& l = stack[sp - 1];
        if (l.tag == CVal::kNull || r.tag == CVal::kNull) {
          l = NullCV();
        } else {
          l = BoolCV(ApplyMask(in.cmask, CompareCV(l, r)));
        }
        break;
      }
      case ExprOp::kAdd:
      case ExprOp::kSub:
      case ExprOp::kMul:
      case ExprOp::kDiv: {
        const CVal r = stack[--sp];
        CVal& l = stack[sp - 1];
        l = ArithCV(in.bop, l, r);
        break;
      }
      case ExprOp::kNot: {
        CVal& v = stack[sp - 1];
        v = v.tag == CVal::kNull ? NullCV() : BoolCV(!Truthy(v));
        break;
      }
      case ExprOp::kNeg: {
        CVal& v = stack[sp - 1];
        if (v.tag == CVal::kInt) {
          v = IntCV(-v.i);
        } else if (v.tag == CVal::kDouble) {
          v = DoubleCV(-v.d);
        } else {
          v = NullCV();
        }
        break;
      }
      case ExprOp::kAndJump: {
        CVal& l = stack[sp - 1];
        if (l.tag != CVal::kNull && !Truthy(l)) {
          l = BoolCV(false);
          pc = static_cast<size_t>(in.a) - 1;
        }
        break;
      }
      case ExprOp::kOrJump: {
        CVal& l = stack[sp - 1];
        if (l.tag != CVal::kNull && Truthy(l)) {
          l = BoolCV(true);
          pc = static_cast<size_t>(in.a) - 1;
        }
        break;
      }
      case ExprOp::kAndCombine: {
        const CVal r = stack[--sp];
        CVal& l = stack[sp - 1];
        l = AndCombineCV(l, r);
        break;
      }
      case ExprOp::kOrCombine: {
        const CVal r = stack[--sp];
        CVal& l = stack[sp - 1];
        l = OrCombineCV(l, r);
        break;
      }
      case ExprOp::kCmpColConstInt:
        stack[sp++] = CmpColConstIntCV(in, row);
        break;
      case ExprOp::kCmpColCol:
        stack[sp++] = CmpColColCV(in, row);
        break;
      case ExprOp::kArithColCol: {
        const CVal l = FromValue(row[static_cast<size_t>(in.a)]);
        const CVal r = FromValue(row[static_cast<size_t>(in.b)]);
        stack[sp++] = ArithCV(in.bop, l, r);
        break;
      }
      case ExprOp::kArithTopCol: {
        CVal& l = stack[sp - 1];
        l = ArithCV(in.bop, l, FromValue(row[static_cast<size_t>(in.a)]));
        break;
      }
      case ExprOp::kArithTopConst: {
        CVal& l = stack[sp - 1];
        l = ArithCV(in.bop, l, const_cvals_[static_cast<size_t>(in.a)]);
        break;
      }
      case ExprOp::kCmpTopConst: {
        CVal& l = stack[sp - 1];
        const CVal& r = const_cvals_[static_cast<size_t>(in.a)];
        if (l.tag == CVal::kInt && r.tag == CVal::kInt) {
          l = BoolCV(ApplyMask(in.cmask, (l.i > r.i) - (l.i < r.i)));
        } else if (l.tag == CVal::kNull || r.tag == CVal::kNull) {
          l = NullCV();
        } else {
          l = BoolCV(ApplyMask(in.cmask, CompareCV(l, r)));
        }
        break;
      }
      case ExprOp::kCmpTopCol: {
        CVal& l = stack[sp - 1];
        const CVal r = FromValue(row[static_cast<size_t>(in.a)]);
        if (l.tag == CVal::kNull || r.tag == CVal::kNull) {
          l = NullCV();
        } else {
          l = BoolCV(ApplyMask(in.cmask, CompareCV(l, r)));
        }
        break;
      }
      case ExprOp::kAndCombineCmpCI: {
        CVal& l = stack[sp - 1];
        l = AndCombineCV(l, CmpColConstIntCV(in, row));
        break;
      }
      case ExprOp::kOrCombineCmpCI: {
        CVal& l = stack[sp - 1];
        l = OrCombineCV(l, CmpColConstIntCV(in, row));
        break;
      }
      case ExprOp::kAndCombineCmpCC: {
        CVal& l = stack[sp - 1];
        l = AndCombineCV(l, CmpColColCV(in, row));
        break;
      }
      case ExprOp::kOrCombineCmpCC: {
        CVal& l = stack[sp - 1];
        l = OrCombineCV(l, CmpColColCV(in, row));
        break;
      }
    }
  }
  ICEBERG_DCHECK(sp == 1);
  return &stack[0];
}

Value CompiledExpr::Run(const Row& row, EvalScratch* scratch,
                        const AggValueMap* agg_values) const {
  ICEBERG_DCHECK(valid());
  return ToValue(*Execute(row, scratch, agg_values));
}

bool CompiledExpr::RunPredicate(const Row& row, EvalScratch* scratch,
                                const AggValueMap* agg_values) const {
  ICEBERG_DCHECK(valid());
  return Truthy(*Execute(row, scratch, agg_values));
}

std::string CompiledExpr::Summary() const {
  std::string out = std::to_string(code_.size()) + " ops";
  if (fused_ops_ > 0) out += ", " + std::to_string(fused_ops_) + " fused";
  if (!consts_.empty()) {
    out += ", " + std::to_string(consts_.size()) + " const";
  }
  return out;
}

std::vector<CompiledExpr> CompileAll(const std::vector<ExprPtr>& exprs) {
  std::vector<CompiledExpr> progs;
  if (!CompiledExprEnabled()) return progs;
  progs.reserve(exprs.size());
  for (const ExprPtr& e : exprs) progs.push_back(CompiledExpr::Compile(*e));
  return progs;
}

}  // namespace iceberg
