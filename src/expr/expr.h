#ifndef SMARTICEBERG_EXPR_EXPR_H_
#define SMARTICEBERG_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"

namespace iceberg {

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kBinary,
  kUnary,
  kAggregate,
};

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kAnd,
  kOr,
};

enum class UnaryOp {
  kNot,
  kNeg,
};

enum class AggFunc {
  kCountStar,
  kCount,
  kCountDistinct,
  kSum,
  kMin,
  kMax,
  kAvg,
};

const char* BinaryOpName(BinaryOp op);
const char* AggFuncName(AggFunc func);

/// True for comparison operators (=, <>, <, <=, >, >=).
bool IsComparisonOp(BinaryOp op);
/// Returns the comparison with operand sides swapped (e.g. < becomes >).
BinaryOp FlipComparison(BinaryOp op);
/// Returns the logical negation of a comparison (e.g. < becomes >=).
BinaryOp NegateComparison(BinaryOp op);

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// A scalar or aggregate expression node.
///
/// Column references carry a (qualifier, column) pair from the parser; the
/// binder resolves them to a flat index into the row layout of the operator
/// evaluating the expression. Because the same syntactic expression may be
/// evaluated against different row layouts (e.g. a HAVING condition pushed
/// into a reducer), binding always operates on a deep copy (see Clone).
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string qualifier;  // table alias, may be empty
  std::string column;
  int resolved_index = -1;  // flat offset into the evaluation row, -1 unbound

  // kBinary / kUnary
  BinaryOp bop = BinaryOp::kEq;
  UnaryOp uop = UnaryOp::kNot;

  // kAggregate
  AggFunc agg = AggFunc::kCountStar;

  // Children: binary has 2, unary has 1, aggregate has 0 (COUNT(*)) or 1.
  std::vector<ExprPtr> children;

  /// Renders SQL-ish text, e.g. "s1.pid = s2.pid AND COUNT(*) >= 3".
  std::string ToString() const;

  /// Fully qualified name "qualifier.column" (lower-cased) for kColumnRef.
  std::string QualifiedName() const;
};

// ----- Factory helpers ------------------------------------------------------

ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr Col(std::string qualifier, std::string column);
ExprPtr Col(std::string column);
ExprPtr Bin(BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr Not(ExprPtr e);
ExprPtr Neg(ExprPtr e);
ExprPtr Agg(AggFunc func, ExprPtr arg);  // arg may be nullptr for COUNT(*)
/// Builds a balanced AND over conjuncts; returns literal TRUE when empty.
ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts);

// ----- Traversal ------------------------------------------------------------

/// Deep copy.
ExprPtr CloneExpr(const ExprPtr& e);

/// Appends every aggregate node (in evaluation order) to `out`.
void CollectAggregates(const ExprPtr& e, std::vector<ExprPtr>* out);

/// Appends every column-ref node to `out`.
void CollectColumnRefs(const ExprPtr& e, std::vector<Expr*>* out);
void CollectColumnRefs(const ExprPtr& e, std::vector<const Expr*>* out);

/// Splits an expression into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

/// True if the expression contains any aggregate node.
bool ContainsAggregate(const ExprPtr& e);

/// Structural signature including resolved column offsets; two bound
/// expressions with equal signatures evaluate identically on every row.
std::string ExprSignature(const Expr& e);

/// Literal-abstracted structural signature for the plan/program cache:
/// like ExprSignature, but non-NULL literals become type tags (?i ?d ?s)
/// so two bound expressions differing only in literal values share one
/// signature. Inside aggregate arguments literals stay verbatim (aggregate
/// values arrive pre-computed through the AggValueMap, so they are never
/// re-bound; keeping them exact keeps SUM(x+5) and SUM(x+7) distinct).
std::string ParamShapeSignature(const Expr& e);

/// Collects the parameterizable literal nodes (non-NULL literals outside
/// aggregate arguments) and the aggregate nodes of `e`, in canonical
/// pre-order. This order defines parameter-slot identity: two expressions
/// with equal ParamShapeSignature enumerate corresponding slots in the
/// same sequence, which is what makes literal re-binding of a cached
/// program template sound. Either output vector may be null.
void CollectParamNodes(const Expr& e, std::vector<const Expr*>* literals,
                       std::vector<const Expr*>* aggregates);

}  // namespace iceberg

#endif  // SMARTICEBERG_EXPR_EXPR_H_
