#include "src/expr/evaluator.h"

#include "src/common/logging.h"

namespace iceberg {

namespace {

Value EvalBinary(const Expr& e, const Row& row, const AggValueMap* aggs) {
  // Short-circuit logic with SQL three-valued semantics.
  if (e.bop == BinaryOp::kAnd) {
    Value l = Evaluate(*e.children[0], row, aggs);
    if (!l.is_null() && !l.AsBool()) return Value::Bool(false);
    Value r = Evaluate(*e.children[1], row, aggs);
    if (!r.is_null() && !r.AsBool()) return Value::Bool(false);
    if (l.is_null() || r.is_null()) return Value::Null();
    return Value::Bool(true);
  }
  if (e.bop == BinaryOp::kOr) {
    Value l = Evaluate(*e.children[0], row, aggs);
    if (!l.is_null() && l.AsBool()) return Value::Bool(true);
    Value r = Evaluate(*e.children[1], row, aggs);
    if (!r.is_null() && r.AsBool()) return Value::Bool(true);
    if (l.is_null() || r.is_null()) return Value::Null();
    return Value::Bool(false);
  }

  Value l = Evaluate(*e.children[0], row, aggs);
  Value r = Evaluate(*e.children[1], row, aggs);
  if (l.is_null() || r.is_null()) return Value::Null();

  if (IsComparisonOp(e.bop)) {
    int c = l.Compare(r);
    switch (e.bop) {
      case BinaryOp::kEq:
        return Value::Bool(c == 0);
      case BinaryOp::kNe:
        return Value::Bool(c != 0);
      case BinaryOp::kLt:
        return Value::Bool(c < 0);
      case BinaryOp::kLe:
        return Value::Bool(c <= 0);
      case BinaryOp::kGt:
        return Value::Bool(c > 0);
      case BinaryOp::kGe:
        return Value::Bool(c >= 0);
      default:
        break;
    }
  }

  // Arithmetic: keep int64 when both sides are ints (except division).
  switch (e.bop) {
    case BinaryOp::kAdd:
      if (l.is_int() && r.is_int()) return Value::Int(l.AsInt() + r.AsInt());
      return Value::Double(l.AsDouble() + r.AsDouble());
    case BinaryOp::kSub:
      if (l.is_int() && r.is_int()) return Value::Int(l.AsInt() - r.AsInt());
      return Value::Double(l.AsDouble() - r.AsDouble());
    case BinaryOp::kMul:
      if (l.is_int() && r.is_int()) return Value::Int(l.AsInt() * r.AsInt());
      return Value::Double(l.AsDouble() * r.AsDouble());
    case BinaryOp::kDiv: {
      double d = r.AsDouble();
      if (d == 0.0) return Value::Null();
      return Value::Double(l.AsDouble() / d);
    }
    default:
      ICEBERG_CHECK(false);
      return Value::Null();
  }
}

}  // namespace

Value Evaluate(const Expr& e, const Row& row, const AggValueMap* agg_values) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef:
      ICEBERG_DCHECK(e.resolved_index >= 0);
      ICEBERG_DCHECK(static_cast<size_t>(e.resolved_index) < row.size());
      return row[static_cast<size_t>(e.resolved_index)];
    case ExprKind::kBinary:
      return EvalBinary(e, row, agg_values);
    case ExprKind::kUnary: {
      Value v = Evaluate(*e.children[0], row, agg_values);
      if (v.is_null()) return Value::Null();
      if (e.uop == UnaryOp::kNot) return Value::Bool(!v.AsBool());
      if (v.is_int()) return Value::Int(-v.AsInt());
      return Value::Double(-v.AsDouble());
    }
    case ExprKind::kAggregate: {
      ICEBERG_CHECK(agg_values != nullptr);
      auto it = agg_values->find(&e);
      ICEBERG_CHECK(it != agg_values->end());
      return it->second;
    }
  }
  return Value::Null();
}

bool EvaluatePredicate(const Expr& e, const Row& row,
                       const AggValueMap* agg_values) {
  return Evaluate(e, row, agg_values).AsBool();
}

}  // namespace iceberg
