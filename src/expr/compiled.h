#ifndef SMARTICEBERG_EXPR_COMPILED_H_
#define SMARTICEBERG_EXPR_COMPILED_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/value.h"
#include "src/expr/evaluator.h"
#include "src/expr/expr.h"
#include "src/storage/column_chunk.h"

namespace iceberg {

/// Process-wide switch for the compiled expression engine and the packed
/// key codecs built on the same plan-time decision. Default on; the
/// interpreter fallback (`Evaluate`) stays byte-identical and is used for
/// A/B measurement (bench/micro_eval) and as the reference in the
/// differential tests. Checked at plan/compile time, so flips take effect
/// for subsequently planned queries only.
bool CompiledExprEnabled();
void SetCompiledExprEnabled(bool enabled);

/// Process-wide switch for the shape-keyed plan & program cache (PR 7).
/// Seeded from the ICEBERG_PLAN_CACHE environment variable ("0" disables),
/// mirroring ICEBERG_VECTORIZE. Checked at compile/plan time: when on,
/// Compile() consults a bounded process-wide cache of parameterized
/// program templates keyed by ParamShapeSignature and re-binds literal
/// values into a cached template instead of recompiling, and the serving
/// layer consults its PlanCache of optimizer decisions. Flips take effect
/// for subsequently planned statements only.
bool PlanCacheEnabled();
void SetPlanCacheEnabled(bool enabled);

/// Drops every cached program template (tests/benchmarks; e.g. to measure
/// cold-compile cost or to isolate counter deltas).
void ClearProgramTemplateCache();

/// Opcode of the flat postfix ISA. Programs operate on a stack of CVal
/// slots (tagged scalars; strings are borrowed pointers, so no opcode ever
/// allocates). See DESIGN.md section 4e for the full ISA contract.
enum class ExprOp : uint8_t {
  kPushConst,   // a = constant-pool index
  kPushColumn,  // a = flat row slot
  kPushAgg,     // agg = aggregate node; looked up in the AggValueMap
  kCompare,     // bop; pops r, l; pushes bool / NULL (three-valued)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNot,
  kNeg,
  kAndJump,     // a = target; on definite-false canonicalizes to FALSE and jumps
  kOrJump,      // a = target; on definite-true canonicalizes to TRUE and jumps
  kAndCombine,  // pops r, l; Kleene AND of the not-short-circuited case
  kOrCombine,
  // Fused fast paths (single instruction, no intermediate pushes):
  kCmpColConstInt,  // cmask; a = slot, imm = int64 constant
  kCmpColCol,       // cmask; a = left slot, b = right slot
  // Peephole super-ops (see PeepholeOptimize in compiled.cc). Arithmetic
  // ops carry the arithmetic BinaryOp in bop:
  kArithColCol,    // push row[a] (bop) row[b]
  kArithTopCol,    // top = top (bop) row[a]
  kArithTopConst,  // top = top (bop) consts[a]
  kCmpTopConst,    // top = compare(top, consts[a]) under cmask
  kCmpTopCol,      // top = compare(top, row[a]) under cmask
  // Fused comparison immediately followed by a Kleene combine with the
  // value below it on the stack (the short-circuit block's epilogue):
  kAndCombineCmpCI,  // top = top AND cmp(row[a], imm)
  kOrCombineCmpCI,
  kAndCombineCmpCC,  // top = top AND cmp(row[a], row[b])
  kOrCombineCmpCC,
};

struct ExprInstr {
  ExprOp op = ExprOp::kPushConst;
  BinaryOp bop = BinaryOp::kEq;
  // Comparison acceptance mask: bit (c+1) set when the instruction's
  // comparison passes for Compare() result c in {-1, 0, 1}. Precomputed at
  // compile time so execution never switches on the comparison operator.
  uint8_t cmask = 0;
  int32_t a = 0;
  int32_t b = 0;
  int64_t imm = 0;
  // Parameter slot the fused immediate `imm` was taken from (-1 = not a
  // parameter). Set only on program templates compiled in parameterized
  // mode; Rebind patches `imm` from the slot. Lives in the instruction so
  // it survives PeepholeOptimize's wholesale instruction copies.
  int32_t imm_slot = -1;
  const Expr* agg = nullptr;
};

/// One stack slot of the compiled evaluator: a tagged scalar. Strings are
/// borrowed (pointers into the evaluated row, the constant pool, or the
/// aggregate value map), all of which outlive the Run call, so execution
/// never touches the heap.
struct CVal {
  enum Tag : uint8_t { kNull, kInt, kDouble, kStr };
  Tag tag = kNull;
  union {
    int64_t i;
    double d;
    const std::string* s;
  };
};

/// Reusable evaluation stack. One per execution context (worker thread or
/// operator instance); Run never allocates once the stack has grown to the
/// program's max depth.
struct EvalScratch {
  std::vector<CVal> stack;
};

/// Reusable state for batch evaluation (FilterBatch). `slots` is a
/// slot-major matrix of lane values (slots[s * n + k] is stack slot s of
/// the k-th selected lane); `sel` is spare selection-vector storage for
/// callers chaining several programs over one chunk.
struct BatchScratch {
  std::vector<CVal> slots;
  std::vector<uint32_t> sel;
};

/// A bound expression compiled once per query into a flat postfix program:
/// typed opcodes over resolved column slots, constants folded at compile
/// time, AND/OR lowered to short-circuit jump blocks, and int64-vs-constant
/// comparisons fused into single instructions. Run() is const and
/// thread-safe: all mutable state lives in the caller's EvalScratch.
///
/// Semantics are bit-identical to the reference interpreter `Evaluate`
/// (enforced by tests/compiled_expr_test.cc) with one carve-out: arithmetic
/// or negation over string operands, where the interpreter throws
/// bad_variant_access, yields NULL here. Well-typed queries never hit it.
class CompiledExpr {
 public:
  CompiledExpr() = default;  // invalid; valid() is false

  /// Compiles a bound expression (column refs must carry resolved_index).
  static CompiledExpr Compile(const Expr& e);

  bool valid() const { return !code_.empty(); }
  size_t num_ops() const { return code_.size(); }

  /// Evaluates against a row; exact Evaluate() semantics.
  Value Run(const Row& row, EvalScratch* scratch,
            const AggValueMap* agg_values = nullptr) const;

  /// Predicate fast path: truthiness of the result (NULL is false) without
  /// materializing a Value.
  bool RunPredicate(const Row& row, EvalScratch* scratch,
                    const AggValueMap* agg_values = nullptr) const;

  /// True when the program can run in batch mode: no aggregate references
  /// (every other opcode has a lane form).
  bool batchable() const { return batchable_; }

  /// True when Compile extracted at least one min/max zone check (a
  /// top-level AND conjunct comparing a column with a numeric literal or
  /// another column).
  bool has_zone_checks() const { return !zone_checks_.empty(); }

  /// Zone-map refutation: true when the chunk's per-column min/max zones
  /// prove no row of `chunk` can make the predicate true, given the outer
  /// prefix `partial` (whose slots are < `base`; may be null when the
  /// program references no outer columns). `base` is the flat offset of
  /// the chunk's table in the joined row. Conservative: false means
  /// "cannot refute", never "will pass".
  bool ZoneRefutes(const ColumnChunk& chunk, size_t base,
                   const Row* partial) const;

  /// Batch predicate evaluation: runs the program over the `n` lanes listed
  /// in `sel` (row indexes local to `chunk`), writes the lanes whose result
  /// is truthy to `out` (may alias `sel`) in order, and returns their
  /// count. Column slots >= `base` read the chunk's columns; slots < base
  /// broadcast from `partial`. Executes the postfix stream linearly (the
  /// short-circuit jumps become no-ops; combines use the symmetric Kleene
  /// forms), which is equivalent because programs are pure — results are
  /// byte-identical to RunPredicate over the materialized row. Requires
  /// batchable().
  size_t FilterBatch(const ColumnChunk& chunk, size_t base,
                     const Row* partial, const uint32_t* sel, size_t n,
                     uint32_t* out, BatchScratch* scratch) const;

  /// EXPLAIN summary, e.g. "5 ops, 2 fused, 1 const".
  std::string Summary() const;

 private:
  /// One refutation test extracted from a top-level AND conjunct:
  /// slot(a) CMP imm, or slot(a) CMP slot(b). The acceptance mask is the
  /// comparison's cmask; refutation succeeds when no achievable Compare()
  /// outcome is accepted.
  struct ZoneCheck {
    bool col_col = false;
    int32_t a = 0;
    int32_t b = 0;
    uint8_t cmask = 0;
    bool imm_is_double = false;
    int64_t imm_i = 0;
    double imm_d = 0.0;
    int32_t imm_slot = -1;  // parameter slot of the literal (templates only)
  };

  const CVal* Execute(const Row& row, EvalScratch* scratch,
                      const AggValueMap* agg_values) const;

  /// Shared compile pipeline. `params` maps parameter literal nodes to
  /// their slot (nullptr = plain mode with constant folding).
  static CompiledExpr BuildProgram(
      const Expr& e, const std::unordered_map<const Expr*, int>* params);

  /// Compiles `e` as a parameterized template: constant folding across
  /// parameter literals is suppressed (each records a bind site instead),
  /// parameter constants get private pool entries, and fused immediates /
  /// zone checks remember their parameter slot. `literals`/`aggregates`
  /// are the canonical CollectParamNodes enumeration of `e`.
  static CompiledExpr CompileTemplate(
      const Expr& e, const std::vector<const Expr*>& literals,
      const std::vector<const Expr*>& aggregates);

  /// Instantiates this template against a structurally identical
  /// expression's parameter nodes (same ParamShapeSignature): copies the
  /// program, patches parameter constants / fused immediates / zone checks
  /// with the new literal values, and re-points aggregate references at
  /// the new tree's aggregate nodes. Returns an invalid program when the
  /// slot counts do not match (caller falls back to a fresh compile). A
  /// zone check whose re-bound double is NaN is dropped (NaN never
  /// refutes).
  CompiledExpr Rebind(const std::vector<const Expr*>& literals,
                      const std::vector<const Expr*>& aggregates) const;

  std::vector<ExprInstr> code_;
  std::vector<Value> consts_;
  std::vector<CVal> const_cvals_;  // consts_ pre-lowered to stack slots
  std::vector<ZoneCheck> zone_checks_;
  size_t max_stack_ = 0;
  size_t fused_ops_ = 0;
  bool batchable_ = false;
  // Template metadata (parameterized mode only; empty otherwise):
  // (constant-pool index, parameter slot) bind sites, the parameter slot of
  // each aggregate-bearing instruction in code order, and the slot counts
  // Rebind validates against.
  std::vector<std::pair<int32_t, int32_t>> const_slots_;
  std::vector<int32_t> agg_slots_;
  size_t param_count_ = 0;
  size_t agg_count_ = 0;
};

/// Compiles every expression of `exprs`; returns an empty vector when the
/// compiled engine is disabled (callers then fall back to Evaluate).
std::vector<CompiledExpr> CompileAll(const std::vector<ExprPtr>& exprs);

}  // namespace iceberg

#endif  // SMARTICEBERG_EXPR_COMPILED_H_
