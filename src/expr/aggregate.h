#ifndef SMARTICEBERG_EXPR_AGGREGATE_H_
#define SMARTICEBERG_EXPR_AGGREGATE_H_

#include <set>
#include <vector>

#include "src/common/value.h"
#include "src/expr/expr.h"

namespace iceberg {

/// True for aggregates that are *algebraic* in the Gray et al. data-cube
/// sense: a bound-size partial state exists such that partials over a
/// partition of the input can be combined into the full result. COUNT, SUM,
/// MIN, MAX, AVG are algebraic; COUNT(DISTINCT ...) is holistic. The
/// memoization rewrite (paper Appendix C) requires algebraic aggregates
/// whenever an LR-group can combine contributions from multiple bindings.
bool IsAlgebraic(AggFunc func);

/// Number of values in the partial state (f^i output) of an aggregate:
/// 1 for COUNT/SUM/MIN/MAX, 2 for AVG (sum, count).
size_t PartialArity(AggFunc func);

/// Incremental accumulator for one aggregate over one group.
///
/// Besides the usual Add/Final interface it exposes the algebraic
/// decomposition used by memoization: PartialState() returns the f^i
/// output as a fixed-arity Row, and MergePartial() applies f^o, folding
/// another partial state into this accumulator.
class Accumulator {
 public:
  explicit Accumulator(AggFunc func) : func_(func) {}

  AggFunc func() const { return func_; }

  /// Folds one input value in. For COUNT(*) the value is ignored; for all
  /// other aggregates SQL NULL inputs are skipped.
  void Add(const Value& v);

  /// The aggregate result. Empty-input semantics: COUNT variants yield 0;
  /// SUM/MIN/MAX/AVG yield NULL.
  Value Final() const;

  /// The algebraic partial state (size PartialArity(func)); only valid for
  /// algebraic aggregates.
  Row PartialState() const;

  /// Combines another partial state into this accumulator (f^o).
  void MergePartial(const Row& state);

  /// Restores an accumulator from a partial state.
  static Accumulator FromPartial(AggFunc func, const Row& state);

  /// Merges a full accumulator (including holistic COUNT DISTINCT state).
  /// Used by the parallel executor when combining per-worker group states.
  void MergeFrom(const Accumulator& other);

 private:
  AggFunc func_;
  int64_t count_ = 0;          // rows contributing (non-NULL for arg aggs)
  double sum_ = 0.0;           // running sum for SUM/AVG
  bool sum_is_int_ = true;     // SUM of all-int inputs stays integer
  Value min_, max_;            // extremes (NULL until first input)
  std::set<Row, RowLess> distinct_;  // COUNT DISTINCT state
};

}  // namespace iceberg

#endif  // SMARTICEBERG_EXPR_AGGREGATE_H_
