#include "src/expr/expr.h"

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace iceberg {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCountStar:
      return "COUNT";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kCountDistinct:
      return "COUNT DISTINCT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

BinaryOp NegateComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return BinaryOp::kNe;
    case BinaryOp::kNe:
      return BinaryOp::kEq;
    case BinaryOp::kLt:
      return BinaryOp::kGe;
    case BinaryOp::kLe:
      return BinaryOp::kGt;
    case BinaryOp::kGt:
      return BinaryOp::kLe;
    case BinaryOp::kGe:
      return BinaryOp::kLt;
    default:
      ICEBERG_CHECK(false);
      return op;
  }
}

std::string Expr::QualifiedName() const {
  ICEBERG_DCHECK(kind == ExprKind::kColumnRef);
  if (qualifier.empty()) return ToLower(column);
  return ToLower(qualifier) + "." + ToLower(column);
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kBinary: {
      std::string l = children[0]->ToString();
      std::string r = children[1]->ToString();
      bool parens = (bop == BinaryOp::kOr || bop == BinaryOp::kAnd);
      std::string out = l + " " + BinaryOpName(bop) + " " + r;
      return parens ? "(" + out + ")" : out;
    }
    case ExprKind::kUnary:
      if (uop == UnaryOp::kNot) return "NOT (" + children[0]->ToString() + ")";
      return "-(" + children[0]->ToString() + ")";
    case ExprKind::kAggregate: {
      if (agg == AggFunc::kCountStar) return "COUNT(*)";
      std::string arg = children.empty() ? "*" : children[0]->ToString();
      if (agg == AggFunc::kCountDistinct) {
        return "COUNT(DISTINCT " + arg + ")";
      }
      return std::string(AggFuncName(agg)) + "(" + arg + ")";
    }
  }
  return "?";
}

ExprPtr Lit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }

ExprPtr Col(std::string qualifier, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Col(std::string column) { return Col("", std::move(column)); }

ExprPtr Bin(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bop = op;
  e->children = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Not(ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->uop = UnaryOp::kNot;
  e->children = {std::move(child)};
  return e;
}

ExprPtr Neg(ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->uop = UnaryOp::kNeg;
  e->children = {std::move(child)};
  return e;
}

ExprPtr Agg(AggFunc func, ExprPtr arg) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg = func;
  if (arg != nullptr) e->children = {std::move(arg)};
  return e;
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return Lit(Value::Bool(true));
  ExprPtr out = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    out = Bin(BinaryOp::kAnd, out, conjuncts[i]);
  }
  return out;
}

ExprPtr CloneExpr(const ExprPtr& e) {
  if (e == nullptr) return nullptr;
  auto out = std::make_shared<Expr>(*e);
  out->children.clear();
  for (const ExprPtr& c : e->children) out->children.push_back(CloneExpr(c));
  return out;
}

void CollectAggregates(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kAggregate) {
    out->push_back(e);
    return;  // aggregates do not nest
  }
  for (const ExprPtr& c : e->children) CollectAggregates(c, out);
}

void CollectColumnRefs(const ExprPtr& e, std::vector<Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kColumnRef) {
    out->push_back(e.get());
    return;
  }
  for (const ExprPtr& c : e->children) CollectColumnRefs(c, out);
}

void CollectColumnRefs(const ExprPtr& e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kColumnRef) {
    out->push_back(e.get());
    return;
  }
  for (const ExprPtr& c : e->children) CollectColumnRefs(c, out);
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->bop == BinaryOp::kAnd) {
    SplitConjuncts(e->children[0], out);
    SplitConjuncts(e->children[1], out);
    return;
  }
  out->push_back(e);
}

std::string ExprSignature(const Expr& e) {
  std::string out;
  switch (e.kind) {
    case ExprKind::kLiteral:
      out = "L" + e.literal.ToString();
      break;
    case ExprKind::kColumnRef:
      out = "C" + std::to_string(e.resolved_index);
      break;
    case ExprKind::kBinary:
      out = std::string("B") + BinaryOpName(e.bop);
      break;
    case ExprKind::kUnary:
      out = e.uop == UnaryOp::kNot ? "!" : "-";
      break;
    case ExprKind::kAggregate:
      out = std::string("A") + std::to_string(static_cast<int>(e.agg));
      break;
  }
  for (const ExprPtr& c : e.children) {
    out += "(" + ExprSignature(*c) + ")";
  }
  return out;
}

std::string ParamShapeSignature(const Expr& e) {
  std::string out;
  switch (e.kind) {
    case ExprKind::kLiteral:
      if (e.literal.is_null()) {
        out = "LN";
      } else if (e.literal.is_int()) {
        out = "?i";
      } else if (e.literal.is_double()) {
        out = "?d";
      } else {
        out = "?s";
      }
      break;
    case ExprKind::kColumnRef:
      out = "C" + std::to_string(e.resolved_index);
      break;
    case ExprKind::kBinary:
      out = std::string("B") + BinaryOpName(e.bop);
      break;
    case ExprKind::kUnary:
      out = e.uop == UnaryOp::kNot ? "!" : "-";
      break;
    case ExprKind::kAggregate:
      // Aggregate arguments are value-exact (see header).
      return ExprSignature(e);
  }
  for (const ExprPtr& c : e.children) {
    out += "(" + ParamShapeSignature(*c) + ")";
  }
  return out;
}

void CollectParamNodes(const Expr& e, std::vector<const Expr*>* literals,
                       std::vector<const Expr*>* aggregates) {
  if (e.kind == ExprKind::kAggregate) {
    // Stop here: literals inside aggregate arguments are not parameters
    // (ParamShapeSignature keeps them verbatim).
    if (aggregates != nullptr) aggregates->push_back(&e);
    return;
  }
  if (e.kind == ExprKind::kLiteral) {
    if (!e.literal.is_null() && literals != nullptr) literals->push_back(&e);
    return;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr) CollectParamNodes(*c, literals, aggregates);
  }
}

bool ContainsAggregate(const ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kAggregate) return true;
  for (const ExprPtr& c : e->children) {
    if (ContainsAggregate(c)) return true;
  }
  return false;
}

}  // namespace iceberg
