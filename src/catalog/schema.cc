#include "src/catalog/schema.h"

#include "src/common/string_util.h"

namespace iceberg {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::GetColumnIndex(const std::string& name) const {
  std::optional<size_t> idx = FindColumn(name);
  if (!idx.has_value()) {
    return Status::BindError("column not found: " + name);
  }
  return *idx;
}

Status Schema::AddColumn(Column column) {
  if (FindColumn(column.name).has_value()) {
    return Status::AlreadyExists("duplicate column: " + column.name);
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns();
  for (const Column& c : right.columns()) cols.push_back(c);
  Schema out;
  out.columns_ = std::move(cols);
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace iceberg
