#include "src/catalog/fd.h"

#include "src/common/string_util.h"

namespace iceberg {

AttrSet MakeAttrSet(const std::vector<std::string>& names) {
  AttrSet out;
  for (const std::string& n : names) out.insert(ToLower(n));
  return out;
}

std::string AttrSetToString(const AttrSet& attrs) {
  std::string out = "{";
  bool first = true;
  for (const std::string& a : attrs) {
    if (!first) out += ", ";
    out += a;
    first = false;
  }
  out += "}";
  return out;
}

std::string FunctionalDependency::ToString() const {
  return AttrSetToString(lhs) + " -> " + AttrSetToString(rhs);
}

void FdSet::Add(FunctionalDependency fd) {
  FunctionalDependency folded;
  for (const std::string& a : fd.lhs) folded.lhs.insert(ToLower(a));
  for (const std::string& a : fd.rhs) folded.rhs.insert(ToLower(a));
  fds_.push_back(std::move(folded));
}

void FdSet::Add(const std::vector<std::string>& lhs,
                const std::vector<std::string>& rhs) {
  Add(FunctionalDependency{MakeAttrSet(lhs), MakeAttrSet(rhs)});
}

void FdSet::AddEquivalence(const std::string& a, const std::string& b) {
  Add({a}, {b});
  Add({b}, {a});
}

AttrSet FdSet::Closure(const AttrSet& attrs) const {
  AttrSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds_) {
      bool lhs_contained = true;
      for (const std::string& a : fd.lhs) {
        if (closure.find(a) == closure.end()) {
          lhs_contained = false;
          break;
        }
      }
      if (!lhs_contained) continue;
      for (const std::string& a : fd.rhs) {
        if (closure.insert(a).second) changed = true;
      }
    }
  }
  return closure;
}

bool FdSet::Determines(const AttrSet& attrs, const AttrSet& target) const {
  AttrSet closure = Closure(attrs);
  for (const std::string& a : target) {
    if (closure.find(a) == closure.end()) return false;
  }
  return true;
}

bool FdSet::IsSuperkey(const AttrSet& attrs, const AttrSet& all) const {
  return Determines(attrs, all);
}

FdSet FdSet::WithQualifier(const std::string& qualifier) const {
  std::string prefix = ToLower(qualifier) + ".";
  FdSet out;
  for (const FunctionalDependency& fd : fds_) {
    FunctionalDependency lifted;
    for (const std::string& a : fd.lhs) lifted.lhs.insert(prefix + a);
    for (const std::string& a : fd.rhs) lifted.rhs.insert(prefix + a);
    out.fds_.push_back(std::move(lifted));
  }
  return out;
}

void FdSet::Merge(const FdSet& other) {
  for (const FunctionalDependency& fd : other.fds_) fds_.push_back(fd);
}

std::string FdSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (i > 0) out += "; ";
    out += fds_[i].ToString();
  }
  return out;
}

}  // namespace iceberg
