#ifndef SMARTICEBERG_CATALOG_SCHEMA_H_
#define SMARTICEBERG_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"

namespace iceberg {

/// A named, typed column.
struct Column {
  std::string name;
  DataType type = DataType::kInt64;
};

/// An ordered list of columns. Column names are case-insensitive and must be
/// unique within a schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Returns the ordinal of the column with the given (case-insensitive)
  /// name, or nullopt.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Like FindColumn but returns a BindError when missing.
  Result<size_t> GetColumnIndex(const std::string& name) const;

  /// Appends a column; fails if the name already exists.
  Status AddColumn(Column column);

  /// Concatenates two schemas (used for join outputs); caller is responsible
  /// for disambiguating names via qualifiers.
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_CATALOG_SCHEMA_H_
