#ifndef SMARTICEBERG_CATALOG_FD_H_
#define SMARTICEBERG_CATALOG_FD_H_

#include <set>
#include <string>
#include <vector>

namespace iceberg {

/// A set of attribute names. Names are stored case-folded (lower) so FD
/// reasoning is case-insensitive, matching SQL identifier semantics.
using AttrSet = std::set<std::string>;

/// Builds an AttrSet, lower-casing each name.
AttrSet MakeAttrSet(const std::vector<std::string>& names);

/// Renders "{a, b}".
std::string AttrSetToString(const AttrSet& attrs);

/// A functional dependency lhs -> rhs over some relation's attributes.
struct FunctionalDependency {
  AttrSet lhs;
  AttrSet rhs;

  std::string ToString() const;
};

/// A collection of functional dependencies supporting the standard
/// Armstrong-axiom reasoning used by the optimizer's safety checks
/// (Theorems 2 and 3 of the paper) and the join FD-inference of Appendix D.
class FdSet {
 public:
  FdSet() = default;

  void Add(FunctionalDependency fd);
  /// Convenience: add {lhs} -> {rhs} from plain name lists.
  void Add(const std::vector<std::string>& lhs,
           const std::vector<std::string>& rhs);
  /// Adds a two-way equivalence a <-> b (produced by equality predicates).
  void AddEquivalence(const std::string& a, const std::string& b);

  const std::vector<FunctionalDependency>& fds() const { return fds_; }
  size_t size() const { return fds_.size(); }

  /// Computes the attribute closure of `attrs` under this FD set.
  AttrSet Closure(const AttrSet& attrs) const;

  /// True if `attrs` functionally determines every attribute in `target`.
  bool Determines(const AttrSet& attrs, const AttrSet& target) const;

  /// True if `attrs` is a superkey of a relation with attribute set `all`.
  bool IsSuperkey(const AttrSet& attrs, const AttrSet& all) const;

  /// Returns a new FdSet whose attribute names are prefixed with
  /// "<qualifier>." — used to lift per-table FDs into a query's namespace
  /// (one lift per table *instance*, so self-joins get distinct prefixes).
  FdSet WithQualifier(const std::string& qualifier) const;

  /// Merges another FdSet into this one.
  void Merge(const FdSet& other);

  std::string ToString() const;

 private:
  std::vector<FunctionalDependency> fds_;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_CATALOG_FD_H_
