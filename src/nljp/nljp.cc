#include "src/nljp/nljp.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/exec/join_pipeline.h"
#include "src/exec/task_pool.h"
#include "src/expr/aggregate.h"
#include "src/expr/evaluator.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace iceberg {

void NljpStats::Accumulate(const NljpStats& run) {
  bindings_total += run.bindings_total;
  memo_hits += run.memo_hits;
  pruned += run.pruned;
  inner_evaluations += run.inner_evaluations;
  prune_tests += run.prune_tests;
  inner_pairs_examined += run.inner_pairs_examined;
  inner_chunks_skipped += run.inner_chunks_skipped;
  inner_batch_rows += run.inner_batch_rows;
  transfer_passes += run.transfer_passes;
  transfer_filters_built += run.transfer_filters_built;
  transfer_probes += run.transfer_probes;
  transfer_hits += run.transfer_hits;
  transfer_rows_eliminated += run.transfer_rows_eliminated;
  transfer_filter_bytes += run.transfer_filter_bytes;
  transfer_build_ns += run.transfer_build_ns;
  cache_entries += run.cache_entries;
  cache_bytes += run.cache_bytes;
  cache_evictions += run.cache_evictions;
  cache_shed_entries += run.cache_shed_entries;
  cancel_checks = run.cancel_checks;
  budget_bytes_peak = run.budget_bytes_peak;
  workers = run.workers;
  bindings_per_worker = run.bindings_per_worker;
  busy_us_per_worker = run.busy_us_per_worker;
  execute_us += run.execute_us;
}

std::string NljpStats::ToString() const {
  std::string out = "bindings=" + std::to_string(bindings_total) +
                    " memo_hits=" + std::to_string(memo_hits) +
                    " pruned=" + std::to_string(pruned) +
                    " inner_evals=" + std::to_string(inner_evaluations) +
                    " prune_tests=" + std::to_string(prune_tests) +
                    " cache_entries=" + std::to_string(cache_entries) +
                    " cache_kb=" + std::to_string(cache_bytes / 1024);
  if (inner_batch_rows > 0 || inner_chunks_skipped > 0) {
    out += " inner_batch_rows=" + std::to_string(inner_batch_rows) +
           " inner_chunks_skipped=" + std::to_string(inner_chunks_skipped);
  }
  if (transfer_probes > 0 || transfer_passes > 0) {
    out += " transfer_passes=" + std::to_string(transfer_passes) +
           " transfer=" + std::to_string(transfer_hits) + "/" +
           std::to_string(transfer_probes) +
           " transfer_eliminated=" + std::to_string(transfer_rows_eliminated);
  }
  if (cache_evictions > 0) {
    out += " evictions=" + std::to_string(cache_evictions);
  }
  if (cache_shed_entries > 0) {
    out += " shed=" + std::to_string(cache_shed_entries);
  }
  if (cancel_checks > 0) {
    out += " checks=" + std::to_string(cancel_checks);
  }
  if (budget_bytes_peak > 0) {
    out += " peak_kb=" + std::to_string(budget_bytes_peak / 1024);
  }
  if (workers > 1) {
    out += " workers=" + std::to_string(workers) + " bindings_per_worker=[";
    for (size_t i = 0; i < bindings_per_worker.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(bindings_per_worker[i]);
    }
    out += "]";
    if (!busy_us_per_worker.empty()) {
      out += " busy_us_per_worker=[";
      for (size_t i = 0; i < busy_us_per_worker.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(busy_us_per_worker[i]);
      }
      out += "]";
    }
  }
  if (execute_us > 0) out += " execute_us=" + std::to_string(execute_us);
  return out;
}

Result<std::unique_ptr<NljpOperator>> NljpOperator::Create(
    IcebergView view, NljpOptions options) {
  const QueryBlock& block = *view.block;
  if (block.having == nullptr) {
    return Status::NotSupported("NLJP requires a HAVING condition");
  }
  if (view.theta.empty() || view.jl_offsets.empty()) {
    return Status::NotSupported("NLJP requires a join condition with "
                                "binding attributes");
  }
  if (!view.ApplicableTo(block.having, /*left_side=*/false)) {
    return Status::NotSupported("HAVING not applicable to the inner side");
  }

  auto op = std::unique_ptr<NljpOperator>(new NljpOperator());
  op->view_ = std::move(view);
  op->block_ = op->view_.block;
  op->options_ = options;
  const NljpPlanArtifacts* replay = options.replay_artifacts;
  op->monotonicity_ = (replay != nullptr && replay->monotonicity_valid)
                          ? replay->monotonicity
                          : op->view_.HavingMonotonicity();
  op->group_determines_left_ = op->view_.GroupDeterminesLeft();

  // Collect aggregates (HAVING first, then select items) and verify their
  // arguments live on the inner side.
  CollectAggregates(block.having, &op->agg_nodes_);
  const size_t num_phi_aggs = op->agg_nodes_.size();
  for (const BoundSelectItem& item : block.select) {
    CollectAggregates(item.expr, &op->agg_nodes_);
  }
  bool all_algebraic = true;
  for (const ExprPtr& agg : op->agg_nodes_) {
    if (!agg->children.empty() &&
        !op->view_.ApplicableTo(agg->children[0], /*left_side=*/false)) {
      return Status::NotSupported(
          "aggregate over outer-side attributes: " + agg->ToString());
    }
    if (!IsAlgebraic(agg->agg)) all_algebraic = false;
  }
  // Appendix C: non-algebraic aggregates are only safe when every LR-group
  // receives a single contribution (G_L -> A_L).
  op->algebraic_mode_ = all_algebraic;
  if (!all_algebraic && !op->group_determines_left_) {
    return Status::NotSupported(
        "holistic aggregate without G_L -> A_L; partial results cannot be "
        "combined");
  }

  // ---- Q_B: the L-side sub-join ----
  ICEBERG_ASSIGN_OR_RETURN(
      op->binding_block_,
      MakeSubBlock(block, op->view_.partition.left, op->view_.left_only,
                   &op->left_offset_map_));
  for (size_t off : op->view_.jl_offsets) {
    op->binding_positions_.push_back(op->left_offset_map_.at(off));
  }

  // ---- Q_R(b): parameter table + R-side tables ----
  Schema param_schema;
  std::vector<DataType> types_by_offset;
  for (const BoundTableRef& t : block.tables) {
    for (const Column& c : t.table->schema().columns()) {
      types_by_offset.push_back(c.type);
    }
  }
  for (size_t i = 0; i < op->view_.jl_offsets.size(); ++i) {
    ICEBERG_RETURN_NOT_OK(param_schema.AddColumn(
        {"b" + std::to_string(i), types_by_offset[op->view_.jl_offsets[i]]}));
  }
  op->param_table_ = std::make_shared<Table>("_binding", param_schema);
  op->param_table_->AppendUnchecked(
      Row(param_schema.num_columns(), Value::Null()));

  BoundTableRef param_ref;
  param_ref.alias = "_b";
  param_ref.table = op->param_table_;
  param_ref.offset = 0;
  op->inner_block_.tables.push_back(param_ref);
  size_t inner_offset = param_schema.num_columns();
  std::map<size_t, size_t> inner_map;
  for (size_t i = 0; i < op->view_.jl_offsets.size(); ++i) {
    inner_map[op->view_.jl_offsets[i]] = i;  // J_L -> param columns
  }
  for (size_t ti : op->view_.partition.right) {
    BoundTableRef ref = block.tables[ti];
    for (size_t c = 0; c < ref.table->schema().num_columns(); ++c) {
      inner_map[ref.offset + c] = inner_offset + c;
      op->right_offset_map_[ref.offset + c] = inner_offset + c;
    }
    ref.offset = inner_offset;
    inner_offset += ref.table->schema().num_columns();
    op->inner_block_.tables.push_back(std::move(ref));
  }
  for (const ExprPtr& conjunct : op->view_.theta) {
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr remapped,
                             RemapExpr(conjunct, inner_map));
    op->inner_block_.where_conjuncts.push_back(std::move(remapped));
  }
  for (const ExprPtr& conjunct : op->view_.right_only) {
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr remapped,
                             RemapExpr(conjunct, inner_map));
    op->inner_block_.where_conjuncts.push_back(std::move(remapped));
  }
  for (size_t gr : op->view_.gr_offsets) {
    ExprPtr ref = Col(block.QualifiedNameOfOffset(gr));
    ref->resolved_index = static_cast<int>(op->right_offset_map_.at(gr));
    op->inner_gr_exprs_.push_back(std::move(ref));
  }
  ICEBERG_ASSIGN_OR_RETURN(op->inner_phi_,
                           RemapExpr(block.having, inner_map));
  CollectAggregates(op->inner_phi_, &op->inner_phi_aggs_);
  ICEBERG_CHECK(op->inner_phi_aggs_.size() == num_phi_aggs);
  // Deduplicate structurally identical aggregates into shared slots.
  std::map<std::string, size_t> slot_of_signature;
  for (const ExprPtr& agg : op->agg_nodes_) {
    ExprPtr arg;
    if (!agg->children.empty()) {
      ICEBERG_ASSIGN_OR_RETURN(arg, RemapExpr(agg->children[0], inner_map));
    }
    std::string signature = std::to_string(static_cast<int>(agg->agg)) +
                            ":" + (arg == nullptr ? "*" : ExprSignature(*arg));
    auto it = slot_of_signature.find(signature);
    if (it == slot_of_signature.end()) {
      it = slot_of_signature.emplace(signature, op->slot_funcs_.size()).first;
      op->slot_funcs_.push_back(agg->agg);
      op->slot_args_.push_back(std::move(arg));
    }
    op->agg_slot_.push_back(it->second);
  }

  // Plan Q_R once; only the parameter row changes across bindings. The
  // one-row parameter table stays below every vectorization threshold, so
  // chunks attach only to the static R-side levels. Predicate transfer is
  // off here: the parameter table is rebound (mutated) per binding, so any
  // plan-time selection would be invalidated before the first Run.
  {
    TransferPlanOptions no_transfer;
    no_transfer.enabled = false;
    Result<JoinPipeline> inner_pipeline =
        JoinPipeline::Plan(op->inner_block_, options.use_indexes,
                           /*vectorize=*/true, options.governor.get(),
                           no_transfer);
    if (!inner_pipeline.ok()) return inner_pipeline.status();
    op->inner_pipeline_.emplace(std::move(*inner_pipeline));
  }

  // ---- Memoization applicability (Section 6) ----
  op->memo_enabled_ = options.enable_memo;
  if (op->memo_enabled_ && !options.force_memo &&
      op->view_.JoinDeterminesLeft()) {
    // Bindings are unique across L-tuples; caching adds cost, no reuse.
    op->memo_enabled_ = false;
  }

  // ---- Pruning applicability (Theorem 3) ----
  // Plan-cache replay: when the capture side recorded a full pruning
  // decision (gating outcome + derived p>=), inject it and skip both the
  // gating scan and the Fourier–Motzkin derivation below.
  const bool prune_injected =
      replay != nullptr && replay->have_prune_decision &&
      (!replay->prune_enabled || replay->subsumption.has_value());
  if (prune_injected) {
    op->prune_enabled_ = options.enable_prune && replay->prune_enabled;
    op->prune_disabled_reason_ = replay->prune_disabled_reason;
    if (op->prune_enabled_) {
      op->subsumption_ = replay->subsumption;
      op->prune_eq_positions_ = op->subsumption_->EqualityPositions();
    }
  } else {
    op->prune_enabled_ = options.enable_prune;
  }
  if (!prune_injected && op->prune_enabled_) {
    if (op->monotonicity_ == Monotonicity::kMonotone) {
      if (!op->group_determines_left_) {
        op->prune_enabled_ = false;
        op->prune_disabled_reason_ = "G_L is not a superkey of L";
      }
    } else if (op->monotonicity_ == Monotonicity::kAntiMonotone) {
      if (!op->group_determines_left_) {
        op->prune_enabled_ = false;
        op->prune_disabled_reason_ = "G_L is not a superkey of L";
      } else if (!op->view_.gr_offsets.empty()) {
        op->prune_enabled_ = false;
        op->prune_disabled_reason_ =
            "anti-monotone pruning requires empty G_R";
      }
    } else {
      op->prune_enabled_ = false;
      op->prune_disabled_reason_ = "HAVING is neither monotone nor "
                                   "anti-monotone";
    }
  }
  if (!prune_injected && op->prune_enabled_) {
    fme::SubsumptionSpec spec;
    spec.theta = op->view_.theta;
    spec.binding_offsets = op->view_.jl_offsets;
    const IcebergView* view_ptr = &op->view_;
    spec.is_left_offset = [view_ptr](size_t off) {
      return view_ptr->IsLeftOffset(off);
    };
    spec.types_by_offset = types_by_offset;
    Result<fme::SubsumptionTest> derived = fme::DeriveSubsumption(spec);
    if (!derived.ok()) {
      op->prune_enabled_ = false;
      op->prune_disabled_reason_ =
          "p>= derivation failed: " + derived.status().ToString();
    } else if (derived->IsNeverTrue()) {
      op->prune_enabled_ = false;
      op->prune_disabled_reason_ = "derived p>= is unsatisfiable";
    } else {
      op->subsumption_ = std::move(*derived);
      op->prune_eq_positions_ = op->subsumption_->EqualityPositions();
    }
  }

  // ---- Compiled programs + packed key codecs (per-binding hot path) ----
  if (CompiledExprEnabled()) {
    op->gr_progs_ = CompileAll(op->inner_gr_exprs_);
    op->slot_arg_progs_.reserve(op->slot_args_.size());
    for (const ExprPtr& arg : op->slot_args_) {
      if (arg == nullptr) {
        op->slot_arg_progs_.emplace_back();  // COUNT(*)
      } else {
        op->slot_arg_progs_.push_back(CompiledExpr::Compile(*arg));
      }
    }
    op->phi_prog_ = CompiledExpr::Compile(*op->inner_phi_);
    op->group_progs_ = CompileAll(block.group_by);

    std::vector<DataType> binding_types;
    binding_types.reserve(op->view_.jl_offsets.size());
    for (size_t off : op->view_.jl_offsets) {
      binding_types.push_back(types_by_offset[off]);
    }
    op->binding_codec_ = KeyCodec::ForTypes(binding_types);
    if (op->prune_enabled_) {
      std::vector<DataType> eq_types;
      eq_types.reserve(op->prune_eq_positions_.size());
      for (size_t pos : op->prune_eq_positions_) {
        eq_types.push_back(binding_types[pos]);
      }
      op->eq_codec_ = KeyCodec::ForTypes(std::move(eq_types));
    }
    std::vector<DataType> inner_types;
    for (const BoundTableRef& t : op->inner_block_.tables) {
      for (const Column& c : t.table->schema().columns()) {
        inner_types.push_back(c.type);
      }
    }
    op->gr_codec_ = CodecForExprs(op->inner_gr_exprs_, inner_types);
  }
  return op;
}

Result<NljpOperator::CacheEntry> NljpOperator::EvaluateInner(
    Row binding, NljpStats* stats) {
  return EvaluateInnerWith(*inner_pipeline_, param_table_.get(),
                           std::move(binding), stats);
}

Result<NljpOperator::CacheEntry> NljpOperator::EvaluateInnerWith(
    const JoinPipeline& pipeline, Table* param, Row binding,
    NljpStats* stats) const {
  // Per-binding inner-join cost: the distribution (not just the total) is
  // what shows whether memo/prune removed the expensive evaluations.
  TraceSpan span("nljp.inner_eval", "nljp");
  struct EvalTimer {
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    ~EvalTimer() {
      ICEBERG_HISTOGRAM("nljp.inner_eval_us")
          ->Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
    }
  } eval_timer;
  param->UpdateRow(0, binding);

  // Partition joining R-tuples by G_R, accumulating every aggregate. With
  // all-numeric G_R the map is keyed by fixed-width PackedKeys (memcmp
  // equality, word-mix hash); the materialized Row key moves into the state
  // because the cache payload needs it.
  struct PartitionState {
    Row gr_key;
    Row representative;
    std::vector<Accumulator> accumulators;  // one per slot
  };
  std::unordered_map<Row, PartitionState, RowHash, RowEq> partitions;
  std::unordered_map<PackedKey, PartitionState, PackedKeyHash, PackedKeyEq>
      packed_partitions;
  const bool packed = gr_codec_.usable();
  // Per-call scratch: EvaluateInnerWith runs concurrently (one call per
  // worker), so the evaluation stack and reusable key row live here.
  EvalScratch eval;
  Row key_scratch;
  key_scratch.reserve(inner_gr_exprs_.size());
  PackedKey packed_scratch;
  ExecStats inner_stats;
  auto make_state = [&](const Row& joined) {
    PartitionState state;
    state.gr_key = key_scratch;
    state.representative = joined;
    state.accumulators.reserve(slot_funcs_.size());
    for (AggFunc func : slot_funcs_) {
      state.accumulators.emplace_back(func);
    }
    return state;
  };
  Status run_status = pipeline.Run(
      0, 1,
      [&](const Row& joined) {
        key_scratch.clear();
        for (size_t i = 0; i < inner_gr_exprs_.size(); ++i) {
          if (i < gr_progs_.size() && gr_progs_[i].valid()) {
            key_scratch.push_back(gr_progs_[i].Run(joined, &eval));
          } else {
            key_scratch.push_back(Evaluate(*inner_gr_exprs_[i], joined));
          }
        }
        PartitionState* state;
        if (packed) {
          gr_codec_.Encode(key_scratch.data(), key_scratch.size(),
                           &packed_scratch);
          auto it = packed_partitions.find(packed_scratch);
          if (it == packed_partitions.end()) {
            it = packed_partitions.emplace(packed_scratch, make_state(joined))
                     .first;
          }
          state = &it->second;
        } else {
          auto it = partitions.find(key_scratch);
          if (it == partitions.end()) {
            it = partitions.emplace(key_scratch, make_state(joined)).first;
          }
          state = &it->second;
        }
        for (size_t i = 0; i < slot_funcs_.size(); ++i) {
          if (slot_args_[i] == nullptr) {
            state->accumulators[i].Add(Value::Null());  // COUNT(*)
          } else if (i < slot_arg_progs_.size() &&
                     slot_arg_progs_[i].valid()) {
            state->accumulators[i].Add(
                slot_arg_progs_[i].Run(joined, &eval));
          } else {
            state->accumulators[i].Add(Evaluate(*slot_args_[i], joined));
          }
        }
      },
      &inner_stats, options_.governor.get());
  if (stats != nullptr) {
    stats->inner_pairs_examined += inner_stats.join_pairs_examined;
    stats->inner_chunks_skipped += inner_stats.chunks_skipped;
    stats->inner_batch_rows += inner_stats.batch_rows;
  }
  ICEBERG_RETURN_NOT_OK(run_status);

  CacheEntry entry;
  entry.binding = std::move(binding);
  entry.unpromising = true;
  if (partitions.empty() && packed_partitions.empty()) {
    // No joining R-tuple: the binding contributes no candidate LR-group.
    // Whether it may serve as a PRUNING witness depends on the direction:
    //  - monotone Phi: any binding subsumed by this one (R|x<l subset of
    //    the empty set) also joins nothing, so pruning via it is sound —
    //    and Definition 5 marks it unpromising vacuously.
    //  - anti-monotone Phi: unsound in general. Monotonicity per Table 2
    //    holds on NON-EMPTY inputs, but e.g. MIN(A) >= c has Phi(empty) =
    //    false (NULL comparison) while a superset can satisfy Phi — the
    //    T-superset-of-empty implication breaks. (For COUNT(*) <= c,
    //    Phi(empty) is true and the binding is promising anyway.)
    entry.unpromising = monotonicity_ == Monotonicity::kMonotone;
    return entry;
  }
  auto flush = [&](PartitionState& state) {
    PartitionPayload payload;
    payload.gr_key = std::move(state.gr_key);
    AggValueMap phi_values;
    for (size_t i = 0; i < inner_phi_aggs_.size(); ++i) {
      phi_values[inner_phi_aggs_[i].get()] =
          state.accumulators[agg_slot_[i]].Final();
    }
    payload.phi_pass =
        phi_prog_.valid()
            ? phi_prog_.RunPredicate(state.representative, &eval, &phi_values)
            : EvaluatePredicate(*inner_phi_, state.representative,
                                &phi_values);
    if (payload.phi_pass) entry.unpromising = false;
    if (algebraic_mode_) {
      for (const Accumulator& acc : state.accumulators) {
        payload.partials.push_back(acc.PartialState());
      }
    } else {
      for (const Accumulator& acc : state.accumulators) {
        payload.finals.push_back(acc.Final());
      }
    }
    entry.partitions.push_back(std::move(payload));
  };
  for (auto& [key, state] : partitions) flush(state);
  for (auto& [key, state] : packed_partitions) flush(state);
  return entry;
}

Row NljpOperator::BindingOf(const Row& l_row) const {
  Row b;
  b.reserve(binding_positions_.size());
  for (size_t pos : binding_positions_) b.push_back(l_row[pos]);
  return b;
}

void NljpOperator::ContributeTo(GroupMap* groups, const Row& l_row,
                                const CacheEntry& entry,
                                QueryGovernor* governor,
                                size_t* mandatory_bytes,
                                EvalScratch* scratch) const {
  const QueryBlock& block = *block_;
  const size_t total_width = block.TotalWidth();
  for (const PartitionPayload& payload : entry.partitions) {
    // Build the synthetic full-width row for group-key evaluation.
    Row synthetic(total_width, Value::Null());
    for (const auto& [orig, pos] : left_offset_map_) {
      synthetic[orig] = l_row[pos];
    }
    for (size_t i = 0; i < view_.gr_offsets.size(); ++i) {
      synthetic[view_.gr_offsets[i]] = payload.gr_key[i];
    }
    Row group_key;
    group_key.reserve(block.group_by.size());
    for (size_t i = 0; i < block.group_by.size(); ++i) {
      if (i < group_progs_.size() && group_progs_[i].valid()) {
        group_key.push_back(group_progs_[i].Run(synthetic, scratch));
      } else {
        group_key.push_back(Evaluate(*block.group_by[i], synthetic));
      }
    }
    auto it = groups->find(group_key);
    if (it == groups->end()) {
      if (governor != nullptr) {
        // Group state is mandatory: under pressure the cache sheds first;
        // a remaining deficit poisons and the main loop aborts at its
        // next check.
        size_t group_bytes = RowBytes(group_key) + RowBytes(synthetic) +
                             slot_funcs_.size() * sizeof(Accumulator) + 64;
        if (!governor->Reserve(group_bytes, "nljp-groups").ok()) return;
        *mandatory_bytes += group_bytes;
      }
      GroupState state;
      state.synthetic = synthetic;
      if (algebraic_mode_) {
        for (AggFunc func : slot_funcs_) {
          state.accumulators.emplace_back(func);
        }
      }
      it = groups->emplace(std::move(group_key), std::move(state)).first;
    }
    GroupState& state = it->second;
    if (algebraic_mode_) {
      for (size_t i = 0; i < slot_funcs_.size(); ++i) {
        state.accumulators[i].MergePartial(payload.partials[i]);
      }
    } else if (!state.has_contribution) {
      // G_L -> A_L guarantees a single contributing binding; duplicate
      // L-rows contribute identical values, so keeping the first is
      // exact for holistic aggregates like COUNT(DISTINCT).
      state.finals = payload.finals;
    }
    state.has_contribution = true;
  }
}

Result<TablePtr> NljpOperator::FinalizeGroups(const GroupMap& groups,
                                              QueryGovernor* governor) const {
  TraceSpan span("nljp.q_p", "nljp");
  const QueryBlock& block = *block_;
  if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
  auto result = std::make_shared<Table>(block.output_schema);
  size_t qp_processed = 0;
  for (const auto& [key, state] : groups) {
    if (governor != nullptr && (qp_processed++ & 255) == 0) {
      ICEBERG_RETURN_NOT_OK(governor->Check());
    }
    AggValueMap agg_values;
    for (size_t i = 0; i < agg_nodes_.size(); ++i) {
      size_t slot = agg_slot_[i];
      agg_values[agg_nodes_[i].get()] = algebraic_mode_
                                            ? state.accumulators[slot].Final()
                                            : state.finals[slot];
    }
    if (!EvaluatePredicate(*block.having, state.synthetic, &agg_values)) {
      continue;
    }
    Row out;
    out.reserve(block.select.size());
    for (const BoundSelectItem& item : block.select) {
      out.push_back(Evaluate(*item.expr, state.synthetic, &agg_values));
    }
    result->AppendUnchecked(std::move(out));
  }
  return result;
}

namespace {

int64_t NljpNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PublishNljpMetrics(const NljpStats& run) {
  ICEBERG_COUNTER("nljp.executions")->Increment();
  ICEBERG_COUNTER("nljp.bindings")->Add(run.bindings_total);
  ICEBERG_COUNTER("nljp.memo_hits")->Add(run.memo_hits);
  ICEBERG_COUNTER("nljp.pruned")->Add(run.pruned);
  ICEBERG_COUNTER("nljp.inner_evaluations")->Add(run.inner_evaluations);
  ICEBERG_COUNTER("nljp.prune_tests")->Add(run.prune_tests);
  ICEBERG_COUNTER("nljp.inner_pairs_examined")->Add(run.inner_pairs_examined);
  ICEBERG_COUNTER("nljp.inner_chunks_skipped")->Add(run.inner_chunks_skipped);
  ICEBERG_COUNTER("nljp.inner_batch_rows")->Add(run.inner_batch_rows);
  ICEBERG_COUNTER("nljp.transfer_passes")->Add(run.transfer_passes);
  ICEBERG_COUNTER("nljp.transfer_probes")->Add(run.transfer_probes);
  ICEBERG_COUNTER("nljp.transfer_hits")->Add(run.transfer_hits);
  ICEBERG_COUNTER("nljp.transfer_rows_eliminated")
      ->Add(run.transfer_rows_eliminated);
  ICEBERG_COUNTER("nljp.cache_evictions")->Add(run.cache_evictions);
  ICEBERG_COUNTER("nljp.cache_shed_entries")->Add(run.cache_shed_entries);
  ICEBERG_GAUGE("nljp.cache_entries")
      ->Set(static_cast<int64_t>(run.cache_entries));
  ICEBERG_GAUGE("nljp.cache_bytes")
      ->Set(static_cast<int64_t>(run.cache_bytes));
  ICEBERG_HISTOGRAM("nljp.execute_us")
      ->Record(static_cast<uint64_t>(run.execute_us));
}

}  // namespace

Result<TablePtr> NljpOperator::Execute(NljpStats* stats) {
  TraceSpan span("nljp.execute", "nljp");
  int64_t started_us = NljpNowMicros();
  NljpStats run;
  Result<TablePtr> result = ExecuteImpl(&run);
  run.execute_us = NljpNowMicros() - started_us;
  if (result.ok()) {
    PublishNljpMetrics(run);
    if (stats != nullptr) stats->Accumulate(run);
  }
  return result;
}

Result<TablePtr> NljpOperator::ExecuteImpl(NljpStats* stats) {
  QueryGovernor* governor = options_.governor.get();
  if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());

  // Hard reservations for transient state (bindings, LR-groups); released
  // when execution leaves this scope so later blocks of the same query see
  // an accurate in-use figure.
  size_t mandatory_bytes = 0;

  // ---- Q_B: stream (or sort) the L-side tuples ----
  // Predicate transfer shrinks the binding stream before memoization or
  // pruning ever sees an L-tuple: bindings whose join keys provably match
  // nothing die at the scan instead of costing an inner evaluation.
  TraceSpan qb_span("nljp.q_b", "nljp");
  TransferPlanOptions qb_transfer;
  qb_transfer.enabled = options_.predicate_transfer;
  qb_transfer.num_threads = ResolveThreads(options_.num_threads);
  ICEBERG_ASSIGN_OR_RETURN(
      JoinPipeline binding_pipeline,
      JoinPipeline::Plan(binding_block_, options_.use_indexes,
                         /*vectorize=*/true, governor, qb_transfer));
  if (stats != nullptr && binding_pipeline.transfer() != nullptr) {
    const TransferStats& ts = binding_pipeline.transfer()->stats();
    stats->transfer_passes += ts.passes;
    stats->transfer_filters_built += ts.filters_built;
    stats->transfer_probes += ts.probes;
    stats->transfer_hits += ts.hits;
    stats->transfer_rows_eliminated += ts.rows_eliminated;
    stats->transfer_filter_bytes += ts.filter_bytes;
    stats->transfer_build_ns += ts.build_ns;
  }
  std::vector<Row> l_rows;
  Status binding_status = binding_pipeline.Run(
      0, binding_pipeline.OuterSize(),
      [&](const Row& row) {
        if (governor != nullptr) {
          size_t bytes = RowBytes(row);
          // A failure poisons the governor; the pipeline aborts at its
          // next per-outer-tuple check.
          if (!governor->Reserve(bytes, "nljp-bindings").ok()) return;
          mandatory_bytes += bytes;
        }
        l_rows.push_back(row);
      },
      nullptr, governor);
  struct MandatoryGuard {
    QueryGovernor* governor;
    size_t* bytes;
    ~MandatoryGuard() {
      if (governor != nullptr) governor->Release(*bytes);
    }
  } mandatory_guard{governor, &mandatory_bytes};
  ICEBERG_RETURN_NOT_OK(binding_status);
  if (options_.binding_order != BindingOrder::kNatural) {
    bool asc = options_.binding_order == BindingOrder::kSortedAsc;
    std::sort(l_rows.begin(), l_rows.end(), [&](const Row& a, const Row& b) {
      int c = CompareRows(BindingOf(a), BindingOf(b));
      return asc ? c < 0 : c > 0;
    });
  }
  qb_span.End();

  // Morsel-driven parallel path. cache_index=false (the linear-scan
  // ablation of Fig. 4) is a serial-only measurement mode; the shared
  // cache always hash-indexes. A cross-query cache registry also routes
  // here (even at one thread): only the SharedNljpCache representation is
  // safe to share across queries and sessions.
  const bool cross_query =
      options_.cache_registry != nullptr && options_.cache_key != 0;
  const int threads = ResolveThreads(options_.num_threads);
  if ((threads > 1 || cross_query) && options_.cache_index &&
      l_rows.size() > 1) {
    return ExecuteParallel(std::move(l_rows), std::max(threads, 1), stats,
                           governor, &mandatory_bytes);
  }

  // ---- Cache ----
  // Slots are stable ids; the FIFO deque orders live slots oldest-first
  // for both bound-triggered eviction (max_cache_entries) and
  // memory-pressure shedding. Both are always safe: the cache is advisory
  // (Section 5/6) — an evicted binding is merely re-evaluated on reuse and
  // loses its pruning-witness role.
  struct Slot {
    CacheEntry entry;
    size_t bytes = 0;
    bool live = false;
  };
  std::vector<Slot> cache;
  std::deque<size_t> fifo;
  std::vector<size_t> free_slots;
  size_t shed_entries = 0;
  size_t bound_evictions = 0;
  // The memo index (CI) and the unpromising-witness buckets are keyed by
  // PackedKeys when the binding / equality columns are all numeric; the
  // Row-keyed maps are the string fallback. Slot payloads always keep the
  // Row binding (subsumption tests and witnesses need the Values).
  const bool packed_binding = binding_codec_.usable();
  const bool packed_eq = eq_codec_.usable();
  std::unordered_map<Row, size_t, RowHash, RowEq> cache_by_binding;  // CI
  std::unordered_map<PackedKey, size_t, PackedKeyHash, PackedKeyEq>
      cache_by_binding_packed;
  // Unpromising entries, bucketed by the binding positions on which p>=
  // requires equality (a lossless accelerator for Q_C; see
  // SubsumptionTest::EqualityPositions).
  std::unordered_map<Row, std::vector<size_t>, RowHash, RowEq>
      unpromising_buckets;
  std::unordered_map<PackedKey, std::vector<size_t>, PackedKeyHash,
                     PackedKeyEq>
      unpromising_buckets_packed;
  auto eq_key_of = [&](const Row& binding) {
    Row key;
    key.reserve(prune_eq_positions_.size());
    for (size_t pos : prune_eq_positions_) key.push_back(binding[pos]);
    return key;
  };
  auto packed_eq_key_of = [&](const Row& binding) {
    PackedKey key;
    eq_codec_.EncodeAt(binding, prune_eq_positions_, &key);
    return key;
  };

  // Retires the oldest live entry; returns its byte footprint (0 when the
  // cache is empty).
  auto evict_oldest = [&]() -> size_t {
    if (fifo.empty()) return 0;
    size_t id = fifo.front();
    fifo.pop_front();
    Slot& slot = cache[id];
    if (memo_enabled_) {
      if (packed_binding) {
        PackedKey key;
        binding_codec_.EncodeRow(slot.entry.binding, &key);
        cache_by_binding_packed.erase(key);
      } else {
        cache_by_binding.erase(slot.entry.binding);
      }
    }
    if (prune_enabled_ && slot.entry.unpromising) {
      std::vector<size_t>& bucket =
          packed_eq
              ? unpromising_buckets_packed[packed_eq_key_of(
                    slot.entry.binding)]
              : unpromising_buckets[eq_key_of(slot.entry.binding)];
      bucket.erase(std::remove(bucket.begin(), bucket.end(), id),
                   bucket.end());
    }
    size_t freed = slot.bytes;
    if (governor != nullptr) governor->Release(freed);
    slot = Slot();
    free_slots.push_back(id);
    return freed;
  };

  // Under memory pressure, hard reservations (bindings, groups, the
  // baseline aggregator) shed cache entries before the query is failed.
  struct ReclaimerGuard {
    QueryGovernor* governor;
    ~ReclaimerGuard() {
      if (governor != nullptr) governor->UnregisterReclaimer();
    }
  } reclaimer_guard{governor};
  if (governor != nullptr) {
    governor->RegisterReclaimer([&](size_t bytes_needed) -> size_t {
      size_t freed = 0;
      size_t count = 0;
      while (freed < bytes_needed) {
        size_t f = evict_oldest();
        if (f == 0) break;
        freed += f;
        ++count;
      }
      shed_entries += count;
      governor->AddCacheShed(count);
      return freed;
    });
  }
  // Return the surviving cache's reservation when execution leaves this
  // scope (the cache itself is transient operator state).
  struct CacheGuard {
    QueryGovernor* governor;
    std::vector<Slot>* slots;
    ~CacheGuard() {
      if (governor == nullptr) return;
      for (const Slot& slot : *slots) {
        if (slot.live) governor->Release(slot.bytes);
      }
    }
  } cache_guard{governor, &cache};

  auto memo_lookup = [&](const Row& binding) -> const CacheEntry* {
    if (options_.cache_index) {
      if (packed_binding) {
        PackedKey key;
        binding_codec_.EncodeRow(binding, &key);
        auto it = cache_by_binding_packed.find(key);
        return it == cache_by_binding_packed.end() ? nullptr
                                                   : &cache[it->second].entry;
      }
      auto it = cache_by_binding.find(binding);
      return it == cache_by_binding.end() ? nullptr
                                          : &cache[it->second].entry;
    }
    // No CI: linear scan of the cache table (Fig. 4's PK+BT config).
    RowEq eq;
    for (const Slot& slot : cache) {
      if (slot.live && eq(slot.entry.binding, binding)) return &slot.entry;
    }
    return nullptr;
  };

  auto prune_check = [&](const Row& binding) -> bool {
    const std::vector<size_t>* ids = nullptr;
    if (packed_eq) {
      auto bucket = unpromising_buckets_packed.find(packed_eq_key_of(binding));
      if (bucket == unpromising_buckets_packed.end()) return false;
      ids = &bucket->second;
    } else {
      auto bucket = unpromising_buckets.find(eq_key_of(binding));
      if (bucket == unpromising_buckets.end()) return false;
      ids = &bucket->second;
    }
    for (size_t id : *ids) {
      if (stats != nullptr) ++stats->prune_tests;
      const Row& cached = cache[id].entry.binding;
      bool subsumed = monotonicity_ == Monotonicity::kMonotone
                          ? subsumption_->Subsumes(cached, binding)
                          : subsumption_->Subsumes(binding, cached);
      if (subsumed) return true;
    }
    return false;
  };

  // ---- Main loop + post-processing accumulation (Q_P) ----
  TraceSpan loop_span("nljp.main_loop", "nljp");
  GroupMap groups;
  EvalScratch contribute_scratch;

  for (const Row& l_row : l_rows) {
    if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
    if (stats != nullptr) ++stats->bindings_total;
    Row binding = BindingOf(l_row);
    if (memo_enabled_) {
      const CacheEntry* hit = memo_lookup(binding);
      if (hit != nullptr) {
        if (stats != nullptr) ++stats->memo_hits;
        if (governor != nullptr) {
          // ContributeTo's hard reservation may shed the slot `hit` points
          // into; contribute from a copy when governed.
          CacheEntry copy = *hit;
          ContributeTo(&groups, l_row, copy, governor, &mandatory_bytes,
                       &contribute_scratch);
        } else {
          ContributeTo(&groups, l_row, *hit, governor, &mandatory_bytes,
                       &contribute_scratch);
        }
        continue;
      }
    }
    if (prune_enabled_ && prune_check(binding)) {
      if (stats != nullptr) ++stats->pruned;
      continue;
    }
    if (stats != nullptr) ++stats->inner_evaluations;
    ICEBERG_ASSIGN_OR_RETURN(CacheEntry entry, EvaluateInner(binding, stats));
    ContributeTo(&groups, l_row, entry, governor, &mandatory_bytes,
                 &contribute_scratch);
    // Cache the entry when memoization or pruning can use it.
    bool cache_it = memo_enabled_ || (prune_enabled_ && entry.unpromising);
    if (cache_it) {
      // FIFO replacement (paper Section 7 future work): retire the oldest
      // entry once the bound is reached. Always safe — the cache only
      // accelerates.
      while (options_.max_cache_entries > 0 &&
             fifo.size() >= options_.max_cache_entries) {
        evict_oldest();
        ++bound_evictions;
      }
      size_t bytes = NljpCacheEntryBytes(entry);
      // Advisory reservation: under pressure the governor's reclaimer sheds
      // older entries first; if the new entry still does not fit, skip
      // caching it rather than failing the query.
      if (governor != nullptr &&
          !governor->TryReserve(bytes, "nljp-cache")) {
        cache_it = false;
        ++shed_entries;
        governor->AddCacheShed(1);
      }
      if (cache_it) {
        size_t id;
        if (!free_slots.empty()) {
          id = free_slots.back();
          free_slots.pop_back();
        } else {
          id = cache.size();
          cache.emplace_back();
        }
        Slot& slot = cache[id];
        slot.entry = std::move(entry);
        slot.bytes = bytes;
        slot.live = true;
        fifo.push_back(id);
        if (memo_enabled_) {
          if (packed_binding) {
            PackedKey key;
            binding_codec_.EncodeRow(slot.entry.binding, &key);
            cache_by_binding_packed.emplace(key, id);
          } else {
            cache_by_binding.emplace(slot.entry.binding, id);
          }
        }
        if (prune_enabled_ && slot.entry.unpromising) {
          if (packed_eq) {
            unpromising_buckets_packed[packed_eq_key_of(slot.entry.binding)]
                .push_back(id);
          } else {
            unpromising_buckets[eq_key_of(slot.entry.binding)].push_back(id);
          }
        }
      }
    }
  }

  if (stats != nullptr) {
    for (const Slot& slot : cache) {
      if (!slot.live) continue;
      ++stats->cache_entries;
      stats->cache_bytes += slot.bytes;
    }
    stats->cache_evictions += bound_evictions;
    stats->cache_shed_entries += shed_entries;
    if (governor != nullptr) {
      stats->cancel_checks = governor->checks_performed();
      stats->budget_bytes_peak = governor->bytes_peak();
    }
  }

  loop_span.End();

  // ---- Q_P: final HAVING + projection per LR-group ----
  return FinalizeGroups(groups, governor);
}

Result<TablePtr> NljpOperator::ExecuteParallel(std::vector<Row> l_rows,
                                               int threads, NljpStats* stats,
                                               QueryGovernor* governor,
                                               size_t* mandatory_bytes) {
  // One private inner-query context per worker: Q_R's parameter table is
  // mutated per binding, so each worker gets its own copy of the inner
  // block (sharing the immutable R tables and expression trees) with a
  // fresh parameter table, re-planned once up front.
  struct WorkerCtx {
    QueryBlock inner_block;
    TablePtr param;
    std::optional<JoinPipeline> pipeline;
    GroupMap groups;
    NljpStats partial;
    EvalScratch eval;  // compiled-program stack for ContributeTo
    size_t mandatory = 0;
  };
  std::vector<std::unique_ptr<WorkerCtx>> ctxs;
  ctxs.reserve(threads);
  for (int w = 0; w < threads; ++w) {
    auto ctx = std::make_unique<WorkerCtx>();
    ctx->inner_block = inner_block_;
    ctx->param =
        std::make_shared<Table>("_binding", param_table_->schema());
    ctx->param->AppendUnchecked(
        Row(ctx->param->schema().num_columns(), Value::Null()));
    ctx->inner_block.tables[0].table = ctx->param;
    TransferPlanOptions no_transfer;
    no_transfer.enabled = false;  // param table rebinds per binding
    ICEBERG_ASSIGN_OR_RETURN(
        JoinPipeline pipeline,
        JoinPipeline::Plan(ctx->inner_block, options_.use_indexes,
                           /*vectorize=*/true, governor, no_transfer));
    ctx->pipeline.emplace(std::move(pipeline));
    ctxs.push_back(std::move(ctx));
  }

  // The memo/prune cache: per-query by default (charged to the governor
  // exactly like the serial slots, reclaimer-shed under pressure), or
  // fetched from the cross-query registry so repeated statements reuse
  // memo entries and pruning witnesses across sessions. Registry caches
  // are entry-bounded, never governor-charged, and invalidate lazily — a
  // table mutation rotates the key, so a stale cache is simply never
  // fetched again.
  const bool cross_query =
      options_.cache_registry != nullptr && options_.cache_key != 0;
  auto build_cache_opts = [&]() {
    SharedNljpCache::Options cache_opts;
    cache_opts.stripes =
        std::max<size_t>(8, static_cast<size_t>(threads) * 4);
    cache_opts.max_entries = options_.max_cache_entries;
    cache_opts.memo_index = memo_enabled_;
    cache_opts.witness_index = prune_enabled_;
    cache_opts.eq_positions = prune_eq_positions_;
    cache_opts.binding_codec = binding_codec_;
    cache_opts.eq_codec = eq_codec_;
    cache_opts.governor = governor;
    return cache_opts;
  };
  SharedNljpCachePtr cache_holder =
      cross_query ? options_.cache_registry->GetOrCreate(options_.cache_key,
                                                         build_cache_opts)
                  : std::make_shared<SharedNljpCache>(build_cache_opts());
  SharedNljpCache& cache = *cache_holder;

  // Reclaimer wiring only makes sense for the per-query cache: its entries
  // are charged to this governor, so shedding them repays the budget. A
  // registry cache's entries are not charged here; shedding them could not
  // settle a deficit (chaos storms hit it via NljpCacheRegistry::ShedAll).
  struct ReclaimerGuard {
    QueryGovernor* governor;
    ~ReclaimerGuard() {
      if (governor != nullptr) governor->UnregisterReclaimer();
    }
  } reclaimer_guard{cross_query ? nullptr : governor};
  if (governor != nullptr && !cross_query) {
    governor->RegisterReclaimer(
        [&cache](size_t bytes_needed) { return cache.Shed(bytes_needed); });
  }

  const bool monotone = monotonicity_ == Monotonicity::kMonotone;
  auto run_one = [&](WorkerCtx& ctx, const Row& l_row) -> Status {
    if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
    ++ctx.partial.bindings_total;
    Row binding = BindingOf(l_row);
    if (memo_enabled_) {
      CacheEntry hit;
      if (cache.Lookup(binding, &hit)) {
        ++ctx.partial.memo_hits;
        ContributeTo(&ctx.groups, l_row, hit, governor, &ctx.mandatory,
                     &ctx.eval);
        return Status::OK();
      }
    }
    if (prune_enabled_) {
      size_t tests = 0;
      bool pruned = cache.AnyWitness(binding, [&](const Row& witness) {
        ++tests;
        return monotone ? subsumption_->Subsumes(witness, binding)
                        : subsumption_->Subsumes(binding, witness);
      });
      ctx.partial.prune_tests += tests;
      if (pruned) {
        ++ctx.partial.pruned;
        return Status::OK();
      }
    }
    ++ctx.partial.inner_evaluations;
    ICEBERG_ASSIGN_OR_RETURN(
        CacheEntry entry,
        EvaluateInnerWith(*ctx.pipeline, ctx.param.get(), binding,
                          &ctx.partial));
    ContributeTo(&ctx.groups, l_row, entry, governor, &ctx.mandatory,
                 &ctx.eval);
    if (memo_enabled_ || (prune_enabled_ && entry.unpromising)) {
      cache.Insert(std::move(entry));
    }
    return Status::OK();
  };

  // Bindings vary wildly in cost (pruned in microseconds vs a full inner
  // join), so morsels are small; the atomic claim counter load-balances.
  TraceSpan loop_span("nljp.main_loop", "nljp");
  TaskPool pool(threads);
  const size_t morsel = std::max<size_t>(
      1, std::min<size_t>(32, l_rows.size() / (threads * 4)));
  Status pool_status = pool.RunMorsels(
      l_rows.size(), morsel,
      [&](int worker, size_t begin, size_t end) -> Status {
        WorkerCtx& ctx = *ctxs[worker];
        for (size_t i = begin; i < end; ++i) {
          ICEBERG_RETURN_NOT_OK(run_one(ctx, l_rows[i]));
        }
        return Status::OK();
      });
  loop_span.End();
  // Group reservations must reach the caller's release guard even when the
  // pool failed partway through.
  for (const auto& ctx : ctxs) *mandatory_bytes += ctx->mandatory;
  ICEBERG_RETURN_NOT_OK(pool_status);

  // Merge per-worker LR-group maps. MergeFrom combines full accumulators
  // (partials of partials), which is exactly f^o for algebraic slots; in
  // non-algebraic mode G_L -> A_L guarantees all contributions to one
  // group carry identical finals, so first-wins is exact.
  GroupMap merged = std::move(ctxs[0]->groups);
  for (int w = 1; w < threads; ++w) {
    for (auto& [key, state] : ctxs[w]->groups) {
      auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, std::move(state));
        continue;
      }
      GroupState& into = it->second;
      if (algebraic_mode_) {
        for (size_t i = 0; i < into.accumulators.size(); ++i) {
          into.accumulators[i].MergeFrom(state.accumulators[i]);
        }
      } else if (!into.has_contribution) {
        into.finals = std::move(state.finals);
      }
      into.has_contribution |= state.has_contribution;
    }
  }

  if (stats != nullptr) {
    stats->workers = static_cast<size_t>(threads);
    stats->busy_us_per_worker = pool.last_busy_micros();
    stats->bindings_per_worker.clear();
    for (const auto& ctx : ctxs) {
      const NljpStats& p = ctx->partial;
      stats->bindings_total += p.bindings_total;
      stats->memo_hits += p.memo_hits;
      stats->pruned += p.pruned;
      stats->inner_evaluations += p.inner_evaluations;
      stats->prune_tests += p.prune_tests;
      stats->inner_pairs_examined += p.inner_pairs_examined;
      stats->inner_chunks_skipped += p.inner_chunks_skipped;
      stats->inner_batch_rows += p.inner_batch_rows;
      stats->bindings_per_worker.push_back(p.bindings_total);
    }
    stats->cache_entries += cache.live_entries();
    stats->cache_bytes += cache.live_bytes();
    stats->cache_evictions += cache.evictions();
    stats->cache_shed_entries += cache.shed_entries();
    if (governor != nullptr) {
      stats->cancel_checks = governor->checks_performed();
      stats->budget_bytes_peak = governor->bytes_peak();
    }
  }

  ICEBERG_ASSIGN_OR_RETURN(TablePtr result,
                           FinalizeGroups(merged, governor));
  // Group-map iteration order is nondeterministic across thread counts;
  // canonical order makes parallel output reproducible.
  result->SortRowsCanonical();
  return result;
}

std::string NljpOperator::Explain() const {
  std::string out = "NLJP operator\n";
  out += "  Q_B (binding query): " + binding_block_.ToString() + "\n";
  out += "  binding = J_L = (";
  for (size_t i = 0; i < view_.jl_offsets.size(); ++i) {
    if (i > 0) out += ", ";
    out += block_->QualifiedNameOfOffset(view_.jl_offsets[i]);
  }
  out += ")\n";
  out += "  Q_R(b) (inner query): " + inner_block_.ToString() + "\n";
  out += "  aggregates: ";
  for (size_t i = 0; i < agg_nodes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += agg_nodes_[i]->ToString();
  }
  out += "\n";
  if (prune_enabled_) {
    out += "  Q_C(b') (pruning): cached unpromising w' with ";
    out += monotonicity_ == Monotonicity::kMonotone ? "b <= w' where p>=: "
                                                    : "b >= w' where p>=: ";
    out += subsumption_->ToString() + "\n";
  } else {
    out += "  pruning: disabled (" + prune_disabled_reason_ + ")\n";
  }
  out += std::string("  memoization: ") +
         (memo_enabled_ ? "enabled (cache keyed by J_L" +
                              std::string(view_.gr_offsets.empty()
                                              ? ")"
                                              : ", payload per G_R)")
                        : "disabled") +
         "\n";
  out += "  Q_P (post-processing): GROUP BY <G_L, G_R> HAVING " +
         block_->having->ToString() + "\n";
  out += "  keys: binding=" + binding_codec_.Summary() +
         " gr=" + gr_codec_.Summary();
  if (phi_prog_.valid()) {
    out += "; phi compiled (" + phi_prog_.Summary() + ")";
  }
  out += "\n";
  return out;
}

}  // namespace iceberg
