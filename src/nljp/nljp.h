#ifndef SMARTICEBERG_NLJP_NLJP_H_
#define SMARTICEBERG_NLJP_NLJP_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/exec/exec_options.h"
#include "src/exec/join_pipeline.h"
#include "src/exec/key_codec.h"
#include "src/expr/aggregate.h"
#include "src/expr/compiled.h"
#include "src/fme/subsumption.h"
#include "src/nljp/shared_cache.h"
#include "src/rewrite/iceberg_view.h"
#include "src/storage/table.h"

namespace iceberg {

/// Exploration order of the binding query Q_B (the paper leaves this
/// unspecified and flags it as future work; we expose it for ablation).
enum class BindingOrder {
  kNatural,     // whatever order the L-side pipeline produces
  kSortedAsc,   // bindings ascending (lexicographic)
  kSortedDesc,
};

/// Derivation results of a prior NljpOperator::Create for the same query
/// shape, injected on plan-cache replay so Create can skip the monotonicity
/// scan and the Fourier–Motzkin subsumption derivation. The capture side
/// (IcebergOptimizer) only marks a field valid when its inputs were
/// literal-value-independent and catalog-pinned (see PlanTrace); invalid
/// fields are simply re-derived, so injection is a pure optimization.
struct NljpPlanArtifacts {
  bool monotonicity_valid = false;
  Monotonicity monotonicity = Monotonicity::kNeither;
  /// When true the whole pruning decision is injected: the Theorem-3
  /// gating outcome plus the derived p>= (absent when pruning was
  /// disabled, with the reason preserved).
  bool have_prune_decision = false;
  bool prune_enabled = false;
  std::string prune_disabled_reason;
  std::optional<fme::SubsumptionTest> subsumption;
};

struct NljpOptions {
  bool enable_memo = true;
  bool enable_prune = true;
  /// "CI" of Fig. 4: a hash index on the cache keyed by binding. Without
  /// it, memo lookups fall back to a linear scan of the cache table.
  bool cache_index = true;
  /// Use secondary indexes inside the inner query Q_R(b).
  bool use_indexes = true;
  /// Predicate transfer over the *binding* query Q_B: the transferred
  /// reduction shrinks the L-tuple stream before memoization/pruning ever
  /// sees a binding. The per-binding inner pipelines always run with
  /// transfer off — their parameter table mutates on every rebinding, so
  /// any plan-time selection would stand down immediately.
  bool predicate_transfer = true;
  /// Apply memoization even when J_L -> A_L makes bindings unique
  /// (normally skipped as non-beneficial; Section 6).
  bool force_memo = false;
  /// Bounds the cache to this many entries with FIFO replacement
  /// (0 = unbounded). The paper flags cache replacement policies as future
  /// work ("we can outfit the cache C with a replacement policy ... to
  /// bound its size"); eviction is always safe — the cache is advisory —
  /// but evicted bindings are re-evaluated on reuse and lose their
  /// pruning-witness role.
  size_t max_cache_entries = 0;
  BindingOrder binding_order = BindingOrder::kNatural;
  /// Worker threads draining the binding stream (morsel-driven). 1 = the
  /// serial path, byte-for-byte today's behavior; 0 = auto
  /// (hardware_concurrency). The optimizer wires
  /// ExecOptions::num_threads through. Parallel runs share one striped
  /// memo/prune cache — safe because the cache is advisory (Theorem 3's
  /// one-sided guarantee: a racy miss costs a redundant inner evaluation,
  /// never a wrong result) — and canonically sort their output rows.
  /// cache_index=false (the linear-scan ablation) is a serial-only mode.
  int num_threads = 1;
  /// Optional per-query resource governor. Cache growth is charged as
  /// advisory state: under memory pressure entries are shed (FIFO) before
  /// the query is failed. Mandatory state (bindings, LR-groups) is charged
  /// as hard reservations.
  GovernorPtr governor;
  /// Cross-query cache promotion: when `cache_registry` is non-null and
  /// `cache_key` nonzero, the memo/prune cache is fetched from the
  /// registry (the serving layer keys it by statement fingerprint +
  /// catalog version) instead of being built per query, so repeated
  /// iceberg queries from any session reuse memo entries and pruning
  /// witnesses. Forces the shared-cache execution path even at one worker
  /// thread; output is canonically sorted on that path. Registry caches
  /// are entry-bounded and never governor-charged (they outlive the
  /// query's governor).
  NljpCacheRegistry* cache_registry = nullptr;
  uint64_t cache_key = 0;
  /// Plan-cache replay: inject previously derived artifacts instead of
  /// re-deriving them (borrowed; must outlive Create). Null = derive.
  const NljpPlanArtifacts* replay_artifacts = nullptr;
};

struct NljpStats {
  size_t bindings_total = 0;   // L-tuples streamed by Q_B
  size_t memo_hits = 0;        // bindings answered from the cache
  size_t pruned = 0;           // bindings skipped via Q_C
  size_t inner_evaluations = 0;  // Q_R(b) executions
  size_t prune_tests = 0;        // subsumption comparisons
  size_t inner_pairs_examined = 0;
  // Vectorized-scan counters of the inner Q_R(b) pipelines (zero when the
  // row-at-a-time path ran). Chunk skips here are dynamic: a chunk is
  // refuted against the *current binding's* values, per binding.
  size_t inner_chunks_skipped = 0;
  size_t inner_batch_rows = 0;
  // Predicate-transfer counters of the binding pipeline Q_B (zero when
  // transfer was off or Q_B had no usable join edges).
  size_t transfer_passes = 0;
  size_t transfer_filters_built = 0;
  size_t transfer_probes = 0;
  size_t transfer_hits = 0;
  size_t transfer_rows_eliminated = 0;
  size_t transfer_filter_bytes = 0;
  int64_t transfer_build_ns = 0;
  size_t cache_entries = 0;
  size_t cache_bytes = 0;
  size_t cache_evictions = 0;      // FIFO evictions from max_cache_entries
  size_t cache_shed_entries = 0;   // entries shed under memory pressure
  size_t cancel_checks = 0;        // governance checks performed
  size_t budget_bytes_peak = 0;    // peak tracked bytes (governed runs)
  size_t workers = 1;              // worker threads of the run
  std::vector<size_t> bindings_per_worker;  // morsel balance (workers > 1)
  std::vector<int64_t> busy_us_per_worker;  // time inside morsel callbacks
  int64_t execute_us = 0;          // wall time of the whole Execute call

  /// Folds one run's stats into an accumulating block: counters add up,
  /// per-run shape (workers, per-worker vectors, governance readings) is
  /// replaced, so a reused block stays consistent when the thread count
  /// changes between runs.
  void Accumulate(const NljpStats& run);

  std::string ToString() const;
};

/// The NLJP (Nested-Loop Join with Pruning) operator of Section 7.
///
/// Conceptually evaluates the iceberg block of `view` as:
///   for each L-tuple from the binding query Q_B:
///     b = its J_L values
///     if memo: cached result for b?        -> reuse
///     if prune: Q_C(b) finds a subsuming unpromising cached binding
///                                          -> skip
///     else: evaluate inner query Q_R(b), cache by b
///   post-process (Q_P): merge contributions per LR-group, apply HAVING,
///   project.
///
/// Safety of pruning follows Theorem 3; the subsumption test p>= is derived
/// from Theta by quantifier elimination (Section 5.2). Memoization follows
/// Section 6 / Appendix C, storing algebraic partial aggregates when an
/// LR-group can combine multiple bindings.
class NljpOperator {
 public:
  /// Builds the operator for the given analyzed view. Fails with
  /// NotSupported when the applicability conditions do not hold (the
  /// optimizer then falls back to the baseline plan). Pruning is silently
  /// disabled (memoization retained) when Theorem 3's premises fail or the
  /// derived p>= is unusable.
  static Result<std::unique_ptr<NljpOperator>> Create(IcebergView view,
                                                      NljpOptions options);

  /// Runs the operator. Per-run totals are accumulated into `stats` (when
  /// given) and published as nljp.* metrics in the global registry, so
  /// EXPLAIN ANALYZE and \metrics reconcile exactly.
  Result<TablePtr> Execute(NljpStats* stats = nullptr);

  /// Renders the component queries Q_B, Q_R(b), Q_C(b'), Q_P in the style
  /// of the paper's Listing 7.
  std::string Explain() const;

  bool memo_enabled() const { return memo_enabled_; }
  bool prune_enabled() const { return prune_enabled_; }
  /// Why pruning was disabled (empty when prune_enabled()); surfaced as a
  /// degradation in IcebergReport.
  const std::string& prune_disabled_reason() const {
    return prune_disabled_reason_;
  }
  /// The derived pruning predicate (valid only when prune_enabled()).
  const fme::SubsumptionTest& subsumption() const { return *subsumption_; }
  Monotonicity monotonicity() const { return monotonicity_; }

 private:
  NljpOperator() = default;

  /// Body of Execute; `stats` is always the caller's run-local block.
  Result<TablePtr> ExecuteImpl(NljpStats* stats);

  // Cache payload types are shared with SharedNljpCache so serial and
  // parallel runs charge identical byte footprints to the governor.
  using PartitionPayload = NljpPartitionPayload;
  using CacheEntry = NljpCacheEntry;

  /// One LR-group's accumulation state during Q_P.
  struct GroupState {
    Row synthetic;  // full-width row with L and G_R columns filled
    std::vector<Accumulator> accumulators;  // per slot, algebraic mode
    std::vector<Value> finals;              // per slot, non-algebraic mode
    bool has_contribution = false;
  };
  using GroupMap = std::unordered_map<Row, GroupState, RowHash, RowEq>;

  /// Projects the binding (J_L values) out of an L-row.
  Row BindingOf(const Row& l_row) const;

  /// Runs Q_R for the binding currently loaded in the parameter table.
  /// Fails when the governor trips mid-evaluation.
  Result<CacheEntry> EvaluateInner(Row binding, NljpStats* stats);

  /// Re-entrant core of EvaluateInner: runs Q_R(binding) through the given
  /// pipeline/parameter table (each worker owns a private pair, since the
  /// parameter row is mutated per binding). Inner-scan counters (pairs,
  /// chunk skips, batch rows) accumulate into `stats` (may be null).
  Result<CacheEntry> EvaluateInnerWith(const JoinPipeline& pipeline,
                                       Table* param, Row binding,
                                       NljpStats* stats) const;

  /// Folds one binding's cached partitions into the LR-group map. Group
  /// creation takes a hard governor reservation, accumulated into
  /// `mandatory_bytes`; a failed reservation poisons the governor and the
  /// caller aborts at its next check.
  void ContributeTo(GroupMap* groups, const Row& l_row,
                    const CacheEntry& entry, QueryGovernor* governor,
                    size_t* mandatory_bytes, EvalScratch* scratch) const;

  /// Q_P finalization: HAVING + projection per LR-group.
  Result<TablePtr> FinalizeGroups(const GroupMap& groups,
                                  QueryGovernor* governor) const;

  /// Morsel-driven parallel main loop (num_threads > 1): workers drain
  /// bindings from the shared stream, publishing memo entries and pruning
  /// witnesses through one SharedNljpCache. Output rows are canonically
  /// sorted. `mandatory_bytes` accumulates the workers' hard group
  /// reservations for the caller's release guard.
  Result<TablePtr> ExecuteParallel(std::vector<Row> l_rows, int threads,
                                   NljpStats* stats, QueryGovernor* governor,
                                   size_t* mandatory_bytes);

  const QueryBlock* block_ = nullptr;
  IcebergView view_;
  NljpOptions options_;
  Monotonicity monotonicity_ = Monotonicity::kNeither;
  bool group_determines_left_ = false;
  bool algebraic_mode_ = true;
  bool memo_enabled_ = false;
  bool prune_enabled_ = false;
  std::string prune_disabled_reason_;

  // Q_B: the L-side sub-join.
  QueryBlock binding_block_;
  std::map<size_t, size_t> left_offset_map_;   // orig offset -> L-row pos
  std::vector<size_t> binding_positions_;      // J_L positions in L row

  // Q_R(b): [param table, R tables...] with Theta + R-local filters.
  // The pipeline is planned once (PostgreSQL "prepares these statements in
  // advance"); only the parameter row changes between bindings.
  QueryBlock inner_block_;
  std::optional<JoinPipeline> inner_pipeline_;
  TablePtr param_table_;
  std::map<size_t, size_t> right_offset_map_;  // orig offset -> inner pos
  std::vector<ExprPtr> inner_gr_exprs_;        // G_R in inner layout
  ExprPtr inner_phi_;                          // HAVING in inner layout
  std::vector<ExprPtr> inner_phi_aggs_;        // its aggregate nodes
  std::vector<ExprPtr> agg_nodes_;             // original aggregates
  // Structurally identical aggregates (e.g. COUNT(*) in both HAVING and the
  // select list) share one accumulator slot.
  std::vector<size_t> agg_slot_;               // agg_nodes_[i] -> slot
  std::vector<AggFunc> slot_funcs_;
  std::vector<ExprPtr> slot_args_;             // inner layout; null = COUNT(*)

  // Pruning accelerator: positions of the binding on which p>= requires
  // equality; unpromising entries are bucketed by these values.
  std::vector<size_t> prune_eq_positions_;

  // Compiled programs for the per-binding hot path (invalid / empty when
  // the compiled engine is disabled; call sites fall back to Evaluate).
  std::vector<CompiledExpr> gr_progs_;        // inner_gr_exprs_
  std::vector<CompiledExpr> slot_arg_progs_;  // slot_args_ (invalid = COUNT(*))
  CompiledExpr phi_prog_;                     // inner_phi_
  std::vector<CompiledExpr> group_progs_;     // block.group_by over synthetic

  // Packed-key codecs for the memo / prune / partition hash tables; each
  // falls back to Row keys independently when a key column is a string.
  KeyCodec binding_codec_;  // J_L binding keys (memo table)
  KeyCodec eq_codec_;       // prune_eq_positions_ of the binding (witnesses)
  KeyCodec gr_codec_;       // G_R partition keys inside Q_R(b)

  // Q_C: derived subsumption predicate.
  std::optional<fme::SubsumptionTest> subsumption_;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_NLJP_NLJP_H_
