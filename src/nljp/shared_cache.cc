#include "src/nljp/shared_cache.h"

#include <algorithm>
#include <limits>

namespace iceberg {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

size_t NljpCacheEntryBytes(const NljpCacheEntry& entry) {
  size_t bytes = RowBytes(entry.binding) + sizeof(NljpCacheEntry);
  for (const NljpPartitionPayload& p : entry.partitions) {
    bytes += RowBytes(p.gr_key);
    for (const Row& r : p.partials) bytes += RowBytes(r);
    bytes += p.finals.size() * sizeof(Value);
  }
  return bytes;
}

SharedNljpCache::SharedNljpCache(Options options)
    : options_(std::move(options)) {
  size_t stripes = RoundUpPow2(std::max<size_t>(options_.stripes, 1));
  stripe_mask_ = stripes - 1;
  memo_stripes_ = std::vector<MemoStripe>(stripes);
  if (options_.witness_index) {
    witness_stripes_ = std::vector<WitnessStripe>(stripes);
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  lookups_ = registry.GetCounter("nljp.cache.lookups");
  hits_ = registry.GetCounter("nljp.cache.hits");
  witness_tests_ = registry.GetCounter("nljp.cache.witness_tests");
  inserts_ = registry.GetCounter("nljp.cache.inserts");
  contention_ = registry.GetCounter("nljp.cache.contention");
}

std::unique_lock<std::mutex> SharedNljpCache::LockStripe(std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    contention_->Increment();
    lock.lock();
  }
  return lock;
}

SharedNljpCache::~SharedNljpCache() {
  if (options_.governor != nullptr) {
    options_.governor->Release(live_bytes_.load(std::memory_order_relaxed));
  }
}

Row SharedNljpCache::EqKeyOf(const Row& binding) const {
  Row key;
  key.reserve(options_.eq_positions.size());
  for (size_t pos : options_.eq_positions) key.push_back(binding[pos]);
  return key;
}

size_t SharedNljpCache::MemoStripeOf(const Row& binding) const {
  return RowHash()(binding) & stripe_mask_;
}

size_t SharedNljpCache::WitnessStripeOf(const Row& eq_key) const {
  return RowHash()(eq_key) & stripe_mask_;
}

bool SharedNljpCache::Lookup(const Row& binding, NljpCacheEntry* out) {
  lookups_->Increment();
  if (options_.binding_codec.usable()) {
    PackedKey key;
    options_.binding_codec.EncodeRow(binding, &key);
    MemoStripe& stripe = memo_stripes_[key.hash() & stripe_mask_];
    auto lock = LockStripe(stripe.mu);
    auto it = stripe.by_binding_packed.find(key);
    if (it == stripe.by_binding_packed.end()) return false;
    *out = stripe.slots[it->second].entry;
    hits_->Increment();
    return true;
  }
  MemoStripe& stripe = memo_stripes_[MemoStripeOf(binding)];
  auto lock = LockStripe(stripe.mu);
  auto it = stripe.by_binding.find(binding);
  if (it == stripe.by_binding.end()) return false;
  *out = stripe.slots[it->second].entry;
  hits_->Increment();
  return true;
}

void SharedNljpCache::RemoveWitness(uint64_t witness_id, const Row& binding) {
  if (witness_id == 0 || witness_stripes_.empty()) return;
  auto scrub = [witness_id](auto& bucket_map, auto bucket_it) {
    auto& list = bucket_it->second;
    list.erase(
        std::remove_if(
            list.begin(), list.end(),
            [&](const auto& entry) { return entry.first == witness_id; }),
        list.end());
    if (list.empty()) bucket_map.erase(bucket_it);
  };
  if (options_.eq_codec.usable()) {
    PackedKey key;
    options_.eq_codec.EncodeAt(binding, options_.eq_positions, &key);
    WitnessStripe& stripe = witness_stripes_[key.hash() & stripe_mask_];
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto bucket = stripe.buckets_packed.find(key);
    if (bucket != stripe.buckets_packed.end()) {
      scrub(stripe.buckets_packed, bucket);
    }
    return;
  }
  Row eq_key = EqKeyOf(binding);
  WitnessStripe& stripe = witness_stripes_[WitnessStripeOf(eq_key)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto bucket = stripe.buckets.find(eq_key);
  if (bucket != stripe.buckets.end()) {
    scrub(stripe.buckets, bucket);
  }
}

size_t SharedNljpCache::EvictOneGlobal(size_t start_stripe) {
  const size_t stripes = memo_stripes_.size();
  for (size_t i = 0; i < stripes; ++i) {
    MemoStripe& stripe = memo_stripes_[(start_stripe + i) & stripe_mask_];
    size_t freed = 0;
    uint64_t witness_id = 0;
    Row binding;
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      if (stripe.fifo.empty()) continue;
      size_t id = stripe.fifo.front();
      stripe.fifo.pop_front();
      Slot& slot = stripe.slots[id];
      if (options_.binding_codec.usable()) {
        PackedKey key;
        options_.binding_codec.EncodeRow(slot.entry.binding, &key);
        stripe.by_binding_packed.erase(key);
      } else {
        stripe.by_binding.erase(slot.entry.binding);
      }
      freed = slot.bytes;
      witness_id = slot.witness_id;
      binding = std::move(slot.entry.binding);
      slot = Slot();
      stripe.free_slots.push_back(id);
    }
    // Witness removal and byte release happen outside the memo stripe
    // lock; a prune test that still sees the witness in the gap is safe
    // (the witness was a true witness when cached).
    RemoveWitness(witness_id, binding);
    live_entries_.fetch_sub(1, std::memory_order_relaxed);
    live_bytes_.fetch_sub(freed, std::memory_order_relaxed);
    if (options_.governor != nullptr) options_.governor->Release(freed);
    return freed;
  }
  return 0;
}

void SharedNljpCache::Insert(NljpCacheEntry entry) {
  inserts_->Increment();
  const size_t bytes = NljpCacheEntryBytes(entry);
  // Advisory reservation, taken with no stripe lock held: under pressure
  // the governor's reclaimer sheds older entries first (possibly ours from
  // a sibling's insert); if the new entry still does not fit, drop it
  // rather than failing the query.
  if (options_.governor != nullptr &&
      !options_.governor->TryReserve(bytes, "nljp-cache")) {
    shed_entries_.fetch_add(1, std::memory_order_relaxed);
    options_.governor->AddCacheShed(1);
    return;
  }
  uint64_t witness_id = 0;
  if (options_.witness_index && entry.unpromising) {
    witness_id = next_witness_id_.fetch_add(1, std::memory_order_relaxed);
    if (options_.eq_codec.usable()) {
      PackedKey key;
      options_.eq_codec.EncodeAt(entry.binding, options_.eq_positions, &key);
      WitnessStripe& stripe = witness_stripes_[key.hash() & stripe_mask_];
      auto lock = LockStripe(stripe.mu);
      stripe.buckets_packed[key].emplace_back(witness_id, entry.binding);
    } else {
      Row eq_key = EqKeyOf(entry.binding);
      WitnessStripe& stripe = witness_stripes_[WitnessStripeOf(eq_key)];
      auto lock = LockStripe(stripe.mu);
      stripe.buckets[std::move(eq_key)].emplace_back(witness_id,
                                                     entry.binding);
    }
  }
  Row binding_copy = entry.binding;  // survives the move below
  const bool packed = options_.binding_codec.usable();
  PackedKey packed_key;
  size_t stripe_idx;
  if (packed) {
    options_.binding_codec.EncodeRow(entry.binding, &packed_key);
    stripe_idx = packed_key.hash() & stripe_mask_;
  } else {
    stripe_idx = MemoStripeOf(entry.binding);
  }
  bool duplicate = false;
  {
    MemoStripe& stripe = memo_stripes_[stripe_idx];
    auto lock = LockStripe(stripe.mu);
    if (options_.memo_index &&
        (packed ? stripe.by_binding_packed.count(packed_key) > 0
                : stripe.by_binding.count(entry.binding) > 0)) {
      // A sibling cached the same binding between our miss and now; keep
      // the first copy (identical contents) and back out ours below,
      // outside the lock.
      duplicate = true;
    } else {
      size_t id;
      if (!stripe.free_slots.empty()) {
        id = stripe.free_slots.back();
        stripe.free_slots.pop_back();
      } else {
        id = stripe.slots.size();
        stripe.slots.emplace_back();
      }
      Slot& slot = stripe.slots[id];
      slot.entry = std::move(entry);
      slot.bytes = bytes;
      slot.witness_id = witness_id;
      slot.live = true;
      stripe.fifo.push_back(id);
      if (options_.memo_index) {
        if (packed) {
          stripe.by_binding_packed.emplace(packed_key, id);
        } else {
          stripe.by_binding.emplace(slot.entry.binding, id);
        }
      }
    }
  }
  if (duplicate) {
    RemoveWitness(witness_id, binding_copy);
    if (options_.governor != nullptr) options_.governor->Release(bytes);
    return;
  }
  live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  size_t total = live_entries_.fetch_add(1, std::memory_order_relaxed) + 1;
  // FIFO bound (paper Section 7 future work), per-stripe eviction with an
  // exact global count: every insert that pushed the total over the bound
  // retires one oldest entry before returning, so at quiescence
  // live_entries() <= max_entries. EvictOneGlobal can only come up empty
  // when a concurrent evictor got there first, in which case the total has
  // already dropped — re-check rather than spin.
  while (options_.max_entries > 0) {
    size_t live = live_entries_.load(std::memory_order_relaxed);
    if (live <= options_.max_entries) break;
    if (EvictOneGlobal(next_evict_stripe_.fetch_add(
            1, std::memory_order_relaxed)) > 0) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
      break;  // this insert's overage is paid for
    }
  }
  (void)total;
}

size_t SharedNljpCache::Shed(size_t bytes_needed) {
  size_t freed = 0;
  size_t count = 0;
  while (freed < bytes_needed) {
    size_t f = EvictOneGlobal(
        next_evict_stripe_.fetch_add(1, std::memory_order_relaxed));
    if (f == 0) break;
    freed += f;
    ++count;
  }
  if (count > 0) {
    shed_entries_.fetch_add(count, std::memory_order_relaxed);
    if (options_.governor != nullptr) options_.governor->AddCacheShed(count);
  }
  return freed;
}

SharedNljpCachePtr NljpCacheRegistry::GetOrCreate(
    uint64_t key, const std::function<SharedNljpCache::Options()>& make) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = caches_.begin(); it != caches_.end(); ++it) {
    if (it->first == key) {
      caches_.splice(caches_.begin(), caches_, it);  // MRU to front
      ICEBERG_COUNTER("nljp.registry.hits")->Increment();
      return caches_.front().second;
    }
  }
  SharedNljpCache::Options opts = make();
  // Cross-query caches outlive any single query: never charge a per-query
  // governor, and always keep a hard entry bound.
  opts.governor = nullptr;
  if (opts.max_entries == 0 || opts.max_entries > max_entries_per_cache_) {
    opts.max_entries = max_entries_per_cache_;
  }
  auto cache = std::make_shared<SharedNljpCache>(std::move(opts));
  caches_.emplace_front(key, cache);
  ICEBERG_COUNTER("nljp.registry.misses")->Increment();
  while (caches_.size() > max_caches_) {
    caches_.pop_back();
    ICEBERG_COUNTER("nljp.registry.evicted_caches")->Increment();
  }
  return cache;
}

size_t NljpCacheRegistry::ShedAll() {
  std::vector<SharedNljpCachePtr> caches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    caches.reserve(caches_.size());
    for (const auto& [key, cache] : caches_) caches.push_back(cache);
  }
  // Shed outside the registry lock: Shed takes stripe locks and may run
  // concurrently with queries inserting into the same caches.
  size_t freed = 0;
  for (const SharedNljpCachePtr& cache : caches) {
    freed += cache->Shed(std::numeric_limits<size_t>::max());
  }
  return freed;
}

void NljpCacheRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  caches_.clear();
}

size_t NljpCacheRegistry::num_caches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return caches_.size();
}

size_t NljpCacheRegistry::total_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [key, cache] : caches_) total += cache->live_entries();
  return total;
}

}  // namespace iceberg
