#ifndef SMARTICEBERG_NLJP_SHARED_CACHE_H_
#define SMARTICEBERG_NLJP_SHARED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/value.h"
#include "src/exec/governor.h"
#include "src/exec/key_codec.h"
#include "src/obs/metrics.h"

namespace iceberg {

/// One G_R-partition of a cached inner-query result (Section 6 /
/// Appendix C): the algebraic partial state per aggregate slot, or the
/// final values when the operator is not in algebraic mode.
struct NljpPartitionPayload {
  Row gr_key;                  // G_R values (empty when G_R is empty)
  std::vector<Row> partials;   // per aggregate: algebraic partial state
  std::vector<Value> finals;   // used instead when not in algebraic mode
  bool phi_pass = false;       // partition-level HAVING outcome
};

/// One memo/prune cache entry: the full Q_R(b) result for a binding, plus
/// the "unpromising" verdict that makes it a pruning witness
/// (Definition 5).
struct NljpCacheEntry {
  Row binding;
  std::vector<NljpPartitionPayload> partitions;
  bool unpromising = false;
};

/// Byte footprint charged against the governor's memory budget; shared by
/// the serial and parallel cache implementations so budgets behave the
/// same at any thread count.
size_t NljpCacheEntryBytes(const NljpCacheEntry& entry);

/// A striped concurrent memo/prune cache for the parallel NLJP operator:
/// entries are sharded by binding hash across stripes, each with its own
/// mutex and FIFO, so pruning witnesses and memoized partitions found by
/// one worker publish to all the others.
///
/// Safety: the cache is strictly advisory (Theorem 3's one-sided
/// guarantee — a cached unpromising witness only ever *skips* work whose
/// answer is already known to be empty, and a memo hit replays an exact
/// result). A racy miss — a lookup that runs before another worker's
/// insert lands — therefore costs one redundant inner evaluation and can
/// never produce a wrong result, which is why lookups take only one
/// stripe lock and no global coordination.
///
/// Concurrency invariants:
///  - at most one stripe mutex is ever held at a time (memo and witness
///    stripes are separate lock domains, acquired sequentially);
///  - the governor's Reserve/TryReserve is never called with a stripe
///    mutex held (Release is lock-free), so the governor's reclaimer may
///    call Shed() without deadlock;
///  - eviction/shed counters and entry/byte totals are atomics, so the
///    totals reported into NljpStats are exact even under races.
class SharedNljpCache {
 public:
  struct Options {
    /// Stripe count; rounded up to a power of two, at least 1.
    size_t stripes = 16;
    /// Global bound on live entries (0 = unbounded). FIFO order is
    /// per-stripe; the bound itself is exact at quiescence: every insert
    /// that pushes the total over the bound retires an oldest entry
    /// before returning.
    size_t max_entries = 0;
    /// Maintain the binding -> entry hash index (memoization).
    bool memo_index = true;
    /// Maintain unpromising-witness buckets (pruning).
    bool witness_index = false;
    /// Binding positions on which the derived p>= requires equality;
    /// witnesses are bucketed by these values (lossless accelerator).
    std::vector<size_t> eq_positions;
    /// Packed-key codecs (all-numeric keys): when usable, the memo index
    /// and witness buckets are keyed by fixed-width PackedKeys instead of
    /// Rows. Purely an index representation change — slot payloads, FIFO
    /// order, and the exact global entry bound are untouched.
    KeyCodec binding_codec;
    KeyCodec eq_codec;
    /// Optional governor: entries are charged as advisory state.
    QueryGovernor* governor = nullptr;
  };

  explicit SharedNljpCache(Options options);
  ~SharedNljpCache();  // releases all remaining governor reservations
  SharedNljpCache(const SharedNljpCache&) = delete;
  SharedNljpCache& operator=(const SharedNljpCache&) = delete;

  /// Memo lookup. Copies the entry out under the stripe lock (another
  /// worker may evict the slot immediately after it is released).
  bool Lookup(const Row& binding, NljpCacheEntry* out);

  /// Visits the witnesses bucketed with `binding`'s equality key until
  /// `test` returns true; returns whether any did. `test` runs under the
  /// witness stripe lock and must not touch the governor or this cache.
  /// A member template so the subsumption test is invoked directly (the
  /// per-witness std::function dispatch used to dominate the prune path).
  template <typename TestFn>
  bool AnyWitness(const Row& binding, TestFn&& test) {
    if (witness_stripes_.empty()) return false;
    if (options_.eq_codec.usable()) {
      PackedKey key;
      options_.eq_codec.EncodeAt(binding, options_.eq_positions, &key);
      WitnessStripe& stripe = witness_stripes_[key.hash() & stripe_mask_];
      auto lock = LockStripe(stripe.mu);
      auto bucket = stripe.buckets_packed.find(key);
      if (bucket == stripe.buckets_packed.end()) return false;
      for (const auto& [id, witness] : bucket->second) {
        witness_tests_->Increment();
        if (test(witness)) return true;
      }
      return false;
    }
    Row eq_key = EqKeyOf(binding);
    WitnessStripe& stripe = witness_stripes_[WitnessStripeOf(eq_key)];
    auto lock = LockStripe(stripe.mu);
    auto bucket = stripe.buckets.find(eq_key);
    if (bucket == stripe.buckets.end()) return false;
    for (const auto& [id, witness] : bucket->second) {
      witness_tests_->Increment();
      if (test(witness)) return true;
    }
    return false;
  }

  /// Inserts an entry (advisory): under memory pressure the entry may be
  /// dropped instead (counted as shed), matching the serial operator.
  void Insert(NljpCacheEntry entry);

  /// Governor reclaimer hook: retires oldest entries (round-robin across
  /// stripes) until at least `bytes_needed` bytes are freed or the cache
  /// is empty; returns the bytes actually freed.
  size_t Shed(size_t bytes_needed);

  // ---- Exact end-of-query counters ----
  size_t live_entries() const {
    return live_entries_.load(std::memory_order_relaxed);
  }
  size_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  size_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t shed_entries() const {
    return shed_entries_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    NljpCacheEntry entry;
    size_t bytes = 0;
    uint64_t witness_id = 0;  // 0 = not registered as a witness
    bool live = false;
  };
  struct MemoStripe {
    std::mutex mu;
    std::vector<Slot> slots;
    std::deque<size_t> fifo;  // live slot ids, oldest first
    std::vector<size_t> free_slots;
    // Exactly one index map is populated, per Options::binding_codec.
    std::unordered_map<Row, size_t, RowHash, RowEq> by_binding;
    std::unordered_map<PackedKey, size_t, PackedKeyHash, PackedKeyEq>
        by_binding_packed;
  };
  struct WitnessStripe {
    std::mutex mu;
    // eq-key -> (witness id, binding). The binding is a copy: witness
    // lifetime is decoupled from the memo slot so no cross-stripe locks
    // are ever nested. Exactly one bucket map is populated, per
    // Options::eq_codec.
    std::unordered_map<Row, std::vector<std::pair<uint64_t, Row>>, RowHash,
                       RowEq>
        buckets;
    std::unordered_map<PackedKey, std::vector<std::pair<uint64_t, Row>>,
                       PackedKeyHash, PackedKeyEq>
        buckets_packed;
  };

  /// Stripe-lock acquisition that counts contention: a failed try_lock
  /// (another worker holds this stripe) bumps nljp.cache.contention before
  /// blocking, making hot stripes visible in \metrics.
  std::unique_lock<std::mutex> LockStripe(std::mutex& mu);

  Row EqKeyOf(const Row& binding) const;
  size_t MemoStripeOf(const Row& binding) const;
  size_t WitnessStripeOf(const Row& eq_key) const;
  void RemoveWitness(uint64_t witness_id, const Row& binding);
  /// Retires the oldest entry of some stripe, starting the scan at
  /// `start_stripe`; returns the bytes freed (0 when every stripe was
  /// empty at the time it was inspected).
  size_t EvictOneGlobal(size_t start_stripe);

  Options options_;
  size_t stripe_mask_ = 0;
  std::vector<MemoStripe> memo_stripes_;
  std::vector<WitnessStripe> witness_stripes_;

  // Registry handles cached at construction (registration takes a mutex;
  // the handles themselves are lock-free on the hot path).
  Counter* lookups_ = nullptr;
  Counter* hits_ = nullptr;
  Counter* witness_tests_ = nullptr;
  Counter* inserts_ = nullptr;
  Counter* contention_ = nullptr;

  std::atomic<uint64_t> next_witness_id_{1};
  std::atomic<size_t> next_evict_stripe_{0};
  std::atomic<size_t> live_entries_{0};
  std::atomic<size_t> live_bytes_{0};
  std::atomic<size_t> evictions_{0};
  std::atomic<size_t> shed_entries_{0};
};

using SharedNljpCachePtr = std::shared_ptr<SharedNljpCache>;

/// Promotes the memo/prune cache from per-query to cross-query: a bounded
/// registry of SharedNljpCache instances keyed by (query fingerprint,
/// catalog version) so repeated iceberg queries — from any session — reuse
/// each other's memo entries and pruning witnesses.
///
/// Soundness: a cache key covers the full normalized statement text
/// (literals included, so entries are exact results of *this* inner query)
/// and the versions of every table, so any mutation rotates the key and the
/// stale cache is simply never fetched again (lazy invalidation). In-flight
/// queries holding the old shared_ptr finish against the snapshot they
/// pinned; the registry drops its reference on eviction.
///
/// Cross-query caches are never charged to a per-query governor (the
/// governor is single-use and dies with its query); they are bounded by
/// entry count instead, and the chaos harness can force storms via
/// ShedAll().
class NljpCacheRegistry {
 public:
  /// `max_caches` bounds distinct (statement, catalog-version) cache
  /// instances; least-recently-used instances are dropped beyond it.
  explicit NljpCacheRegistry(size_t max_caches = 8,
                             size_t max_entries_per_cache = 4096)
      : max_caches_(max_caches),
        max_entries_per_cache_(max_entries_per_cache) {}

  /// Returns the cache registered under `key`, creating it via `make` on
  /// first use. The returned cache is shared: concurrent queries with the
  /// same key use one instance (SharedNljpCache is fully thread-safe).
  /// `make`'s governor is overridden to null and its entry bound clamped
  /// to the registry's per-cache limit.
  SharedNljpCachePtr GetOrCreate(
      uint64_t key, const std::function<SharedNljpCache::Options()>& make);

  /// Sheds every entry of every registered cache (chaos storm / memory
  /// pressure). Returns total bytes freed. Always safe: the caches are
  /// advisory.
  size_t ShedAll();

  /// Drops all registered caches (in-flight holders keep theirs alive).
  void Clear();

  size_t num_caches() const;
  size_t total_entries() const;

 private:
  mutable std::mutex mu_;
  size_t max_caches_;
  size_t max_entries_per_cache_;
  /// MRU-front list of (key, cache); small N, so linear scan beats a map.
  std::list<std::pair<uint64_t, SharedNljpCachePtr>> caches_;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_NLJP_SHARED_CACHE_H_
