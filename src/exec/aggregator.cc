#include "src/exec/aggregator.h"

#include <chrono>
#include <set>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace iceberg {

namespace {
// Initial bucket count for the group maps: covers the common small-groups
// case without rehashing, cheap enough for per-worker instances.
constexpr size_t kInitialBuckets = 256;
}  // namespace

Aggregator::Aggregator(const QueryBlock& block) : block_(block) {
  CollectAggregates(block.having, &agg_nodes_);
  for (const BoundSelectItem& item : block.select) {
    CollectAggregates(item.expr, &agg_nodes_);
  }
  if (CompiledExprEnabled()) {
    group_progs_ = CompileAll(block.group_by);
    arg_progs_.reserve(agg_nodes_.size());
    for (const ExprPtr& agg : agg_nodes_) {
      if (agg->agg == AggFunc::kCountStar) {
        arg_progs_.emplace_back();  // no argument to evaluate
      } else {
        arg_progs_.push_back(CompiledExpr::Compile(*agg->children[0]));
      }
    }
    codec_ = CodecForExprs(block.group_by, BlockColumnTypes(block));
    packed_ = codec_.usable();
  }
  if (packed_) {
    packed_groups_.reserve(kInitialBuckets);
  } else {
    groups_.reserve(kInitialBuckets);
  }
  key_scratch_.reserve(block.group_by.size());
}

Aggregator::~Aggregator() {
  if (governor_ != nullptr && reserved_bytes_ > 0) {
    governor_->Release(reserved_bytes_);
  }
}

bool Aggregator::IsAggregated() const {
  return !block_.group_by.empty() || block_.having != nullptr ||
         !agg_nodes_.empty();
}

void Aggregator::EvalKeys(const Row& joined_row) {
  key_scratch_.clear();
  const size_t n = block_.group_by.size();
  for (size_t i = 0; i < n; ++i) {
    if (i < group_progs_.size() && group_progs_[i].valid()) {
      key_scratch_.push_back(group_progs_[i].Run(joined_row, &scratch_));
    } else {
      key_scratch_.push_back(Evaluate(*block_.group_by[i], joined_row));
    }
  }
}

bool Aggregator::ReserveGroup(const Row& joined_row, size_t key_bytes) {
  if (governor_ == nullptr) return true;
  // Approximate per-group footprint: key + representative row +
  // accumulator array + hash-map node overhead.
  size_t bytes = key_bytes + RowBytes(joined_row) +
                 agg_nodes_.size() * sizeof(Accumulator) + 64;
  if (!governor_->Reserve(bytes, "hash-aggregation").ok()) {
    // The governor is poisoned; the executor aborts at its next check.
    reserve_failed_ = true;
    return false;
  }
  reserved_bytes_ += bytes;
  return true;
}

Aggregator::GroupState Aggregator::MakeState(const Row& joined_row) const {
  GroupState state;
  state.representative = joined_row;
  state.accumulators.reserve(agg_nodes_.size());
  for (const ExprPtr& agg : agg_nodes_) {
    state.accumulators.emplace_back(agg->agg);
  }
  return state;
}

void Aggregator::Accumulate(GroupState* state, const Row& joined_row) {
  for (size_t i = 0; i < agg_nodes_.size(); ++i) {
    const ExprPtr& agg = agg_nodes_[i];
    if (agg->agg == AggFunc::kCountStar) {
      state->accumulators[i].Add(Value::Null());
    } else if (i < arg_progs_.size() && arg_progs_[i].valid()) {
      state->accumulators[i].Add(arg_progs_[i].Run(joined_row, &scratch_));
    } else {
      state->accumulators[i].Add(Evaluate(*agg->children[0], joined_row));
    }
  }
}

void Aggregator::AddRow(const Row& joined_row) {
  if (reserve_failed_) return;  // budget overrun already poisoned the query
  EvalKeys(joined_row);
  GroupState* state;
  if (packed_) {
    codec_.Encode(key_scratch_.data(), key_scratch_.size(), &packed_scratch_);
    auto it = packed_groups_.find(packed_scratch_);
    if (it == packed_groups_.end()) {
      // A numeric Row key has no out-of-line storage, so RowBytes(key)
      // is exactly key.size()*sizeof(Value): charge the same bytes the
      // Row-keyed map would, keeping governor accounting unchanged.
      if (!ReserveGroup(joined_row, key_scratch_.size() * sizeof(Value))) {
        return;
      }
      it = packed_groups_.emplace(packed_scratch_, MakeState(joined_row))
               .first;
    }
    state = &it->second;
  } else {
    // key_scratch_ doubles as the lookup key; it is only copied when the
    // group is new.
    auto it = groups_.find(key_scratch_);
    if (it == groups_.end()) {
      if (!ReserveGroup(joined_row, RowBytes(key_scratch_))) return;
      it = groups_.emplace(key_scratch_, MakeState(joined_row)).first;
    }
    state = &it->second;
  }
  Accumulate(state, joined_row);
}

void Aggregator::MergeFrom(Aggregator&& other) {
  // Take over the other side's reservation; merged-away duplicates keep the
  // accounting conservative (an over- rather than under-estimate).
  reserved_bytes_ += other.reserved_bytes_;
  other.reserved_bytes_ = 0;
  if (governor_ == nullptr) {
    governor_ = other.governor_;
  } else if (other.governor_ == governor_) {
    other.governor_ = nullptr;
  }
  for (auto& [key, other_state] : other.groups_) {
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      groups_.emplace(key, std::move(other_state));
      continue;
    }
    GroupState& state = it->second;
    for (size_t i = 0; i < state.accumulators.size(); ++i) {
      state.accumulators[i].MergeFrom(other_state.accumulators[i]);
    }
  }
  for (auto& [key, other_state] : other.packed_groups_) {
    auto it = packed_groups_.find(key);
    if (it == packed_groups_.end()) {
      packed_groups_.emplace(key, std::move(other_state));
      continue;
    }
    GroupState& state = it->second;
    for (size_t i = 0; i < state.accumulators.size(); ++i) {
      state.accumulators[i].MergeFrom(other_state.accumulators[i]);
    }
  }
}

Result<TablePtr> Aggregator::Finalize(ExecStats* stats) const {
  TraceSpan span("agg.finalize");
  auto start = std::chrono::steady_clock::now();
  Result<TablePtr> result = FinalizeInternal(stats);
  int64_t took_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (stats != nullptr) stats->finalize_us += took_us;
  ICEBERG_HISTOGRAM("agg.finalize_us")->Record(static_cast<uint64_t>(took_us));
  return result;
}

Result<TablePtr> Aggregator::FinalizeInternal(ExecStats* stats) const {
  auto result = std::make_shared<Table>(block_.output_schema);
  if (stats != nullptr) stats->groups_created += num_groups();

  // SQL scalar-aggregate semantics: with no GROUP BY, an aggregated query
  // over empty input still yields one group.
  if (num_groups() == 0 && block_.group_by.empty() && !agg_nodes_.empty()) {
    AggValueMap agg_values;
    std::vector<Accumulator> empty;
    for (const ExprPtr& agg : agg_nodes_) empty.emplace_back(agg->agg);
    for (size_t i = 0; i < agg_nodes_.size(); ++i) {
      agg_values[agg_nodes_[i].get()] = empty[i].Final();
    }
    Row dummy(block_.TotalWidth(), Value::Null());
    if (block_.having == nullptr ||
        EvaluatePredicate(*block_.having, dummy, &agg_values)) {
      Row out;
      for (const BoundSelectItem& item : block_.select) {
        out.push_back(Evaluate(*item.expr, dummy, &agg_values));
      }
      result->AppendUnchecked(std::move(out));
      if (stats != nullptr) stats->groups_output += 1;
    }
    return result;
  }

  std::set<Row, RowLess> distinct_rows;
  auto emit_group = [&](const GroupState& state) {
    AggValueMap agg_values;
    for (size_t i = 0; i < agg_nodes_.size(); ++i) {
      agg_values[agg_nodes_[i].get()] = state.accumulators[i].Final();
    }
    if (block_.having != nullptr &&
        !EvaluatePredicate(*block_.having, state.representative,
                           &agg_values)) {
      return;
    }
    Row out;
    out.reserve(block_.select.size());
    for (const BoundSelectItem& item : block_.select) {
      out.push_back(Evaluate(*item.expr, state.representative, &agg_values));
    }
    if (block_.distinct) {
      if (!distinct_rows.insert(out).second) return;
    }
    result->AppendUnchecked(std::move(out));
    if (stats != nullptr) stats->groups_output += 1;
  };
  for (const auto& [key, state] : groups_) emit_group(state);
  for (const auto& [key, state] : packed_groups_) emit_group(state);
  return result;
}

}  // namespace iceberg
