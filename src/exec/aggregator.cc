#include "src/exec/aggregator.h"

#include <set>

namespace iceberg {

Aggregator::Aggregator(const QueryBlock& block) : block_(block) {
  CollectAggregates(block.having, &agg_nodes_);
  for (const BoundSelectItem& item : block.select) {
    CollectAggregates(item.expr, &agg_nodes_);
  }
}

Aggregator::~Aggregator() {
  if (governor_ != nullptr && reserved_bytes_ > 0) {
    governor_->Release(reserved_bytes_);
  }
}

bool Aggregator::IsAggregated() const {
  return !block_.group_by.empty() || block_.having != nullptr ||
         !agg_nodes_.empty();
}

Row Aggregator::GroupKey(const Row& joined_row) const {
  Row key;
  key.reserve(block_.group_by.size());
  for (const ExprPtr& g : block_.group_by) {
    key.push_back(Evaluate(*g, joined_row));
  }
  return key;
}

void Aggregator::AddRow(const Row& joined_row) {
  if (reserve_failed_) return;  // budget overrun already poisoned the query
  Row key = GroupKey(joined_row);
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    if (governor_ != nullptr) {
      // Approximate per-group footprint: key + representative row +
      // accumulator array + hash-map node overhead.
      size_t bytes = RowBytes(key) + RowBytes(joined_row) +
                     agg_nodes_.size() * sizeof(Accumulator) + 64;
      if (!governor_->Reserve(bytes, "hash-aggregation").ok()) {
        // The governor is poisoned; the executor aborts at its next check.
        reserve_failed_ = true;
        return;
      }
      reserved_bytes_ += bytes;
    }
    GroupState state;
    state.representative = joined_row;
    state.accumulators.reserve(agg_nodes_.size());
    for (const ExprPtr& agg : agg_nodes_) {
      state.accumulators.emplace_back(agg->agg);
    }
    it = groups_.emplace(std::move(key), std::move(state)).first;
  }
  GroupState& state = it->second;
  for (size_t i = 0; i < agg_nodes_.size(); ++i) {
    const ExprPtr& agg = agg_nodes_[i];
    if (agg->agg == AggFunc::kCountStar) {
      state.accumulators[i].Add(Value::Null());
    } else {
      state.accumulators[i].Add(Evaluate(*agg->children[0], joined_row));
    }
  }
}

void Aggregator::MergeFrom(Aggregator&& other) {
  // Take over the other side's reservation; merged-away duplicates keep the
  // accounting conservative (an over- rather than under-estimate).
  reserved_bytes_ += other.reserved_bytes_;
  other.reserved_bytes_ = 0;
  if (governor_ == nullptr) {
    governor_ = other.governor_;
  } else if (other.governor_ == governor_) {
    other.governor_ = nullptr;
  }
  for (auto& [key, other_state] : other.groups_) {
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      groups_.emplace(key, std::move(other_state));
      continue;
    }
    GroupState& state = it->second;
    for (size_t i = 0; i < state.accumulators.size(); ++i) {
      state.accumulators[i].MergeFrom(other_state.accumulators[i]);
    }
  }
}

Result<TablePtr> Aggregator::Finalize(ExecStats* stats) const {
  auto result = std::make_shared<Table>(block_.output_schema);
  if (stats != nullptr) stats->groups_created += groups_.size();

  // SQL scalar-aggregate semantics: with no GROUP BY, an aggregated query
  // over empty input still yields one group.
  if (groups_.empty() && block_.group_by.empty() && !agg_nodes_.empty()) {
    AggValueMap agg_values;
    std::vector<Accumulator> empty;
    for (const ExprPtr& agg : agg_nodes_) empty.emplace_back(agg->agg);
    for (size_t i = 0; i < agg_nodes_.size(); ++i) {
      agg_values[agg_nodes_[i].get()] = empty[i].Final();
    }
    Row dummy(block_.TotalWidth(), Value::Null());
    if (block_.having == nullptr ||
        EvaluatePredicate(*block_.having, dummy, &agg_values)) {
      Row out;
      for (const BoundSelectItem& item : block_.select) {
        out.push_back(Evaluate(*item.expr, dummy, &agg_values));
      }
      result->AppendUnchecked(std::move(out));
      if (stats != nullptr) stats->groups_output += 1;
    }
    return result;
  }

  std::set<Row, RowLess> distinct_rows;
  for (const auto& [key, state] : groups_) {
    AggValueMap agg_values;
    for (size_t i = 0; i < agg_nodes_.size(); ++i) {
      agg_values[agg_nodes_[i].get()] = state.accumulators[i].Final();
    }
    if (block_.having != nullptr &&
        !EvaluatePredicate(*block_.having, state.representative,
                           &agg_values)) {
      continue;
    }
    Row out;
    out.reserve(block_.select.size());
    for (const BoundSelectItem& item : block_.select) {
      out.push_back(Evaluate(*item.expr, state.representative, &agg_values));
    }
    if (block_.distinct) {
      if (!distinct_rows.insert(out).second) continue;
    }
    result->AppendUnchecked(std::move(out));
    if (stats != nullptr) stats->groups_output += 1;
  }
  return result;
}

}  // namespace iceberg
