#include "src/exec/transfer_graph.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/exec/bloom.h"
#include "src/exec/key_codec.h"
#include "src/exec/task_pool.h"
#include "src/expr/compiled.h"
#include "src/expr/evaluator.h"
#include "src/obs/metrics.h"

namespace iceberg {

namespace {

int64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int MaxOffset(const ExprPtr& e) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  int max_off = -1;
  for (const Expr* r : refs) max_off = std::max(max_off, r->resolved_index);
  return max_off;
}

int MinOffset(const ExprPtr& e) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  int min_off = 1 << 30;
  for (const Expr* r : refs) min_off = std::min(min_off, r->resolved_index);
  return min_off;
}

/// Rows below this run the serial build/probe loops; above it (and with a
/// pool) filter builds and probe passes go morsel-wise over the TaskPool.
constexpr size_t kParallelRows = 8192;

/// One relation of the join graph.
struct Node {
  size_t level = 0;          // FROM position
  const Table* table = nullptr;
  size_t begin = 0;          // flat offset of the relation's first column
  size_t rows = 0;
  std::vector<ExprPtr> local;            // single-relation conjuncts
  std::vector<CompiledExpr> local_progs;
  std::vector<uint32_t> edges;           // incident edge indexes
  std::vector<uint8_t> keep;             // 1 = still alive
  size_t kept = 0;
  uint64_t gen = 0;  // bumped on elimination; filters cache against it
};

/// One (composite) equi-join edge between two relations. `a` is the lower
/// FROM level. Column lists are pairwise aligned; the codecs canonicalize
/// int/double so byte equality coincides with SQL equality across the
/// sides.
struct GraphEdge {
  size_t a_level = 0, b_level = 0;
  std::vector<size_t> a_cols, b_cols;
  KeyCodec a_codec, b_codec;
  /// Single numeric key column on both sides: the filter also carries the
  /// source key range, enabling exact range elimination and whole-chunk
  /// zone refutation on the target.
  bool rangeable = false;
};

/// A built filter for one direction of one edge, cached against the source
/// node's generation so an unchanged source never rebuilds.
struct FilterSlot {
  std::unique_ptr<BloomFilter> bloom;
  uint64_t built_gen = ~uint64_t{0};
  bool range_valid = false;
  double min_d = 0.0, max_d = 0.0;
};

bool NumericType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

}  // namespace

TransferResult::~TransferResult() {
  if (gauge_bytes_ > 0) {
    ICEBERG_GAUGE("transfer.filter_bytes")
        ->Add(-static_cast<int64_t>(gauge_bytes_));
  }
}

bool TransferResult::Live() const {
  for (const auto& [table, version] : versions_) {
    if (table->version() != version) return false;
  }
  return true;
}

std::string TransferResult::Summary() const {
  size_t total = 0, kept = 0;
  size_t nodes = 0;
  for (size_t l = 0; l < keep_.size(); ++l) {
    if (keep_[l].empty()) continue;
    ++nodes;
    total += total_[l];
    kept += kept_[l];
  }
  char pct[32];
  std::snprintf(pct, sizeof(pct), "%.1f%%",
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(total - kept) /
                                 static_cast<double>(total));
  return "passes=" + std::to_string(stats_.passes) +
         " filters=" + std::to_string(stats_.filters_built) + " eliminated=" +
         std::to_string(total - kept) + "/" + std::to_string(total) + " (" +
         pct + ") over " + std::to_string(nodes) + " relations" +
         (stats_.degraded ? " [degraded]" : "") +
         (stats_.replayed_schedule ? " [schedule replayed]" : "");
}

TransferResultPtr PermuteTransferResult(const TransferResultPtr& result,
                                        const std::vector<size_t>& order) {
  if (result == nullptr) return nullptr;
  auto permuted = std::shared_ptr<TransferResult>(new TransferResult());
  const size_t n = order.size();
  permuted->keep_.resize(n);
  permuted->kept_.resize(n, 0);
  permuted->total_.resize(n, 0);
  for (size_t p = 0; p < n; ++p) {
    const size_t old_level = order[p];
    if (old_level >= result->keep_.size()) continue;
    permuted->keep_[p] = result->keep_[old_level];
    permuted->kept_[p] = result->kept_[old_level];
    permuted->total_[p] = result->total_[old_level];
  }
  // versions_ guard table identity, not level order: copy as-is.
  permuted->versions_ = result->versions_;
  permuted->any_selection_ = result->any_selection_;
  permuted->stats_ = result->stats_;
  // gauge_bytes_ stays 0: the original owns the metric accounting and its
  // destructor must be the only one subtracting from the gauge.
  return permuted;
}

/// Builder for one BuildTransferGraph call; groups the passes' shared
/// state so the sweep loops stay readable.
class TransferGraphBuilder {
 public:
  TransferGraphBuilder(const QueryBlock& block,
                       const TransferPlanOptions& options)
      : block_(block), options_(options) {}

  TransferResultPtr Build();

 private:
  bool CollectGraph();
  void SeedLocalSelections();
  void RankOrder();
  bool TryReplaySchedule();
  void CaptureSchedule();
  /// Probes `node` against the filter transferred over `edge` from the
  /// other side. Returns false when the governor refused filter memory
  /// (degrade: stop sweeping).
  bool ProbeAcross(Node* node, size_t edge_index);
  const FilterSlot* GetFilter(const GraphEdge& edge, Node* source,
                              const std::vector<size_t>& cols,
                              const KeyCodec& codec);
  void ProbeRows(Node* node, const GraphEdge& edge,
                 const std::vector<size_t>& cols, const KeyCodec& codec,
                 const FilterSlot& slot);
  TaskPool* Pool();

  const QueryBlock& block_;
  const TransferPlanOptions& options_;
  std::vector<Node> nodes_;
  std::vector<GraphEdge> edges_;
  std::vector<FilterSlot> slots_;  // 2 per edge: [2*e] from a, [2*e+1] from b
  std::vector<uint32_t> order_;    // participating levels, cost-ranked
  size_t filter_bytes_ = 0;        // reserved filter memory (peak, build)
  int max_passes_ = 0;
  TransferStats stats_;
  std::unique_ptr<TaskPool> pool_;
};

TaskPool* TransferGraphBuilder::Pool() {
  if (pool_ == nullptr && options_.num_threads > 1) {
    pool_ = std::make_unique<TaskPool>(options_.num_threads);
  }
  return pool_.get();
}

bool TransferGraphBuilder::CollectGraph() {
  const size_t num_tables = block_.tables.size();
  nodes_.resize(num_tables);
  for (size_t l = 0; l < num_tables; ++l) {
    Node& n = nodes_[l];
    n.level = l;
    n.table = block_.tables[l].table.get();
    n.begin = block_.tables[l].offset;
    n.rows = n.table->num_rows();
  }

  // Classify conjuncts: cross-relation equalities between plain columns
  // become (composite) edges; single-relation conjuncts seed that
  // relation's initial selection.
  struct PendingEdge {
    std::vector<size_t> a_cols, b_cols;
  };
  std::vector<std::pair<std::pair<size_t, size_t>, PendingEdge>> pending;
  for (const ExprPtr& conjunct : block_.where_conjuncts) {
    const int lo = MinOffset(conjunct);
    const int hi = MaxOffset(conjunct);
    if (hi < 0) continue;  // no column refs
    const size_t lo_t = block_.TableOfOffset(static_cast<size_t>(lo));
    const size_t hi_t = block_.TableOfOffset(static_cast<size_t>(hi));
    if (lo_t == hi_t) {
      nodes_[lo_t].local.push_back(conjunct);
      continue;
    }
    if (conjunct->kind != ExprKind::kBinary ||
        conjunct->bop != BinaryOp::kEq) {
      continue;
    }
    const ExprPtr& l = conjunct->children[0];
    const ExprPtr& r = conjunct->children[1];
    if (l->kind != ExprKind::kColumnRef || r->kind != ExprKind::kColumnRef) {
      continue;
    }
    size_t la = block_.TableOfOffset(static_cast<size_t>(l->resolved_index));
    size_t lb = block_.TableOfOffset(static_cast<size_t>(r->resolved_index));
    size_t ca = static_cast<size_t>(l->resolved_index) - nodes_[la].begin;
    size_t cb = static_cast<size_t>(r->resolved_index) - nodes_[lb].begin;
    if (la > lb) {
      std::swap(la, lb);
      std::swap(ca, cb);
    }
    // Only codec-friendly (numeric) key columns participate.
    if (!NumericType(nodes_[la].table->schema().column(ca).type) ||
        !NumericType(nodes_[lb].table->schema().column(cb).type)) {
      continue;
    }
    PendingEdge* found = nullptr;
    for (auto& [pair, pe] : pending) {
      if (pair.first == la && pair.second == lb) {
        found = &pe;
        break;
      }
    }
    if (found == nullptr) {
      pending.push_back({{la, lb}, PendingEdge{}});
      found = &pending.back().second;
    }
    found->a_cols.push_back(ca);
    found->b_cols.push_back(cb);
  }

  for (auto& [pair, pe] : pending) {
    GraphEdge e;
    e.a_level = pair.first;
    e.b_level = pair.second;
    e.a_cols = pe.a_cols;
    e.b_cols = pe.b_cols;
    if (e.a_cols.size() > PackedKey::kMaxColumns) continue;
    std::vector<DataType> a_types, b_types;
    for (size_t c : e.a_cols) {
      a_types.push_back(nodes_[e.a_level].table->schema().column(c).type);
    }
    for (size_t c : e.b_cols) {
      b_types.push_back(nodes_[e.b_level].table->schema().column(c).type);
    }
    e.a_codec = KeyCodec::ForTypes(std::move(a_types));
    e.b_codec = KeyCodec::ForTypes(std::move(b_types));
    if (!e.a_codec.usable() || !e.b_codec.usable()) continue;
    e.rangeable = e.a_cols.size() == 1;
    edges_.push_back(std::move(e));
  }

  // A self-join edge over the *same* columns of the *same* table can never
  // eliminate anything unless one side is already reduced (every key
  // trivially has a partner: itself). Such edges stay in the graph — they
  // become useful the moment local predicates or other edges shrink one
  // side — but a graph consisting *only* of them over unfiltered nodes is
  // a provable no-op, and the stock self-join workloads hit exactly that.
  bool any_useful = false;
  for (const GraphEdge& e : edges_) {
    const bool self_noop =
        nodes_[e.a_level].table == nodes_[e.b_level].table &&
        e.a_cols == e.b_cols;
    if (!self_noop || !nodes_[e.a_level].local.empty() ||
        !nodes_[e.b_level].local.empty()) {
      any_useful = true;
    }
  }
  if (edges_.empty() || !any_useful) return false;

  for (size_t i = 0; i < edges_.size(); ++i) {
    nodes_[edges_[i].a_level].edges.push_back(static_cast<uint32_t>(i));
    nodes_[edges_[i].b_level].edges.push_back(static_cast<uint32_t>(i));
  }
  slots_.resize(edges_.size() * 2);
  return true;
}

void TransferGraphBuilder::SeedLocalSelections() {
  for (Node& n : nodes_) {
    if (n.edges.empty()) continue;
    n.keep.assign(n.rows, 1);
    n.kept = n.rows;
    if (n.local.empty()) continue;
    if (CompiledExprEnabled()) n.local_progs = CompileAll(n.local);
    const bool compiled = n.local_progs.size() == n.local.size();
    // The conjuncts are bound to the block's flat offsets; pad a scratch
    // row up to the relation's slice (the padding is never read).
    auto filter_range = [&](size_t begin, size_t end, size_t* eliminated) {
      Row scratch(n.begin);
      EvalScratch eval;
      for (size_t i = begin; i < end; ++i) {
        const Row& row = n.table->row(i);
        scratch.resize(n.begin);
        scratch.insert(scratch.end(), row.begin(), row.end());
        bool pass = true;
        if (compiled) {
          for (const CompiledExpr& p : n.local_progs) {
            if (!p.RunPredicate(scratch, &eval)) {
              pass = false;
              break;
            }
          }
        } else {
          for (const ExprPtr& p : n.local) {
            if (!EvaluatePredicate(*p, scratch)) {
              pass = false;
              break;
            }
          }
        }
        if (!pass) {
          n.keep[i] = 0;
          ++*eliminated;
        }
      }
    };
    size_t eliminated = 0;
    TaskPool* pool = n.rows >= kParallelRows ? Pool() : nullptr;
    if (pool != nullptr) {
      std::vector<size_t> partial(pool->num_threads(), 0);
      pool->RunMorsels(n.rows, MorselFor(n.rows, pool->num_threads()),
                       [&](int worker, size_t begin, size_t end) {
                         filter_range(begin, end, &partial[worker]);
                         return Status::OK();
                       });
      for (size_t p : partial) eliminated += p;
    } else {
      filter_range(0, n.rows, &eliminated);
    }
    if (eliminated > 0) {
      n.kept -= eliminated;
      ++n.gen;
    }
  }
}

void TransferGraphBuilder::RankOrder() {
  order_.clear();
  for (const Node& n : nodes_) {
    if (!n.edges.empty()) order_.push_back(static_cast<uint32_t>(n.level));
  }
  // Cost-ranked spanning order: most selective (fewest surviving rows)
  // first, so the strongest filters propagate before the expensive nodes
  // are probed. Stable on level for determinism.
  std::stable_sort(order_.begin(), order_.end(),
                   [&](uint32_t a, uint32_t b) {
                     return nodes_[a].kept < nodes_[b].kept;
                   });
}

bool TransferGraphBuilder::TryReplaySchedule() {
  const TransferSchedule* s = options_.replay;
  if (s == nullptr || !s->valid) return false;
  // The schedule is advisory: verify it matches the freshly derived graph
  // structure (same edge set, an order covering the same nodes) and fall
  // back to the ranked order on any mismatch.
  if (s->edges.size() != edges_.size()) return false;
  if (s->order.size() != order_.size()) return false;
  for (size_t i = 0; i < edges_.size(); ++i) {
    const TransferSchedule::Edge& se = s->edges[i];
    const GraphEdge& ge = edges_[i];
    if (se.a_level != ge.a_level || se.b_level != ge.b_level) return false;
    if (se.a_cols.size() != ge.a_cols.size()) return false;
    for (size_t k = 0; k < se.a_cols.size(); ++k) {
      if (se.a_cols[k] != ge.a_cols[k] || se.b_cols[k] != ge.b_cols[k]) {
        return false;
      }
    }
  }
  std::vector<uint32_t> sorted_ours = order_;
  std::vector<uint32_t> sorted_theirs(s->order.begin(), s->order.end());
  std::sort(sorted_ours.begin(), sorted_ours.end());
  std::sort(sorted_theirs.begin(), sorted_theirs.end());
  if (sorted_ours != sorted_theirs) return false;
  order_.assign(s->order.begin(), s->order.end());
  // The capture run's fixpoint bound: one extra sweep confirms the
  // fixpoint on this statement's data without the exploratory tail.
  max_passes_ = std::min(max_passes_, static_cast<int>(s->passes) + 1);
  if (max_passes_ < 1) max_passes_ = 1;
  stats_.replayed_schedule = true;
  return true;
}

void TransferGraphBuilder::CaptureSchedule() {
  TransferSchedule* s = options_.capture;
  if (s == nullptr) return;
  s->edges.clear();
  for (const GraphEdge& e : edges_) {
    TransferSchedule::Edge se;
    se.a_level = static_cast<uint32_t>(e.a_level);
    se.b_level = static_cast<uint32_t>(e.b_level);
    for (size_t c : e.a_cols) se.a_cols.push_back(static_cast<uint32_t>(c));
    for (size_t c : e.b_cols) se.b_cols.push_back(static_cast<uint32_t>(c));
    s->edges.push_back(std::move(se));
  }
  s->order = order_;
  s->passes = static_cast<uint32_t>(stats_.passes);
  s->valid = true;
}

const FilterSlot* TransferGraphBuilder::GetFilter(
    const GraphEdge& edge, Node* source, const std::vector<size_t>& cols,
    const KeyCodec& codec) {
  const size_t edge_index = static_cast<size_t>(&edge - edges_.data());
  FilterSlot& slot =
      slots_[edge_index * 2 + (source->level == edge.b_level ? 1 : 0)];
  if (slot.bloom != nullptr && slot.built_gen == source->gen) return &slot;

  auto bloom = std::make_unique<BloomFilter>(source->kept);
  const size_t bytes = bloom->ApproxBytes();
  if (options_.governor != nullptr &&
      !options_.governor->TryReserve(bytes, "transfer-filter")) {
    return nullptr;  // pressure: degrade to the passes done so far
  }
  filter_bytes_ += bytes;
  ICEBERG_GAUGE("transfer.filter_bytes")->Add(static_cast<int64_t>(bytes));
  ICEBERG_GAUGE("transfer.filter_bytes_peak")
      ->SetMax(static_cast<int64_t>(filter_bytes_));

  const bool track_range = edge.rangeable;
  auto build_range = [&](BloomFilter* out, bool* range_valid, double* min_d,
                         double* max_d, size_t begin, size_t end) {
    PackedKey pk;
    for (size_t i = begin; i < end; ++i) {
      if (source->keep[i] == 0) continue;
      const Row& row = source->table->row(i);
      bool null_key = false;
      for (size_t c : cols) {
        if (row[c].is_null()) {
          null_key = true;
          break;
        }
      }
      // A NULL key on the source side can never match the other side's
      // equality, so it contributes nothing to the transferred set.
      if (null_key) continue;
      codec.EncodeAt(row, cols, &pk);
      out->Insert(pk.hash());
      if (track_range) {
        const double v = row[cols[0]].AsDouble();
        if (!*range_valid || v < *min_d) *min_d = v;
        if (!*range_valid || v > *max_d) *max_d = v;
        *range_valid = true;
      }
    }
  };

  slot.range_valid = false;
  slot.min_d = std::numeric_limits<double>::infinity();
  slot.max_d = -std::numeric_limits<double>::infinity();
  TaskPool* pool = source->kept >= kParallelRows ? Pool() : nullptr;
  if (pool != nullptr) {
    const int workers = pool->num_threads();
    std::vector<BloomFilter> parts(static_cast<size_t>(workers),
                                   BloomFilter(source->kept));
    std::vector<uint8_t> valids(static_cast<size_t>(workers), 0);
    std::vector<double> mins(static_cast<size_t>(workers), 0.0);
    std::vector<double> maxs(static_cast<size_t>(workers), 0.0);
    pool->RunMorsels(
        source->rows, MorselFor(source->rows, workers),
        [&](int worker, size_t begin, size_t end) {
          bool valid = valids[worker] != 0;
          build_range(&parts[worker], &valid, &mins[worker], &maxs[worker],
                      begin, end);
          valids[worker] = valid ? 1 : 0;
          return Status::OK();
        });
    for (int w = 0; w < workers; ++w) {
      bloom->MergeFrom(parts[w]);
      if (valids[w] != 0) {
        if (!slot.range_valid || mins[w] < slot.min_d) slot.min_d = mins[w];
        if (!slot.range_valid || maxs[w] > slot.max_d) slot.max_d = maxs[w];
        slot.range_valid = true;
      }
    }
  } else {
    build_range(bloom.get(), &slot.range_valid, &slot.min_d, &slot.max_d, 0,
                source->rows);
  }
  slot.bloom = std::move(bloom);
  slot.built_gen = source->gen;
  ++stats_.filters_built;
  return &slot;
}

void TransferGraphBuilder::ProbeRows(Node* node, const GraphEdge& edge,
                                     const std::vector<size_t>& cols,
                                     const KeyCodec& codec,
                                     const FilterSlot& slot) {
  const BloomFilter& bloom = *slot.bloom;
  const bool use_range = edge.rangeable && slot.range_valid;

  // Whole-chunk zone refutation first: when the (single) key column's zone
  // over a chunk cannot intersect the transferred key range, every live
  // row of the chunk dies without a per-row probe.
  std::vector<uint8_t> chunk_dead;
  if (use_range && options_.use_zone_maps &&
      node->rows >= ColumnChunkSet::kChunkRows) {
    ColumnChunkSetPtr chunks = node->table->GetOrBuildChunks();
    if (chunks != nullptr && chunks->version() == node->table->version()) {
      const std::vector<ColumnChunk>& cs = chunks->chunks();
      chunk_dead.assign(cs.size(), 0);
      for (size_t ci = 0; ci < cs.size(); ++ci) {
        const ChunkColumn& col = cs[ci].cols[cols[0]];
        if (!col.zone_valid) continue;
        if (col.max_d < slot.min_d || col.min_d > slot.max_d) {
          chunk_dead[ci] = 1;
          ++stats_.chunks_refuted;
        }
      }
    }
  }

  struct Partial {
    size_t eliminated = 0, probes = 0, hits = 0;
  };
  auto probe_range = [&](size_t begin, size_t end, Partial* out) {
    PackedKey pk;
    for (size_t i = begin; i < end; ++i) {
      if (node->keep[i] == 0) continue;
      if (!chunk_dead.empty() &&
          chunk_dead[i / ColumnChunkSet::kChunkRows] != 0) {
        node->keep[i] = 0;
        ++out->eliminated;
        continue;
      }
      const Row& row = node->table->row(i);
      bool drop = false;
      for (size_t c : cols) {
        // A NULL key column can never satisfy the join equality.
        if (row[c].is_null()) {
          drop = true;
          break;
        }
      }
      if (!drop && use_range) {
        const double v = row[cols[0]].AsDouble();
        if (v < slot.min_d || v > slot.max_d) drop = true;
      }
      if (!drop) {
        codec.EncodeAt(row, cols, &pk);
        ++out->probes;
        if (bloom.MayContain(pk.hash())) {
          ++out->hits;
        } else {
          drop = true;
        }
      }
      if (drop) {
        node->keep[i] = 0;
        ++out->eliminated;
      }
    }
  };

  Partial total;
  TaskPool* pool = node->kept >= kParallelRows ? Pool() : nullptr;
  if (pool != nullptr) {
    std::vector<Partial> partials(
        static_cast<size_t>(pool->num_threads()));
    pool->RunMorsels(node->rows, MorselFor(node->rows, pool->num_threads()),
                     [&](int worker, size_t begin, size_t end) {
                       probe_range(begin, end, &partials[worker]);
                       return Status::OK();
                     });
    for (const Partial& p : partials) {
      total.eliminated += p.eliminated;
      total.probes += p.probes;
      total.hits += p.hits;
    }
  } else {
    probe_range(0, node->rows, &total);
  }
  stats_.probes += total.probes;
  stats_.hits += total.hits;
  if (total.eliminated > 0) {
    node->kept -= total.eliminated;
    ++node->gen;
  }
}

bool TransferGraphBuilder::ProbeAcross(Node* node, size_t edge_index) {
  const GraphEdge& edge = edges_[edge_index];
  const bool node_is_a = node->level == edge.a_level;
  Node* source = &nodes_[node_is_a ? edge.b_level : edge.a_level];
  // Self-edge over identical columns with both sides fully live: every key
  // has itself as a partner, nothing can be eliminated — skip the build.
  if (source->table == node->table && edge.a_cols == edge.b_cols &&
      source->kept == source->rows && node->kept == node->rows) {
    return true;
  }
  const std::vector<size_t>& src_cols =
      node_is_a ? edge.b_cols : edge.a_cols;
  const KeyCodec& src_codec = node_is_a ? edge.b_codec : edge.a_codec;
  const std::vector<size_t>& dst_cols =
      node_is_a ? edge.a_cols : edge.b_cols;
  const KeyCodec& dst_codec = node_is_a ? edge.a_codec : edge.b_codec;
  const FilterSlot* slot = GetFilter(edge, source, src_cols, src_codec);
  if (slot == nullptr) return false;
  ProbeRows(node, edge, dst_cols, dst_codec, *slot);
  return true;
}

TransferResultPtr TransferGraphBuilder::Build() {
  const auto t0 = std::chrono::steady_clock::now();
  if (block_.tables.size() < 2) return nullptr;
  if (!CollectGraph()) return nullptr;

  max_passes_ = std::max(1, options_.max_passes);
  SeedLocalSelections();
  RankOrder();
  // A stale or foreign schedule is simply ignored; the freshly ranked
  // order stands in.
  TryReplaySchedule();

  // Alternating sweeps to a fixpoint: a forward sweep probes each node
  // (most selective first) against all of its neighbors' filters, the
  // backward sweep returns the refined selections the other way. The
  // elimination is monotone, so cyclic graphs converge; the cap bounds
  // the tail.
  bool degraded = false;
  for (int pass = 0; pass < max_passes_ && !degraded; ++pass) {
    if (options_.governor != nullptr && options_.governor->poisoned()) break;
    bool changed = false;
    const bool forward = (pass % 2) == 0;
    for (size_t idx = 0; idx < order_.size() && !degraded; ++idx) {
      Node* node =
          &nodes_[order_[forward ? idx : order_.size() - 1 - idx]];
      for (uint32_t e : node->edges) {
        const uint64_t before = node->gen;
        if (!ProbeAcross(node, e)) {
          degraded = true;  // governor refused filter memory
          break;
        }
        if (node->gen != before) changed = true;
      }
    }
    ++stats_.passes;
    if (!changed) break;  // fixpoint
  }
  stats_.degraded = degraded;

  // Materialize the result: drop no-op bitmaps, snapshot every table's
  // version (transfer moves information across relations — one mutation
  // invalidates all selections).
  auto result = std::shared_ptr<TransferResult>(new TransferResult());
  result->keep_.resize(nodes_.size());
  result->kept_.resize(nodes_.size(), 0);
  result->total_.resize(nodes_.size(), 0);
  size_t bitmap_bytes = 0;
  for (Node& n : nodes_) {
    result->total_[n.level] = n.rows;
    result->kept_[n.level] = n.keep.empty() ? n.rows : n.kept;
    if (!n.keep.empty() && n.kept < n.rows) {
      stats_.rows_eliminated += n.rows - n.kept;
      bitmap_bytes += n.keep.size();
      result->keep_[n.level] = std::move(n.keep);
      result->any_selection_ = true;
    }
  }
  for (const auto& tref : block_.tables) {
    result->versions_.emplace_back(tref.table.get(), tref.table->version());
  }

  CaptureSchedule();

  // The Bloom filters die with the builder; only the bitmaps stay live.
  if (filter_bytes_ > 0) {
    ICEBERG_GAUGE("transfer.filter_bytes")
        ->Add(-static_cast<int64_t>(filter_bytes_));
  }
  if (bitmap_bytes > 0) {
    ICEBERG_GAUGE("transfer.filter_bytes")
        ->Add(static_cast<int64_t>(bitmap_bytes));
    result->gauge_bytes_ = bitmap_bytes;
  }

  stats_.filter_bytes = filter_bytes_;
  stats_.build_ns = ElapsedNs(t0);
  result->stats_ = stats_;
  return result;
}

TransferResultPtr BuildTransferGraph(const QueryBlock& block,
                                     const TransferPlanOptions& options) {
  if (!options.enabled) return nullptr;
  TransferGraphBuilder builder(block, options);
  return builder.Build();
}

}  // namespace iceberg
