#ifndef SMARTICEBERG_EXEC_KEY_CODEC_H_
#define SMARTICEBERG_EXEC_KEY_CODEC_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/expr/expr.h"

namespace iceberg {

struct QueryBlock;

/// A group/binding key encoded into a small inline fixed-width buffer:
/// 1 tag byte + 8 payload bytes per column, no heap allocation. Equality is
/// a memcmp and hashing a word mix, replacing the per-column variant
/// dispatch of Row keys on the join->aggregate hot path.
///
/// The encoding canonicalizes numerics so byte equality coincides exactly
/// with SQL row equality (RowEq): integral doubles are stored as int64
/// (1 and 1.0 collide, like Value::Hash), NULLs carry a distinct tag, and
/// keys of different column counts never compare equal (length is part of
/// the key).
struct PackedKey {
  static constexpr size_t kMaxColumns = 8;
  static constexpr size_t kBytesPerColumn = 9;
  static constexpr size_t kMaxBytes = kMaxColumns * kBytesPerColumn;

  uint8_t len = 0;  // bytes used
  std::array<uint8_t, kMaxBytes> data;

  bool operator==(const PackedKey& o) const {
    return len == o.len && std::memcmp(data.data(), o.data.data(), len) == 0;
  }
  bool operator!=(const PackedKey& o) const { return !(*this == o); }

  size_t hash() const;
};

struct PackedKeyHash {
  size_t operator()(const PackedKey& k) const { return k.hash(); }
};
struct PackedKeyEq {
  bool operator()(const PackedKey& a, const PackedKey& b) const {
    return a == b;
  }
};

/// Plan-time decision + runtime encoder for packed keys. Usable when every
/// key column is statically numeric (int64/double/null) and the column
/// count fits the inline buffer — the common case for the baseball, basket
/// and object workloads. String-typed key columns fall back to Row keys
/// (the caller keeps its Row-keyed map).
class KeyCodec {
 public:
  KeyCodec() = default;  // unusable; callers fall back to Row keys

  /// Decides usability from the static key-column types.
  static KeyCodec ForTypes(std::vector<DataType> types);

  bool usable() const { return usable_; }
  size_t num_columns() const { return types_.size(); }

  /// Encodes `n` evaluated key values. Values must be numeric or NULL
  /// (guaranteed by the static types; a string aborts).
  void Encode(const Value* vals, size_t n, PackedKey* out) const;

  void EncodeRow(const Row& row, PackedKey* out) const {
    Encode(row.data(), row.size(), out);
  }

  /// Gathers `positions` of `row` and encodes them (NLJP equality keys),
  /// without materializing the sub-row.
  void EncodeAt(const Row& row, const std::vector<size_t>& positions,
                PackedKey* out) const;

  /// EXPLAIN summary, e.g. "packed[3 cols, 27B]".
  std::string Summary() const;

 private:
  std::vector<DataType> types_;
  bool usable_ = false;
};

/// Static column types of the block's concatenated evaluation row, in flat
/// offset order (the layout expressions are bound against).
std::vector<DataType> BlockColumnTypes(const QueryBlock& block);

/// Codec over the inferred output types of the given key expressions.
KeyCodec CodecForExprs(const std::vector<ExprPtr>& exprs,
                       const std::vector<DataType>& types_by_offset);

}  // namespace iceberg

#endif  // SMARTICEBERG_EXEC_KEY_CODEC_H_
