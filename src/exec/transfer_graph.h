#ifndef SMARTICEBERG_EXEC_TRANSFER_GRAPH_H_
#define SMARTICEBERG_EXEC_TRANSFER_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/governor.h"
#include "src/plan/query_block.h"
#include "src/storage/table.h"

namespace iceberg {

/// The *shape* of one block's transfer graph, recorded into PlanTrace so a
/// plan-cache hit replays the graph construction (edge set, cost-ranked
/// node order, observed fixpoint bound) instead of re-deriving it. Only
/// structure is stored — the Bloom filters themselves depend on table
/// *data* and are always rebuilt per statement.
struct TransferSchedule {
  struct Edge {
    uint32_t a_level = 0;  // lower FROM level of the joined pair
    uint32_t b_level = 0;  // higher FROM level
    std::vector<uint32_t> a_cols;  // table-local key columns, aligned with
    std::vector<uint32_t> b_cols;  // b_cols pairwise (composite edge key)
  };
  std::vector<Edge> edges;
  /// Node visit order (FROM-level indexes) used for the sweeps.
  std::vector<uint32_t> order;
  /// Sweeps the capture run needed to reach its fixpoint; replay caps at
  /// this instead of the exploratory default.
  uint32_t passes = 0;
  bool valid = false;
};

/// Knobs for BuildTransferGraph, filled by the caller (JoinPipeline::Plan)
/// from the query's ExecOptions.
struct TransferPlanOptions {
  bool enabled = true;
  /// TaskPool width for morsel-wise filter builds and probe passes over
  /// large relations (1 = inline, no pool).
  int num_threads = 1;
  /// Cap on fixpoint sweeps (one sweep = every node probed against all of
  /// its neighbors' filters, alternating forward/backward over the ranked
  /// order). Cyclic join graphs keep shaving rows each round; the cap
  /// bounds plan time. Fixpoint usually lands in 2-3 sweeps.
  int max_passes = 6;
  /// Consult column-chunk zone maps to refute whole chunks against a
  /// transferred key range before probing row-by-row (off when the
  /// vectorized paths are disabled, so no chunks are built just for this).
  bool use_zone_maps = true;
  /// Advisory governor for filter memory; a refused reservation stops
  /// further sweeps (graceful degradation to fewer passes).
  QueryGovernor* governor = nullptr;
  /// Plan-cache integration (both borrowed, may be null).
  TransferSchedule* capture = nullptr;
  const TransferSchedule* replay = nullptr;
  /// When `prebuilt_valid`, JoinPipeline::Plan adopts `prebuilt` (which may
  /// be null: transfer ran and was structurally inapplicable) instead of
  /// building the graph itself. The cost-based optimizer uses this to run
  /// transfer *before* join ordering — survivor counts feed the enumerator
  /// and the already-built selections are permuted alongside the block.
  bool prebuilt_valid = false;
  std::shared_ptr<const class TransferResult> prebuilt;
};

/// Counters of one BuildTransferGraph run, folded into ExecStats /
/// metrics by the executor.
struct TransferStats {
  size_t passes = 0;            // sweeps executed (fixpoint or cap)
  size_t filters_built = 0;     // Bloom filters constructed (incl. rebuilds)
  size_t probes = 0;            // keys tested against a transferred filter
  size_t hits = 0;              // probes that passed (maybe-present)
  size_t rows_eliminated = 0;   // rows the pipeline will skip via selections
  size_t chunks_refuted = 0;    // whole chunks refuted by zone-vs-key-range
  size_t filter_bytes = 0;      // peak bytes reserved for Bloom filters
  int64_t build_ns = 0;         // wall time of the whole graph build
  bool degraded = false;        // governor pressure cut the sweeps short
  bool replayed_schedule = false;  // graph shape came from a PlanTrace
};

class TransferResult;
using TransferResultPtr = std::shared_ptr<const TransferResult>;

/// The outcome of predicate transfer over one query block: a keep/drop
/// bitmap per FROM level (empty bitmap = nothing eliminated there, all
/// rows pass). Immutable after build and shared by every Run call of the
/// owning pipeline; thread-safe.
///
/// Soundness: a row is dropped only when its join key provably has no
/// partner on some edge (Bloom misses never lie in that direction), or a
/// key column is NULL (SQL equality can never hold), or the row fails the
/// relation's own local predicates (which the scan would drop later
/// anyway). False positives keep extra rows that the real join predicates
/// then reject — results are byte-identical with transfer on or off.
///
/// The selections are baked against a version snapshot of *every* table in
/// the block (transfer moves information across relations, so one mutated
/// table invalidates all selections). Live() re-checks the snapshot;
/// consumers must ignore the selections once it returns false.
class TransferResult {
 public:
  ~TransferResult();
  TransferResult(const TransferResult&) = delete;
  TransferResult& operator=(const TransferResult&) = delete;

  /// True when some rows of `level` were eliminated (a bitmap exists).
  bool HasSelection(size_t level) const {
    return level < keep_.size() && !keep_[level].empty();
  }
  /// Whether `row` of `level` survived (true when no bitmap exists).
  bool Keep(size_t level, size_t row) const {
    if (level >= keep_.size() || keep_[level].empty()) return true;
    return keep_[level][row] != 0;
  }
  size_t KeptRows(size_t level) const { return kept_[level]; }
  size_t TotalRows(size_t level) const { return total_[level]; }

  /// True while every participating table still matches the plan-time
  /// version snapshot.
  bool Live() const;

  /// True when at least one level has a selection (transfer did work that
  /// Run should consult).
  bool AnySelection() const { return any_selection_; }

  const TransferStats& stats() const { return stats_; }

  /// One-line EXPLAIN summary, e.g.
  /// "nodes=3 edges=2 passes=2 eliminated=812/4096 (19.8%)".
  std::string Summary() const;

 private:
  friend class TransferGraphBuilder;
  friend TransferResultPtr PermuteTransferResult(
      const TransferResultPtr& result, const std::vector<size_t>& order);
  TransferResult() = default;

  std::vector<std::vector<uint8_t>> keep_;  // per level; empty = all kept
  std::vector<size_t> kept_;
  std::vector<size_t> total_;
  std::vector<std::pair<const Table*, uint64_t>> versions_;
  bool any_selection_ = false;
  TransferStats stats_;
  size_t gauge_bytes_ = 0;  // live bytes tracked in transfer.filter_bytes
};

/// Re-indexes a transfer result onto a permuted FROM order (new level p
/// holds what old level order[p] held) so selections built before join
/// reordering stay usable by the reordered pipeline. Returns null for
/// null input. The copy does not adopt the original's byte-gauge
/// accounting (the original's destructor settles the metric).
TransferResultPtr PermuteTransferResult(const TransferResultPtr& result,
                                        const std::vector<size_t>& order);

/// Builds the block's join graph (nodes = FROM relations, edges =
/// cross-relation equality conjuncts between plain columns, composite keys
/// packed with the PackedKey codecs), seeds each node's selection from its
/// own single-relation predicates, then propagates Bloom filters over the
/// edges in a cost-ranked order — forward sweep, backward sweep, iterating
/// to a fixpoint or the pass cap — so every relation is pre-shrunk to the
/// rows that can possibly contribute to the join result.
///
/// Returns null when transfer is off or structurally inapplicable (fewer
/// than two relations, no usable equi-join edge, or only self-edges that
/// provably cannot eliminate anything). A non-null result may still carry
/// no selections (stats only) when the fixpoint eliminated nothing.
TransferResultPtr BuildTransferGraph(const QueryBlock& block,
                                     const TransferPlanOptions& options);

}  // namespace iceberg

#endif  // SMARTICEBERG_EXEC_TRANSFER_GRAPH_H_
