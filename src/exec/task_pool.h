#ifndef SMARTICEBERG_EXEC_TASK_POOL_H_
#define SMARTICEBERG_EXEC_TASK_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace iceberg {

/// Resolves a requested worker count: positive values are taken as-is,
/// 0 (the ExecOptions default) means "auto" = hardware_concurrency(),
/// clamped to at least 1 (hardware_concurrency may report 0).
int ResolveThreads(int requested);

/// Picks a morsel size for splitting `total` work items across `threads`
/// workers: enough morsels that dynamic claiming balances skewed per-item
/// costs (inequality joins are highly skewed), but capped so the atomic
/// counter is not contended per row.
size_t MorselFor(size_t total, int threads);

/// A small fixed pool of worker threads executing morsel-driven range
/// jobs: [0, total) is split into fixed-size morsels claimed from a shared
/// atomic counter, so fast workers automatically take load from slow ones
/// (the scheduling scheme of Leis et al.'s morsel-driven parallelism,
/// which both engines use for their outer/binding loops).
///
/// The pool spawns num_threads - 1 threads; the caller of RunMorsels
/// participates as worker 0, so num_threads == 1 runs entirely inline on
/// the calling thread (exactly the serial path, no thread is ever
/// created). Worker ids passed to the callback are stable within one
/// RunMorsels call and in [0, num_threads), making per-worker state a
/// plain pre-sized vector with no locking.
class TaskPool {
 public:
  /// fn(worker, begin, end) processes one morsel [begin, end). A non-OK
  /// return stops the job: no further morsels are claimed and the first
  /// error (by completion order) is returned from RunMorsels.
  using MorselFn = std::function<Status(int worker, size_t begin, size_t end)>;

  explicit TaskPool(int num_threads);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn over every morsel of [0, total); blocks until the range is
  /// drained or a worker failed. The pool is reusable: RunMorsels may be
  /// called repeatedly (but not concurrently from several threads).
  Status RunMorsels(size_t total, size_t morsel_size, const MorselFn& fn);

  /// Microseconds each worker spent inside morsel callbacks during the
  /// most recent RunMorsels call (index = worker id). busy/wall is the
  /// worker's utilization; the spread across workers is scheduling skew.
  /// Valid until the next RunMorsels call.
  const std::vector<int64_t>& last_busy_micros() const { return busy_us_; }

 private:
  void WorkerLoop(int worker);
  /// Claims and runs morsels until the range is drained or the job failed.
  void Drain(int worker);

  const int num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals job_seq_ changes / shutdown
  std::condition_variable done_cv_;  // signals workers_running_ == 0
  bool shutdown_ = false;
  uint64_t job_seq_ = 0;     // bumped per job so workers run each job once
  int workers_running_ = 0;  // spawned workers still draining current job
  Status first_error_;       // of the current job

  // Current job; fields below are written under mu_ before the job is
  // published and read-only while workers are running.
  size_t total_ = 0;
  size_t morsel_ = 1;
  const MorselFn* fn_ = nullptr;
  std::atomic<size_t> next_{0};
  std::atomic<bool> failed_{false};

  /// Per-worker busy time of the current/last job. Each slot is written
  /// only by its owning worker during Drain and read by the caller after
  /// the job barrier, so no per-slot synchronization is needed.
  std::vector<int64_t> busy_us_;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_EXEC_TASK_POOL_H_
