#ifndef SMARTICEBERG_EXEC_JOIN_PIPELINE_H_
#define SMARTICEBERG_EXEC_JOIN_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exec/exec_options.h"
#include "src/exec/key_codec.h"
#include "src/exec/transfer_graph.h"
#include "src/expr/compiled.h"
#include "src/plan/query_block.h"
#include "src/storage/column_chunk.h"
#include "src/storage/table.h"

namespace iceberg {

/// How one FROM relation is attached to the left-deep join pipeline.
enum class JoinMethod {
  kSeqScan,           // level 0, or no usable predicate (block NLJ)
  kHashIndexProbe,    // existing hash index matched the equality keys
  kOrderedIndexProbe, // existing ordered (B-tree) index matched eq keys
  kHashJoin,          // hash table built on the fly for equality keys
  kOrderedIndexRange, // B-tree range probe driven by an inequality bound
};

const char* JoinMethodName(JoinMethod method);

/// Per-level physical join choice made by PlanJoins.
struct JoinLevel {
  size_t table_index = 0;
  JoinMethod method = JoinMethod::kSeqScan;

  // Equality probing (kHashIndexProbe / kOrderedIndexProbe / kHashJoin):
  // probe_exprs evaluate on the partial (outer) row, in the key order of
  // `inner_eq_columns` (table-local column ids).
  std::vector<ExprPtr> probe_exprs;
  std::vector<size_t> inner_eq_columns;
  const HashIndex* hash_index = nullptr;        // borrowed from the table
  const OrderedIndex* ordered_eq_index = nullptr;
  std::shared_ptr<HashIndex> built_hash;        // owned, for kHashJoin

  // Inequality range probing (kOrderedIndexRange): the index's first key
  // column is bounded by `bound_expr` evaluated on the partial row.
  const OrderedIndex* range_index = nullptr;
  ExprPtr bound_expr;
  bool is_lower_bound = true;  // true: inner.col >= bound, false: <=

  // Residual predicates checked after the level's row is appended.
  std::vector<ExprPtr> residual;

  // Compiled programs for the level's expressions (empty when the compiled
  // engine is disabled; Run then falls back to the reference interpreter).
  std::vector<CompiledExpr> residual_progs;
  std::vector<CompiledExpr> probe_progs;
  CompiledExpr bound_prog;

  // Columnar projection of the level's table for vectorized kSeqScan
  // levels (null = row-at-a-time). Set only when every residual program is
  // batchable; Run revalidates the snapshot version against the table and
  // falls back to rows on mismatch.
  ColumnChunkSetPtr chunks;

  // Cost-model estimate of the cumulative joined rows surviving this level
  // (-1 = not annotated). EXPLAIN renders it; EXPLAIN ANALYZE pairs it
  // with the measured ExecStats::level_rows.
  double est_rows = -1.0;
};

/// Optional per-level advice from the cost-based optimizer to Plan.
struct PipelinePlanHints {
  /// Levels (by pipeline position) whose scan should stay row-at-a-time
  /// even when a vectorized chunk projection could be attached: the
  /// estimator expects too few scan invocations × rows for the batch setup
  /// to amortize. Entries beyond the FROM list are ignored.
  std::vector<uint8_t> prefer_row_scan;
};

/// A compiled left-deep join pipeline over the block's FROM list, in FROM
/// order. Thread-safe for concurrent Run calls after Prepare (all mutable
/// state lives in the per-call stack).
class JoinPipeline {
 public:
  /// Chooses a physical join method per level. When `use_indexes` is false
  /// only kSeqScan/kHashJoin are considered (the paper's "PK only"
  /// configuration in Fig. 4). `vectorize` (ANDed with the process-wide
  /// chicken bits) enables the columnar scan paths: column-chunk
  /// projections for batchable kSeqScan filters. `transfer` configures the
  /// predicate-transfer graph (fixpoint Bloom propagation across every
  /// equi-join edge; see transfer_graph.h) whose per-relation selections
  /// the planned pipeline executes over — ANDed with the process-wide
  /// PredicateTransferEnabled() chicken bit. `governor`, when given, is
  /// charged (advisory) for chunk and filter bytes; under pressure the
  /// plan quietly degrades (row path, fewer transfer passes).
  /// `hints`, when given, carries the cost-based optimizer's per-level
  /// physical advice (currently: keep a scan row-at-a-time).
  static Result<JoinPipeline> Plan(const QueryBlock& block, bool use_indexes,
                                   bool vectorize = true,
                                   QueryGovernor* governor = nullptr,
                                   const TransferPlanOptions& transfer = {},
                                   const PipelinePlanHints* hints = nullptr);

  using RowCallback = std::function<void(const Row&)>;

  /// Streams every joined row whose level-0 row id is in
  /// [outer_begin, outer_end) to the callback. When `governor` is set, a
  /// full governance check runs per outer tuple, joined rows are counted
  /// against the intermediate-row limit, and inner loops bail out as soon
  /// as the governor is poisoned; the tripping status is returned.
  Status Run(size_t outer_begin, size_t outer_end,
             const RowCallback& callback, ExecStats* stats,
             QueryGovernor* governor = nullptr) const;

  /// Number of rows of the outer (level-0) table.
  size_t OuterSize() const;

  /// The predicate-transfer outcome of Plan (null when transfer was off or
  /// structurally inapplicable). Its plan-time stats are folded into the
  /// run's ExecStats once per Execute (the pipeline may Run many morsels);
  /// Run consults its selections only while Live() holds.
  const TransferResultPtr& transfer() const { return transfer_; }

  /// Attaches the enumerator's cumulative per-level row estimates (indexed
  /// by pipeline level) for EXPLAIN / EXPLAIN ANALYZE rendering.
  void AnnotateEstimates(const std::vector<double>& est_rows);

  std::string Explain() const;

 private:
  explicit JoinPipeline(const QueryBlock& block) : block_(&block) {}

  /// Per-Run mutable state (the pipeline itself stays immutable and
  /// thread-safe): one evaluation stack plus one reusable probe-key row
  /// per level, so the inner loops never allocate. `sel` is one selection
  /// vector per level (a level iterates its survivors while deeper levels
  /// run their own batches); `batch` is shared, as FilterBatch never
  /// overlaps a recursive call.
  struct RunScratch {
    EvalScratch eval;
    std::vector<Row> probe_keys;             // indexed by level
    std::vector<std::vector<uint32_t>> sel;  // indexed by level
    BatchScratch batch;
    /// Transfer selections for this Run, resolved once per call: null when
    /// transfer is off, eliminated nothing, or a participating table
    /// mutated after planning (Live() failed — all selections stand down).
    const TransferResult* transfer = nullptr;
  };

  void RunLevel(size_t level, Row* partial, const RowCallback& callback,
                ExecStats* stats, QueryGovernor* governor,
                RunScratch* scratch) const;

  const QueryBlock* block_;
  std::vector<JoinLevel> levels_;
  TransferResultPtr transfer_;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_EXEC_JOIN_PIPELINE_H_
