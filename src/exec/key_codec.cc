#include "src/exec/key_codec.h"

#include "src/common/logging.h"
#include "src/plan/query_block.h"

namespace iceberg {

namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;

/// splitmix64 finalizer; full-avalanche word mixer.
inline uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Doubles representable exactly as int64 are stored with the int tag, so
/// 1 and 1.0 encode identically (matching RowEq/Value::Hash semantics).
/// The range guard keeps the cast defined for huge magnitudes.
inline bool CanonicalInt(double d, int64_t* out) {
  if (d < -9.2e18 || d > 9.2e18) return false;
  int64_t i = static_cast<int64_t>(d);
  if (static_cast<double>(i) != d) return false;
  *out = i;
  return true;
}

inline void EncodeOne(const Value& v, uint8_t* p) {
  switch (v.tag()) {
    case 1: {
      p[0] = kTagInt;
      int64_t i = v.int_unchecked();
      std::memcpy(p + 1, &i, 8);
      return;
    }
    case 2: {
      double d = v.double_unchecked();
      int64_t i;
      if (CanonicalInt(d, &i)) {
        p[0] = kTagInt;
        std::memcpy(p + 1, &i, 8);
      } else {
        p[0] = kTagDouble;
        std::memcpy(p + 1, &d, 8);
      }
      return;
    }
    case 0: {
      p[0] = kTagNull;
      std::memset(p + 1, 0, 8);
      return;
    }
    default:
      ICEBERG_CHECK(false);  // strings are gated out at plan time
  }
}

}  // namespace

size_t PackedKey::hash() const {
  uint64_t h = 0x84222325cbf29ce4ULL ^ (static_cast<uint64_t>(len) << 1);
  size_t i = 0;
  while (i + 8 <= len) {
    uint64_t w;
    std::memcpy(&w, data.data() + i, 8);
    h = Mix(h ^ w);
    i += 8;
  }
  if (i < len) {
    uint64_t w = 0;
    std::memcpy(&w, data.data() + i, len - i);
    h = Mix(h ^ w);
  }
  return static_cast<size_t>(h);
}

KeyCodec KeyCodec::ForTypes(std::vector<DataType> types) {
  KeyCodec codec;
  bool ok = types.size() <= PackedKey::kMaxColumns;
  for (DataType t : types) {
    if (t == DataType::kString) ok = false;
  }
  codec.types_ = std::move(types);
  codec.usable_ = ok;
  return codec;
}

void KeyCodec::Encode(const Value* vals, size_t n, PackedKey* out) const {
  ICEBERG_DCHECK(usable_ && n == types_.size());
  uint8_t* p = out->data.data();
  for (size_t i = 0; i < n; ++i, p += PackedKey::kBytesPerColumn) {
    EncodeOne(vals[i], p);
  }
  out->len = static_cast<uint8_t>(n * PackedKey::kBytesPerColumn);
}

void KeyCodec::EncodeAt(const Row& row, const std::vector<size_t>& positions,
                        PackedKey* out) const {
  ICEBERG_DCHECK(usable_ && positions.size() == types_.size());
  uint8_t* p = out->data.data();
  for (size_t pos : positions) {
    EncodeOne(row[pos], p);
    p += PackedKey::kBytesPerColumn;
  }
  out->len =
      static_cast<uint8_t>(positions.size() * PackedKey::kBytesPerColumn);
}

std::string KeyCodec::Summary() const {
  if (!usable_) return "row";
  return "packed[" + std::to_string(types_.size()) + " cols, " +
         std::to_string(types_.size() * PackedKey::kBytesPerColumn) + "B]";
}

std::vector<DataType> BlockColumnTypes(const QueryBlock& block) {
  std::vector<DataType> types;
  for (const BoundTableRef& t : block.tables) {
    for (const Column& c : t.table->schema().columns()) {
      types.push_back(c.type);
    }
  }
  return types;
}

KeyCodec CodecForExprs(const std::vector<ExprPtr>& exprs,
                       const std::vector<DataType>& types_by_offset) {
  std::vector<DataType> types;
  types.reserve(exprs.size());
  for (const ExprPtr& e : exprs) {
    types.push_back(InferType(e, types_by_offset));
  }
  return KeyCodec::ForTypes(std::move(types));
}

}  // namespace iceberg
