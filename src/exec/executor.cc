#include "src/exec/executor.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "src/exec/aggregator.h"
#include "src/exec/join_pipeline.h"

namespace iceberg {

std::string ExecStats::ToString() const {
  std::string out = "pairs=" + std::to_string(join_pairs_examined) +
                    " joined=" + std::to_string(rows_joined) +
                    " groups=" + std::to_string(groups_created) +
                    " output=" + std::to_string(groups_output) +
                    " probes=" + std::to_string(index_probes);
  if (cancel_checks > 0) {
    out += " checks=" + std::to_string(cancel_checks);
  }
  if (budget_bytes_peak > 0) {
    out += " peak_kb=" + std::to_string(budget_bytes_peak / 1024);
  }
  return out;
}

namespace {

/// Copies the governor's end-of-query counters into the stats block.
void FillGovernorStats(const QueryGovernor* governor, ExecStats* stats) {
  if (governor == nullptr || stats == nullptr) return;
  stats->cancel_checks = governor->checks_performed();
  stats->budget_bytes_peak = governor->bytes_peak();
}

}  // namespace

Result<TablePtr> Executor::Execute(const QueryBlock& block,
                                   ExecStats* stats) {
  QueryGovernor* governor = options_.governor.get();
  if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
  ICEBERG_ASSIGN_OR_RETURN(JoinPipeline pipeline,
                           JoinPipeline::Plan(block, options_.use_indexes));
  Aggregator proto(block);
  const size_t outer_size = pipeline.OuterSize();
  const int threads =
      options_.num_threads > 1 && outer_size > 1024 ? options_.num_threads : 1;

  if (proto.IsAggregated()) {
    if (threads == 1) {
      Aggregator agg(block);
      agg.SetGovernor(governor);
      ICEBERG_RETURN_NOT_OK(pipeline.Run(
          0, outer_size, [&](const Row& row) { agg.AddRow(row); }, stats,
          governor));
      if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
      FillGovernorStats(governor, stats);
      return agg.Finalize(stats);
    }
    // Parallel: per-worker aggregators over outer partitions, merged at the
    // end (Vendor A's Gather/Repartition plan shape).
    std::vector<std::unique_ptr<Aggregator>> partials;
    std::vector<ExecStats> partial_stats(static_cast<size_t>(threads));
    std::vector<Status> worker_status(static_cast<size_t>(threads));
    partials.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      partials.push_back(std::make_unique<Aggregator>(block));
      partials.back()->SetGovernor(governor);
    }
    // Dynamic chunk assignment: per-outer-row costs are highly skewed for
    // inequality joins, so static partitioning would idle workers.
    std::vector<std::thread> workers;
    const size_t chunk = std::max<size_t>(64, outer_size / 256);
    std::atomic<size_t> next{0};
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        Aggregator* agg = partials[static_cast<size_t>(t)].get();
        ExecStats* stats_out = &partial_stats[static_cast<size_t>(t)];
        while (true) {
          size_t begin = next.fetch_add(chunk);
          if (begin >= outer_size) break;
          Status st = pipeline.Run(
              begin, begin + chunk,
              [&](const Row& row) { agg->AddRow(row); }, stats_out, governor);
          if (!st.ok()) {
            worker_status[static_cast<size_t>(t)] = std::move(st);
            break;  // governor state is shared; siblings stop at their checks
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (Status& st : worker_status) {
      if (!st.ok()) return st;
    }
    Aggregator merged(block);
    merged.SetGovernor(governor);
    for (auto& p : partials) merged.MergeFrom(std::move(*p));
    if (stats != nullptr) {
      for (const ExecStats& s : partial_stats) {
        stats->join_pairs_examined += s.join_pairs_examined;
        stats->rows_joined += s.rows_joined;
        stats->index_probes += s.index_probes;
      }
    }
    if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
    FillGovernorStats(governor, stats);
    return merged.Finalize(stats);
  }

  // Non-aggregated: project each joined row directly.
  auto result = std::make_shared<Table>(block.output_schema);
  std::set<Row, RowLess> distinct_rows;
  auto emit = [&](const Row& joined) {
    Row out;
    out.reserve(block.select.size());
    for (const BoundSelectItem& item : block.select) {
      out.push_back(Evaluate(*item.expr, joined));
    }
    if (block.distinct && !distinct_rows.insert(out).second) return;
    if (governor != nullptr &&
        !governor->Reserve(RowBytes(out), "join-materialization").ok()) {
      return;  // poisoned; the pipeline aborts at its next check
    }
    result->AppendUnchecked(std::move(out));
  };
  if (threads == 1) {
    ICEBERG_RETURN_NOT_OK(pipeline.Run(0, outer_size, emit, stats, governor));
    if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
    FillGovernorStats(governor, stats);
    return result;
  }
  std::mutex mu;
  std::vector<std::thread> workers;
  std::vector<ExecStats> partial_stats(static_cast<size_t>(threads));
  std::vector<Status> worker_status(static_cast<size_t>(threads));
  const size_t chunk = std::max<size_t>(64, outer_size / 256);
  std::atomic<size_t> next{0};
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      std::vector<Row> local;
      ExecStats* stats_out = &partial_stats[static_cast<size_t>(t)];
      while (true) {
        size_t begin = next.fetch_add(chunk);
        if (begin >= outer_size) break;
        Status st = pipeline.Run(
            begin, begin + chunk,
            [&](const Row& row) { local.push_back(row); }, stats_out,
            governor);
        if (!st.ok()) {
          worker_status[static_cast<size_t>(t)] = std::move(st);
          break;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      for (const Row& row : local) emit(row);
    });
  }
  for (std::thread& w : workers) w.join();
  for (Status& st : worker_status) {
    if (!st.ok()) return st;
  }
  if (stats != nullptr) {
    for (const ExecStats& s : partial_stats) {
      stats->join_pairs_examined += s.join_pairs_examined;
      stats->rows_joined += s.rows_joined;
      stats->index_probes += s.index_probes;
    }
  }
  if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
  FillGovernorStats(governor, stats);
  return result;
}

std::string Executor::Explain(const QueryBlock& block) const {
  Result<JoinPipeline> pipeline =
      JoinPipeline::Plan(block, options_.use_indexes);
  if (!pipeline.ok()) return "<plan error: " + pipeline.status().ToString() + ">";

  Aggregator agg(block);
  std::string out;
  std::string indent;
  if (options_.num_threads > 1) {
    out += "Gather (workers=" + std::to_string(options_.num_threads) + ")\n";
    indent = "  ";
  }
  if (agg.IsAggregated()) {
    out += indent + "HashAggregate group_by=(";
    for (size_t i = 0; i < block.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += block.group_by[i]->ToString();
    }
    out += ")";
    if (block.having != nullptr) {
      out += " having=(" + block.having->ToString() + ")";
    }
    out += "\n";
    indent += "  ";
  }
  std::string plan = pipeline->Explain();
  // Indent every pipeline line.
  size_t pos = 0;
  while (pos < plan.size()) {
    size_t nl = plan.find('\n', pos);
    if (nl == std::string::npos) nl = plan.size();
    out += indent + plan.substr(pos, nl - pos) + "\n";
    pos = nl + 1;
  }
  return out;
}

Result<TablePtr> GroupAndProject(const QueryBlock& block,
                                 const std::vector<Row>& joined_rows,
                                 ExecStats* stats, QueryGovernor* governor) {
  Aggregator agg(block);
  agg.SetGovernor(governor);
  if (!agg.IsAggregated()) {
    auto result = std::make_shared<Table>(block.output_schema);
    std::set<Row, RowLess> distinct_rows;
    size_t processed = 0;
    for (const Row& joined : joined_rows) {
      if (governor != nullptr && (processed++ & 255) == 0) {
        ICEBERG_RETURN_NOT_OK(governor->Check());
      }
      Row out;
      for (const BoundSelectItem& item : block.select) {
        out.push_back(Evaluate(*item.expr, joined));
      }
      if (block.distinct && !distinct_rows.insert(out).second) continue;
      result->AppendUnchecked(std::move(out));
    }
    return result;
  }
  size_t processed = 0;
  for (const Row& joined : joined_rows) {
    if (governor != nullptr && (processed++ & 255) == 0) {
      ICEBERG_RETURN_NOT_OK(governor->Check());
    }
    agg.AddRow(joined);
  }
  if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
  return agg.Finalize(stats);
}

}  // namespace iceberg
