#include "src/exec/executor.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "src/exec/aggregator.h"
#include "src/exec/join_pipeline.h"

namespace iceberg {

std::string ExecStats::ToString() const {
  return "pairs=" + std::to_string(join_pairs_examined) +
         " joined=" + std::to_string(rows_joined) +
         " groups=" + std::to_string(groups_created) +
         " output=" + std::to_string(groups_output) +
         " probes=" + std::to_string(index_probes);
}

Result<TablePtr> Executor::Execute(const QueryBlock& block,
                                   ExecStats* stats) {
  ICEBERG_ASSIGN_OR_RETURN(JoinPipeline pipeline,
                           JoinPipeline::Plan(block, options_.use_indexes));
  Aggregator proto(block);
  const size_t outer_size = pipeline.OuterSize();
  const int threads =
      options_.num_threads > 1 && outer_size > 1024 ? options_.num_threads : 1;

  if (proto.IsAggregated()) {
    if (threads == 1) {
      Aggregator agg(block);
      pipeline.Run(0, outer_size, [&](const Row& row) { agg.AddRow(row); },
                   stats);
      return agg.Finalize(stats);
    }
    // Parallel: per-worker aggregators over outer partitions, merged at the
    // end (Vendor A's Gather/Repartition plan shape).
    std::vector<std::unique_ptr<Aggregator>> partials;
    std::vector<ExecStats> partial_stats(static_cast<size_t>(threads));
    partials.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      partials.push_back(std::make_unique<Aggregator>(block));
    }
    // Dynamic chunk assignment: per-outer-row costs are highly skewed for
    // inequality joins, so static partitioning would idle workers.
    std::vector<std::thread> workers;
    const size_t chunk = std::max<size_t>(64, outer_size / 256);
    std::atomic<size_t> next{0};
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        Aggregator* agg = partials[static_cast<size_t>(t)].get();
        ExecStats* stats_out = &partial_stats[static_cast<size_t>(t)];
        while (true) {
          size_t begin = next.fetch_add(chunk);
          if (begin >= outer_size) break;
          pipeline.Run(begin, begin + chunk,
                       [&](const Row& row) { agg->AddRow(row); }, stats_out);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    Aggregator merged(block);
    for (auto& p : partials) merged.MergeFrom(std::move(*p));
    if (stats != nullptr) {
      for (const ExecStats& s : partial_stats) {
        stats->join_pairs_examined += s.join_pairs_examined;
        stats->rows_joined += s.rows_joined;
        stats->index_probes += s.index_probes;
      }
    }
    return merged.Finalize(stats);
  }

  // Non-aggregated: project each joined row directly.
  auto result = std::make_shared<Table>(block.output_schema);
  std::set<Row, RowLess> distinct_rows;
  auto emit = [&](const Row& joined) {
    Row out;
    out.reserve(block.select.size());
    for (const BoundSelectItem& item : block.select) {
      out.push_back(Evaluate(*item.expr, joined));
    }
    if (block.distinct && !distinct_rows.insert(out).second) return;
    result->AppendUnchecked(std::move(out));
  };
  if (threads == 1) {
    pipeline.Run(0, outer_size, emit, stats);
    return result;
  }
  std::mutex mu;
  std::vector<std::thread> workers;
  std::vector<ExecStats> partial_stats(static_cast<size_t>(threads));
  const size_t chunk = std::max<size_t>(64, outer_size / 256);
  std::atomic<size_t> next{0};
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      std::vector<Row> local;
      ExecStats* stats_out = &partial_stats[static_cast<size_t>(t)];
      while (true) {
        size_t begin = next.fetch_add(chunk);
        if (begin >= outer_size) break;
        pipeline.Run(begin, begin + chunk,
                     [&](const Row& row) { local.push_back(row); },
                     stats_out);
      }
      std::lock_guard<std::mutex> lock(mu);
      for (const Row& row : local) emit(row);
    });
  }
  for (std::thread& w : workers) w.join();
  if (stats != nullptr) {
    for (const ExecStats& s : partial_stats) {
      stats->join_pairs_examined += s.join_pairs_examined;
      stats->rows_joined += s.rows_joined;
      stats->index_probes += s.index_probes;
    }
  }
  return result;
}

std::string Executor::Explain(const QueryBlock& block) const {
  Result<JoinPipeline> pipeline =
      JoinPipeline::Plan(block, options_.use_indexes);
  if (!pipeline.ok()) return "<plan error: " + pipeline.status().ToString() + ">";

  Aggregator agg(block);
  std::string out;
  std::string indent;
  if (options_.num_threads > 1) {
    out += "Gather (workers=" + std::to_string(options_.num_threads) + ")\n";
    indent = "  ";
  }
  if (agg.IsAggregated()) {
    out += indent + "HashAggregate group_by=(";
    for (size_t i = 0; i < block.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += block.group_by[i]->ToString();
    }
    out += ")";
    if (block.having != nullptr) {
      out += " having=(" + block.having->ToString() + ")";
    }
    out += "\n";
    indent += "  ";
  }
  std::string plan = pipeline->Explain();
  // Indent every pipeline line.
  size_t pos = 0;
  while (pos < plan.size()) {
    size_t nl = plan.find('\n', pos);
    if (nl == std::string::npos) nl = plan.size();
    out += indent + plan.substr(pos, nl - pos) + "\n";
    pos = nl + 1;
  }
  return out;
}

Result<TablePtr> GroupAndProject(const QueryBlock& block,
                                 const std::vector<Row>& joined_rows,
                                 ExecStats* stats) {
  Aggregator agg(block);
  if (!agg.IsAggregated()) {
    auto result = std::make_shared<Table>(block.output_schema);
    std::set<Row, RowLess> distinct_rows;
    for (const Row& joined : joined_rows) {
      Row out;
      for (const BoundSelectItem& item : block.select) {
        out.push_back(Evaluate(*item.expr, joined));
      }
      if (block.distinct && !distinct_rows.insert(out).second) continue;
      result->AppendUnchecked(std::move(out));
    }
    return result;
  }
  for (const Row& joined : joined_rows) agg.AddRow(joined);
  return agg.Finalize(stats);
}

}  // namespace iceberg
