#include "src/exec/executor.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <utility>

#include "src/exec/aggregator.h"
#include "src/exec/join_pipeline.h"
#include "src/exec/task_pool.h"
#include "src/plan/cost/join_order.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace iceberg {

std::string ExecStats::ToString() const {
  std::string out = "pairs=" + std::to_string(join_pairs_examined) +
                    " joined=" + std::to_string(rows_joined) +
                    " groups=" + std::to_string(groups_created) +
                    " output=" + std::to_string(groups_output) +
                    " probes=" + std::to_string(index_probes) +
                    " checks=" + std::to_string(cancel_checks) +
                    " peak_kb=" + std::to_string(budget_bytes_peak / 1024) +
                    " workers=" + std::to_string(workers);
  if (batch_rows > 0 || chunks_skipped > 0) {
    out += " batch_rows=" + std::to_string(batch_rows) +
           " chunks_skipped=" + std::to_string(chunks_skipped);
  }
  if (transfer_probes > 0 || transfer_passes > 0) {
    out += " transfer_passes=" + std::to_string(transfer_passes) +
           " transfer=" + std::to_string(transfer_hits) + "/" +
           std::to_string(transfer_probes) +
           " transfer_eliminated=" + std::to_string(transfer_rows_eliminated);
    if (transfer_chunks_refuted > 0) {
      out += " transfer_chunks_refuted=" +
             std::to_string(transfer_chunks_refuted);
    }
  }
  if (!rows_joined_per_worker.empty()) {
    out += " joined_per_worker=[";
    for (size_t i = 0; i < rows_joined_per_worker.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(rows_joined_per_worker[i]);
    }
    out += "]";
  }
  if (!busy_us_per_worker.empty()) {
    out += " busy_us_per_worker=[";
    for (size_t i = 0; i < busy_us_per_worker.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(busy_us_per_worker[i]);
    }
    out += "]";
  }
  if (execute_us > 0) out += " execute_us=" + std::to_string(execute_us);
  return out;
}

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Copies the governor's end-of-query counters into the stats block.
void FillGovernorStats(const QueryGovernor* governor, ExecStats* stats) {
  if (governor == nullptr || stats == nullptr) return;
  stats->cancel_checks = governor->checks_performed();
  stats->budget_bytes_peak = governor->bytes_peak();
}

/// Folds per-worker partial stats into the caller's stats block and
/// records the per-worker distribution. Replaces (never appends to) the
/// per-worker vectors so a reused stats block stays consistent when the
/// thread count changes between runs.
void MergeWorkerStats(const std::vector<ExecStats>& partials,
                      const TaskPool& pool, ExecStats* stats) {
  if (stats == nullptr) return;
  stats->workers = partials.size();
  stats->rows_joined_per_worker.clear();
  for (const ExecStats& s : partials) {
    stats->join_pairs_examined += s.join_pairs_examined;
    stats->rows_joined += s.rows_joined;
    stats->index_probes += s.index_probes;
    stats->chunks_skipped += s.chunks_skipped;
    stats->batch_rows += s.batch_rows;
    if (stats->level_rows.size() < s.level_rows.size()) {
      stats->level_rows.resize(s.level_rows.size(), 0);
    }
    for (size_t i = 0; i < s.level_rows.size(); ++i) {
      stats->level_rows[i] += s.level_rows[i];
    }
    stats->rows_joined_per_worker.push_back(s.rows_joined);
  }
  stats->busy_us_per_worker = pool.last_busy_micros();
}

/// End-of-run publication into the process-wide metrics registry; the same
/// run-local totals also feed the caller's (optional) accumulating block,
/// so EXPLAIN ANALYZE, \metrics, and ExecStats always reconcile exactly.
void PublishExecMetrics(const ExecStats& run) {
  ICEBERG_COUNTER("exec.queries")->Increment();
  ICEBERG_COUNTER("exec.pairs_examined")->Add(run.join_pairs_examined);
  ICEBERG_COUNTER("exec.rows_joined")->Add(run.rows_joined);
  ICEBERG_COUNTER("exec.groups_created")->Add(run.groups_created);
  ICEBERG_COUNTER("exec.groups_output")->Add(run.groups_output);
  ICEBERG_COUNTER("exec.index_probes")->Add(run.index_probes);
  ICEBERG_COUNTER("scan.chunks_skipped")->Add(run.chunks_skipped);
  ICEBERG_COUNTER("scan.batch_rows")->Add(run.batch_rows);
  ICEBERG_COUNTER("transfer.passes")->Add(run.transfer_passes);
  ICEBERG_COUNTER("transfer.filters_built")->Add(run.transfer_filters_built);
  ICEBERG_COUNTER("transfer.probes")->Add(run.transfer_probes);
  ICEBERG_COUNTER("transfer.hits")->Add(run.transfer_hits);
  ICEBERG_COUNTER("transfer.rows_eliminated")
      ->Add(run.transfer_rows_eliminated);
  ICEBERG_COUNTER("transfer.chunks_refuted")
      ->Add(run.transfer_chunks_refuted);
  ICEBERG_COUNTER("transfer.build_ns")
      ->Add(static_cast<uint64_t>(run.transfer_build_ns));
  ICEBERG_HISTOGRAM("exec.query_us")
      ->Record(static_cast<uint64_t>(run.execute_us));
}

/// Output of the cost-based optimizer's pre-planning pass. `block` is the
/// block the pipeline should execute: the original, or `permuted` when the
/// enumerator deviated from FROM order. `topts` always carries a prebuilt
/// transfer decision so JoinPipeline::Plan never rebuilds the graph the
/// pass already ran.
struct CboPlan {
  const QueryBlock* block = nullptr;
  QueryBlock permuted;
  TransferPlanOptions topts;
  PipelinePlanHints hints;
  bool use_hints = false;
  std::vector<double> est_rows;  // cumulative per pipeline level
  bool reordered = false;
};

/// Runs the CBO ahead of physical planning: predicate transfer first (on
/// the as-written block, so transfer schedules in plan traces keep stable
/// level indexing, and survivor counts become exact cardinalities), then
/// join-order enumeration (or replay of a cached schedule), then block +
/// transfer-selection permutation when a cheaper order won. With the
/// optimizer off (per-query or chicken bit) this is a no-op that leaves
/// every decision to the pipeline's own heuristics.
CboPlan PlanCboOrder(const QueryBlock& block, const ExecOptions& options,
                     QueryGovernor* governor, int threads) {
  CboPlan plan;
  plan.block = &block;
  plan.topts.enabled = options.predicate_transfer;
  plan.topts.num_threads = threads;
  plan.topts.capture = options.transfer_capture;
  plan.topts.replay = options.transfer_replay;
  const size_t n = block.tables.size();
  if (!options.cbo || !CboEnabled() || n < 2) return plan;
  ICEBERG_COUNTER("cbo.plans")->Increment();

  TransferResultPtr xfer;
  if (plan.topts.enabled && PredicateTransferEnabled()) {
    TransferPlanOptions topts = plan.topts;
    topts.governor = governor;
    const bool vec = options.vectorize && VectorizedExecEnabled() &&
                     CompiledExprEnabled();
    topts.use_zone_maps = topts.use_zone_maps && vec;
    xfer = BuildTransferGraph(block, topts);
  }
  plan.topts.prebuilt_valid = true;
  plan.topts.prebuilt = xfer;

  std::vector<size_t> order;
  const JoinOrderSchedule* replay = options.join_order_replay;
  if (replay != nullptr && replay->valid && replay->order.size() == n) {
    // Cached schedule: skip statistics collection and enumeration.
    order.assign(replay->order.begin(), replay->order.end());
    plan.est_rows = replay->est_rows;
    ICEBERG_COUNTER("cbo.order_replays")->Increment();
  } else {
    // Post-transfer survivor counts are *exact* plan-time cardinalities;
    // levels transfer never touched fall back to histogram estimates.
    std::vector<double> exact(n, -1.0);
    bool any_exact = false;
    if (xfer != nullptr && xfer->Live()) {
      for (size_t i = 0; i < n; ++i) {
        if (xfer->HasSelection(i)) {
          exact[i] = static_cast<double>(xfer->KeptRows(i));
          any_exact = true;
        }
      }
    }
    CardinalityEstimator est(block);
    JoinOrderInputs inputs =
        MakeJoinOrderInputs(est, any_exact ? &exact : nullptr);
    JoinOrderPlan chosen = ChooseJoinOrder(est, inputs);
    order = std::move(chosen.order);
    plan.est_rows = std::move(chosen.est_rows);
  }

  bool identity = true;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i) identity = false;
  }
  if (options.join_order_capture != nullptr) {
    JoinOrderSchedule* cap = options.join_order_capture;
    cap->order.clear();
    cap->order.reserve(order.size());
    for (size_t t : order) cap->order.push_back(static_cast<uint32_t>(t));
    cap->est_rows = plan.est_rows;
    cap->valid = true;
  }
  if (identity) return plan;

  Result<QueryBlock> permuted = PermuteBlock(block, order);
  if (!permuted.ok()) return plan;  // stale replay; the FROM order stands
  ICEBERG_COUNTER("cbo.reorders")->Increment();
  plan.permuted = std::move(permuted).value();
  plan.block = &plan.permuted;
  plan.reordered = true;
  plan.topts.prebuilt = PermuteTransferResult(xfer, order);
  // Transfer schedules index the as-written block's levels; nothing should
  // capture or replay against the permuted layout.
  plan.topts.capture = nullptr;
  plan.topts.replay = nullptr;
  // Row-vs-vectorized advice: a scan whose total expected volume
  // (invocations × table rows) is tiny never amortizes batch setup.
  if (plan.est_rows.size() == n) {
    plan.use_hints = true;
    plan.hints.prefer_row_scan.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      const TablePtr& table = plan.permuted.tables[i].table;
      double raw =
          table != nullptr ? static_cast<double>(table->num_rows()) : 0.0;
      double invocations =
          i == 0 ? 1.0 : std::max(0.0, plan.est_rows[i - 1]);
      if (invocations * raw < 1024.0) plan.hints.prefer_row_scan[i] = 1;
    }
  }
  return plan;
}

}  // namespace

Result<TablePtr> Executor::Execute(const QueryBlock& block,
                                   ExecStats* stats) {
  TraceSpan span("exec.execute");
  int64_t started_us = NowMicros();
  ExecStats run;
  Result<TablePtr> result = ExecuteInternal(block, &run);
  run.execute_us = NowMicros() - started_us;
  if (result.ok()) {
    PublishExecMetrics(run);
    if (stats != nullptr) stats->Accumulate(run);
  }
  return result;
}

Result<TablePtr> Executor::ExecuteInternal(const QueryBlock& original,
                                           ExecStats* stats) {
  QueryGovernor* governor = options_.governor.get();
  if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
  const int threads = ResolveThreads(options_.num_threads);
  // Cost-based pre-planning: transfer, join-order choice, permutation.
  // Everything below executes `block` — the as-written block, or the
  // reordered one (same output schema and projection semantics, so the
  // downstream aggregation/projection paths are unaffected).
  CboPlan cbo = PlanCboOrder(original, options_, governor, threads);
  const QueryBlock& block = *cbo.block;
  ICEBERG_ASSIGN_OR_RETURN(
      JoinPipeline pipeline,
      JoinPipeline::Plan(block, options_.use_indexes, options_.vectorize,
                         governor, cbo.topts,
                         cbo.use_hints ? &cbo.hints : nullptr));
  if (!cbo.est_rows.empty()) pipeline.AnnotateEstimates(cbo.est_rows);
  // Predicate transfer happens once at plan time; its counters are charged
  // to the run here (Run-time counters accumulate per morsel).
  if (stats != nullptr && pipeline.transfer() != nullptr) {
    const TransferStats& ts = pipeline.transfer()->stats();
    stats->transfer_passes += ts.passes;
    stats->transfer_filters_built += ts.filters_built;
    stats->transfer_probes += ts.probes;
    stats->transfer_hits += ts.hits;
    stats->transfer_rows_eliminated += ts.rows_eliminated;
    stats->transfer_chunks_refuted += ts.chunks_refuted;
    stats->transfer_filter_bytes += ts.filter_bytes;
    stats->transfer_build_ns += ts.build_ns;
  }
  Aggregator proto(block);
  const size_t outer_size = pipeline.OuterSize();
  const size_t morsel = MorselFor(outer_size, threads);
  const bool parallel = threads > 1 && outer_size > morsel;

  if (proto.IsAggregated()) {
    if (!parallel) {
      Aggregator agg(block);
      agg.SetGovernor(governor);
      ICEBERG_RETURN_NOT_OK(pipeline.Run(
          0, outer_size, [&](const Row& row) { agg.AddRow(row); }, stats,
          governor));
      if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
      FillGovernorStats(governor, stats);
      return agg.Finalize(stats);
    }
    // Morsel-driven parallel aggregation: each worker streams joined rows
    // into a thread-local hash-aggregation state; the algebraic partials
    // are merged before HAVING/projection (Vendor A's Gather/Repartition
    // plan shape). JoinPipeline::Run is thread-safe after Plan — all
    // mutable state lives in the per-call stack.
    std::vector<std::unique_ptr<Aggregator>> partials;
    std::vector<ExecStats> partial_stats(static_cast<size_t>(threads));
    partials.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      partials.push_back(std::make_unique<Aggregator>(block));
      partials.back()->SetGovernor(governor);
    }
    TaskPool pool(threads);
    Status status = pool.RunMorsels(
        outer_size, morsel, [&](int worker, size_t begin, size_t end) {
          Aggregator* agg = partials[static_cast<size_t>(worker)].get();
          return pipeline.Run(
              begin, end, [agg](const Row& row) { agg->AddRow(row); },
              &partial_stats[static_cast<size_t>(worker)], governor);
        });
    ICEBERG_RETURN_NOT_OK(status);
    Aggregator merged(block);
    merged.SetGovernor(governor);
    for (auto& p : partials) merged.MergeFrom(std::move(*p));
    MergeWorkerStats(partial_stats, pool, stats);
    if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
    FillGovernorStats(governor, stats);
    ICEBERG_ASSIGN_OR_RETURN(TablePtr result, merged.Finalize(stats));
    // Canonical ordering: group output order would otherwise depend on
    // which worker saw each group first.
    result->SortRowsCanonical();
    return result;
  }

  // Non-aggregated: project each joined row directly.
  auto result = std::make_shared<Table>(block.output_schema);
  std::set<Row, RowLess> distinct_rows;
  auto emit = [&](Row out) {
    if (block.distinct && !distinct_rows.insert(out).second) return;
    if (governor != nullptr &&
        !governor->Reserve(RowBytes(out), "join-materialization").ok()) {
      return;  // poisoned; the pipeline aborts at its next check
    }
    result->AppendUnchecked(std::move(out));
  };
  // Select-list projection compiled once per query; workers evaluate with
  // thread-local stacks (CompiledExpr::Run is const and thread-safe).
  std::vector<CompiledExpr> select_progs;
  if (CompiledExprEnabled()) {
    select_progs.reserve(block.select.size());
    for (const BoundSelectItem& item : block.select) {
      select_progs.push_back(CompiledExpr::Compile(*item.expr));
    }
  }
  auto project = [&](const Row& joined, EvalScratch* scratch) {
    Row out;
    out.reserve(block.select.size());
    for (size_t i = 0; i < block.select.size(); ++i) {
      if (i < select_progs.size() && select_progs[i].valid()) {
        out.push_back(select_progs[i].Run(joined, scratch));
      } else {
        out.push_back(Evaluate(*block.select[i].expr, joined));
      }
    }
    return out;
  };
  if (!parallel) {
    EvalScratch scratch;
    ICEBERG_RETURN_NOT_OK(pipeline.Run(
        0, outer_size,
        [&](const Row& joined) { emit(project(joined, &scratch)); }, stats,
        governor));
    if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
    FillGovernorStats(governor, stats);
    return result;
  }
  // Workers project into thread-local buffers; DISTINCT dedup and the
  // materialization reservation stay single-threaded on the gathered rows.
  std::vector<std::vector<Row>> buffers(static_cast<size_t>(threads));
  std::vector<EvalScratch> scratches(static_cast<size_t>(threads));
  std::vector<ExecStats> partial_stats(static_cast<size_t>(threads));
  TaskPool pool(threads);
  Status status = pool.RunMorsels(
      outer_size, morsel, [&](int worker, size_t begin, size_t end) {
        std::vector<Row>* local = &buffers[static_cast<size_t>(worker)];
        EvalScratch* scratch = &scratches[static_cast<size_t>(worker)];
        return pipeline.Run(
            begin, end,
            [&, local, scratch](const Row& joined) {
              local->push_back(project(joined, scratch));
            },
            &partial_stats[static_cast<size_t>(worker)], governor);
      });
  ICEBERG_RETURN_NOT_OK(status);
  for (std::vector<Row>& buffer : buffers) {
    for (Row& row : buffer) emit(std::move(row));
  }
  MergeWorkerStats(partial_stats, pool, stats);
  if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
  FillGovernorStats(governor, stats);
  result->SortRowsCanonical();
  return result;
}

std::string Executor::Explain(const QueryBlock& original) const {
  // No governor here: EXPLAIN must not charge the query's budget, and no
  // capture: EXPLAIN must not overwrite a statement's plan trace.
  ExecOptions explain_options = options_;
  explain_options.governor = nullptr;
  explain_options.transfer_capture = nullptr;
  explain_options.join_order_capture = nullptr;
  const int threads = ResolveThreads(options_.num_threads);
  CboPlan cbo =
      PlanCboOrder(original, explain_options, /*governor=*/nullptr, threads);
  const QueryBlock& block = *cbo.block;
  Result<JoinPipeline> pipeline =
      JoinPipeline::Plan(block, options_.use_indexes, options_.vectorize,
                         /*governor=*/nullptr, cbo.topts,
                         cbo.use_hints ? &cbo.hints : nullptr);
  if (!pipeline.ok()) return "<plan error: " + pipeline.status().ToString() + ">";
  if (!cbo.est_rows.empty()) pipeline->AnnotateEstimates(cbo.est_rows);

  Aggregator agg(block);
  std::string out;
  std::string indent;
  if (threads > 1) {
    out += "Gather (workers=" + std::to_string(threads) + ")\n";
    indent = "  ";
  }
  if (cbo.reordered) {
    out += indent + "JoinOrder (cbo) order=(";
    for (size_t i = 0; i < block.tables.size(); ++i) {
      if (i > 0) out += ", ";
      out += block.tables[i].alias;
    }
    out += ")\n";
  }
  if (agg.IsAggregated()) {
    out += indent + "HashAggregate group_by=(";
    for (size_t i = 0; i < block.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += block.group_by[i]->ToString();
    }
    out += ")";
    if (block.having != nullptr) {
      out += " having=(" + block.having->ToString() + ")";
    }
    out += " key=" + agg.KeySummary();
    out += "\n";
    indent += "  ";
  }
  std::string plan = pipeline->Explain();
  // Indent every pipeline line.
  size_t pos = 0;
  while (pos < plan.size()) {
    size_t nl = plan.find('\n', pos);
    if (nl == std::string::npos) nl = plan.size();
    out += indent + plan.substr(pos, nl - pos) + "\n";
    pos = nl + 1;
  }
  return out;
}

Result<TablePtr> GroupAndProject(const QueryBlock& block,
                                 const std::vector<Row>& joined_rows,
                                 ExecStats* stats, QueryGovernor* governor,
                                 int num_threads) {
  TraceSpan span("exec.group_and_project");
  Aggregator agg(block);
  agg.SetGovernor(governor);
  if (!agg.IsAggregated()) {
    auto result = std::make_shared<Table>(block.output_schema);
    std::set<Row, RowLess> distinct_rows;
    std::vector<CompiledExpr> select_progs;
    if (CompiledExprEnabled()) {
      select_progs.reserve(block.select.size());
      for (const BoundSelectItem& item : block.select) {
        select_progs.push_back(CompiledExpr::Compile(*item.expr));
      }
    }
    EvalScratch scratch;
    size_t processed = 0;
    for (const Row& joined : joined_rows) {
      if (governor != nullptr && (processed++ & 255) == 0) {
        ICEBERG_RETURN_NOT_OK(governor->Check());
      }
      Row out;
      out.reserve(block.select.size());
      for (size_t i = 0; i < block.select.size(); ++i) {
        if (i < select_progs.size() && select_progs[i].valid()) {
          out.push_back(select_progs[i].Run(joined, &scratch));
        } else {
          out.push_back(Evaluate(*block.select[i].expr, joined));
        }
      }
      if (block.distinct && !distinct_rows.insert(out).second) continue;
      result->AppendUnchecked(std::move(out));
    }
    return result;
  }
  const int threads = ResolveThreads(num_threads);
  const size_t morsel = MorselFor(joined_rows.size(), threads);
  if (threads > 1 && joined_rows.size() > morsel) {
    // Partial-merge path: thread-local aggregation states over row
    // morsels, merged before HAVING/projection.
    std::vector<std::unique_ptr<Aggregator>> partials;
    partials.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      partials.push_back(std::make_unique<Aggregator>(block));
      partials.back()->SetGovernor(governor);
    }
    TaskPool pool(threads);
    Status status = pool.RunMorsels(
        joined_rows.size(), morsel, [&](int worker, size_t begin, size_t end) {
          Aggregator* local = partials[static_cast<size_t>(worker)].get();
          if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
          for (size_t i = begin; i < end; ++i) local->AddRow(joined_rows[i]);
          return Status::OK();
        });
    ICEBERG_RETURN_NOT_OK(status);
    for (auto& p : partials) agg.MergeFrom(std::move(*p));
    if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
    if (stats != nullptr) {
      stats->workers = static_cast<size_t>(threads);
      stats->busy_us_per_worker = pool.last_busy_micros();
    }
    ICEBERG_ASSIGN_OR_RETURN(TablePtr result, agg.Finalize(stats));
    result->SortRowsCanonical();
    return result;
  }
  size_t processed = 0;
  for (const Row& joined : joined_rows) {
    if (governor != nullptr && (processed++ & 255) == 0) {
      ICEBERG_RETURN_NOT_OK(governor->Check());
    }
    agg.AddRow(joined);
  }
  if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
  return agg.Finalize(stats);
}

}  // namespace iceberg
