#ifndef SMARTICEBERG_EXEC_GOVERNOR_H_
#define SMARTICEBERG_EXEC_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/status.h"

namespace iceberg {

/// Deterministic fault-injection hooks for tests. Both callbacks receive a
/// 1-based ordinal that counts invocations across the whole query, so tests
/// can trip "cancel at the Nth governance check" or "budget exhausted at the
/// Nth allocation" without wall-clock sleeps or real memory pressure.
/// Returning a non-OK status injects that failure at that point; soft
/// (advisory) reservations treat the injection as pressure, hard ones as a
/// fatal overrun.
struct GovernorProbe {
  std::function<Status(size_t check_ordinal)> on_check;
  std::function<Status(size_t reserve_ordinal, size_t bytes, const char* tag)>
      on_reserve;
};

/// Per-query resource governor: a wall-clock deadline, a cooperative
/// cancellation token, a byte-denominated memory budget, and an
/// intermediate-row limit, shared by every operator executing one query
/// (including CTE blocks and parallel workers — all methods are
/// thread-safe).
///
/// Operators call Check() at loop granularity (per outer tuple / per
/// binding) and account state growth through Reserve()/Release(). Exceeding
/// a budget degrades gracefully where possible: advisory consumers (the
/// NLJP cache) register a Reclaimer that sheds entries under pressure
/// before any query-fatal error is raised; only mandatory state
/// (aggregation groups, join materialization) that still does not fit
/// poisons the governor with ResourceExhausted.
///
/// Once a fatal condition is observed the governor is "poisoned": every
/// subsequent Check() returns the same status, so deep void callbacks can
/// record failure cheaply and the enclosing loop aborts at its next check.
class QueryGovernor {
 public:
  struct Limits {
    /// Wall-clock deadline in milliseconds from construction. Negative:
    /// no deadline. Zero: already expired (deterministic immediate trip).
    int64_t deadline_ms = -1;
    /// Total bytes of tracked intermediate state. 0 = unlimited.
    size_t memory_budget_bytes = 0;
    /// Joined (intermediate) rows produced before aggregation.
    /// 0 = unlimited.
    size_t max_intermediate_rows = 0;
    /// The memory budget is an admission-controller grant (a share of a
    /// global pool) rather than a property of the query itself. Budget
    /// overruns are then *transient* — another grant may be larger once
    /// load subsides — so the resulting ResourceExhausted is marked
    /// retryable (Status::IsRetryable()).
    bool shared_budget = false;
  };

  QueryGovernor() : QueryGovernor(Limits{}) {}
  explicit QueryGovernor(Limits limits, GovernorProbe probe = GovernorProbe());
  /// Governors are single-use (one per query); destruction publishes the
  /// query's governance footprint (checks, shed entries, budget high-water
  /// mark, remaining deadline headroom) into the global metrics registry.
  ~QueryGovernor();

  // ---- Cooperative cancellation ----
  /// May be called from any thread (e.g. a client disconnect handler).
  void RequestCancel() { cancel_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_acquire);
  }

  /// Full governance check: fault probe, poison state, cancellation token,
  /// deadline. Called at loop granularity by every governed operator.
  Status Check();

  /// Cheap poll used inside tight inner loops: has a fatal condition
  /// already been recorded?
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  /// Records a fatal condition; every later Check() returns `status`.
  void Poison(Status status);

  // ---- Memory accounting ----
  /// Hard reservation for mandatory state (aggregation groups, join
  /// materialization). Under pressure the registered reclaimer is asked to
  /// shed advisory state first; if the deficit remains, the governor is
  /// poisoned and ResourceExhausted returned. `tag` names the consumer in
  /// messages and fault-injection probes.
  Status Reserve(size_t bytes, const char* tag);
  /// Soft reservation for advisory state (the NLJP cache). Never poisons:
  /// returns false under pressure so the caller can shed or skip.
  bool TryReserve(size_t bytes, const char* tag);
  void Release(size_t bytes);

  /// Shed callback for advisory state: given a byte deficit, frees at
  /// least that much if possible and returns the bytes actually freed
  /// (releasing them via Release()). At most one reclaimer is active.
  using Reclaimer = std::function<size_t(size_t bytes_needed)>;
  void RegisterReclaimer(Reclaimer fn);
  void UnregisterReclaimer();

  /// Forces the registered reclaimer to shed up to `bytes_needed` bytes of
  /// advisory state right now, regardless of budget headroom. Returns the
  /// bytes actually freed (0 when no reclaimer is registered). Used by the
  /// chaos harness to provoke cache-shed storms at governor check sites;
  /// always safe because advisory state only accelerates.
  size_t ShedAdvisory(size_t bytes_needed);

  /// Counts joined rows flowing out of a join pipeline; poisons with
  /// ResourceExhausted when the limit is crossed.
  Status CountIntermediateRows(size_t rows);

  // ---- Introspection (stats reporting) ----
  const Limits& limits() const { return limits_; }
  size_t checks_performed() const {
    return checks_.load(std::memory_order_relaxed);
  }
  size_t bytes_in_use() const {
    return in_use_.load(std::memory_order_relaxed);
  }
  size_t bytes_peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t intermediate_rows() const {
    return rows_.load(std::memory_order_relaxed);
  }
  /// Advisory entries shed under memory pressure (reported by reclaimers).
  void AddCacheShed(size_t entries) {
    shed_.fetch_add(entries, std::memory_order_relaxed);
  }
  size_t cache_shed_entries() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Milliseconds left until the deadline (negative once overrun); -1 when
  /// the query has no deadline. The headroom at query end says how close a
  /// governed workload is running to its SLO.
  int64_t deadline_headroom_ms() const;

  /// The status the governor was poisoned with (OK when never poisoned) —
  /// the "governor verdict" a flight-recorder record stores at attempt end.
  Status poison_status() const;

 private:
  Status ReserveInternal(size_t bytes, const char* tag, bool hard);

  Limits limits_;
  GovernorProbe probe_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;

  std::atomic<bool> cancel_{false};
  std::atomic<bool> poisoned_{false};
  std::atomic<size_t> checks_{0};
  std::atomic<size_t> reserves_{0};
  std::atomic<size_t> in_use_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<size_t> rows_{0};
  std::atomic<size_t> shed_{0};

  mutable std::mutex poison_mu_;  // guards poison_status_
  Status poison_status_;
  std::mutex reserve_mu_;  // serializes budget admission + reclaimer_
  Reclaimer reclaimer_;
};

using GovernorPtr = std::shared_ptr<QueryGovernor>;

}  // namespace iceberg

#endif  // SMARTICEBERG_EXEC_GOVERNOR_H_
