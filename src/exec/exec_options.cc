#include "src/exec/exec_options.h"

#include <atomic>
#include <cstdlib>

namespace iceberg {

namespace {

bool InitialVectorizeEnabled() {
  const char* env = std::getenv("ICEBERG_VECTORIZE");
  return env == nullptr || env[0] != '0';
}

std::atomic<bool> g_vectorize_enabled{InitialVectorizeEnabled()};

}  // namespace

bool VectorizedExecEnabled() {
  return g_vectorize_enabled.load(std::memory_order_relaxed);
}

void SetVectorizedExecEnabled(bool enabled) {
  g_vectorize_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace iceberg
