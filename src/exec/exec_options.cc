#include "src/exec/exec_options.h"

#include <atomic>
#include <cstdlib>

namespace iceberg {

namespace {

bool InitialVectorizeEnabled() {
  const char* env = std::getenv("ICEBERG_VECTORIZE");
  return env == nullptr || env[0] != '0';
}

std::atomic<bool> g_vectorize_enabled{InitialVectorizeEnabled()};

bool InitialPredicateTransferEnabled() {
  const char* env = std::getenv("ICEBERG_PREDICATE_TRANSFER");
  return env == nullptr || env[0] != '0';
}

std::atomic<bool> g_predicate_transfer_enabled{
    InitialPredicateTransferEnabled()};

bool InitialCboEnabled() {
  const char* env = std::getenv("ICEBERG_CBO");
  return env == nullptr || env[0] != '0';
}

std::atomic<bool> g_cbo_enabled{InitialCboEnabled()};

}  // namespace

bool VectorizedExecEnabled() {
  return g_vectorize_enabled.load(std::memory_order_relaxed);
}

void SetVectorizedExecEnabled(bool enabled) {
  g_vectorize_enabled.store(enabled, std::memory_order_relaxed);
}

bool PredicateTransferEnabled() {
  return g_predicate_transfer_enabled.load(std::memory_order_relaxed);
}

void SetPredicateTransferEnabled(bool enabled) {
  g_predicate_transfer_enabled.store(enabled, std::memory_order_relaxed);
}

bool CboEnabled() {
  return g_cbo_enabled.load(std::memory_order_relaxed);
}

void SetCboEnabled(bool enabled) {
  g_cbo_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace iceberg
