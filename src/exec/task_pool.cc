#include "src/exec/task_pool.h"

#include <chrono>

#include "src/obs/metrics.h"

namespace iceberg {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

size_t MorselFor(size_t total, int threads) {
  size_t morsel = total / (static_cast<size_t>(threads) * 8);
  return std::clamp<size_t>(morsel, 64, 1024);
}

TaskPool::TaskPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  busy_us_.assign(static_cast<size_t>(num_threads_), 0);
  threads_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    threads_.emplace_back([this, w]() { WorkerLoop(w); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || job_seq_ != seen; });
      if (shutdown_) return;
      seen = job_seq_;
    }
    Drain(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_running_ == 0) done_cv_.notify_all();
    }
  }
}

void TaskPool::Drain(int worker) {
  using Clock = std::chrono::steady_clock;
  Histogram* morsel_us = ICEBERG_HISTOGRAM("taskpool.morsel_us");
  Histogram* claim_ns = ICEBERG_HISTOGRAM("taskpool.claim_ns");
  Counter* morsels = ICEBERG_COUNTER("taskpool.morsels");
  int64_t busy = 0;
  size_t claimed = 0;
  Clock::time_point idle_since = Clock::now();
  while (!failed_.load(std::memory_order_acquire)) {
    size_t begin = next_.fetch_add(morsel_, std::memory_order_relaxed);
    if (begin >= total_) break;
    size_t end = std::min(begin + morsel_, total_);
    Clock::time_point start = Clock::now();
    // Claim latency: the gap between finishing the previous morsel (or
    // entering the drain loop) and starting this one — contention on the
    // claim counter and wake-up latency both land here.
    claim_ns->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(start -
                                                             idle_since)
            .count()));
    Status status = (*fn_)(worker, begin, end);
    Clock::time_point finish = Clock::now();
    int64_t took_us =
        std::chrono::duration_cast<std::chrono::microseconds>(finish - start)
            .count();
    busy += took_us;
    ++claimed;
    morsel_us->Record(static_cast<uint64_t>(took_us));
    idle_since = finish;
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) first_error_ = std::move(status);
      failed_.store(true, std::memory_order_release);
      break;
    }
  }
  morsels->Add(claimed);
  busy_us_[static_cast<size_t>(worker)] = busy;
}

Status TaskPool::RunMorsels(size_t total, size_t morsel_size,
                            const MorselFn& fn) {
  if (morsel_size == 0) morsel_size = 1;
  ICEBERG_COUNTER("taskpool.jobs")->Increment();
  if (num_threads_ == 1 || total <= morsel_size) {
    // Serial path: no threads are woken; Drain on the calling thread
    // claims every morsel in ascending order, exactly the prior inline
    // loop (the atomic counter is uncontended).
    total_ = total;
    morsel_ = morsel_size;
    fn_ = &fn;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    first_error_ = Status::OK();
    std::fill(busy_us_.begin(), busy_us_.end(), 0);
    Drain(0);
    fn_ = nullptr;
    return first_error_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    total_ = total;
    morsel_ = morsel_size;
    fn_ = &fn;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    first_error_ = Status::OK();
    std::fill(busy_us_.begin(), busy_us_.end(), 0);
    workers_running_ = static_cast<int>(threads_.size());
    ++job_seq_;
  }
  work_cv_.notify_all();
  Drain(0);  // the calling thread participates as worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_running_ == 0; });
  fn_ = nullptr;
  return first_error_;
}

}  // namespace iceberg
