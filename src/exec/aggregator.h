#ifndef SMARTICEBERG_EXEC_AGGREGATOR_H_
#define SMARTICEBERG_EXEC_AGGREGATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/exec/exec_options.h"
#include "src/exec/key_codec.h"
#include "src/expr/aggregate.h"
#include "src/expr/compiled.h"
#include "src/expr/evaluator.h"
#include "src/plan/query_block.h"
#include "src/storage/table.h"

namespace iceberg {

/// Hash-aggregation state shared by the baseline executor and the NLJP
/// post-processing stage: groups joined rows by the block's GROUP BY keys,
/// maintains one Accumulator per aggregate subexpression of HAVING and the
/// select list, then applies HAVING and projects.
///
/// The hot path (AddRow) evaluates group keys and aggregate arguments
/// through compiled expression programs and, when every key column is
/// statically numeric, keys the group map with fixed-width PackedKeys
/// (memcmp equality, word-mix hash) instead of Rows. String keys keep the
/// Row-keyed map; the two maps are never populated for the same query.
class Aggregator {
 public:
  /// Collects the aggregate nodes of `block` (HAVING first, then select
  /// items). The block must outlive the aggregator.
  explicit Aggregator(const QueryBlock& block);
  ~Aggregator();
  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Charges group-state growth against `governor`'s memory budget
  /// (aggregation state is mandatory: an overrun poisons the governor and
  /// AddRow stops accepting rows). Reserved bytes are released when the
  /// aggregator is destroyed.
  void SetGovernor(QueryGovernor* governor) { governor_ = governor; }

  /// True if the block needs grouping/aggregation at all.
  bool IsAggregated() const;

  /// Folds one joined row into its group.
  void AddRow(const Row& joined_row);

  /// Merges the groups of another aggregator (parallel workers).
  void MergeFrom(Aggregator&& other);

  /// Applies HAVING, projects the select list, returns the result table.
  /// `stats` (optional) receives groups_created / groups_output.
  /// Emits the grouped result (HAVING + projection). Wall time is recorded
  /// into stats->finalize_us and the agg.finalize_us histogram — HAVING-
  /// after-full-join is exactly the cost the iceberg optimizer avoids.
  Result<TablePtr> Finalize(ExecStats* stats) const;

  size_t num_groups() const { return groups_.size() + packed_groups_.size(); }

  /// EXPLAIN annotation: "packed[2 cols, 18B]" or "row".
  std::string KeySummary() const { return codec_.Summary(); }

 private:
  Result<TablePtr> FinalizeInternal(ExecStats* stats) const;

  struct GroupState {
    Row representative;  // any row of the group (group keys are constant)
    std::vector<Accumulator> accumulators;
  };

  /// Evaluates the GROUP BY keys of `joined_row` into key_scratch_.
  void EvalKeys(const Row& joined_row);

  /// Reserves one group's footprint against the governor. `key_bytes` is
  /// what RowBytes would charge for the Row-materialized key, so accounting
  /// is identical whether the map is packed- or Row-keyed.
  bool ReserveGroup(const Row& joined_row, size_t key_bytes);

  GroupState MakeState(const Row& joined_row) const;
  void Accumulate(GroupState* state, const Row& joined_row);

  const QueryBlock& block_;
  std::vector<ExprPtr> agg_nodes_;
  // Compiled programs (empty / invalid entries => interpreter fallback).
  std::vector<CompiledExpr> group_progs_;
  std::vector<CompiledExpr> arg_progs_;  // parallel to agg_nodes_
  KeyCodec codec_;
  bool packed_ = false;

  // Exactly one of the two maps is used per query, decided at construction.
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups_;
  std::unordered_map<PackedKey, GroupState, PackedKeyHash, PackedKeyEq>
      packed_groups_;

  // Per-AddRow scratch, reused across calls (Aggregator is single-threaded;
  // parallel plans run one per worker and MergeFrom).
  EvalScratch scratch_;
  Row key_scratch_;
  PackedKey packed_scratch_;

  QueryGovernor* governor_ = nullptr;
  size_t reserved_bytes_ = 0;
  bool reserve_failed_ = false;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_EXEC_AGGREGATOR_H_
