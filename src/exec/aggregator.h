#ifndef SMARTICEBERG_EXEC_AGGREGATOR_H_
#define SMARTICEBERG_EXEC_AGGREGATOR_H_

#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/exec/exec_options.h"
#include "src/expr/aggregate.h"
#include "src/expr/evaluator.h"
#include "src/plan/query_block.h"
#include "src/storage/table.h"

namespace iceberg {

/// Hash-aggregation state shared by the baseline executor and the NLJP
/// post-processing stage: groups joined rows by the block's GROUP BY keys,
/// maintains one Accumulator per aggregate subexpression of HAVING and the
/// select list, then applies HAVING and projects.
class Aggregator {
 public:
  /// Collects the aggregate nodes of `block` (HAVING first, then select
  /// items). The block must outlive the aggregator.
  explicit Aggregator(const QueryBlock& block);
  ~Aggregator();
  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Charges group-state growth against `governor`'s memory budget
  /// (aggregation state is mandatory: an overrun poisons the governor and
  /// AddRow stops accepting rows). Reserved bytes are released when the
  /// aggregator is destroyed.
  void SetGovernor(QueryGovernor* governor) { governor_ = governor; }

  /// True if the block needs grouping/aggregation at all.
  bool IsAggregated() const;

  /// Folds one joined row into its group.
  void AddRow(const Row& joined_row);

  /// Merges the groups of another aggregator (parallel workers).
  void MergeFrom(Aggregator&& other);

  /// Applies HAVING, projects the select list, returns the result table.
  /// `stats` (optional) receives groups_created / groups_output.
  Result<TablePtr> Finalize(ExecStats* stats) const;

  size_t num_groups() const { return groups_.size(); }

 private:
  struct GroupState {
    Row representative;  // any row of the group (group keys are constant)
    std::vector<Accumulator> accumulators;
  };

  Row GroupKey(const Row& joined_row) const;

  const QueryBlock& block_;
  std::vector<ExprPtr> agg_nodes_;
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups_;
  QueryGovernor* governor_ = nullptr;
  size_t reserved_bytes_ = 0;
  bool reserve_failed_ = false;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_EXEC_AGGREGATOR_H_
