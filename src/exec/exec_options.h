#ifndef SMARTICEBERG_EXEC_EXEC_OPTIONS_H_
#define SMARTICEBERG_EXEC_EXEC_OPTIONS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/exec/governor.h"

namespace iceberg {

/// Which baseline system the executor emulates.
///
///  - kPostgres: sequential execution, prefers indexed nested-loop joins
///    followed by hash aggregation (the plans shown in the paper's
///    Appendix E for baseline PostgreSQL).
///  - kVendorA: the commercial "Vendor A" of the paper; same plan space but
///    makes aggressive use of parallelism (4 workers by default).
enum class ExecProfile {
  kPostgres,
  kVendorA,
};

/// Process-wide chicken bit for the vectorized (batch-at-a-time) scan
/// paths, mirroring SetCompiledExprEnabled. Default on; seeded once from
/// the ICEBERG_VECTORIZE environment variable (set to "0..." to disable).
/// Checked at plan time, so flips affect subsequently planned queries.
bool VectorizedExecEnabled();
void SetVectorizedExecEnabled(bool enabled);

/// Process-wide chicken bit for the predicate-transfer graph (fixpoint
/// Bloom propagation across join edges; src/exec/transfer_graph.h).
/// Default on; seeded once from the ICEBERG_PREDICATE_TRANSFER environment
/// variable (set to "0..." to disable). Checked at plan time.
bool PredicateTransferEnabled();
void SetPredicateTransferEnabled(bool enabled);

/// Process-wide chicken bit for the cost-based optimizer (column
/// statistics, cardinality estimation, transfer-aware join ordering;
/// src/plan/cost/). Default on; seeded once from the ICEBERG_CBO
/// environment variable (set to "0..." to disable). When off, every plan
/// decision reverts to the pre-CBO heuristics: FROM-order joins, always-on
/// iceberg rewrites, size-threshold vectorization — byte-identical plans
/// to builds that predate the optimizer. Checked at plan time.
bool CboEnabled();
void SetCboEnabled(bool enabled);

struct TransferSchedule;   // src/exec/transfer_graph.h
struct JoinOrderSchedule;  // src/plan/cost/join_order.h

struct ExecOptions {
  ExecProfile profile = ExecProfile::kPostgres;

  /// Whether secondary indexes may be used for join probing (the paper's
  /// "BT" index-configuration axis in Fig. 4).
  bool use_indexes = true;

  /// Worker threads for the join + partial-aggregation pipeline, morsel-
  /// driven (src/exec/task_pool.h). 0 = auto (hardware_concurrency());
  /// 1 = exactly the serial paths (no pool, no canonical reordering). The
  /// Vendor A profile pins 4, matching the paper's setup ("Vendor A using
  /// all 4 cores"). When the resolved count exceeds 1, output rows are
  /// canonically sorted so results are byte-identical across thread
  /// counts.
  int num_threads = 0;

  /// Optional per-query resource governor (deadline, cancellation, memory
  /// budget, intermediate-row limit). Null = ungoverned. Shared so one
  /// governor can span CTE blocks and parallel workers.
  GovernorPtr governor;

  /// Per-query switch for the vectorized scan paths (column chunks, batch
  /// predicate evaluation, zone-map skipping). Effective only when both
  /// this and the process-wide VectorizedExecEnabled() chicken bit are on.
  /// Results are byte-identical either way; the row-at-a-time path remains
  /// the differential reference.
  bool vectorize = true;

  /// Per-query switch for predicate transfer: build the block's join graph
  /// at plan time and propagate Bloom filters across every equi-join edge
  /// to a fixpoint, pre-shrinking each relation to rows that can possibly
  /// contribute. ANDed with the process-wide PredicateTransferEnabled()
  /// chicken bit. Results are byte-identical either way (Bloom errors are
  /// one-sided; real join predicates still run).
  bool predicate_transfer = true;

  /// Plan-cache integration (both borrowed, may be null): `capture` is
  /// filled with the transfer-graph shape the build discovered so it can
  /// be recorded in a PlanTrace; `replay` supplies a previously captured
  /// shape, skipping the order/pass exploration (filters are always
  /// rebuilt — they depend on table data).
  TransferSchedule* transfer_capture = nullptr;
  const TransferSchedule* transfer_replay = nullptr;

  /// Per-query switch for the cost-based optimizer: collect column
  /// statistics, estimate cardinalities (exact post-transfer survivor
  /// counts when the transfer graph ran), and enumerate left-deep join
  /// orders, executing the cheapest instead of FROM order. ANDed with the
  /// process-wide CboEnabled() chicken bit. Results are byte-identical
  /// either way (the join result is order-independent; output ordering is
  /// canonicalized downstream).
  bool cbo = true;

  /// Plan-cache integration for the chosen join order (both borrowed, may
  /// be null): `capture` records the enumerator's decision; `replay`
  /// supplies a previously captured order, skipping the enumeration.
  /// Replayed orders are validated (a permutation of the block's tables)
  /// and ignored on mismatch.
  JoinOrderSchedule* join_order_capture = nullptr;
  const JoinOrderSchedule* join_order_replay = nullptr;

  static ExecOptions Postgres() { return ExecOptions{}; }
  static ExecOptions VendorA() {
    ExecOptions o;
    o.profile = ExecProfile::kVendorA;
    o.num_threads = 4;
    return o;
  }
};

/// Counters filled during execution; used by tests and the benchmark
/// harness to verify *why* a configuration is faster.
struct ExecStats {
  size_t join_pairs_examined = 0;  // (outer, inner-candidate) pairs tested
  size_t rows_joined = 0;          // tuples surviving all join predicates
  size_t groups_created = 0;
  size_t groups_output = 0;        // groups surviving HAVING
  size_t index_probes = 0;
  size_t cancel_checks = 0;      // governance checks performed
  size_t budget_bytes_peak = 0;  // peak tracked intermediate-state bytes
  size_t workers = 1;            // execution contexts used (1 = serial)
  // Vectorized-scan counters (zero when the row-at-a-time path ran):
  size_t chunks_skipped = 0;   // column chunks refuted by zone maps
  size_t batch_rows = 0;       // rows evaluated through FilterBatch
  // Predicate-transfer counters (zero when transfer was off or the block
  // had no usable join edges); see TransferStats in transfer_graph.h.
  size_t transfer_passes = 0;
  size_t transfer_filters_built = 0;
  size_t transfer_probes = 0;
  size_t transfer_hits = 0;
  size_t transfer_rows_eliminated = 0;
  size_t transfer_chunks_refuted = 0;
  size_t transfer_filter_bytes = 0;
  int64_t transfer_build_ns = 0;
  /// Rows surviving each join level's predicates (indexed by pipeline
  /// level, cumulative over the run). EXPLAIN ANALYZE pairs these actuals
  /// against the cost model's est_rows per operator.
  std::vector<size_t> level_rows;
  /// rows_joined produced by each worker (parallel runs only); the spread
  /// shows how well morsel claiming balanced the skewed outer loop.
  std::vector<size_t> rows_joined_per_worker;
  /// Microseconds each worker spent inside morsels (parallel runs only);
  /// busy/wall is per-worker utilization, the spread is scheduling skew.
  std::vector<int64_t> busy_us_per_worker;
  int64_t execute_us = 0;   // wall time of the whole Execute call
  int64_t finalize_us = 0;  // wall time of aggregate finalization (HAVING)

  /// Folds one run's counters into an accumulating stats block (benches
  /// reuse one ExecStats across repetitions). Additive counters add;
  /// per-run shape (workers, the per-worker vectors, governor cumulative
  /// values, timings) is replaced, so a reused block never keeps stale
  /// per-worker entries when the thread count changes between runs.
  void Accumulate(const ExecStats& run) {
    join_pairs_examined += run.join_pairs_examined;
    rows_joined += run.rows_joined;
    groups_created += run.groups_created;
    groups_output += run.groups_output;
    index_probes += run.index_probes;
    chunks_skipped += run.chunks_skipped;
    batch_rows += run.batch_rows;
    transfer_passes += run.transfer_passes;
    transfer_filters_built += run.transfer_filters_built;
    transfer_probes += run.transfer_probes;
    transfer_hits += run.transfer_hits;
    transfer_rows_eliminated += run.transfer_rows_eliminated;
    transfer_chunks_refuted += run.transfer_chunks_refuted;
    transfer_filter_bytes += run.transfer_filter_bytes;
    transfer_build_ns += run.transfer_build_ns;
    if (level_rows.size() < run.level_rows.size()) {
      level_rows.resize(run.level_rows.size(), 0);
    }
    for (size_t i = 0; i < run.level_rows.size(); ++i) {
      level_rows[i] += run.level_rows[i];
    }
    cancel_checks = run.cancel_checks;
    budget_bytes_peak = run.budget_bytes_peak;
    workers = run.workers;
    rows_joined_per_worker = run.rows_joined_per_worker;
    busy_us_per_worker = run.busy_us_per_worker;
    execute_us += run.execute_us;
    finalize_us += run.finalize_us;
  }

  void Reset() { *this = ExecStats(); }
  std::string ToString() const;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_EXEC_EXEC_OPTIONS_H_
