#ifndef SMARTICEBERG_EXEC_BLOOM_H_
#define SMARTICEBERG_EXEC_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iceberg {

/// A blocked Bloom filter over pre-hashed 64-bit keys (PackedKey::hash()).
/// Each key sets three bits inside a single 64-bit word, so a probe costs
/// one load + one mask test regardless of the bit count ("register-blocked"
/// blocked Bloom, the cheap end of the design space in the predicate-
/// transfer literature). Sized at ~16 bits per expected key, which keeps
/// the single-word collision penalty at a false-positive rate of a few
/// percent — plenty for a pre-filter whose misses only cost the work the
/// join would have done anyway.
class BloomFilter {
 public:
  /// Hard cap on the word count (64 MiB of filter): past it the per-word
  /// key load rises and the FPR degrades gracefully instead of the
  /// allocation exploding on a miscardinality.
  static constexpr size_t kMaxWords = size_t{1} << 23;

  explicit BloomFilter(size_t expected_keys) {
    size_t words = 1;
    while (words * 4 < expected_keys && words < kMaxWords) {
      words <<= 1;  // ~4 keys/word = ~16 bits/key
    }
    words_.assign(words, 0);
    word_mask_ = words - 1;
  }

  void Insert(uint64_t hash) {
    words_[WordIndex(hash)] |= BitMask(hash);
    ++count_;
  }

  bool MayContain(uint64_t hash) const {
    // Empty-filter fast path: nothing was inserted, so nothing may be
    // contained — and an all-zero word array would answer the same, this
    // just documents that BloomFilter(0) is a valid "reject everything"
    // filter rather than relying on the mask arithmetic.
    if (count_ == 0) return false;
    const uint64_t mask = BitMask(hash);
    return (words_[WordIndex(hash)] & mask) == mask;
  }

  /// ORs another filter of the same word count into this one (morsel-wise
  /// parallel builds merge per-worker partial filters).
  void MergeFrom(const BloomFilter& other) {
    if (other.words_.size() != words_.size()) return;  // caller bug; no-op
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    count_ += other.count_;
  }

  size_t num_words() const { return words_.size(); }
  size_t num_inserted() const { return count_; }

  size_t ApproxBytes() const {
    return sizeof(*this) + words_.capacity() * sizeof(uint64_t);
  }

 private:
  /// Word from the high half of the hash; bit positions from the low half
  /// — independent enough for splitmix64-mixed keys.
  size_t WordIndex(uint64_t hash) const {
    return static_cast<size_t>((hash >> 18) & word_mask_);
  }

  static uint64_t BitMask(uint64_t hash) {
    return (uint64_t{1} << (hash & 63)) | (uint64_t{1} << ((hash >> 6) & 63)) |
           (uint64_t{1} << ((hash >> 12) & 63));
  }

  std::vector<uint64_t> words_;
  uint64_t word_mask_ = 0;
  size_t count_ = 0;  // keys inserted (not deduplicated)
};

}  // namespace iceberg

#endif  // SMARTICEBERG_EXEC_BLOOM_H_
