#ifndef SMARTICEBERG_EXEC_BLOOM_H_
#define SMARTICEBERG_EXEC_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iceberg {

/// A blocked Bloom filter over pre-hashed 64-bit keys (PackedKey::hash()).
/// Each key sets three bits inside a single 64-bit word, so a probe costs
/// one load + one mask test regardless of the bit count ("register-blocked"
/// blocked Bloom, the cheap end of the design space in the predicate-
/// transfer literature). Sized at ~16 bits per expected key, which keeps
/// the single-word collision penalty at a false-positive rate of a few
/// percent — plenty for a pre-filter whose misses only cost the work the
/// join would have done anyway.
class BloomFilter {
 public:
  explicit BloomFilter(size_t expected_keys) {
    size_t words = 1;
    while (words * 4 < expected_keys) words <<= 1;  // ~4 keys/word
    words_.assign(words, 0);
    word_mask_ = words - 1;
  }

  void Insert(uint64_t hash) { words_[WordIndex(hash)] |= BitMask(hash); }

  bool MayContain(uint64_t hash) const {
    const uint64_t mask = BitMask(hash);
    return (words_[WordIndex(hash)] & mask) == mask;
  }

  size_t num_words() const { return words_.size(); }

  size_t ApproxBytes() const {
    return sizeof(*this) + words_.capacity() * sizeof(uint64_t);
  }

 private:
  /// Word from the high half of the hash; bit positions from the low half
  /// — independent enough for splitmix64-mixed keys.
  size_t WordIndex(uint64_t hash) const {
    return static_cast<size_t>((hash >> 18) & word_mask_);
  }

  static uint64_t BitMask(uint64_t hash) {
    return (uint64_t{1} << (hash & 63)) | (uint64_t{1} << ((hash >> 6) & 63)) |
           (uint64_t{1} << ((hash >> 12) & 63));
  }

  std::vector<uint64_t> words_;
  uint64_t word_mask_ = 0;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_EXEC_BLOOM_H_
