#ifndef SMARTICEBERG_EXEC_EXECUTOR_H_
#define SMARTICEBERG_EXEC_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exec/exec_options.h"
#include "src/plan/query_block.h"
#include "src/storage/table.h"

namespace iceberg {

/// Executes bound query blocks with conventional relational plans: a
/// left-deep join pipeline (indexed nested-loop / hash / block nested-loop),
/// hash aggregation, HAVING filter, projection. This is the baseline engine
/// the Smart-Iceberg optimizer is compared against; it evaluates the full
/// join before applying the (typically highly selective) HAVING condition,
/// exactly like the PostgreSQL and Vendor A plans in the paper's Appendix E.
class Executor {
 public:
  explicit Executor(ExecOptions options = ExecOptions())
      : options_(options) {}

  const ExecOptions& options() const { return options_; }

  /// Runs the block and materializes the result. Per-run totals are
  /// accumulated into `stats` (when given) and published as exec.* metrics
  /// in the global registry; both see the same run-local numbers, so
  /// EXPLAIN ANALYZE and \metrics reconcile exactly.
  Result<TablePtr> Execute(const QueryBlock& block,
                           ExecStats* stats = nullptr);

  /// Renders the physical plan that Execute would choose, in an
  /// EXPLAIN-like indented format.
  std::string Explain(const QueryBlock& block) const;

 private:
  Result<TablePtr> ExecuteInternal(const QueryBlock& block, ExecStats* stats);

  ExecOptions options_;
};

/// Evaluates all aggregates over a set of joined rows grouped by the given
/// key expressions, applies `having`, and projects `select`. Exposed for
/// reuse by the NLJP operator's post-processing stage. When `governor` is
/// set, the loop is checked at stride granularity and aggregation state is
/// charged against the memory budget. With a resolved `num_threads` > 1
/// (0 = auto) the aggregated path folds rows into thread-local partial
/// states merged before HAVING/projection, and the output is canonically
/// sorted.
Result<TablePtr> GroupAndProject(const QueryBlock& block,
                                 const std::vector<Row>& joined_rows,
                                 ExecStats* stats,
                                 QueryGovernor* governor = nullptr,
                                 int num_threads = 1);

}  // namespace iceberg

#endif  // SMARTICEBERG_EXEC_EXECUTOR_H_
