#include "src/exec/governor.h"

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace iceberg {

QueryGovernor::QueryGovernor(Limits limits, GovernorProbe probe)
    : limits_(limits), probe_(std::move(probe)) {
  if (limits_.deadline_ms >= 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.deadline_ms);
  }
}

QueryGovernor::~QueryGovernor() {
  // Governors are per-query and single-use, so destruction is the exact
  // end-of-query publication point for governance metrics.
  ICEBERG_COUNTER("governor.queries")->Increment();
  ICEBERG_COUNTER("governor.checks")->Add(checks_performed());
  ICEBERG_COUNTER("governor.reserves")
      ->Add(reserves_.load(std::memory_order_relaxed));
  ICEBERG_COUNTER("governor.cache_shed_entries")->Add(cache_shed_entries());
  ICEBERG_GAUGE("governor.budget_peak_bytes")
      ->SetMax(static_cast<int64_t>(bytes_peak()));
  if (has_deadline_) {
    ICEBERG_GAUGE("governor.deadline_headroom_ms")
        ->Set(deadline_headroom_ms());
  }
  if (poisoned_.load(std::memory_order_acquire)) {
    ICEBERG_COUNTER("governor.poisoned_queries")->Increment();
  }
}

int64_t QueryGovernor::deadline_headroom_ms() const {
  if (!has_deadline_) return -1;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             deadline_ - std::chrono::steady_clock::now())
      .count();
}

void QueryGovernor::Poison(Status status) {
  std::lock_guard<std::mutex> lock(poison_mu_);
  if (poisoned_.load(std::memory_order_relaxed)) return;  // first error wins
  poison_status_ = std::move(status);
  poisoned_.store(true, std::memory_order_release);
}

Status QueryGovernor::poison_status() const {
  if (!poisoned_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(poison_mu_);
  return poison_status_;
}

Status QueryGovernor::Check() {
  size_t ordinal = checks_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (probe_.on_check) {
    Status injected = probe_.on_check(ordinal);
    if (!injected.ok()) {
      Poison(injected);
      return injected;
    }
  }
  if (poisoned_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(poison_mu_);
    return poison_status_;
  }
  if (cancel_.load(std::memory_order_acquire)) {
    return Status::Cancelled("cancellation requested");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Status::Cancelled("deadline of " +
                             std::to_string(limits_.deadline_ms) +
                             "ms exceeded");
  }
  return Status::OK();
}

Status QueryGovernor::ReserveInternal(size_t bytes, const char* tag,
                                      bool hard) {
  size_t ordinal = reserves_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (probe_.on_reserve) {
    Status injected = probe_.on_reserve(ordinal, bytes, tag);
    if (!injected.ok()) {
      if (hard) Poison(injected);
      return injected;
    }
  }
  if (limits_.memory_budget_bytes > 0) {
    std::unique_lock<std::mutex> lock(reserve_mu_);
    size_t in_use = in_use_.load(std::memory_order_relaxed);
    while (in_use + bytes > limits_.memory_budget_bytes) {
      size_t deficit = in_use + bytes - limits_.memory_budget_bytes;
      size_t freed = reclaimer_ ? reclaimer_(deficit) : 0;
      if (freed > 0) {
        ICEBERG_LOG(INFO) << "budget pressure: shed " << freed
                          << " advisory bytes reserving " << bytes
                          << " for " << tag;
      }
      in_use = in_use_.load(std::memory_order_relaxed);
      if (freed == 0) {
        Status st = Status::ResourceExhausted(
            "memory budget of " +
            std::to_string(limits_.memory_budget_bytes) +
            " bytes exceeded reserving " + std::to_string(bytes) +
            " bytes for " + tag);
        // An admission-apportioned share may be larger on resubmission;
        // the query's own budget repeats deterministically.
        if (limits_.shared_budget) st.MarkRetryable();
        lock.unlock();
        if (hard) {
          ICEBERG_LOG(WARN) << "memory budget exhausted: "
                            << limits_.memory_budget_bytes
                            << " bytes, hard reservation of " << bytes
                            << " bytes for " << tag << " failed";
          Poison(st);
        }
        return st;
      }
    }
  }
  size_t now = in_use_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status QueryGovernor::Reserve(size_t bytes, const char* tag) {
  return ReserveInternal(bytes, tag, /*hard=*/true);
}

bool QueryGovernor::TryReserve(size_t bytes, const char* tag) {
  return ReserveInternal(bytes, tag, /*hard=*/false).ok();
}

void QueryGovernor::Release(size_t bytes) {
  size_t in_use = in_use_.load(std::memory_order_relaxed);
  while (true) {
    size_t next = bytes > in_use ? 0 : in_use - bytes;
    if (in_use_.compare_exchange_weak(in_use, next,
                                      std::memory_order_relaxed)) {
      return;
    }
  }
}

void QueryGovernor::RegisterReclaimer(Reclaimer fn) {
  std::lock_guard<std::mutex> lock(reserve_mu_);
  reclaimer_ = std::move(fn);
}

void QueryGovernor::UnregisterReclaimer() {
  std::lock_guard<std::mutex> lock(reserve_mu_);
  reclaimer_ = nullptr;
}

size_t QueryGovernor::ShedAdvisory(size_t bytes_needed) {
  std::lock_guard<std::mutex> lock(reserve_mu_);
  if (!reclaimer_) return 0;
  return reclaimer_(bytes_needed);
}

Status QueryGovernor::CountIntermediateRows(size_t rows) {
  size_t total = rows_.fetch_add(rows, std::memory_order_relaxed) + rows;
  if (limits_.max_intermediate_rows > 0 &&
      total > limits_.max_intermediate_rows) {
    Status st = Status::ResourceExhausted(
        "intermediate-row limit of " +
        std::to_string(limits_.max_intermediate_rows) + " rows exceeded");
    ICEBERG_LOG(WARN) << "intermediate-row limit tripped at " << total
                      << " rows (limit " << limits_.max_intermediate_rows
                      << ")";
    Poison(st);
    return st;
  }
  return Status::OK();
}

}  // namespace iceberg
