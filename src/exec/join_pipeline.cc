#include "src/exec/join_pipeline.h"

#include <algorithm>
#include <cstdio>

#include "src/common/logging.h"
#include "src/expr/evaluator.h"
#include "src/obs/trace.h"

namespace iceberg {

const char* JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kSeqScan:
      return "SeqScan";
    case JoinMethod::kHashIndexProbe:
      return "IndexNLJoin(hash)";
    case JoinMethod::kOrderedIndexProbe:
      return "IndexNLJoin(btree)";
    case JoinMethod::kHashJoin:
      return "HashJoin";
    case JoinMethod::kOrderedIndexRange:
      return "IndexNLJoin(btree-range)";
  }
  return "?";
}

namespace {

/// Highest flat offset referenced by the expression, or -1 for none.
int MaxOffset(const ExprPtr& e) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  int max_off = -1;
  for (const Expr* r : refs) max_off = std::max(max_off, r->resolved_index);
  return max_off;
}

/// Lowest flat offset referenced, or INT_MAX for none.
int MinOffset(const ExprPtr& e) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  int min_off = 1 << 30;
  for (const Expr* r : refs) min_off = std::min(min_off, r->resolved_index);
  return min_off;
}

bool RefsOnlyBelow(const ExprPtr& e, size_t end_offset) {
  return MaxOffset(e) < static_cast<int>(end_offset);
}

bool RefsOnlyWithin(const ExprPtr& e, size_t begin, size_t end) {
  int lo = MinOffset(e);
  int hi = MaxOffset(e);
  if (hi < 0) return false;  // no refs at all
  return lo >= static_cast<int>(begin) && hi < static_cast<int>(end);
}

/// Tables below this size run row-at-a-time: chunk bookkeeping would cost
/// more than the batch loops save.
constexpr size_t kMinVectorRows = 64;

}  // namespace

Result<JoinPipeline> JoinPipeline::Plan(const QueryBlock& block,
                                        bool use_indexes, bool vectorize,
                                        QueryGovernor* governor,
                                        const TransferPlanOptions& transfer,
                                        const PipelinePlanHints* hints) {
  JoinPipeline pipeline(block);
  const bool vec =
      vectorize && VectorizedExecEnabled() && CompiledExprEnabled();
  const size_t num_tables = block.tables.size();
  ICEBERG_CHECK(num_tables >= 1);

  // Assign each WHERE conjunct to the first level at which all of its
  // column references are bound.
  std::vector<std::vector<ExprPtr>> conjuncts_at(num_tables);
  for (const ExprPtr& conjunct : block.where_conjuncts) {
    int max_off = MaxOffset(conjunct);
    size_t level = 0;
    if (max_off >= 0) {
      level = block.TableOfOffset(static_cast<size_t>(max_off));
    }
    conjuncts_at[level].push_back(conjunct);
  }

  for (size_t level = 0; level < num_tables; ++level) {
    JoinLevel jl;
    jl.table_index = level;
    const BoundTableRef& tref = block.tables[level];
    const size_t begin = tref.offset;
    const size_t end = begin + tref.table->schema().num_columns();

    if (level == 0) {
      jl.method = JoinMethod::kSeqScan;
      jl.residual = conjuncts_at[0];
      pipeline.levels_.push_back(std::move(jl));
      continue;
    }

    // Find equality conjuncts usable as join keys: inner side is a plain
    // column of this table, outer side references only earlier tables.
    std::vector<ExprPtr> remaining;
    for (const ExprPtr& conjunct : conjuncts_at[level]) {
      bool used = false;
      if (conjunct->kind == ExprKind::kBinary &&
          conjunct->bop == BinaryOp::kEq) {
        const ExprPtr& l = conjunct->children[0];
        const ExprPtr& r = conjunct->children[1];
        ExprPtr inner, outer;
        if (l->kind == ExprKind::kColumnRef &&
            RefsOnlyWithin(l, begin, end) && RefsOnlyBelow(r, begin)) {
          inner = l;
          outer = r;
        } else if (r->kind == ExprKind::kColumnRef &&
                   RefsOnlyWithin(r, begin, end) && RefsOnlyBelow(l, begin)) {
          inner = r;
          outer = l;
        }
        if (inner != nullptr) {
          jl.inner_eq_columns.push_back(
              static_cast<size_t>(inner->resolved_index) - begin);
          jl.probe_exprs.push_back(outer);
          used = true;
        }
      }
      if (!used) remaining.push_back(conjunct);
    }
    jl.residual = std::move(remaining);

    if (!jl.inner_eq_columns.empty()) {
      // Prefer an existing index over building a hash table.
      if (use_indexes) {
        std::vector<size_t> key_order;
        const HashIndex* hidx =
            tref.table->FindHashIndex(jl.inner_eq_columns, &key_order);
        if (hidx != nullptr) {
          // Reorder probe exprs to the index's key order.
          std::vector<ExprPtr> probes(key_order.size());
          for (size_t k = 0; k < key_order.size(); ++k) {
            for (size_t j = 0; j < jl.inner_eq_columns.size(); ++j) {
              if (jl.inner_eq_columns[j] == key_order[k]) {
                probes[k] = jl.probe_exprs[j];
              }
            }
          }
          jl.method = JoinMethod::kHashIndexProbe;
          jl.hash_index = hidx;
          jl.inner_eq_columns = key_order;
          jl.probe_exprs = std::move(probes);
          pipeline.levels_.push_back(std::move(jl));
          continue;
        }
        const OrderedIndex* oidx =
            tref.table->FindOrderedIndex(jl.inner_eq_columns);
        if (oidx != nullptr) {
          jl.method = JoinMethod::kOrderedIndexProbe;
          jl.ordered_eq_index = oidx;
          pipeline.levels_.push_back(std::move(jl));
          continue;
        }
      }
      // Build a hash table over the equality keys. The build itself is
      // deferred until after predicate transfer runs, so rows the
      // transferred filters eliminate never enter the table.
      jl.method = JoinMethod::kHashJoin;
      pipeline.levels_.push_back(std::move(jl));
      continue;
    }

    // No equality keys: try a B-tree range probe on an inequality bound.
    if (use_indexes) {
      bool planned = false;
      for (const ExprPtr& conjunct : jl.residual) {
        if (conjunct->kind != ExprKind::kBinary ||
            !IsComparisonOp(conjunct->bop) ||
            conjunct->bop == BinaryOp::kEq || conjunct->bop == BinaryOp::kNe) {
          continue;
        }
        const ExprPtr& l = conjunct->children[0];
        const ExprPtr& r = conjunct->children[1];
        ExprPtr inner, outer;
        BinaryOp op = conjunct->bop;
        if (l->kind == ExprKind::kColumnRef && RefsOnlyWithin(l, begin, end) &&
            RefsOnlyBelow(r, begin)) {
          inner = l;
          outer = r;
        } else if (r->kind == ExprKind::kColumnRef &&
                   RefsOnlyWithin(r, begin, end) && RefsOnlyBelow(l, begin)) {
          inner = r;
          outer = l;
          op = FlipComparison(op);  // normalize to inner OP outer
        } else {
          continue;
        }
        size_t inner_col = static_cast<size_t>(inner->resolved_index) - begin;
        // Find an ordered index whose first key column is inner_col.
        const OrderedIndex* found = nullptr;
        for (size_t i = 0; i < tref.table->num_ordered_indexes(); ++i) {
          const OrderedIndex& idx = tref.table->ordered_index(i);
          if (!idx.key_columns().empty() &&
              idx.key_columns()[0] == inner_col) {
            found = &idx;
            break;
          }
        }
        if (found == nullptr) continue;
        jl.method = JoinMethod::kOrderedIndexRange;
        jl.range_index = found;
        jl.bound_expr = outer;
        // Strictness handled by keeping the conjunct in residual; the scan
        // is inclusive on the bound.
        jl.is_lower_bound = (op == BinaryOp::kGt || op == BinaryOp::kGe);
        planned = true;
        break;
      }
      if (planned) {
        pipeline.levels_.push_back(std::move(jl));
        continue;
      }
    }

    jl.method = JoinMethod::kSeqScan;  // block nested loop
    pipeline.levels_.push_back(std::move(jl));
  }

  // Compile the per-level expressions once per query; the interpreter
  // remains the fallback when the compiled engine is globally disabled.
  if (CompiledExprEnabled()) {
    for (JoinLevel& jl : pipeline.levels_) {
      jl.residual_progs = CompileAll(jl.residual);
      jl.probe_progs = CompileAll(jl.probe_exprs);
      if (jl.bound_expr != nullptr) {
        jl.bound_prog = CompiledExpr::Compile(*jl.bound_expr);
      }
    }
  }

  if (vec) {
    // Attach columnar projections to kSeqScan levels whose filters can all
    // run in batch mode. Chunk bytes are charged to the governor as an
    // advisory reservation; under pressure the level stays row-at-a-time.
    for (size_t level = 0; level < pipeline.levels_.size(); ++level) {
      JoinLevel& jl = pipeline.levels_[level];
      if (jl.method != JoinMethod::kSeqScan) continue;
      if (jl.residual.empty()) continue;
      // The optimizer expects too little scan volume here for batch setup
      // to pay off: keep the reference row path.
      if (hints != nullptr && level < hints->prefer_row_scan.size() &&
          hints->prefer_row_scan[level] != 0) {
        continue;
      }
      if (jl.residual_progs.size() != jl.residual.size()) continue;
      bool batchable = true;
      for (const CompiledExpr& p : jl.residual_progs) {
        if (!p.valid() || !p.batchable()) batchable = false;
      }
      if (!batchable) continue;
      const Table& table = *block.tables[jl.table_index].table;
      if (table.num_rows() < kMinVectorRows) continue;
      ColumnChunkSetPtr chunks = table.GetOrBuildChunks();
      if (governor != nullptr &&
          !governor->TryReserve(chunks->approx_bytes(), "column-chunks")) {
        continue;
      }
      jl.chunks = std::move(chunks);
    }
  }

  // Predicate transfer: build the block's join graph and propagate Bloom
  // filters across every equi-join edge to a fixpoint (transfer_graph.h).
  // The per-relation selections it produces shrink every scan, index
  // probe, and hash build below — this subsumes the old one-shot
  // first-join Bloom pre-filters, without their size-skew heuristics.
  if (transfer.prebuilt_valid) {
    // The cost-based optimizer already ran transfer (ahead of join
    // ordering, so survivor counts could feed the enumerator); adopt its
    // result — including a null one — instead of rebuilding.
    pipeline.transfer_ = transfer.prebuilt;
  } else if (transfer.enabled && PredicateTransferEnabled() &&
             num_tables >= 2) {
    TransferPlanOptions topts = transfer;
    topts.governor = governor;
    // Zone-map refutation needs column chunks; don't build them just for
    // transfer when the vectorized paths are off.
    topts.use_zone_maps = topts.use_zone_maps && vec;
    pipeline.transfer_ = BuildTransferGraph(block, topts);
  }

  // Deferred kHashJoin builds: rows the transfer selections dropped never
  // enter the hash table (a transfer miss means the key provably has no
  // partner somewhere in the block, so no probe can ever want the row).
  {
    const TransferResult* xfer = pipeline.transfer_.get();
    for (JoinLevel& jl : pipeline.levels_) {
      if (jl.method != JoinMethod::kHashJoin) continue;
      const Table& t = *block.tables[jl.table_index].table;
      const size_t lvl = jl.table_index;
      const bool drop = xfer != nullptr && xfer->HasSelection(lvl);
      auto built = std::make_shared<HashIndex>(jl.inner_eq_columns);
      for (size_t i = 0; i < t.num_rows(); ++i) {
        if (drop && !xfer->Keep(lvl, i)) continue;
        built->Insert(t.row(i), i);
      }
      jl.built_hash = std::move(built);
    }
  }
  return pipeline;
}

size_t JoinPipeline::OuterSize() const {
  return block_->tables[0].table->num_rows();
}

void JoinPipeline::AnnotateEstimates(const std::vector<double>& est_rows) {
  for (size_t i = 0; i < levels_.size() && i < est_rows.size(); ++i) {
    levels_[i].est_rows = est_rows[i];
  }
}

Status JoinPipeline::Run(size_t outer_begin, size_t outer_end,
                         const RowCallback& callback, ExecStats* stats,
                         QueryGovernor* governor) const {
  // One span per Run call = one span per morsel under the parallel
  // executors, so the trace shows each worker's morsel timeline.
  TraceSpan span("join.run", "join");
  const Table& outer = *block_->tables[0].table;
  outer_end = std::min(outer_end, outer.num_rows());
  const JoinLevel& l0 = levels_[0];
  RunScratch scratch;
  scratch.probe_keys.resize(levels_.size());
  scratch.sel.resize(levels_.size());
  if (stats != nullptr && stats->level_rows.size() < levels_.size()) {
    stats->level_rows.resize(levels_.size(), 0);
  }
  // Transfer selections stand down wholesale if any participating table
  // mutated after planning (e.g. NLJP parameter rebinding): the bitmaps
  // were baked against a cross-relation version snapshot.
  if (transfer_ != nullptr && transfer_->AnySelection() && transfer_->Live()) {
    scratch.transfer = transfer_.get();
  }
  const bool xfer0 =
      scratch.transfer != nullptr && scratch.transfer->HasSelection(0);
  Row partial;
  partial.reserve(block_->TotalWidth());

  // Emits the partial row that survived the level-0 filter (and transfer
  // selection): the tail of the per-outer-row loop, shared by both scan
  // shapes. Returns false when the intermediate-row limit tripped and the
  // scan must stop.
  auto emit_outer = [&]() {
    if (stats != nullptr) ++stats->level_rows[0];
    if (levels_.size() == 1) {
      if (stats != nullptr) ++stats->rows_joined;
      if (governor != nullptr && !governor->CountIntermediateRows(1).ok()) {
        return false;  // row limit tripped; final Check reports it
      }
      callback(partial);
    } else {
      RunLevel(1, &partial, callback, stats, governor, &scratch);
    }
    return true;
  };

  const bool vec0 =
      l0.chunks != nullptr && l0.chunks->version() == outer.version();
  if (!vec0) {
    for (size_t i = outer_begin; i < outer_end; ++i) {
      if (governor != nullptr) {
        ICEBERG_RETURN_NOT_OK(governor->Check());
        if (stats != nullptr) ++stats->cancel_checks;
      }
      if (stats != nullptr) ++stats->join_pairs_examined;
      if (xfer0 && !scratch.transfer->Keep(0, i)) continue;
      const Row& row = outer.row(i);
      partial.assign(row.begin(), row.end());
      bool pass = true;
      if (!l0.residual_progs.empty()) {
        for (const CompiledExpr& p : l0.residual_progs) {
          if (!p.RunPredicate(partial, &scratch.eval)) {
            pass = false;
            break;
          }
        }
      } else {
        for (const ExprPtr& p : l0.residual) {
          if (!EvaluatePredicate(*p, partial)) {
            pass = false;
            break;
          }
        }
      }
      if (!pass) continue;
      if (!emit_outer()) break;
    }
    // A poisoning recorded inside an inner loop (row limit, memory
    // overrun) surfaces here even when the outer loop just ended.
    return governor != nullptr ? governor->Check() : Status::OK();
  }

  // Vectorized outer scan: per chunk, run the governance/accounting loop
  // first (same cadence as the row path), try to refute the whole chunk
  // against its zone maps, then batch-filter the survivors.
  std::vector<uint32_t>& sel = scratch.sel[0];
  for (const ColumnChunk& chunk : l0.chunks->chunks()) {
    const size_t lo = std::max(chunk.begin, outer_begin);
    const size_t hi = std::min(chunk.begin + chunk.rows, outer_end);
    if (lo >= hi) continue;
    for (size_t i = lo; i < hi; ++i) {
      if (governor != nullptr) {
        ICEBERG_RETURN_NOT_OK(governor->Check());
        if (stats != nullptr) ++stats->cancel_checks;
      }
      if (stats != nullptr) ++stats->join_pairs_examined;
    }
    bool refuted = false;
    for (const CompiledExpr& p : l0.residual_progs) {
      if (p.has_zone_checks() && p.ZoneRefutes(chunk, 0, nullptr)) {
        refuted = true;
        break;
      }
    }
    if (refuted) {
      if (stats != nullptr) ++stats->chunks_skipped;
      continue;
    }
    // Seed the selection vector with transfer survivors only, so the
    // batch filters never touch eliminated rows.
    sel.resize(chunk.rows);
    size_t n = 0;
    for (size_t i = lo; i < hi; ++i) {
      if (xfer0 && !scratch.transfer->Keep(0, i)) continue;
      sel[n++] = static_cast<uint32_t>(i - chunk.begin);
    }
    if (stats != nullptr) stats->batch_rows += n;
    for (const CompiledExpr& p : l0.residual_progs) {
      if (n == 0) break;
      n = p.FilterBatch(chunk, 0, nullptr, sel.data(), n, sel.data(),
                        &scratch.batch);
    }
    bool tripped = false;
    for (size_t k = 0; k < n && !tripped; ++k) {
      if (governor != nullptr && governor->poisoned()) break;
      const Row& row = outer.row(chunk.begin + sel[k]);
      partial.assign(row.begin(), row.end());
      tripped = !emit_outer();
    }
    if (tripped) break;
  }
  return governor != nullptr ? governor->Check() : Status::OK();
}

void JoinPipeline::RunLevel(size_t level, Row* partial,
                            const RowCallback& callback, ExecStats* stats,
                            QueryGovernor* governor,
                            RunScratch* scratch) const {
  const JoinLevel& jl = levels_[level];
  const Table& table = *block_->tables[jl.table_index].table;
  const bool compiled = !jl.residual_progs.empty() || jl.residual.empty();

  // Transfer selection for this level's relation: rows it dropped provably
  // join with nothing, so every access method skips them up front.
  const bool has_xfer = scratch->transfer != nullptr &&
                        scratch->transfer->HasSelection(jl.table_index);
  auto dropped = [&](size_t row_id) {
    return has_xfer && !scratch->transfer->Keep(jl.table_index, row_id);
  };

  auto try_row = [&](const Row& inner_row) {
    // Fast bail-out once a fatal condition is recorded anywhere; the full
    // check happens per outer tuple in Run.
    if (governor != nullptr && governor->poisoned()) return;
    if (stats != nullptr) ++stats->join_pairs_examined;
    size_t base = partial->size();
    partial->insert(partial->end(), inner_row.begin(), inner_row.end());
    bool pass = true;
    if (compiled) {
      for (const CompiledExpr& p : jl.residual_progs) {
        if (!p.RunPredicate(*partial, &scratch->eval)) {
          pass = false;
          break;
        }
      }
    } else {
      for (const ExprPtr& p : jl.residual) {
        if (!EvaluatePredicate(*p, *partial)) {
          pass = false;
          break;
        }
      }
    }
    if (pass) {
      if (stats != nullptr) ++stats->level_rows[level];
      if (level + 1 == levels_.size()) {
        if (stats != nullptr) ++stats->rows_joined;
        if (governor == nullptr || governor->CountIntermediateRows(1).ok()) {
          callback(*partial);
        }
      } else {
        RunLevel(level + 1, partial, callback, stats, governor, scratch);
      }
    }
    partial->resize(base);
  };

  // The probe key row is reused across probes of this level (clear keeps
  // the capacity), so equality probing allocates nothing per outer row.
  auto fill_probe_key = [&]() -> Row& {
    Row& key = scratch->probe_keys[level];
    key.clear();
    if (!jl.probe_progs.empty()) {
      for (const CompiledExpr& e : jl.probe_progs) {
        key.push_back(e.Run(*partial, &scratch->eval));
      }
    } else {
      for (const ExprPtr& e : jl.probe_exprs) {
        key.push_back(Evaluate(*e, *partial));
      }
    }
    return key;
  };

  switch (jl.method) {
    case JoinMethod::kSeqScan: {
      if (jl.chunks == nullptr || jl.chunks->version() != table.version()) {
        for (size_t i = 0; i < table.num_rows(); ++i) {
          if (dropped(i)) {
            // Count the pair anyway: the vectorized loop below charges
            // whole chunks, so the counter stays identical across paths.
            if (stats != nullptr) ++stats->join_pairs_examined;
            continue;
          }
          try_row(table.row(i));
        }
        break;
      }
      // Vectorized block nested loop: zone maps are checked against the
      // current outer prefix too (`partial`), so a chunk whose bounds
      // cannot satisfy an outer-vs-inner comparison is skipped for this
      // outer row only — dynamic, per-binding skipping.
      const size_t base = partial->size();
      std::vector<uint32_t>& sel = scratch->sel[level];
      for (const ColumnChunk& chunk : jl.chunks->chunks()) {
        if (governor != nullptr && governor->poisoned()) break;
        if (stats != nullptr) stats->join_pairs_examined += chunk.rows;
        bool refuted = false;
        for (const CompiledExpr& p : jl.residual_progs) {
          if (p.has_zone_checks() && p.ZoneRefutes(chunk, base, partial)) {
            refuted = true;
            break;
          }
        }
        if (refuted) {
          if (stats != nullptr) ++stats->chunks_skipped;
          continue;
        }
        sel.resize(chunk.rows);
        size_t n = 0;
        for (size_t k = 0; k < chunk.rows; ++k) {
          if (dropped(chunk.begin + k)) continue;
          sel[n++] = static_cast<uint32_t>(k);
        }
        if (stats != nullptr) stats->batch_rows += n;
        for (const CompiledExpr& p : jl.residual_progs) {
          if (n == 0) break;
          n = p.FilterBatch(chunk, base, partial, sel.data(), n, sel.data(),
                            &scratch->batch);
        }
        for (size_t k = 0; k < n; ++k) {
          if (governor != nullptr && governor->poisoned()) break;
          if (stats != nullptr) ++stats->level_rows[level];
          const Row& inner_row = table.row(chunk.begin + sel[k]);
          partial->insert(partial->end(), inner_row.begin(), inner_row.end());
          if (level + 1 == levels_.size()) {
            if (stats != nullptr) ++stats->rows_joined;
            if (governor == nullptr ||
                governor->CountIntermediateRows(1).ok()) {
              callback(*partial);
            }
          } else {
            RunLevel(level + 1, partial, callback, stats, governor, scratch);
          }
          partial->resize(base);
        }
      }
      break;
    }
    case JoinMethod::kHashIndexProbe:
    case JoinMethod::kHashJoin: {
      const Row& key = fill_probe_key();
      const HashIndex* index =
          jl.method == JoinMethod::kHashIndexProbe ? jl.hash_index
                                                   : jl.built_hash.get();
      if (stats != nullptr) ++stats->index_probes;
      const std::vector<size_t>* ids = index->Lookup(key);
      if (ids != nullptr) {
        // kHashJoin tables are already built over transfer survivors;
        // pre-existing indexes still contain every row, so check here.
        const bool check = jl.method == JoinMethod::kHashIndexProbe;
        for (size_t id : *ids) {
          if (check && dropped(id)) continue;
          try_row(table.row(id));
        }
      }
      break;
    }
    case JoinMethod::kOrderedIndexProbe: {
      const Row& key = fill_probe_key();
      if (stats != nullptr) ++stats->index_probes;
      for (size_t id : jl.ordered_eq_index->Lookup(key)) {
        if (dropped(id)) continue;
        try_row(table.row(id));
      }
      break;
    }
    case JoinMethod::kOrderedIndexRange: {
      Row& bound = scratch->probe_keys[level];
      bound.clear();
      bound.push_back(jl.bound_prog.valid()
                          ? jl.bound_prog.Run(*partial, &scratch->eval)
                          : Evaluate(*jl.bound_expr, *partial));
      if (stats != nullptr) ++stats->index_probes;
      std::vector<size_t> ids =
          jl.is_lower_bound
              ? jl.range_index->LowerBoundScan(bound, /*strict=*/false)
              : jl.range_index->UpperBoundScan(bound);
      for (size_t id : ids) {
        if (dropped(id)) continue;
        try_row(table.row(id));
      }
      break;
    }
  }
}

std::string JoinPipeline::Explain() const {
  std::string out;
  for (size_t i = levels_.size(); i-- > 0;) {
    const JoinLevel& jl = levels_[i];
    const BoundTableRef& tref = block_->tables[jl.table_index];
    std::string indent((levels_.size() - 1 - i) * 2, ' ');
    out += indent;
    if (i == 0) {
      out += "SeqScan " + tref.table->name() + " [" + tref.alias + "]";
    } else {
      out += std::string(JoinMethodName(jl.method)) + " " +
             tref.table->name() + " [" + tref.alias + "]";
      if (!jl.probe_exprs.empty()) {
        out += " key=(";
        for (size_t k = 0; k < jl.inner_eq_columns.size(); ++k) {
          if (k > 0) out += ", ";
          out += tref.table->schema().column(jl.inner_eq_columns[k]).name;
        }
        out += ")";
      }
      if (jl.method == JoinMethod::kOrderedIndexRange) {
        out += std::string(" bound=") + (jl.is_lower_bound ? ">= " : "<= ") +
               jl.bound_expr->ToString();
      }
    }
    if (!jl.residual.empty()) {
      out += " filter=(" + AndAll(jl.residual)->ToString() + ")";
    }
    if (!jl.residual_progs.empty() || !jl.probe_progs.empty()) {
      size_t ops = 0;
      size_t fused = 0;
      for (const CompiledExpr& p : jl.residual_progs) ops += p.num_ops();
      for (const CompiledExpr& p : jl.probe_progs) ops += p.num_ops();
      if (jl.bound_prog.valid()) ops += jl.bound_prog.num_ops();
      (void)fused;
      out += " [compiled: " + std::to_string(ops) + " ops]";
    }
    if (jl.chunks != nullptr) {
      out += " [vectorized: " + std::to_string(jl.chunks->chunks().size()) +
             " chunks]";
    }
    if (jl.est_rows >= 0.0) {
      char buf[32];
      if (jl.est_rows < 1e7) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(jl.est_rows + 0.5));
      } else {
        std::snprintf(buf, sizeof(buf), "%.3g", jl.est_rows);
      }
      out += std::string(" est_rows=") + buf;
    }
    if (i == 0 && transfer_ != nullptr) {
      out += " [transfer: " + transfer_->Summary() + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace iceberg
