#include "src/fme/linear.h"

#include <cmath>
#include <cstdio>

#include "src/common/logging.h"

namespace iceberg {
namespace fme {

namespace {
constexpr double kEps = 1e-9;
}

int VarPool::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

const std::string& VarPool::Name(int var) const {
  ICEBERG_CHECK(var >= 0 && var < static_cast<int>(names_.size()));
  return names_[static_cast<size_t>(var)];
}

double LinearExpr::Coeff(int var) const {
  auto it = coeffs_.find(var);
  return it == coeffs_.end() ? 0.0 : it->second;
}

void LinearExpr::Add(const LinearExpr& other, double scale) {
  for (const auto& [var, coeff] : other.coeffs_) {
    coeffs_[var] += coeff * scale;
  }
  constant_ += other.constant_ * scale;
  Normalize();
}

void LinearExpr::Scale(double s) {
  for (auto& [var, coeff] : coeffs_) coeff *= s;
  constant_ *= s;
  Normalize();
}

void LinearExpr::Normalize() {
  for (auto it = coeffs_.begin(); it != coeffs_.end();) {
    if (std::fabs(it->second) < kEps) {
      it = coeffs_.erase(it);
    } else {
      ++it;
    }
  }
}

double LinearExpr::Eval(const std::vector<double>& assignment) const {
  double v = constant_;
  for (const auto& [var, coeff] : coeffs_) {
    ICEBERG_CHECK(var >= 0 && var < static_cast<int>(assignment.size()));
    v += coeff * assignment[static_cast<size_t>(var)];
  }
  return v;
}

std::string LinearExpr::ToString(const VarPool& pool) const {
  std::string out;
  bool first = true;
  for (const auto& [var, coeff] : coeffs_) {
    if (!first) out += coeff >= 0 ? " + " : " - ";
    double mag = first ? coeff : std::fabs(coeff);
    first = false;
    if (std::fabs(std::fabs(mag) - 1.0) > kEps) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g*", mag);
      out += buf;
    } else if (mag < 0) {
      out += "-";
    }
    out += pool.Name(var);
  }
  if (first || std::fabs(constant_) > kEps) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", constant_);
    if (!first) out += constant_ >= 0 ? " + " : " - ";
    if (!first && constant_ < 0) {
      std::snprintf(buf, sizeof(buf), "%g", -constant_);
    }
    out += buf;
  }
  return out.empty() ? "0" : out;
}

bool LinAtom::Eval(const std::vector<double>& assignment) const {
  double v = expr.Eval(assignment);
  switch (op) {
    case AtomOp::kLe:
      return v <= kEps;
    case AtomOp::kLt:
      return v < -kEps;
    case AtomOp::kEq:
      return std::fabs(v) <= kEps;
  }
  return false;
}

std::string LinAtom::CanonicalKey() const {
  // Scale so the first (smallest-id) coefficient has magnitude 1 and is
  // positive; equalities always scale positive-leading.
  LinearExpr scaled = expr;
  double lead = 0.0;
  if (!expr.coeffs().empty()) {
    lead = expr.coeffs().begin()->second;
  } else {
    lead = expr.constant() != 0.0 ? std::fabs(expr.constant()) : 1.0;
  }
  AtomOp key_op = op;
  if (lead != 0.0) {
    double s = 1.0 / std::fabs(lead);
    if (op == AtomOp::kEq && lead < 0) s = -s;
    scaled.Scale(s);
  }
  char buf[64];
  std::string out;
  switch (key_op) {
    case AtomOp::kLe:
      out = "<=|";
      break;
    case AtomOp::kLt:
      out = "<|";
      break;
    case AtomOp::kEq:
      out = "=|";
      break;
  }
  for (const auto& [var, coeff] : scaled.coeffs()) {
    std::snprintf(buf, sizeof(buf), "%d:%.6f;", var, coeff);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "c:%.6f", scaled.constant());
  out += buf;
  return out;
}

std::string LinAtom::ToString(const VarPool& pool) const {
  std::string rel;
  switch (op) {
    case AtomOp::kLe:
      rel = " <= 0";
      break;
    case AtomOp::kLt:
      rel = " < 0";
      break;
    case AtomOp::kEq:
      rel = " = 0";
      break;
  }
  return expr.ToString(pool) + rel;
}

}  // namespace fme
}  // namespace iceberg
