#ifndef SMARTICEBERG_FME_FORMULA_H_
#define SMARTICEBERG_FME_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/fme/linear.h"

namespace iceberg {
namespace fme {

enum class FormulaKind {
  kTrue,
  kFalse,
  kAtom,
  kAnd,
  kOr,
  kNot,
  kExists,
  kForall,
};

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// A first-order formula over linear real arithmetic. Immutable after
/// construction; shared subtrees are allowed.
struct Formula {
  FormulaKind kind = FormulaKind::kTrue;
  LinAtom atom;                      // kAtom
  std::vector<FormulaPtr> children;  // kAnd/kOr (n-ary), kNot/quantifier (1)
  int var = -1;                      // quantified variable

  std::string ToString(const VarPool& pool) const;
};

FormulaPtr MakeTrue();
FormulaPtr MakeFalse();
FormulaPtr MakeAtom(LinAtom atom);
/// And/Or flatten nested same-kind children and fold constants.
FormulaPtr MakeAnd(std::vector<FormulaPtr> children);
FormulaPtr MakeOr(std::vector<FormulaPtr> children);
FormulaPtr MakeNot(FormulaPtr child);
FormulaPtr MakeExists(int var, FormulaPtr child);
FormulaPtr MakeForall(int var, FormulaPtr child);

/// Convenience atom builders for `lhs OP rhs`.
FormulaPtr AtomLe(LinearExpr lhs, LinearExpr rhs);
FormulaPtr AtomLt(LinearExpr lhs, LinearExpr rhs);
FormulaPtr AtomEq(LinearExpr lhs, LinearExpr rhs);

/// Evaluates a quantifier-free formula under the assignment.
bool EvalFormula(const Formula& f, const std::vector<double>& assignment);

/// Collects the free variables of `f` into `out`.
void FreeVars(const Formula& f, std::set<int>* out);

/// True if the formula contains a quantifier.
bool HasQuantifier(const Formula& f);

}  // namespace fme
}  // namespace iceberg

#endif  // SMARTICEBERG_FME_FORMULA_H_
