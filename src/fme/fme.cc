#include "src/fme/fme.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>

#include "src/common/logging.h"

namespace iceberg {
namespace fme {

namespace {

/// Negation of a single atom as a formula (may be a disjunction for =).
FormulaPtr NegateAtom(const LinAtom& atom) {
  switch (atom.op) {
    case AtomOp::kLe: {  // not(e <= 0)  ==  e > 0  ==  -e < 0
      LinearExpr e = atom.expr;
      e.Scale(-1.0);
      return MakeAtom(LinAtom{std::move(e), AtomOp::kLt});
    }
    case AtomOp::kLt: {  // not(e < 0)  ==  e >= 0  ==  -e <= 0
      LinearExpr e = atom.expr;
      e.Scale(-1.0);
      return MakeAtom(LinAtom{std::move(e), AtomOp::kLe});
    }
    case AtomOp::kEq: {  // not(e = 0)  ==  e < 0 or -e < 0
      LinearExpr neg = atom.expr;
      neg.Scale(-1.0);
      return MakeOr({MakeAtom(LinAtom{atom.expr, AtomOp::kLt}),
                     MakeAtom(LinAtom{std::move(neg), AtomOp::kLt})});
    }
  }
  return MakeFalse();
}

}  // namespace

FormulaPtr ToNnf(const FormulaPtr& f, bool negate) {
  switch (f->kind) {
    case FormulaKind::kTrue:
      return negate ? MakeFalse() : MakeTrue();
    case FormulaKind::kFalse:
      return negate ? MakeTrue() : MakeFalse();
    case FormulaKind::kAtom:
      return negate ? NegateAtom(f->atom) : f;
    case FormulaKind::kNot:
      return ToNnf(f->children[0], !negate);
    case FormulaKind::kAnd: {
      std::vector<FormulaPtr> children;
      for (const FormulaPtr& c : f->children) {
        children.push_back(ToNnf(c, negate));
      }
      return negate ? MakeOr(std::move(children))
                    : MakeAnd(std::move(children));
    }
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> children;
      for (const FormulaPtr& c : f->children) {
        children.push_back(ToNnf(c, negate));
      }
      return negate ? MakeAnd(std::move(children))
                    : MakeOr(std::move(children));
    }
    case FormulaKind::kExists: {
      FormulaPtr body = ToNnf(f->children[0], negate);
      return negate ? MakeForall(f->var, std::move(body))
                    : MakeExists(f->var, std::move(body));
    }
    case FormulaKind::kForall: {
      FormulaPtr body = ToNnf(f->children[0], negate);
      return negate ? MakeExists(f->var, std::move(body))
                    : MakeForall(f->var, std::move(body));
    }
  }
  return MakeFalse();
}

Result<std::vector<Conjunction>> ToDnf(const FormulaPtr& f,
                                       size_t max_disjuncts) {
  switch (f->kind) {
    case FormulaKind::kTrue:
      return std::vector<Conjunction>{Conjunction{}};
    case FormulaKind::kFalse:
      return std::vector<Conjunction>{};
    case FormulaKind::kAtom:
      return std::vector<Conjunction>{Conjunction{f->atom}};
    case FormulaKind::kOr: {
      std::vector<Conjunction> out;
      for (const FormulaPtr& c : f->children) {
        ICEBERG_ASSIGN_OR_RETURN(std::vector<Conjunction> sub,
                                 ToDnf(c, max_disjuncts));
        for (Conjunction& conj : sub) out.push_back(std::move(conj));
        if (out.size() > max_disjuncts) {
          return Status::NotSupported("DNF blow-up in quantifier elimination");
        }
      }
      return out;
    }
    case FormulaKind::kAnd: {
      std::vector<Conjunction> out{Conjunction{}};
      for (const FormulaPtr& c : f->children) {
        ICEBERG_ASSIGN_OR_RETURN(std::vector<Conjunction> sub,
                                 ToDnf(c, max_disjuncts));
        std::vector<Conjunction> next;
        for (const Conjunction& a : out) {
          for (const Conjunction& b : sub) {
            Conjunction merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
            if (next.size() > max_disjuncts) {
              return Status::NotSupported(
                  "DNF blow-up in quantifier elimination");
            }
          }
        }
        out = std::move(next);
      }
      return out;
    }
    default:
      return Status::Internal("ToDnf requires a quantifier-free NNF formula");
  }
}

Conjunction EliminateVarFme(const Conjunction& conjunction, int var) {
  // Case (i): an equality pins the variable; substitute it away.
  for (size_t i = 0; i < conjunction.size(); ++i) {
    const LinAtom& eq = conjunction[i];
    if (eq.op != AtomOp::kEq) continue;
    double c = eq.expr.Coeff(var);
    if (c == 0.0) continue;
    Conjunction out;
    for (size_t j = 0; j < conjunction.size(); ++j) {
      if (j == i) continue;
      LinAtom atom = conjunction[j];
      double d = atom.expr.Coeff(var);
      if (d != 0.0) {
        // atom.expr + (-d/c) * eq.expr removes var exactly.
        atom.expr.Add(eq.expr, -d / c);
      }
      out.push_back(std::move(atom));
    }
    return out;
  }

  // Case (ii)/(iii): collect lower and upper bounds on var.
  struct Bound {
    LinearExpr expr;  // var >= expr (lower) or var <= expr (upper)
    bool strict;
  };
  std::vector<Bound> lowers, uppers;
  Conjunction out;
  for (const LinAtom& atom : conjunction) {
    double c = atom.expr.Coeff(var);
    if (c == 0.0) {
      out.push_back(atom);
      continue;
    }
    // c*var + r OP 0  with OP in {<=, <}.
    LinearExpr rest = atom.expr;
    rest.Add(LinearExpr::Var(var), -c);  // rest = r
    rest.Scale(-1.0 / c);                // candidate bound value
    bool strict = atom.op == AtomOp::kLt;
    if (c > 0) {
      uppers.push_back({std::move(rest), strict});  // var <= (-r)/c
    } else {
      lowers.push_back({std::move(rest), strict});  // var >= (-r)/c = r/(-c)
    }
  }
  if (lowers.empty() || uppers.empty()) {
    return out;  // case (iii): unbounded on one side, drop var's atoms
  }
  for (const Bound& lo : lowers) {
    for (const Bound& up : uppers) {
      LinearExpr diff = lo.expr;   // lo <= up   <=>   lo - up <= 0
      diff.Add(up.expr, -1.0);
      LinAtom combined{std::move(diff),
                       lo.strict || up.strict ? AtomOp::kLt : AtomOp::kLe};
      out.push_back(std::move(combined));
    }
  }
  return out;
}

namespace {

/// Drops constant atoms, detects contradictions within a disjunct, and
/// dedupes atoms. Returns false when the conjunction is unsatisfiable on
/// its face (a constant-false atom).
bool CleanConjunction(Conjunction* conj) {
  Conjunction out;
  std::set<std::string> seen;
  for (LinAtom& atom : *conj) {
    atom.expr.Normalize();
    if (atom.expr.IsConstant()) {
      if (!atom.Eval({})) return false;
      continue;  // trivially true
    }
    std::string key = atom.CanonicalKey();
    if (seen.insert(key).second) out.push_back(std::move(atom));
  }
  *conj = std::move(out);
  return true;
}

/// Set of canonical keys for a disjunct.
std::set<std::string> KeysOf(const Conjunction& conj) {
  std::set<std::string> keys;
  for (const LinAtom& atom : conj) keys.insert(atom.CanonicalKey());
  return keys;
}

std::vector<Conjunction> NormalizeDnf(std::vector<Conjunction> dnf) {
  // Clean each disjunct; drop contradictions.
  std::vector<Conjunction> cleaned;
  for (Conjunction& conj : dnf) {
    if (CleanConjunction(&conj)) cleaned.push_back(std::move(conj));
  }
  // Absorption: remove any disjunct whose atom set is a superset of
  // another's (the smaller disjunct is weaker, hence implied coverage).
  std::vector<std::set<std::string>> keys;
  keys.reserve(cleaned.size());
  for (const Conjunction& c : cleaned) keys.push_back(KeysOf(c));
  std::vector<bool> dead(cleaned.size(), false);
  for (size_t i = 0; i < cleaned.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < cleaned.size(); ++j) {
      if (i == j || dead[j] || dead[i]) continue;
      bool i_subset_of_j =
          std::includes(keys[j].begin(), keys[j].end(), keys[i].begin(),
                        keys[i].end());
      if (i_subset_of_j) {
        if (keys[i].size() == keys[j].size() && i > j) continue;  // identical
        dead[j] = true;
      }
    }
  }
  std::vector<Conjunction> out;
  for (size_t i = 0; i < cleaned.size(); ++i) {
    if (!dead[i]) out.push_back(std::move(cleaned[i]));
  }
  return out;
}

}  // namespace

FormulaPtr FromDnf(const std::vector<Conjunction>& dnf) {
  std::vector<FormulaPtr> disjuncts;
  for (const Conjunction& conj : dnf) {
    std::vector<FormulaPtr> atoms;
    for (const LinAtom& atom : conj) atoms.push_back(MakeAtom(atom));
    disjuncts.push_back(MakeAnd(std::move(atoms)));
  }
  return MakeOr(std::move(disjuncts));
}

Result<FormulaPtr> SimplifyToDnf(const FormulaPtr& f) {
  FormulaPtr nnf = ToNnf(f);
  if (HasQuantifier(*nnf)) {
    return Status::Internal("SimplifyToDnf requires a quantifier-free input");
  }
  ICEBERG_ASSIGN_OR_RETURN(std::vector<Conjunction> dnf, ToDnf(nnf));
  return FromDnf(NormalizeDnf(std::move(dnf)));
}

Result<FormulaPtr> EliminateQuantifiers(const FormulaPtr& f) {
  switch (f->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
      return f;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> children;
      for (const FormulaPtr& c : f->children) {
        ICEBERG_ASSIGN_OR_RETURN(FormulaPtr qc, EliminateQuantifiers(c));
        children.push_back(std::move(qc));
      }
      return f->kind == FormulaKind::kAnd ? MakeAnd(std::move(children))
                                          : MakeOr(std::move(children));
    }
    case FormulaKind::kNot: {
      ICEBERG_ASSIGN_OR_RETURN(FormulaPtr qc,
                               EliminateQuantifiers(f->children[0]));
      return MakeNot(std::move(qc));
    }
    case FormulaKind::kForall: {
      // (UE) a maximal block of universals dualizes once:
      //   forall x1..xk. theta  ==  not exists x1..xk. not theta.
      std::vector<int> vars{f->var};
      FormulaPtr body = f->children[0];
      while (body->kind == FormulaKind::kForall) {
        vars.push_back(body->var);
        body = body->children[0];
      }
      FormulaPtr exists = MakeNot(body);
      for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
        exists = MakeExists(*it, std::move(exists));
      }
      ICEBERG_ASSIGN_OR_RETURN(FormulaPtr inner,
                               EliminateQuantifiers(exists));
      return SimplifyToDnf(MakeNot(std::move(inner)));
    }
    case FormulaKind::kExists: {
      // A maximal block of existentials is eliminated with ONE DNF
      // conversion: (DE) distributes the block over the disjuncts, and each
      // disjunct stays a conjunction across the per-variable (EE)
      // Fourier-Motzkin projections, so no re-expansion is needed between
      // variables.
      std::vector<int> vars{f->var};
      FormulaPtr body = f->children[0];
      while (body->kind == FormulaKind::kExists) {
        vars.push_back(body->var);
        body = body->children[0];
      }
      ICEBERG_ASSIGN_OR_RETURN(body, EliminateQuantifiers(body));
      FormulaPtr nnf = ToNnf(body);
      ICEBERG_ASSIGN_OR_RETURN(std::vector<Conjunction> dnf, ToDnf(nnf));
      std::vector<Conjunction> projected;
      for (Conjunction& conj : dnf) {
        bool alive = true;
        for (int var : vars) {
          if (!CleanConjunction(&conj)) {
            alive = false;  // contradiction: drop the disjunct
            break;
          }
          conj = EliminateVarFme(conj, var);
        }
        if (alive && CleanConjunction(&conj)) {
          projected.push_back(std::move(conj));
        }
      }
      return FromDnf(NormalizeDnf(std::move(projected)));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace fme
}  // namespace iceberg
