#include "src/fme/formula.h"

#include "src/common/logging.h"

namespace iceberg {
namespace fme {

namespace {

FormulaPtr Make(FormulaKind kind) {
  auto f = std::make_shared<Formula>();
  f->kind = kind;
  return f;
}

}  // namespace

FormulaPtr MakeTrue() { return Make(FormulaKind::kTrue); }
FormulaPtr MakeFalse() { return Make(FormulaKind::kFalse); }

FormulaPtr MakeAtom(LinAtom atom) {
  // Constant-fold variable-free atoms.
  if (atom.expr.IsConstant()) {
    return atom.Eval({}) ? MakeTrue() : MakeFalse();
  }
  auto f = std::make_shared<Formula>();
  f->kind = FormulaKind::kAtom;
  f->atom = std::move(atom);
  return f;
}

FormulaPtr MakeAnd(std::vector<FormulaPtr> children) {
  std::vector<FormulaPtr> flat;
  for (FormulaPtr& c : children) {
    if (c->kind == FormulaKind::kTrue) continue;
    if (c->kind == FormulaKind::kFalse) return MakeFalse();
    if (c->kind == FormulaKind::kAnd) {
      for (const FormulaPtr& g : c->children) flat.push_back(g);
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return MakeTrue();
  if (flat.size() == 1) return flat[0];
  auto f = std::make_shared<Formula>();
  f->kind = FormulaKind::kAnd;
  f->children = std::move(flat);
  return f;
}

FormulaPtr MakeOr(std::vector<FormulaPtr> children) {
  std::vector<FormulaPtr> flat;
  for (FormulaPtr& c : children) {
    if (c->kind == FormulaKind::kFalse) continue;
    if (c->kind == FormulaKind::kTrue) return MakeTrue();
    if (c->kind == FormulaKind::kOr) {
      for (const FormulaPtr& g : c->children) flat.push_back(g);
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return MakeFalse();
  if (flat.size() == 1) return flat[0];
  auto f = std::make_shared<Formula>();
  f->kind = FormulaKind::kOr;
  f->children = std::move(flat);
  return f;
}

FormulaPtr MakeNot(FormulaPtr child) {
  if (child->kind == FormulaKind::kTrue) return MakeFalse();
  if (child->kind == FormulaKind::kFalse) return MakeTrue();
  if (child->kind == FormulaKind::kNot) return child->children[0];
  auto f = std::make_shared<Formula>();
  f->kind = FormulaKind::kNot;
  f->children = {std::move(child)};
  return f;
}

FormulaPtr MakeExists(int var, FormulaPtr child) {
  auto f = std::make_shared<Formula>();
  f->kind = FormulaKind::kExists;
  f->var = var;
  f->children = {std::move(child)};
  return f;
}

FormulaPtr MakeForall(int var, FormulaPtr child) {
  auto f = std::make_shared<Formula>();
  f->kind = FormulaKind::kForall;
  f->var = var;
  f->children = {std::move(child)};
  return f;
}

FormulaPtr AtomLe(LinearExpr lhs, LinearExpr rhs) {
  lhs.Add(rhs, -1.0);
  return MakeAtom(LinAtom{std::move(lhs), AtomOp::kLe});
}

FormulaPtr AtomLt(LinearExpr lhs, LinearExpr rhs) {
  lhs.Add(rhs, -1.0);
  return MakeAtom(LinAtom{std::move(lhs), AtomOp::kLt});
}

FormulaPtr AtomEq(LinearExpr lhs, LinearExpr rhs) {
  lhs.Add(rhs, -1.0);
  return MakeAtom(LinAtom{std::move(lhs), AtomOp::kEq});
}

bool EvalFormula(const Formula& f, const std::vector<double>& assignment) {
  switch (f.kind) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kAtom:
      return f.atom.Eval(assignment);
    case FormulaKind::kAnd:
      for (const FormulaPtr& c : f.children) {
        if (!EvalFormula(*c, assignment)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) {
        if (EvalFormula(*c, assignment)) return true;
      }
      return false;
    case FormulaKind::kNot:
      return !EvalFormula(*f.children[0], assignment);
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      ICEBERG_CHECK(false);  // not evaluable; eliminate quantifiers first
      return false;
  }
  return false;
}

void FreeVars(const Formula& f, std::set<int>* out) {
  switch (f.kind) {
    case FormulaKind::kAtom:
      for (const auto& [var, coeff] : f.atom.expr.coeffs()) {
        (void)coeff;
        out->insert(var);
      }
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      std::set<int> inner;
      FreeVars(*f.children[0], &inner);
      inner.erase(f.var);
      out->insert(inner.begin(), inner.end());
      return;
    }
    default:
      for (const FormulaPtr& c : f.children) FreeVars(*c, out);
  }
}

bool HasQuantifier(const Formula& f) {
  if (f.kind == FormulaKind::kExists || f.kind == FormulaKind::kForall) {
    return true;
  }
  for (const FormulaPtr& c : f.children) {
    if (HasQuantifier(*c)) return true;
  }
  return false;
}

std::string Formula::ToString(const VarPool& pool) const {
  switch (kind) {
    case FormulaKind::kTrue:
      return "TRUE";
    case FormulaKind::kFalse:
      return "FALSE";
    case FormulaKind::kAtom:
      return atom.ToString(pool);
    case FormulaKind::kAnd: {
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " AND ";
        out += children[i]->ToString(pool);
      }
      return out + ")";
    }
    case FormulaKind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " OR ";
        out += children[i]->ToString(pool);
      }
      return out + ")";
    }
    case FormulaKind::kNot:
      return "NOT " + children[0]->ToString(pool);
    case FormulaKind::kExists:
      return "EXISTS " + pool.Name(var) + ". " + children[0]->ToString(pool);
    case FormulaKind::kForall:
      return "FORALL " + pool.Name(var) + ". " + children[0]->ToString(pool);
  }
  return "?";
}

}  // namespace fme
}  // namespace iceberg
