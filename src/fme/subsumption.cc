#include "src/fme/subsumption.h"

#include <algorithm>

#include "src/common/logging.h"

namespace iceberg {
namespace fme {

namespace {

/// Translates a scalar expression into a LinearExpr (fails on anything
/// non-linear).
Status TranslateLinear(const ExprPtr& e, VarPool* pool,
                       const std::function<int(int)>& var_of,
                       LinearExpr* out) {
  switch (e->kind) {
    case ExprKind::kLiteral: {
      if (!e->literal.is_numeric()) {
        return Status::NotSupported("non-numeric literal in linear context: " +
                                    e->ToString());
      }
      *out = LinearExpr(e->literal.AsDouble());
      return Status::OK();
    }
    case ExprKind::kColumnRef: {
      int var = var_of(e->resolved_index);
      if (var < 0) {
        return Status::NotSupported("column not mappable to a variable: " +
                                    e->ToString());
      }
      *out = LinearExpr::Var(var);
      return Status::OK();
    }
    case ExprKind::kUnary: {
      if (e->uop != UnaryOp::kNeg) {
        return Status::NotSupported("NOT in scalar context");
      }
      LinearExpr inner;
      ICEBERG_RETURN_NOT_OK(
          TranslateLinear(e->children[0], pool, var_of, &inner));
      inner.Scale(-1.0);
      *out = std::move(inner);
      return Status::OK();
    }
    case ExprKind::kBinary: {
      LinearExpr l, r;
      switch (e->bop) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
          ICEBERG_RETURN_NOT_OK(
              TranslateLinear(e->children[0], pool, var_of, &l));
          ICEBERG_RETURN_NOT_OK(
              TranslateLinear(e->children[1], pool, var_of, &r));
          l.Add(r, e->bop == BinaryOp::kAdd ? 1.0 : -1.0);
          *out = std::move(l);
          return Status::OK();
        case BinaryOp::kMul:
          ICEBERG_RETURN_NOT_OK(
              TranslateLinear(e->children[0], pool, var_of, &l));
          ICEBERG_RETURN_NOT_OK(
              TranslateLinear(e->children[1], pool, var_of, &r));
          if (r.IsConstant()) {
            l.Scale(r.constant());
            *out = std::move(l);
            return Status::OK();
          }
          if (l.IsConstant()) {
            r.Scale(l.constant());
            *out = std::move(r);
            return Status::OK();
          }
          return Status::NotSupported("non-linear multiplication: " +
                                      e->ToString());
        case BinaryOp::kDiv:
          ICEBERG_RETURN_NOT_OK(
              TranslateLinear(e->children[0], pool, var_of, &l));
          ICEBERG_RETURN_NOT_OK(
              TranslateLinear(e->children[1], pool, var_of, &r));
          if (r.IsConstant() && r.constant() != 0.0) {
            l.Scale(1.0 / r.constant());
            *out = std::move(l);
            return Status::OK();
          }
          return Status::NotSupported("non-constant divisor: " +
                                      e->ToString());
        default:
          return Status::NotSupported("predicate in scalar context: " +
                                      e->ToString());
      }
    }
    default:
      return Status::NotSupported("aggregate in join condition: " +
                                  e->ToString());
  }
}

}  // namespace

Result<FormulaPtr> TranslatePredicate(
    const ExprPtr& e, VarPool* pool,
    const std::function<int(int)>& var_of) {
  switch (e->kind) {
    case ExprKind::kLiteral:
      return e->literal.AsBool() ? MakeTrue() : MakeFalse();
    case ExprKind::kUnary: {
      if (e->uop != UnaryOp::kNeg) {
        ICEBERG_ASSIGN_OR_RETURN(
            FormulaPtr inner, TranslatePredicate(e->children[0], pool, var_of));
        return MakeNot(std::move(inner));
      }
      return Status::NotSupported("negation as predicate: " + e->ToString());
    }
    case ExprKind::kBinary: {
      if (e->bop == BinaryOp::kAnd || e->bop == BinaryOp::kOr) {
        ICEBERG_ASSIGN_OR_RETURN(
            FormulaPtr l, TranslatePredicate(e->children[0], pool, var_of));
        ICEBERG_ASSIGN_OR_RETURN(
            FormulaPtr r, TranslatePredicate(e->children[1], pool, var_of));
        return e->bop == BinaryOp::kAnd ? MakeAnd({std::move(l), std::move(r)})
                                        : MakeOr({std::move(l), std::move(r)});
      }
      if (!IsComparisonOp(e->bop)) {
        return Status::NotSupported("arithmetic result as predicate: " +
                                    e->ToString());
      }
      LinearExpr l, r;
      ICEBERG_RETURN_NOT_OK(TranslateLinear(e->children[0], pool, var_of, &l));
      ICEBERG_RETURN_NOT_OK(TranslateLinear(e->children[1], pool, var_of, &r));
      switch (e->bop) {
        case BinaryOp::kLe:
          return AtomLe(std::move(l), std::move(r));
        case BinaryOp::kLt:
          return AtomLt(std::move(l), std::move(r));
        case BinaryOp::kGe:
          return AtomLe(std::move(r), std::move(l));
        case BinaryOp::kGt:
          return AtomLt(std::move(r), std::move(l));
        case BinaryOp::kEq:
          return AtomEq(std::move(l), std::move(r));
        case BinaryOp::kNe:
          return MakeNot(AtomEq(std::move(l), std::move(r)));
        default:
          break;
      }
      return Status::Internal("unreachable comparison");
    }
    default:
      return Status::NotSupported("unsupported predicate node: " +
                                  e->ToString());
  }
}

bool SubsumptionTest::Subsumes(const Row& w, const Row& w_prime) const {
  ICEBERG_DCHECK(w.size() == w_var_of_position_.size());
  ICEBERG_DCHECK(w_prime.size() == w_var_of_position_.size());
  for (size_t pos : equal_positions_) {
    if (w[pos].Compare(w_prime[pos]) != 0) return false;
  }
  if (formula_ == nullptr) return true;
  if (formula_->kind == FormulaKind::kTrue) return true;
  if (formula_->kind == FormulaKind::kFalse) return false;
  std::vector<double> assignment(static_cast<size_t>(pool_.size()), 0.0);
  for (size_t pos = 0; pos < w.size(); ++pos) {
    int wv = w_var_of_position_[pos];
    if (wv >= 0) {
      if (!w[pos].is_numeric()) return false;
      assignment[static_cast<size_t>(wv)] = w[pos].AsDouble();
    }
    int wpv = w_prime_var_of_position_[pos];
    if (wpv >= 0) {
      if (!w_prime[pos].is_numeric()) return false;
      assignment[static_cast<size_t>(wpv)] = w_prime[pos].AsDouble();
    }
  }
  return EvalFormula(*formula_, assignment);
}

std::string SubsumptionTest::ToString() const {
  std::string out;
  for (size_t pos : equal_positions_) {
    if (!out.empty()) out += " AND ";
    out += "w[" + std::to_string(pos) + "] = w'[" + std::to_string(pos) + "]";
  }
  if (formula_ != nullptr && formula_->kind != FormulaKind::kTrue) {
    if (!out.empty()) out += " AND ";
    out += formula_->ToString(pool_);
  }
  return out.empty() ? "TRUE" : out;
}

bool SubsumptionTest::IsNeverTrue() const {
  return formula_ != nullptr && formula_->kind == FormulaKind::kFalse;
}

bool SubsumptionTest::IsEqualityOnly() const {
  if (formula_ == nullptr || formula_->kind == FormulaKind::kTrue) {
    return true;  // only equality residue (or nothing) constrains w vs w'
  }
  // Equality-only means every atom of the (conjunctive) formula is one half
  // of a w_i = w'_i constraint — i.e. its position is in EqualityPositions.
  std::vector<const Formula*> atoms;
  if (formula_->kind == FormulaKind::kAtom) {
    atoms.push_back(formula_.get());
  } else if (formula_->kind == FormulaKind::kAnd) {
    for (const FormulaPtr& c : formula_->children) {
      if (c->kind != FormulaKind::kAtom) return false;
      atoms.push_back(c.get());
    }
  } else {
    return false;
  }
  std::vector<size_t> eq_positions = EqualityPositions();
  for (const Formula* atom : atoms) {
    const LinearExpr& e = atom->atom.expr;
    if (e.coeffs().size() != 2 || e.constant() != 0.0) return false;
    bool covered = false;
    for (size_t pos : eq_positions) {
      int wv = w_var_of_position_[pos];
      int wpv = w_prime_var_of_position_[pos];
      if (wv >= 0 && wpv >= 0 && e.Coeff(wv) != 0.0 &&
          e.Coeff(wv) == -e.Coeff(wpv)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::vector<size_t> SubsumptionTest::EqualityPositions() const {
  std::set<size_t> out(equal_positions_.begin(), equal_positions_.end());
  // Only a pure conjunction guarantees its atoms globally.
  std::vector<const Formula*> atoms;
  if (formula_ != nullptr) {
    if (formula_->kind == FormulaKind::kAtom) {
      atoms.push_back(formula_.get());
    } else if (formula_->kind == FormulaKind::kAnd) {
      for (const FormulaPtr& c : formula_->children) {
        if (c->kind == FormulaKind::kAtom) atoms.push_back(c.get());
      }
    }
  }
  std::map<size_t, int> bound_kinds;  // position -> bit 1: <=, bit 2: >=
  for (const Formula* atom : atoms) {
    const LinearExpr& e = atom->atom.expr;
    if (e.coeffs().size() != 2 || e.constant() != 0.0) continue;
    for (size_t pos = 0; pos < w_var_of_position_.size(); ++pos) {
      int wv = w_var_of_position_[pos];
      int wpv = w_prime_var_of_position_[pos];
      if (wv < 0 || wpv < 0) continue;
      double a = e.Coeff(wv);
      double b = e.Coeff(wpv);
      if (a == 0.0 || b == 0.0 || a != -b) continue;
      if (atom->atom.op == AtomOp::kEq) {
        bound_kinds[pos] |= 3;
      } else if (a > 0) {  // w - w' <= 0
        bound_kinds[pos] |= 1;
      } else {  // w' - w <= 0
        bound_kinds[pos] |= 2;
      }
    }
  }
  for (const auto& [pos, kinds] : bound_kinds) {
    if (kinds == 3) out.insert(pos);
  }
  return std::vector<size_t>(out.begin(), out.end());
}

Result<SubsumptionTest> DeriveSubsumption(const SubsumptionSpec& spec) {
  SubsumptionTest test;
  VarPool& pool = test.pool_;

  // Position of each binding offset in the binding row.
  auto position_of = [&](size_t offset) -> int {
    for (size_t i = 0; i < spec.binding_offsets.size(); ++i) {
      if (spec.binding_offsets[i] == offset) return static_cast<int>(i);
    }
    return -1;
  };

  // Route string-typed equality conjuncts L.a = R.b to the equality
  // residue; everything else must be numeric-linear.
  std::vector<ExprPtr> numeric_theta;
  std::set<size_t> equal_pos_set;
  for (const ExprPtr& conjunct : spec.theta) {
    bool routed = false;
    if (conjunct->kind == ExprKind::kBinary &&
        conjunct->bop == BinaryOp::kEq &&
        conjunct->children[0]->kind == ExprKind::kColumnRef &&
        conjunct->children[1]->kind == ExprKind::kColumnRef) {
      const Expr& a = *conjunct->children[0];
      const Expr& b = *conjunct->children[1];
      size_t ao = static_cast<size_t>(a.resolved_index);
      size_t bo = static_cast<size_t>(b.resolved_index);
      bool a_left = spec.is_left_offset(ao);
      bool b_left = spec.is_left_offset(bo);
      bool is_string =
          (ao < spec.types_by_offset.size() &&
           spec.types_by_offset[ao] == DataType::kString) ||
          (bo < spec.types_by_offset.size() &&
           spec.types_by_offset[bo] == DataType::kString);
      if (is_string && a_left != b_left) {
        size_t left_offset = a_left ? ao : bo;
        int pos = position_of(left_offset);
        if (pos < 0) {
          return Status::Internal(
              "join attribute missing from binding layout");
        }
        equal_pos_set.insert(static_cast<size_t>(pos));
        routed = true;
      }
    }
    if (!routed) numeric_theta.push_back(conjunct);
  }

  // Allocate w / w' variables for binding positions and wr variables for
  // R-side columns.
  test.w_var_of_position_.assign(spec.binding_offsets.size(), -1);
  test.w_prime_var_of_position_.assign(spec.binding_offsets.size(), -1);
  std::map<size_t, int> wr_var_of_offset;

  auto var_for = [&](int flat_offset, bool prime) -> int {
    size_t offset = static_cast<size_t>(flat_offset);
    if (spec.is_left_offset(offset)) {
      int pos = position_of(offset);
      if (pos < 0) return -1;
      std::vector<int>& slot =
          prime ? test.w_prime_var_of_position_ : test.w_var_of_position_;
      if (slot[static_cast<size_t>(pos)] < 0) {
        std::string name = (prime ? "w'." : "w.") + std::to_string(pos);
        slot[static_cast<size_t>(pos)] = pool.Intern(name);
      }
      return slot[static_cast<size_t>(pos)];
    }
    auto it = wr_var_of_offset.find(offset);
    if (it != wr_var_of_offset.end()) return it->second;
    int var = pool.Intern("wr." + std::to_string(offset));
    wr_var_of_offset.emplace(offset, var);
    return var;
  };

  // Theta(w, wr) and Theta(w', wr).
  std::vector<FormulaPtr> theta_w_parts, theta_wp_parts;
  for (const ExprPtr& conjunct : numeric_theta) {
    ICEBERG_ASSIGN_OR_RETURN(
        FormulaPtr fw,
        TranslatePredicate(conjunct, &pool,
                           [&](int off) { return var_for(off, false); }));
    ICEBERG_ASSIGN_OR_RETURN(
        FormulaPtr fwp,
        TranslatePredicate(conjunct, &pool,
                           [&](int off) { return var_for(off, true); }));
    theta_w_parts.push_back(std::move(fw));
    theta_wp_parts.push_back(std::move(fwp));
  }
  FormulaPtr theta_w = MakeAnd(std::move(theta_w_parts));
  FormulaPtr theta_wp = MakeAnd(std::move(theta_wp_parts));

  // forall wr: Theta(w', wr) => Theta(w, wr).
  FormulaPtr body = MakeOr({MakeNot(std::move(theta_wp)), std::move(theta_w)});
  FormulaPtr quantified = std::move(body);
  for (const auto& [offset, var] : wr_var_of_offset) {
    (void)offset;
    quantified = MakeForall(var, std::move(quantified));
  }

  ICEBERG_ASSIGN_OR_RETURN(FormulaPtr eliminated,
                           EliminateQuantifiers(quantified));
  ICEBERG_ASSIGN_OR_RETURN(test.formula_, SimplifyToDnf(eliminated));
  test.equal_positions_.assign(equal_pos_set.begin(), equal_pos_set.end());
  return test;
}

}  // namespace fme
}  // namespace iceberg
