#ifndef SMARTICEBERG_FME_SUBSUMPTION_H_
#define SMARTICEBERG_FME_SUBSUMPTION_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/expr/expr.h"
#include "src/fme/fme.h"

namespace iceberg {
namespace fme {

/// Translates a bound SQL predicate into a linear-arithmetic formula.
/// `var_of` maps a column reference (by its resolved flat offset) to a
/// variable id; returning -1 marks the column unsupported and fails the
/// translation. Supported: comparisons of linear scalar expressions,
/// AND/OR/NOT, numeric literals, + and -, multiplication/division by
/// constants.
Result<FormulaPtr> TranslatePredicate(
    const ExprPtr& e, VarPool* pool,
    const std::function<int(int flat_offset)>& var_of);

/// Inputs describing the join condition Theta of an NLJP candidate.
struct SubsumptionSpec {
  /// Join conjuncts (bound; column refs carry flat offsets).
  std::vector<ExprPtr> theta;
  /// The binding attributes J_L in binding-row layout order (flat offsets).
  std::vector<size_t> binding_offsets;
  /// Distinguishes outer (L) column offsets from inner (R) offsets.
  std::function<bool(size_t flat_offset)> is_left_offset;
  /// Column type per flat offset (for routing string equalities).
  std::vector<DataType> types_by_offset;
};

/// The compiled instance-oblivious subsumption test p>=(w, w') of
/// Definition 4 / Section 5.2: Subsumes(w, w') is true only if every
/// R-tuple joining with binding w' also joins with binding w, on every
/// database instance.
class SubsumptionTest {
 public:
  /// Tests w >= w' (w subsumes w'). Rows use the binding layout of
  /// SubsumptionSpec::binding_offsets.
  bool Subsumes(const Row& w, const Row& w_prime) const;

  /// Human-readable derived predicate, e.g.
  /// "w.x <= w'.x AND w.y <= w'.y".
  std::string ToString() const;

  /// True if the derived predicate is the trivially-false formula, i.e. no
  /// binding ever subsumes another (pruning would be useless).
  bool IsNeverTrue() const;

  /// True if the predicate degenerates to requiring w = w' on all binding
  /// attributes (pruning adds nothing beyond memoization).
  bool IsEqualityOnly() const;

  /// Binding positions on which p>= *requires* w[i] = w'[i] (the string
  /// residue plus formula components of the form w_i <= w'_i AND
  /// w_i >= w'_i). Callers may bucket cached bindings by these positions:
  /// entries differing there can never subsume each other, so the bucket
  /// lookup is a lossless accelerator for the pruning query Q_C.
  std::vector<size_t> EqualityPositions() const;

 private:
  friend Result<SubsumptionTest> DeriveSubsumption(
      const SubsumptionSpec& spec);

  FormulaPtr formula_;  // over w / w' vars; nullptr means TRUE
  VarPool pool_;
  // Per binding-row position: var ids (-1 when the position does not appear
  // in the numeric part).
  std::vector<int> w_var_of_position_;
  std::vector<int> w_prime_var_of_position_;
  // Positions that must satisfy w[i] == w'[i] (string-equality residue).
  std::vector<size_t> equal_positions_;
};

/// Derives p>= by the paper's Section 5.2 procedure:
///
///   p>=(w,w') = forall wr: Theta(w', wr) => Theta(w, wr)
///
/// expanded per attribute, put in NNF, with universal quantifiers dualized
/// (UE), existentials distributed over disjunctions (DE), and variables
/// eliminated by Fourier-Motzkin (EE). String-typed equality conjuncts
/// L.a = R.b contribute the (sound) residue w.a = w'.a instead of entering
/// the linear system.
///
/// Fails with NotSupported when Theta is not linear over the reals (beyond
/// the string-equality case) — callers then simply skip pruning.
Result<SubsumptionTest> DeriveSubsumption(const SubsumptionSpec& spec);

}  // namespace fme
}  // namespace iceberg

#endif  // SMARTICEBERG_FME_SUBSUMPTION_H_
