#ifndef SMARTICEBERG_FME_FME_H_
#define SMARTICEBERG_FME_FME_H_

#include <vector>

#include "src/common/status.h"
#include "src/fme/formula.h"

namespace iceberg {
namespace fme {

/// A conjunction of linear atoms (one DNF disjunct).
using Conjunction = std::vector<LinAtom>;

/// Rewrites into negation normal form: NOT appears nowhere (atom negation
/// is expressed by flipping the comparison; negated equalities become
/// strict-inequality disjunctions). Quantifiers are dualized as needed.
FormulaPtr ToNnf(const FormulaPtr& f, bool negate = false);

/// Converts a quantifier-free NNF formula to DNF. Fails (NotSupported) if
/// the number of disjuncts would exceed `max_disjuncts`.
Result<std::vector<Conjunction>> ToDnf(const FormulaPtr& f,
                                       size_t max_disjuncts = 50000);

/// One Fourier-Motzkin step: eliminates `var` from a conjunction of linear
/// constraints, returning an equivalent (w.r.t. satisfiability over the
/// remaining variables) conjunction without `var`. Implements the three
/// cases of Section 5.2: substitution via equalities, cross-combination of
/// lower/upper bounds, and dropping one-sided variables.
Conjunction EliminateVarFme(const Conjunction& conjunction, int var);

/// Eliminates every quantifier using the UE / DE / EE steps of the paper's
/// derivation procedure (Section 5.2): universal quantifiers are dualized,
/// existentials distribute over DNF disjuncts, and each disjunct is
/// projected by Fourier-Motzkin elimination.
Result<FormulaPtr> EliminateQuantifiers(const FormulaPtr& f);

/// Normalizes a quantifier-free formula to a compact DNF: constant folding,
/// duplicate-atom and duplicate-disjunct removal, and absorption (a
/// disjunct that is a superset of another is dropped).
Result<FormulaPtr> SimplifyToDnf(const FormulaPtr& f);

/// Builds a formula back from DNF disjuncts.
FormulaPtr FromDnf(const std::vector<Conjunction>& dnf);

}  // namespace fme
}  // namespace iceberg

#endif  // SMARTICEBERG_FME_FME_H_
