#ifndef SMARTICEBERG_FME_LINEAR_H_
#define SMARTICEBERG_FME_LINEAR_H_

#include <map>
#include <string>
#include <vector>

namespace iceberg {
namespace fme {

/// Variables are interned integers; VarPool maps them to names for
/// diagnostics.
class VarPool {
 public:
  /// Returns the id for `name`, creating it if needed.
  int Intern(const std::string& name);
  const std::string& Name(int var) const;
  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::map<std::string, int> ids_;
};

/// A linear expression sum(coeff_i * var_i) + constant over the reals.
class LinearExpr {
 public:
  LinearExpr() = default;
  explicit LinearExpr(double constant) : constant_(constant) {}

  static LinearExpr Var(int var) {
    LinearExpr e;
    e.coeffs_[var] = 1.0;
    return e;
  }

  double constant() const { return constant_; }
  const std::map<int, double>& coeffs() const { return coeffs_; }

  /// Coefficient of `var` (0 if absent).
  double Coeff(int var) const;
  bool HasVar(int var) const { return Coeff(var) != 0.0; }
  bool IsConstant() const { return coeffs_.empty(); }

  void Add(const LinearExpr& other, double scale = 1.0);
  void AddConstant(double c) { constant_ += c; }
  void Scale(double s);

  /// Removes zero coefficients (called after arithmetic).
  void Normalize();

  /// Evaluates with the given assignment (indexed by var id).
  double Eval(const std::vector<double>& assignment) const;

  std::string ToString(const VarPool& pool) const;

 private:
  std::map<int, double> coeffs_;
  double constant_ = 0.0;
};

/// Comparison operator of a normalized atom `expr OP 0`.
enum class AtomOp {
  kLe,  // expr <= 0
  kLt,  // expr <  0
  kEq,  // expr  = 0
};

/// A linear constraint in normalized form `expr OP 0`.
struct LinAtom {
  LinearExpr expr;
  AtomOp op = AtomOp::kLe;

  bool Eval(const std::vector<double>& assignment) const;

  /// Canonical key for deduplication: scales so the leading coefficient is
  /// +-1 and rounds to limit float noise.
  std::string CanonicalKey() const;

  std::string ToString(const VarPool& pool) const;
};

}  // namespace fme
}  // namespace iceberg

#endif  // SMARTICEBERG_FME_LINEAR_H_
