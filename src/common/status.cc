#include "src/common/status.h"

namespace iceberg {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  if (IsRetryable()) out += " (retryable)";
  return out;
}

}  // namespace iceberg
