#ifndef SMARTICEBERG_COMMON_SHAPE_H_
#define SMARTICEBERG_COMMON_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace iceberg {

/// One literal extracted during shape normalization, in source order with
/// its verbatim spelling (string literals keep their quotes). Captured at
/// fingerprint time so plan-cache consumers can see the parameter vector
/// of a statement without re-scanning it.
struct ShapeLiteral {
  enum Kind { kInt, kDouble, kString };
  Kind kind = kInt;
  std::string text;
};

/// Normalized identity of a SQL statement, in two strengths:
///
///  - `fingerprint` hashes the statement with case and whitespace
///    normalized but *literals kept*. Two statements with equal
///    fingerprints compute the same result over the same table versions,
///    which is what makes it a sound cross-query cache key (the NLJP memo
///    stores concrete inner-query results — they depend on the literals).
///  - `shape_hash` additionally abstracts literals to a placeholder
///    (mongo's queryShapeHash idea), grouping "the same query with
///    different constants". Keys the plan cache (together with the catalog
///    version hash) and per-shape observability.
struct QueryShape {
  uint64_t fingerprint = 0;
  uint64_t shape_hash = 0;
  std::string normalized;  // lower-cased, whitespace-collapsed statement
  std::string shape;       // normalized with literals replaced by '?'
  std::vector<ShapeLiteral> literals;  // source-order literal vector
};

/// Computes both normal forms in one pass. Case is lowered and whitespace
/// collapsed only *outside* single-quoted string literals. Literal
/// scanning understands exponent floats (1e-3), a sign absorbed into the
/// literal when it follows an operator or list opener, doubled-quote
/// escapes inside strings (''), and collapses a comma-separated run of
/// literals (an IN list) into a single '?' slot of the shape form — the
/// run's literals all still appear in `normalized` and `literals`, so the
/// fingerprint stays value-exact. Purely lexical — no parse is needed, so
/// it is cheap enough to run on every statement a session submits.
QueryShape ComputeQueryShape(const std::string& sql);

}  // namespace iceberg

#endif  // SMARTICEBERG_COMMON_SHAPE_H_
