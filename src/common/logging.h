#ifndef SMARTICEBERG_COMMON_LOGGING_H_
#define SMARTICEBERG_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

/// Internal invariant check. Unlike Status-based error handling (used for
/// all user-reachable failures), a failed check indicates a library bug and
/// aborts the process.
#define ICEBERG_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "ICEBERG_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                           \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define ICEBERG_DCHECK(cond) ICEBERG_CHECK(cond)

namespace iceberg {

/// Severity levels for diagnostic logging. Unlike ICEBERG_CHECK (library
/// bugs, aborts) and Status (user-reachable failures, returned), log lines
/// are advisory: degradations taken, inputs skipped, limits approached.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

namespace logging_internal {

inline LogLevel LevelFromEnv() {
  const char* env = std::getenv("ICEBERG_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

inline std::atomic<int>& MinLevelFlag() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnv())};
  return level;
}

}  // namespace logging_internal

/// Messages below this level are compiled to a branch and nothing else.
/// Default kWarn; overridable with ICEBERG_LOG_LEVEL=debug|info|warn|error|off
/// or at runtime (tests) with SetMinLogLevel.
inline LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      logging_internal::MinLevelFlag().load(std::memory_order_relaxed));
}

inline void SetMinLogLevel(LogLevel level) {
  logging_internal::MinLevelFlag().store(static_cast<int>(level),
                                         std::memory_order_relaxed);
}

inline bool LogEnabled(LogLevel level) { return level >= MinLogLevel(); }

namespace logging_internal {

/// Collects one log line and writes it to stderr atomically (single
/// fprintf) on destruction, so concurrent workers never interleave
/// mid-line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << Name(level) << "] " << (base ? base + 1 : file) << ":"
            << line << ": ";
  }
  ~LogMessage() {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
  }

  LogLevel level_;
  std::ostringstream stream_;
};

// Shouty aliases so call sites read ICEBERG_LOG(WARN), not ICEBERG_LOG(Warn).
inline constexpr LogLevel kDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kINFO = LogLevel::kInfo;
inline constexpr LogLevel kWARN = LogLevel::kWarn;
inline constexpr LogLevel kERROR = LogLevel::kError;

}  // namespace logging_internal
}  // namespace iceberg

/// Leveled diagnostic logging: ICEBERG_LOG(WARN) << "shed " << n;
/// A disabled level costs one relaxed atomic load and a branch; the stream
/// expression is never evaluated.
#define ICEBERG_LOG(severity)                                                 \
  if (!::iceberg::LogEnabled(::iceberg::logging_internal::k##severity))       \
    ;                                                                         \
  else                                                                        \
    ::iceberg::logging_internal::LogMessage(                                  \
        ::iceberg::logging_internal::k##severity, __FILE__, __LINE__)         \
        .stream()

#endif  // SMARTICEBERG_COMMON_LOGGING_H_
