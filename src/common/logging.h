#ifndef SMARTICEBERG_COMMON_LOGGING_H_
#define SMARTICEBERG_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant check. Unlike Status-based error handling (used for
/// all user-reachable failures), a failed check indicates a library bug and
/// aborts the process.
#define ICEBERG_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "ICEBERG_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                           \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define ICEBERG_DCHECK(cond) ICEBERG_CHECK(cond)

#endif  // SMARTICEBERG_COMMON_LOGGING_H_
