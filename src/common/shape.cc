#include "src/common/shape.h"

#include <cctype>

namespace iceberg {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

/// Scans a numeric literal starting at `i` (first digit or leading dot),
/// including a decimal part and an exponent (1e-3, 2.5E+7). Returns
/// one-past-the-end and whether the spelling is a double.
size_t ScanNumber(const std::string& sql, size_t i, bool* is_double) {
  const size_t n = sql.size();
  *is_double = false;
  while (i < n && (IsDigit(sql[i]) || sql[i] == '.')) {
    if (sql[i] == '.') *is_double = true;
    ++i;
  }
  if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
    size_t j = i + 1;
    if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
    if (j < n && IsDigit(sql[j])) {
      *is_double = true;
      i = j;
      while (i < n && IsDigit(sql[i])) ++i;
    }
  }
  return i;
}

/// Scans a string literal whose opening quote is at `i`, honoring doubled
/// quotes ('') as escapes. Returns one past the closing quote, or n when
/// the literal is unterminated (the parser rejects it later; the shape is
/// still deterministic).
size_t ScanString(const std::string& sql, size_t i) {
  const size_t n = sql.size();
  ++i;  // opening quote
  while (i < n) {
    if (sql[i] == '\'') {
      if (i + 1 < n && sql[i + 1] == '\'') {
        i += 2;
        continue;
      }
      return i + 1;
    }
    ++i;
  }
  return n;
}

/// True when a numeric literal could start at `i`: a digit, or a dot
/// directly followed by a digit.
bool StartsNumber(const std::string& sql, size_t i) {
  if (i >= sql.size()) return false;
  if (IsDigit(sql[i])) return true;
  return sql[i] == '.' && i + 1 < sql.size() && IsDigit(sql[i + 1]);
}

}  // namespace

QueryShape ComputeQueryShape(const std::string& sql) {
  QueryShape out;
  std::string& norm = out.normalized;
  std::string& shape = out.shape;
  norm.reserve(sql.size());
  shape.reserve(sql.size());

  size_t i = 0;
  const size_t n = sql.size();
  bool pending_space = false;
  // Collapse runs of whitespace to one space, and trim the ends lazily.
  auto flush_space = [&] {
    if (pending_space && !norm.empty()) {
      norm.push_back(' ');
      shape.push_back(' ');
    }
    pending_space = false;
  };

  // A '-' absorbs into a following numeric literal only after an operator
  // or list opener; after an identifier or another literal it is binary
  // minus. norm's last character is the previous significant character
  // (pending whitespace is not yet emitted).
  auto sign_position = [&] {
    if (norm.empty()) return true;
    const char p = norm.back();
    return p == '(' || p == '<' || p == '>' || p == '=' || p == ',' ||
           p == '+' || p == '-' || p == '*' || p == '/' || p == '%';
  };

  // Scans one literal at `j` (string, number, or signed number when
  // `allow_sign`); fills end offset and kind.
  auto scan_literal = [&](size_t j, bool allow_sign, size_t* end,
                          ShapeLiteral::Kind* kind) {
    if (j >= n) return false;
    if (sql[j] == '\'') {
      *end = ScanString(sql, j);
      *kind = ShapeLiteral::kString;
      return true;
    }
    size_t k = j;
    if (allow_sign && sql[k] == '-' && StartsNumber(sql, k + 1)) ++k;
    if (!StartsNumber(sql, k)) return false;
    bool is_double = false;
    *end = ScanNumber(sql, k, &is_double);
    *kind = is_double ? ShapeLiteral::kDouble : ShapeLiteral::kInt;
    return true;
  };

  while (i < n) {
    const char c = sql[i];
    if (IsSpace(c)) {
      pending_space = true;
      ++i;
      continue;
    }

    // Numeric literals must not start inside an identifier ("t1"); a
    // pending space means the digit starts a fresh token ("LIMIT 10").
    const bool ident_prev =
        !pending_space && !norm.empty() &&
        (std::isalnum(static_cast<unsigned char>(norm.back())) ||
         norm.back() == '_');

    size_t end = 0;
    ShapeLiteral::Kind kind = ShapeLiteral::kInt;
    bool is_literal = false;
    if (c == '\'') {
      is_literal = scan_literal(i, /*allow_sign=*/false, &end, &kind);
    } else if (IsDigit(c) && !ident_prev) {
      is_literal = scan_literal(i, /*allow_sign=*/false, &end, &kind);
    } else if (c == '-' && sign_position() && StartsNumber(sql, i + 1)) {
      is_literal = scan_literal(i, /*allow_sign=*/true, &end, &kind);
    }

    if (is_literal) {
      flush_space();
      norm.append(sql, i, end - i);
      shape.push_back('?');
      out.literals.push_back({kind, sql.substr(i, end - i)});
      i = end;
      // IN-list collapse: a comma-separated run of further literals joins
      // this '?' slot, so IN (1,2,3) and IN (4,5) share a shape. The run
      // stays value-exact in the normalized (fingerprint) form.
      for (;;) {
        size_t j = i;
        while (j < n && IsSpace(sql[j])) ++j;
        if (j >= n || sql[j] != ',') break;
        size_t k = j + 1;
        while (k < n && IsSpace(sql[k])) ++k;
        size_t lit_end = 0;
        ShapeLiteral::Kind lit_kind = ShapeLiteral::kInt;
        if (!scan_literal(k, /*allow_sign=*/true, &lit_end, &lit_kind)) break;
        norm.push_back(',');
        norm.append(sql, k, lit_end - k);
        out.literals.push_back({lit_kind, sql.substr(k, lit_end - k)});
        i = lit_end;
        pending_space = false;
      }
      continue;
    }

    flush_space();
    const char lc =
        static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    norm.push_back(lc);
    shape.push_back(lc);
    ++i;
  }

  out.fingerprint = Fnv1a(norm);
  out.shape_hash = Fnv1a(shape);
  return out;
}

}  // namespace iceberg
