#ifndef SMARTICEBERG_COMMON_STATUS_H_
#define SMARTICEBERG_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace iceberg {

/// Error categories used across the library. Mirrors the coarse taxonomy of
/// Arrow/RocksDB style status objects; the library never throws exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kBindError,
  kNotSupported,
  kInternal,
  kCancelled,           // deadline exceeded or cancellation requested
  kResourceExhausted,   // memory budget / intermediate-row limit exceeded
  kOverloaded,          // admission shed / queue timeout / snapshot conflict
};

/// Stable short name for a status code ("OK", "Overloaded", ...), used by
/// Status::ToString and by structured renderers (query log records).
const char* StatusCodeName(StatusCode code);

/// A lightweight, exception-free error carrier. Functions that can fail
/// return `Status` (or `Result<T>` when they also produce a value).
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// The serving layer could not take the query right now (admission queue
  /// full, queued past its deadline, snapshot invalidated by a concurrent
  /// mutation). Always retryable: backing off and resubmitting is expected
  /// to succeed once load subsides.
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  /// Whether resubmitting the same statement may succeed. Overloaded is
  /// retryable by definition. Cancelled and ResourceExhausted are retryable
  /// only when explicitly marked so by their emitter: a deadline trip or a
  /// user cancel repeats deterministically (not retryable), while a chaos-
  /// injected spurious cancel or a failed reservation against a *shared*
  /// (admission-apportioned) budget is transient (marked retryable).
  bool IsRetryable() const {
    return code_ == StatusCode::kOverloaded || retryable_;
  }

  /// Tags a transient failure as retryable; used by emitters whose error
  /// cause is shared load rather than a property of the query itself.
  Status&& MarkRetryable() && {
    if (!ok()) retryable_ = true;
    return std::move(*this);
  }
  Status& MarkRetryable() & {
    if (!ok()) retryable_ = true;
    return *this;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  /// Emitter-declared transience; see IsRetryable(). Copies preserve it,
  /// so the flag survives governor poisoning and Result<T> propagation.
  bool retryable_ = false;
};

/// Either a value of type `T` or an error `Status`. Analogous to
/// absl::StatusOr / arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so `return value;` and
  /// `return Status::...;` both work at call sites.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { EnsureHasValue(); return *value_; }
  T& value() & { EnsureHasValue(); return *value_; }
  T&& value() && { EnsureHasValue(); return *std::move(value_); }

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const& {
    return value_.has_value() ? *value_ : std::move(fallback);
  }
  T value_or(T fallback) && {
    return value_.has_value() ? *std::move(value_) : std::move(fallback);
  }

  const T& operator*() const& { EnsureHasValue(); return *value_; }
  T& operator*() & { EnsureHasValue(); return *value_; }
  const T* operator->() const { EnsureHasValue(); return &*value_; }
  T* operator->() { EnsureHasValue(); return &*value_; }

 private:
  /// Accessing the value of an error result is a programming error; abort
  /// loudly (with the carried status) instead of dereferencing an empty
  /// optional, which is silent UB.
  void EnsureHasValue() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "Result::value() called on error result: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace iceberg

/// Propagates a non-OK Status from an expression returning Status.
#define ICEBERG_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::iceberg::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates an expression returning Result<T>; assigns the value to `lhs`
/// or propagates the error.
#define ICEBERG_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                  \
  if (!var.ok()) return var.status();                  \
  lhs = std::move(var).value();

#define ICEBERG_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define ICEBERG_ASSIGN_OR_RETURN_NAME(x, y) \
  ICEBERG_ASSIGN_OR_RETURN_CONCAT(x, y)
#define ICEBERG_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  ICEBERG_ASSIGN_OR_RETURN_IMPL(                                          \
      ICEBERG_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

#endif  // SMARTICEBERG_COMMON_STATUS_H_
