#include "src/common/string_util.h"

#include <cctype>

namespace iceberg {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view s, std::string_view other) {
  if (s.size() != other.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(other[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delimiter) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace iceberg
