#ifndef SMARTICEBERG_COMMON_VALUE_H_
#define SMARTICEBERG_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace iceberg {

/// Column data types supported by the storage engine.
enum class DataType {
  kNull,
  kInt64,
  kDouble,
  kString,
};

/// Returns "INT64" etc. for diagnostics and EXPLAIN output.
const char* DataTypeName(DataType type);

/// A dynamically typed SQL value (NULL, 64-bit integer, double, or string).
///
/// Comparison follows SQL semantics for the subset we support: numeric types
/// compare by value with int64<->double coercion; NULL never compares equal
/// or ordered against anything (three-valued logic is handled by the
/// expression evaluator, which checks is_null() before comparing).
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }
  /// Boolean values are represented as int64 0/1 in this engine.
  static Value Bool(bool v) { return Value(static_cast<int64_t>(v ? 1 : 0)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  DataType type() const;

  /// Alternative index as a cheap tag: 0 NULL, 1 int64, 2 double,
  /// 3 string (the variant's declaration order). Hot paths (the compiled
  /// expression VM, key codecs) dispatch on this once instead of probing
  /// holds_alternative per type.
  uint8_t tag() const { return static_cast<uint8_t>(data_.index()); }

  /// Unchecked accessors for use after dispatching on tag(): get_if with
  /// the null-check already established, so no throw branch is emitted.
  int64_t int_unchecked() const { return *std::get_if<int64_t>(&data_); }
  double double_unchecked() const { return *std::get_if<double>(&data_); }
  const std::string& string_unchecked() const {
    return *std::get_if<std::string>(&data_);
  }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(data_))
                    : std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  /// Truthiness for predicate results: NULL is false, numerics are
  /// non-zero, strings are non-empty. (Strings formerly fell into
  /// AsDouble(), which throws bad_variant_access on the string
  /// alternative.)
  bool AsBool() const {
    if (is_null()) return false;
    if (is_string()) return !AsString().empty();
    return AsDouble() != 0.0;
  }

  /// Total order used for grouping and index keys: NULLs sort first, then
  /// numerics (coerced), then strings. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  size_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// A tuple of values; the schema lives separately (catalog::Schema).
using Row = std::vector<Value>;

/// Hash/equality functors so Row can key unordered containers.
struct RowHash {
  size_t operator()(const Row& row) const;
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

/// Lexicographic comparison of two rows (shorter prefix sorts first).
int CompareRows(const Row& a, const Row& b);

/// Approximate heap footprint of a row, used for memory accounting by the
/// query governor and the NLJP cache.
size_t RowBytes(const Row& row);

/// Renders "(1, 2.5, 'x')" for diagnostics.
std::string RowToString(const Row& row);

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    return CompareRows(a, b) < 0;
  }
};

}  // namespace iceberg

#endif  // SMARTICEBERG_COMMON_VALUE_H_
