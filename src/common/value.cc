#include "src/common/value.h"

#include <cmath>
#include <cstdio>

namespace iceberg {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

DataType Value::type() const {
  if (is_null()) return DataType::kNull;
  if (is_int()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  return DataType::kString;
}

int Value::Compare(const Value& other) const {
  // NULLs first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  // Numerics before strings.
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt();
      int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_numeric()) return -1;
  if (other.is_numeric()) return 1;
  int c = AsString().compare(other.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_numeric()) {
    // Hash ints and integral doubles identically so 1 and 1.0 collide with
    // equality semantics.
    double d = AsDouble();
    int64_t as_int = static_cast<int64_t>(d);
    if (static_cast<double>(as_int) == d) {
      return std::hash<int64_t>()(as_int);
    }
    return std::hash<double>()(d);
  }
  return std::hash<std::string>()(AsString());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(data_));
    return buf;
  }
  return "'" + AsString() + "'";
}

size_t RowHash::operator()(const Row& row) const {
  size_t h = 0x84222325cbf29ce4ULL;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

size_t RowBytes(const Row& row) {
  size_t bytes = row.size() * sizeof(Value);
  for (const Value& v : row) {
    if (v.is_string()) bytes += v.AsString().size();
  }
  return bytes;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace iceberg
