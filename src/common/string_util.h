#ifndef SMARTICEBERG_COMMON_STRING_UTIL_H_
#define SMARTICEBERG_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace iceberg {

/// Lower-cases ASCII characters (SQL keywords and identifiers are treated
/// case-insensitively by the parser).
std::string ToLower(std::string_view s);

/// Upper-cases ASCII characters.
std::string ToUpper(std::string_view s);

/// Joins the elements with the given separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// True if `s` equals `other` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view other);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delimiter);

}  // namespace iceberg

#endif  // SMARTICEBERG_COMMON_STRING_UTIL_H_
