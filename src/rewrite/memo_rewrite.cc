#include "src/rewrite/memo_rewrite.h"

#include <map>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/exec/join_pipeline.h"
#include "src/expr/aggregate.h"
#include "src/expr/evaluator.h"

namespace iceberg {

Result<MemoRewriteResult> ExecuteStaticMemoRewrite(const IcebergView& view,
                                                   bool use_indexes) {
  const QueryBlock& block = *view.block;
  if (block.having == nullptr) {
    return Status::NotSupported("memo rewrite requires a HAVING condition");
  }
  if (view.jl_offsets.empty()) {
    return Status::NotSupported("memo rewrite requires join attributes");
  }
  if (!view.ApplicableTo(block.having, /*left_side=*/false)) {
    return Status::NotSupported("HAVING not applicable to the inner side");
  }

  // Collect aggregates; verify arguments are on the R side.
  std::vector<ExprPtr> agg_nodes;
  CollectAggregates(block.having, &agg_nodes);
  const size_t num_phi_aggs = agg_nodes.size();
  for (const BoundSelectItem& item : block.select) {
    CollectAggregates(item.expr, &agg_nodes);
  }
  bool all_algebraic = true;
  for (const ExprPtr& agg : agg_nodes) {
    if (!agg->children.empty() &&
        !view.ApplicableTo(agg->children[0], /*left_side=*/false)) {
      return Status::NotSupported("aggregate over outer-side attributes: " +
                                  agg->ToString());
    }
    if (!IsAlgebraic(agg->agg)) all_algebraic = false;
  }
  const bool key_mode = view.GroupDeterminesLeft();  // G_L -> A_L
  if (!all_algebraic && !key_mode) {
    return Status::NotSupported(
        "holistic aggregate without G_L -> A_L (Listing 8's second variant "
        "requires algebraic aggregates)");
  }

  MemoRewriteResult out;
  out.used_partial_aggregates = !key_mode;

  // ---- L: the outer-side sub-join, materialized ----
  std::map<size_t, size_t> left_map;
  ICEBERG_ASSIGN_OR_RETURN(
      QueryBlock l_block,
      MakeSubBlock(block, view.partition.left, view.left_only, &left_map));
  ICEBERG_ASSIGN_OR_RETURN(JoinPipeline l_pipeline,
                           JoinPipeline::Plan(l_block, use_indexes));
  std::vector<Row> l_rows;
  ICEBERG_RETURN_NOT_OK(
      l_pipeline.Run(0, l_pipeline.OuterSize(),
                     [&](const Row& row) { l_rows.push_back(row); }, nullptr));
  out.l_rows = l_rows.size();

  std::vector<size_t> binding_positions;
  for (size_t off : view.jl_offsets) {
    binding_positions.push_back(left_map.at(off));
  }
  auto binding_of = [&](const Row& l_row) {
    Row b;
    b.reserve(binding_positions.size());
    for (size_t pos : binding_positions) b.push_back(l_row[pos]);
    return b;
  };

  // ---- LJT: SELECT DISTINCT J_L FROM L ----
  std::vector<DataType> types_by_offset;
  for (const BoundTableRef& t : block.tables) {
    for (const Column& c : t.table->schema().columns()) {
      types_by_offset.push_back(c.type);
    }
  }
  Schema ljt_schema;
  for (size_t i = 0; i < view.jl_offsets.size(); ++i) {
    ICEBERG_RETURN_NOT_OK(ljt_schema.AddColumn(
        {"b" + std::to_string(i), types_by_offset[view.jl_offsets[i]]}));
  }
  auto ljt = std::make_shared<Table>("_ljt", ljt_schema);
  {
    std::unordered_map<Row, size_t, RowHash, RowEq> seen;
    for (const Row& l_row : l_rows) {
      Row b = binding_of(l_row);
      if (seen.emplace(b, seen.size()).second) {
        ljt->AppendUnchecked(std::move(b));
      }
    }
  }
  out.distinct_bindings = ljt->num_rows();

  // ---- LJR: join LJT with R, group by J_L [+ G_R], aggregate ----
  QueryBlock ljr_block;
  BoundTableRef ljt_ref;
  ljt_ref.alias = "_ljt";
  ljt_ref.table = ljt;
  ljt_ref.offset = 0;
  ljr_block.tables.push_back(ljt_ref);
  std::map<size_t, size_t> inner_map;
  for (size_t i = 0; i < view.jl_offsets.size(); ++i) {
    inner_map[view.jl_offsets[i]] = i;
  }
  size_t inner_offset = ljt_schema.num_columns();
  for (size_t ti : view.partition.right) {
    BoundTableRef ref = block.tables[ti];
    for (size_t c = 0; c < ref.table->schema().num_columns(); ++c) {
      inner_map[ref.offset + c] = inner_offset + c;
    }
    ref.offset = inner_offset;
    inner_offset += ref.table->schema().num_columns();
    ljr_block.tables.push_back(std::move(ref));
  }
  for (const ExprPtr& conjunct : view.theta) {
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr remapped, RemapExpr(conjunct, inner_map));
    ljr_block.where_conjuncts.push_back(std::move(remapped));
  }
  for (const ExprPtr& conjunct : view.right_only) {
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr remapped, RemapExpr(conjunct, inner_map));
    ljr_block.where_conjuncts.push_back(std::move(remapped));
  }
  std::vector<ExprPtr> inner_gr_exprs;
  for (size_t gr : view.gr_offsets) {
    ExprPtr ref = Col(block.QualifiedNameOfOffset(gr));
    ref->resolved_index = static_cast<int>(inner_map.at(gr));
    inner_gr_exprs.push_back(std::move(ref));
  }
  ExprPtr inner_phi;
  ICEBERG_ASSIGN_OR_RETURN(inner_phi, RemapExpr(block.having, inner_map));
  std::vector<ExprPtr> inner_phi_aggs;
  CollectAggregates(inner_phi, &inner_phi_aggs);
  ICEBERG_CHECK(inner_phi_aggs.size() == num_phi_aggs);
  std::vector<ExprPtr> inner_agg_args;
  for (const ExprPtr& agg : agg_nodes) {
    if (agg->children.empty()) {
      inner_agg_args.push_back(nullptr);
    } else {
      ICEBERG_ASSIGN_OR_RETURN(ExprPtr arg,
                               RemapExpr(agg->children[0], inner_map));
      inner_agg_args.push_back(std::move(arg));
    }
  }

  ICEBERG_ASSIGN_OR_RETURN(JoinPipeline ljr_pipeline,
                           JoinPipeline::Plan(ljr_block, use_indexes));
  struct LjrGroup {
    Row representative;
    std::vector<Accumulator> accumulators;
  };
  // Keyed by binding + G_R values.
  std::unordered_map<Row, LjrGroup, RowHash, RowEq> ljr;
  const size_t num_binding_cols = ljt_schema.num_columns();
  ICEBERG_RETURN_NOT_OK(ljr_pipeline.Run(
      0, ljr_pipeline.OuterSize(),
      [&](const Row& joined) {
        Row key(joined.begin(),
                joined.begin() + static_cast<long>(num_binding_cols));
        for (const ExprPtr& g : inner_gr_exprs) {
          key.push_back(Evaluate(*g, joined));
        }
        auto it = ljr.find(key);
        if (it == ljr.end()) {
          LjrGroup group;
          group.representative = joined;
          for (const ExprPtr& agg : agg_nodes) {
            group.accumulators.emplace_back(agg->agg);
          }
          it = ljr.emplace(std::move(key), std::move(group)).first;
        }
        LjrGroup& group = it->second;
        for (size_t i = 0; i < agg_nodes.size(); ++i) {
          if (inner_agg_args[i] == nullptr) {
            group.accumulators[i].Add(Value::Null());
          } else {
            group.accumulators[i].Add(Evaluate(*inner_agg_args[i], joined));
          }
        }
      },
      nullptr));
  out.ljr_groups = ljr.size();

  // In key mode, apply HAVING inside LJR (Listing 8, first variant).
  if (key_mode) {
    for (auto it = ljr.begin(); it != ljr.end();) {
      AggValueMap phi_values;
      for (size_t i = 0; i < inner_phi_aggs.size(); ++i) {
        phi_values[inner_phi_aggs[i].get()] =
            it->second.accumulators[i].Final();
      }
      if (!EvaluatePredicate(*inner_phi, it->second.representative,
                             &phi_values)) {
        it = ljr.erase(it);
      } else {
        ++it;
      }
    }
  }

  // ---- Final: L NATURAL JOIN LJR ON J_L, GROUP BY G_L, G_R ----
  // Re-key LJR by binding, collecting its (G_R, accumulators) payloads.
  std::unordered_map<Row, std::vector<const LjrGroup*>, RowHash, RowEq>
      ljr_by_binding;
  std::unordered_map<const LjrGroup*, Row> gr_of_group;
  for (const auto& [key, group] : ljr) {
    Row binding(key.begin(), key.begin() + static_cast<long>(num_binding_cols));
    Row gr_key(key.begin() + static_cast<long>(num_binding_cols), key.end());
    ljr_by_binding[std::move(binding)].push_back(&group);
    gr_of_group[&group] = std::move(gr_key);
  }

  struct FinalGroup {
    Row synthetic;
    std::vector<Accumulator> accumulators;
    bool filled = false;
  };
  std::unordered_map<Row, FinalGroup, RowHash, RowEq> groups;
  const size_t total_width = block.TotalWidth();
  for (const Row& l_row : l_rows) {
    auto hit = ljr_by_binding.find(binding_of(l_row));
    if (hit == ljr_by_binding.end()) continue;
    for (const LjrGroup* payload : hit->second) {
      const Row& gr_key = gr_of_group[payload];
      Row synthetic(total_width, Value::Null());
      for (const auto& [orig, pos] : left_map) synthetic[orig] = l_row[pos];
      for (size_t i = 0; i < view.gr_offsets.size(); ++i) {
        synthetic[view.gr_offsets[i]] = gr_key[i];
      }
      Row group_key;
      for (const ExprPtr& g : block.group_by) {
        group_key.push_back(Evaluate(*g, synthetic));
      }
      auto it = groups.find(group_key);
      if (it == groups.end()) {
        FinalGroup group;
        group.synthetic = synthetic;
        it = groups.emplace(std::move(group_key), std::move(group)).first;
      }
      FinalGroup& group = it->second;
      if (key_mode) {
        // Exactly one contributing binding per group; duplicates of the
        // same L-tuple carry identical aggregates.
        if (!group.filled) group.accumulators = payload->accumulators;
      } else {
        if (!group.filled) {
          for (const ExprPtr& agg : agg_nodes) {
            group.accumulators.emplace_back(agg->agg);
          }
        }
        for (size_t i = 0; i < agg_nodes.size(); ++i) {
          group.accumulators[i].MergePartial(
              payload->accumulators[i].PartialState());
        }
      }
      group.filled = true;
    }
  }

  auto result = std::make_shared<Table>(block.output_schema);
  for (const auto& [key, group] : groups) {
    AggValueMap agg_values;
    for (size_t i = 0; i < agg_nodes.size(); ++i) {
      agg_values[agg_nodes[i].get()] = group.accumulators[i].Final();
    }
    if (!key_mode &&
        !EvaluatePredicate(*block.having, group.synthetic, &agg_values)) {
      continue;
    }
    // key_mode already filtered in LJR, but evaluating again is harmless
    // and guards duplicated L-rows; do it uniformly.
    if (key_mode &&
        !EvaluatePredicate(*block.having, group.synthetic, &agg_values)) {
      continue;
    }
    Row out_row;
    for (const BoundSelectItem& item : block.select) {
      out_row.push_back(Evaluate(*item.expr, group.synthetic, &agg_values));
    }
    result->AppendUnchecked(std::move(out_row));
  }
  out.result = std::move(result);
  return out;
}

}  // namespace iceberg
