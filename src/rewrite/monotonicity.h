#ifndef SMARTICEBERG_REWRITE_MONOTONICITY_H_
#define SMARTICEBERG_REWRITE_MONOTONICITY_H_

#include <functional>
#include <string>

#include "src/expr/expr.h"

namespace iceberg {

/// Monotonicity classification of a HAVING condition (Definition 1):
///  - monotone: T subset T'  and Phi(T)  implies Phi(T')
///  - anti-monotone: T superset T' and Phi(T) implies Phi(T')
enum class Monotonicity {
  kMonotone,
  kAntiMonotone,
  kNeither,
};

const char* MonotonicityName(Monotonicity m);

/// Tells the classifier whether a column's domain is known to be
/// non-negative (required for SUM comparisons per Table 2). The argument is
/// the aggregate's input expression.
using NonNegativeHint = std::function<bool(const ExprPtr& agg_arg)>;

/// Classifies a HAVING condition per the paper's Table 2, closed under
/// AND/OR (two monotone conditions compose monotone, two anti-monotone
/// compose anti-monotone; mixing yields kNeither) and NOT (which flips the
/// class). Atomic conditions are comparisons between one aggregate and a
/// constant:
///
///   COUNT(*)/COUNT(A)/COUNT(DISTINCT A) >= c   monotone    (<= c anti)
///   SUM(A) >= c  when dom(A) is non-negative   monotone    (<= c anti)
///   MAX(A) >= c                                monotone    (<= c anti)
///   MIN(A) <= c                                monotone    (>= c anti)
///
/// Note on MIN: under Definition 1 adding tuples can only lower a MIN, so
/// MIN(A) <= c is the monotone direction and MIN(A) >= c the anti-monotone
/// one (the camera-ready table's MIN row reads transposed; we follow the
/// definition, which the proofs rely on).
Monotonicity ClassifyHaving(const ExprPtr& having,
                            const NonNegativeHint& nonnegative = nullptr);

}  // namespace iceberg

#endif  // SMARTICEBERG_REWRITE_MONOTONICITY_H_
