#include "src/rewrite/apriori.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/expr/evaluator.h"

namespace iceberg {

namespace {

/// True when Phi provably holds on every single-tuple group, i.e. the
/// reducer could never filter anything. Only decidable when every
/// aggregate in Phi is a COUNT variant (which evaluates to 1 on a
/// singleton) and Phi references no plain columns. This is why the paper
/// reports that generalized a-priori "does not apply" to the skyband
/// queries Q1-Q3/Q8: with G_L a key of L, every L-group is a singleton and
/// COUNT(*) <= k holds trivially.
bool TriviallyPassesOnSingletons(const ExprPtr& phi) {
  std::vector<ExprPtr> aggs;
  CollectAggregates(phi, &aggs);
  AggValueMap values;
  for (const ExprPtr& agg : aggs) {
    switch (agg->agg) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
      case AggFunc::kCountDistinct:
        values[agg.get()] = Value::Int(1);
        break;
      default:
        return false;  // value-dependent aggregate: cannot decide
    }
  }
  std::vector<const Expr*> refs;
  CollectColumnRefs(phi, &refs);
  for (const Expr* ref : refs) {
    // Refs inside aggregate arguments are fine; plain refs make the
    // predicate value-dependent. Aggregates do not nest, so any ref we
    // reach outside an aggregate node is a plain ref.
    bool inside_agg = false;
    for (const ExprPtr& agg : aggs) {
      std::vector<const Expr*> arg_refs;
      if (!agg->children.empty()) {
        CollectColumnRefs(agg->children[0], &arg_refs);
      }
      for (const Expr* ar : arg_refs) {
        if (ar == ref) inside_agg = true;
      }
    }
    if (!inside_agg) return false;
  }
  Row dummy;
  return EvaluatePredicate(*phi, dummy, &values);
}

}  // namespace

std::string AprioriOpportunity::ToString() const {
  std::string out = "Reducer [" + safety_reason + "]:\n  " +
                    reducer_block.ToString();
  return out;
}

Result<AprioriOpportunity> CheckApriori(const IcebergView& view) {
  const QueryBlock& block = *view.block;
  if (block.having == nullptr) {
    return Status::NotSupported("no HAVING condition");
  }
  // Phi must be applicable to L: every column it references is on the L
  // side (COUNT(*) references nothing and is fine).
  if (!view.ApplicableTo(block.having, /*left_side=*/true)) {
    return Status::NotSupported("HAVING not applicable to the L side");
  }
  // A multi-table L side must be connected by intra-L join predicates;
  // otherwise the reducer would evaluate a cross product, which can never
  // be worthwhile (and crowds out connected candidates).
  if (view.partition.left.size() > 1) {
    std::map<size_t, size_t> parent;
    std::function<size_t(size_t)> find = [&](size_t x) -> size_t {
      auto it = parent.find(x);
      if (it == parent.end() || it->second == x) return x;
      size_t root = find(it->second);
      parent[x] = root;
      return root;
    };
    for (const ExprPtr& conjunct : view.left_only) {
      std::vector<const Expr*> refs;
      CollectColumnRefs(conjunct, &refs);
      for (size_t i = 1; i < refs.size(); ++i) {
        size_t a = find(block.TableOfOffset(
            static_cast<size_t>(refs[0]->resolved_index)));
        size_t b = find(block.TableOfOffset(
            static_cast<size_t>(refs[i]->resolved_index)));
        parent.emplace(a, a);
        parent.emplace(b, b);
        if (a != b) parent[a] = b;
      }
    }
    size_t root = find(view.partition.left[0]);
    for (size_t ti : view.partition.left) {
      if (find(ti) != root) {
        return Status::NotSupported(
            "L side is not connected by intra-L join predicates");
      }
    }
  }

  // The L side must natively own at least one GROUP BY attribute;
  // otherwise the "reducer" groups only by borrowed equivalents (or by
  // nothing), which never pays off and can starve better candidates.
  if (view.gl_offsets.empty()) {
    return Status::NotSupported("no GROUP BY attribute on the L side");
  }
  Monotonicity mono = view.HavingMonotonicity();
  std::string reason;
  if (mono == Monotonicity::kMonotone) {
    // Theorem 2, monotone branch: G_R union J_R^= must be a superkey of R.
    AttrSet key = view.NamesOf(view.gr_aug_offsets);
    for (const std::string& a : view.NamesOf(view.jr_eq_offsets)) {
      key.insert(a);
    }
    FdSet right_fds = view.RightFds();
    if (!right_fds.IsSuperkey(key, view.RightAttrs())) {
      return Status::NotSupported(
          "monotone HAVING but G_R + J_R^= " + AttrSetToString(key) +
          " is not a superkey of the R side (query may be inflationary)");
    }
    reason = "monotone HAVING; G_R+J_R^= " + AttrSetToString(key) +
             " is a superkey of R (Theorem 2)";
  } else if (mono == Monotonicity::kAntiMonotone) {
    // Theorem 2, anti-monotone branch: G_L -> J_L.
    FdSet left_fds = view.LeftFds();
    if (!left_fds.Determines(view.NamesOf(view.gl_aug_offsets),
                             view.NamesOf(view.jl_offsets))) {
      return Status::NotSupported(
          "anti-monotone HAVING but G_L does not determine J_L (query may "
          "be deflationary)");
    }
    reason = "anti-monotone HAVING; G_L -> J_L (Theorem 2)";
  } else {
    return Status::NotSupported(
        "HAVING is neither monotone nor anti-monotone");
  }

  // Safe but useless reducers are skipped: when G_L determines all of the
  // L side, every L-group is one tuple, and a count-only Phi that accepts
  // singletons filters nothing.
  if (view.GroupDeterminesLeft() && TriviallyPassesOnSingletons(block.having)) {
    return Status::NotSupported(
        "reducer cannot filter: L-groups are singletons and Phi accepts "
        "singleton groups");
  }

  AprioriOpportunity opp;
  opp.partition = view.partition;
  opp.monotonicity = mono;
  opp.safety_reason = std::move(reason);

  // Build the reducer block: SELECT G_L FROM <L-side tables + intra-L
  // conjuncts> GROUP BY G_L HAVING Phi.
  std::map<size_t, size_t> offset_map;
  ICEBERG_ASSIGN_OR_RETURN(
      opp.reducer_block,
      MakeSubBlock(block, view.partition.left, view.left_only, &offset_map));
  std::vector<DataType> types;
  for (const BoundTableRef& t : opp.reducer_block.tables) {
    for (const Column& c : t.table->schema().columns()) {
      types.push_back(c.type);
    }
  }
  size_t position = 0;
  for (size_t gl : view.gl_aug_offsets) {
    ExprPtr ref = Col(block.QualifiedNameOfOffset(gl));
    ref->resolved_index = static_cast<int>(gl);
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr remapped, RemapExpr(ref, offset_map));
    opp.reducer_block.group_by.push_back(remapped);
    BoundSelectItem item;
    item.expr = remapped;
    item.alias = "g" + std::to_string(position);
    opp.reducer_block.select.push_back(item);
    ICEBERG_RETURN_NOT_OK(opp.reducer_block.output_schema.AddColumn(
        {item.alias, InferType(remapped, types)}));
    ++position;
  }
  ICEBERG_ASSIGN_OR_RETURN(opp.reducer_block.having,
                           RemapExpr(block.having, offset_map));

  // Table applications: each L-side table owning >= 1 G_L column gets a
  // semijoin filter on its share of the key.
  for (size_t ti : view.partition.left) {
    AprioriOpportunity::TableApplication app;
    app.table_index = ti;
    for (size_t pos = 0; pos < view.gl_aug_offsets.size(); ++pos) {
      size_t off = view.gl_aug_offsets[pos];
      if (block.TableOfOffset(off) == ti) {
        app.local_key_columns.push_back(off - block.tables[ti].offset);
        app.reducer_positions.push_back(pos);
      }
    }
    if (!app.local_key_columns.empty()) {
      opp.applications.push_back(std::move(app));
    }
  }
  if (opp.applications.empty()) {
    return Status::NotSupported(
        "no L-side table owns a GROUP BY attribute; reducer would not "
        "filter anything");
  }
  return opp;
}

Result<std::map<size_t, TablePtr>> ApplyApriori(
    const AprioriOpportunity& opportunity, Executor* executor,
    size_t* reducer_rows_out) {
  ICEBERG_ASSIGN_OR_RETURN(TablePtr reducer_result,
                           executor->Execute(opportunity.reducer_block));
  if (reducer_rows_out != nullptr) {
    *reducer_rows_out = reducer_result->num_rows();
  }

  std::map<size_t, TablePtr> replacements;
  for (const auto& app : opportunity.applications) {
    // The reducer block holds the same TablePtrs as the original block's
    // L side, ordered by partition.left.
    TablePtr original;
    for (size_t k = 0; k < opportunity.partition.left.size(); ++k) {
      if (opportunity.partition.left[k] == app.table_index) {
        original = opportunity.reducer_block.tables[k].table;
      }
    }
    ICEBERG_CHECK(original != nullptr);

    // Keys that survive the reducer, projected onto this table's columns.
    std::unordered_set<Row, RowHash, RowEq> keep;
    for (const Row& row : reducer_result->rows()) {
      Row key;
      key.reserve(app.reducer_positions.size());
      for (size_t pos : app.reducer_positions) key.push_back(row[pos]);
      keep.insert(std::move(key));
    }

    auto reduced = std::make_shared<Table>(original->name() + "_reduced",
                                           original->schema());
    for (const Row& row : original->rows()) {
      Row key;
      key.reserve(app.local_key_columns.size());
      for (size_t c : app.local_key_columns) key.push_back(row[c]);
      if (keep.count(key) > 0) reduced->AppendUnchecked(row);
    }
    // Copy secondary-index definitions so downstream planning sees the
    // same physical options.
    for (size_t i = 0; i < original->num_ordered_indexes(); ++i) {
      reduced->BuildOrderedIndexByIds(
          original->ordered_index(i).key_columns());
    }
    for (size_t i = 0; i < original->num_hash_indexes(); ++i) {
      reduced->BuildHashIndexByIds(original->hash_index(i).key_columns());
    }
    replacements[app.table_index] = std::move(reduced);
  }
  return replacements;
}

}  // namespace iceberg
