#ifndef SMARTICEBERG_REWRITE_MEMO_REWRITE_H_
#define SMARTICEBERG_REWRITE_MEMO_REWRITE_H_

#include <string>

#include "src/common/status.h"
#include "src/rewrite/iceberg_view.h"
#include "src/storage/table.h"

namespace iceberg {

/// Outcome and counters of the static memoization rewrite.
struct MemoRewriteResult {
  TablePtr result;
  size_t l_rows = 0;             // |L| after L-side filters
  size_t distinct_bindings = 0;  // |LJT|
  size_t ljr_groups = 0;         // |LJR| (per binding [x G_R] groups)
  bool used_partial_aggregates = false;  // Listing 8's second variant
};

/// The *static* memoization rewrite of the paper's Appendix C (Listing 8),
/// an alternative to NLJP-based memoization that needs no new operator:
///
///   WITH LJT AS (SELECT DISTINCT J_L FROM L),
///        LJR AS (SELECT J_L, G_R, f^i(...) ... FROM LJT, R WHERE Theta
///                GROUP BY J_L, G_R [HAVING Phi])
///   SELECT G_L, G_R, Lambda  FROM L JOIN LJR ON J_L
///   GROUP BY G_L, G_R [HAVING Phi]
///
/// When G_L -> A_L, each (J_L, G_R) group is exactly one LR-group, so Phi
/// is applied inside LJR and aggregates are final. Otherwise the aggregates
/// must be algebraic: LJR stores f^i partials and the outer query combines
/// them with f^o before evaluating Phi and Lambda.
///
/// Applicability: Phi applicable to R, every aggregate of Phi and the
/// select list over R attributes (or *), and algebraic aggregates unless
/// G_L -> A_L — the Section 6 conditions, but WITHOUT requiring G_R to be
/// empty.
Result<MemoRewriteResult> ExecuteStaticMemoRewrite(const IcebergView& view,
                                                   bool use_indexes = true);

}  // namespace iceberg

#endif  // SMARTICEBERG_REWRITE_MEMO_REWRITE_H_
