#include "src/rewrite/equality_inference.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/common/string_util.h"

namespace iceberg {

namespace {

class UnionFind {
 public:
  size_t Find(size_t x) {
    auto it = parent_.find(x);
    if (it == parent_.end() || it->second == x) return x;
    size_t root = Find(it->second);
    parent_[x] = root;
    return root;
  }
  /// Returns true if the union merged two distinct classes.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    parent_.emplace(ra, ra);
    parent_.emplace(rb, rb);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::map<size_t, size_t> parent_;
};

}  // namespace

size_t InferDerivedEqualities(QueryBlock* block) {
  UnionFind classes;
  // Seed with explicit column=column conjuncts.
  for (const ExprPtr& conjunct : block->where_conjuncts) {
    if (conjunct->kind != ExprKind::kBinary ||
        conjunct->bop != BinaryOp::kEq) {
      continue;
    }
    const ExprPtr& l = conjunct->children[0];
    const ExprPtr& r = conjunct->children[1];
    if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kColumnRef) {
      classes.Union(static_cast<size_t>(l->resolved_index),
                    static_cast<size_t>(r->resolved_index));
    }
  }

  // Track which offset pairs already have an explicit conjunct.
  std::set<std::pair<size_t, size_t>> explicit_pairs;
  std::set<size_t> equated_offsets;
  for (const ExprPtr& conjunct : block->where_conjuncts) {
    if (conjunct->kind != ExprKind::kBinary ||
        conjunct->bop != BinaryOp::kEq) {
      continue;
    }
    const ExprPtr& l = conjunct->children[0];
    const ExprPtr& r = conjunct->children[1];
    if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kColumnRef) {
      size_t a = static_cast<size_t>(l->resolved_index);
      size_t b = static_cast<size_t>(r->resolved_index);
      explicit_pairs.emplace(std::min(a, b), std::max(a, b));
      equated_offsets.insert(a);
      equated_offsets.insert(b);
    }
  }

  // Fixpoint: same-table instance pairs propagate FDs.
  std::set<size_t> derived_offsets;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < block->tables.size(); ++i) {
      for (size_t j = 0; j < block->tables.size(); ++j) {
        if (i == j) continue;
        const BoundTableRef& ti = block->tables[i];
        const BoundTableRef& tj = block->tables[j];
        if (ti.table != tj.table) continue;  // same stored relation only
        for (const FunctionalDependency& fd : ti.fds.fds()) {
          bool lhs_equated = !fd.lhs.empty();
          for (const std::string& col : fd.lhs) {
            std::optional<size_t> ci = ti.table->schema().FindColumn(col);
            if (!ci.has_value()) {
              lhs_equated = false;
              break;
            }
            if (classes.Find(ti.offset + *ci) !=
                classes.Find(tj.offset + *ci)) {
              lhs_equated = false;
              break;
            }
          }
          if (!lhs_equated) continue;
          for (const std::string& col : fd.rhs) {
            std::optional<size_t> ci = ti.table->schema().FindColumn(col);
            if (!ci.has_value()) continue;
            size_t a = ti.offset + *ci;
            size_t b = tj.offset + *ci;
            if (classes.Union(a, b)) {
              derived_offsets.insert(a);
              derived_offsets.insert(b);
              changed = true;
            }
          }
        }
      }
    }
  }

  // Emit the full pairwise closure over every class touched by a derived
  // equality (so any table subset the optimizer later carves out sees the
  // predicate as a local conjunct), skipping pairs already explicit.
  std::set<size_t> all_offsets = equated_offsets;
  all_offsets.insert(derived_offsets.begin(), derived_offsets.end());
  size_t added = 0;
  auto make_ref = [&](size_t offset) {
    size_t ti = block->TableOfOffset(offset);
    ExprPtr ref = Col(block->tables[ti].alias,
                      ToLower(block->tables[ti].table->schema()
                                  .column(offset - block->tables[ti].offset)
                                  .name));
    ref->resolved_index = static_cast<int>(offset);
    return ref;
  };
  for (size_t a : all_offsets) {
    for (size_t b : all_offsets) {
      if (a >= b) continue;
      if (classes.Find(a) != classes.Find(b)) continue;
      // Only emit pairs involving at least one derived offset; purely
      // explicit classes are already fully usable via their own conjuncts.
      if (derived_offsets.count(a) == 0 && derived_offsets.count(b) == 0) {
        continue;
      }
      if (explicit_pairs.count({a, b}) > 0) continue;
      if (block->TableOfOffset(a) == block->TableOfOffset(b)) continue;
      block->where_conjuncts.push_back(
          Bin(BinaryOp::kEq, make_ref(a), make_ref(b)));
      ++added;
    }
  }
  return added;
}

}  // namespace iceberg
