#ifndef SMARTICEBERG_REWRITE_APRIORI_H_
#define SMARTICEBERG_REWRITE_APRIORI_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exec/executor.h"
#include "src/rewrite/iceberg_view.h"

namespace iceberg {

/// A verified generalized-a-priori rewrite for one side of an iceberg view
/// (Section 4): the L side can be replaced by
///
///   L' = L semijoin (SELECT G_L FROM L GROUP BY G_L HAVING Phi)
///
/// Safety was established by Theorem 2's schema-based checks:
///  - monotone Phi and G_R union J_R^= a superkey of R, or
///  - anti-monotone Phi and G_L -> J_L.
struct AprioriOpportunity {
  TablePartition partition;  // the reduced side is `partition.left`
  Monotonicity monotonicity = Monotonicity::kNeither;
  std::string safety_reason;

  /// The reducer query over the L side (bound, ready for the executor);
  /// its select list is exactly the G_L columns.
  QueryBlock reducer_block;

  /// How the reducer's output filters individual tables: table
  /// `table_index` keeps only rows whose `local_key_columns` projection
  /// appears among the reducer's `reducer_positions` columns. Tables owning
  /// no G_L column are left untouched (per the paper's "subset of T_L with
  /// at least one attribute output by Q_L").
  struct TableApplication {
    size_t table_index = 0;
    std::vector<size_t> local_key_columns;
    std::vector<size_t> reducer_positions;
  };
  std::vector<TableApplication> applications;

  /// Reducer in SQL-ish text (for EXPLAIN / the paper's Q_{S1} listings).
  std::string ToString() const;
};

/// Checks whether a-priori is safe for the L side of `view` (Theorem 2) and
/// constructs the reducer. Fails with NotSupported (and a human-readable
/// reason) when any premise fails.
Result<AprioriOpportunity> CheckApriori(const IcebergView& view);

/// Executes the reducer and materializes the filtered replacement tables.
/// The returned map sends original table indices to their reduced versions
/// (secondary-index definitions are copied). `reducer_rows_out`, when
/// non-null, receives the reducer's result cardinality.
Result<std::map<size_t, TablePtr>> ApplyApriori(
    const AprioriOpportunity& opportunity, Executor* executor,
    size_t* reducer_rows_out = nullptr);

}  // namespace iceberg

#endif  // SMARTICEBERG_REWRITE_APRIORI_H_
