#include "src/rewrite/monotonicity.h"

namespace iceberg {

const char* MonotonicityName(Monotonicity m) {
  switch (m) {
    case Monotonicity::kMonotone:
      return "monotone";
    case Monotonicity::kAntiMonotone:
      return "anti-monotone";
    case Monotonicity::kNeither:
      return "neither";
  }
  return "?";
}

namespace {

Monotonicity Flip(Monotonicity m) {
  switch (m) {
    case Monotonicity::kMonotone:
      return Monotonicity::kAntiMonotone;
    case Monotonicity::kAntiMonotone:
      return Monotonicity::kMonotone;
    case Monotonicity::kNeither:
      return Monotonicity::kNeither;
  }
  return Monotonicity::kNeither;
}

Monotonicity Combine(Monotonicity a, Monotonicity b) {
  if (a == b) return a;
  return Monotonicity::kNeither;
}

/// Classifies `agg OP constant` where OP has been normalized so the
/// aggregate is on the left. `upper` means agg <= c (or <).
Monotonicity ClassifyAtom(const ExprPtr& agg, bool upper,
                          const NonNegativeHint& nonnegative) {
  ExprPtr arg = agg->children.empty() ? nullptr : agg->children[0];
  switch (agg->agg) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
    case AggFunc::kCountDistinct:
      // Counts only grow as tuples are added.
      return upper ? Monotonicity::kAntiMonotone : Monotonicity::kMonotone;
    case AggFunc::kSum:
      // Growth direction is only known when the summand is non-negative.
      if (nonnegative != nullptr && arg != nullptr && nonnegative(arg)) {
        return upper ? Monotonicity::kAntiMonotone : Monotonicity::kMonotone;
      }
      return Monotonicity::kNeither;
    case AggFunc::kMax:
      // MAX grows with more tuples.
      return upper ? Monotonicity::kAntiMonotone : Monotonicity::kMonotone;
    case AggFunc::kMin:
      // MIN shrinks with more tuples, so the directions swap.
      return upper ? Monotonicity::kMonotone : Monotonicity::kAntiMonotone;
    case AggFunc::kAvg:
      // AVG can move either way.
      return Monotonicity::kNeither;
  }
  return Monotonicity::kNeither;
}

}  // namespace

Monotonicity ClassifyHaving(const ExprPtr& having,
                            const NonNegativeHint& nonnegative) {
  if (having == nullptr) return Monotonicity::kNeither;
  switch (having->kind) {
    case ExprKind::kUnary:
      if (having->uop == UnaryOp::kNot) {
        return Flip(ClassifyHaving(having->children[0], nonnegative));
      }
      return Monotonicity::kNeither;
    case ExprKind::kBinary: {
      if (having->bop == BinaryOp::kAnd || having->bop == BinaryOp::kOr) {
        return Combine(ClassifyHaving(having->children[0], nonnegative),
                       ClassifyHaving(having->children[1], nonnegative));
      }
      if (!IsComparisonOp(having->bop)) return Monotonicity::kNeither;
      // Normalize to aggregate-on-the-left.
      ExprPtr l = having->children[0];
      ExprPtr r = having->children[1];
      BinaryOp op = having->bop;
      if (l->kind != ExprKind::kAggregate &&
          r->kind == ExprKind::kAggregate) {
        std::swap(l, r);
        op = FlipComparison(op);
      }
      if (l->kind != ExprKind::kAggregate ||
          r->kind != ExprKind::kLiteral) {
        return Monotonicity::kNeither;
      }
      switch (op) {
        case BinaryOp::kLe:
        case BinaryOp::kLt:
          return ClassifyAtom(l, /*upper=*/true, nonnegative);
        case BinaryOp::kGe:
        case BinaryOp::kGt:
          return ClassifyAtom(l, /*upper=*/false, nonnegative);
        default:
          return Monotonicity::kNeither;  // = and <> are neither
      }
    }
    default:
      return Monotonicity::kNeither;
  }
}

}  // namespace iceberg
