#ifndef SMARTICEBERG_REWRITE_EQUALITY_INFERENCE_H_
#define SMARTICEBERG_REWRITE_EQUALITY_INFERENCE_H_

#include "src/plan/query_block.h"

namespace iceberg {

/// Derives equality predicates implied by the query's equality conjuncts
/// and the base tables' functional dependencies, and appends them to the
/// block's WHERE conjuncts (they are redundant, hence harmless, but unlock
/// better reducers and index probes).
///
/// This is the inference component of the paper's Appendix D walkthrough
/// (Example 13): from S1.id = S2.id, T1.id = T2.id,
/// S1.category = T1.category and the FD id -> category on Product, infer
/// S2.category = T2.category — which makes the Q_S2 reducer as effective
/// as Q_S1.
///
/// Rule (applied to fixpoint): for two FROM entries ti, tj over the same
/// stored table with FD X -> Y, if ti.x ~ tj.x for every x in X under the
/// current equality-equivalence, then ti.y ~ tj.y for every y in Y.
///
/// Returns the number of conjuncts added.
size_t InferDerivedEqualities(QueryBlock* block);

}  // namespace iceberg

#endif  // SMARTICEBERG_REWRITE_EQUALITY_INFERENCE_H_
