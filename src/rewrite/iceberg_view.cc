#include "src/rewrite/iceberg_view.h"

#include <algorithm>
#include <set>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace iceberg {

namespace {

/// Table indices referenced by an expression.
std::set<size_t> TablesOf(const ExprPtr& e, const QueryBlock& block) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  std::set<size_t> out;
  for (const Expr* r : refs) {
    out.insert(block.TableOfOffset(static_cast<size_t>(r->resolved_index)));
  }
  return out;
}

void InsertSorted(std::vector<size_t>* v, size_t x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it == v->end() || *it != x) v->insert(it, x);
}

}  // namespace

std::string TablePartition::ToString(const QueryBlock& block) const {
  auto render = [&](const std::vector<size_t>& side) {
    std::string out = "{";
    for (size_t i = 0; i < side.size(); ++i) {
      if (i > 0) out += ", ";
      out += block.tables[side[i]].alias;
    }
    return out + "}";
  };
  return "L=" + render(left) + " R=" + render(right);
}

bool IcebergView::IsLeftOffset(size_t offset) const {
  size_t ti = block->TableOfOffset(offset);
  return std::find(partition.left.begin(), partition.left.end(), ti) !=
         partition.left.end();
}

namespace {

FdSet SideFds(const IcebergView& view, const std::vector<size_t>& side,
              const std::vector<ExprPtr>& side_conjuncts) {
  FdSet out;
  for (size_t ti : side) {
    const BoundTableRef& t = view.block->tables[ti];
    out.Merge(t.fds.WithQualifier(t.alias));
  }
  for (const ExprPtr& conjunct : side_conjuncts) {
    if (conjunct->kind != ExprKind::kBinary ||
        conjunct->bop != BinaryOp::kEq) {
      continue;
    }
    const ExprPtr& l = conjunct->children[0];
    const ExprPtr& r = conjunct->children[1];
    if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kColumnRef) {
      out.AddEquivalence(
          view.block->QualifiedNameOfOffset(l->resolved_index),
          view.block->QualifiedNameOfOffset(r->resolved_index));
    } else if (l->kind == ExprKind::kColumnRef &&
               r->kind == ExprKind::kLiteral) {
      out.Add(FunctionalDependency{
          {}, {view.block->QualifiedNameOfOffset(l->resolved_index)}});
    } else if (r->kind == ExprKind::kColumnRef &&
               l->kind == ExprKind::kLiteral) {
      out.Add(FunctionalDependency{
          {}, {view.block->QualifiedNameOfOffset(r->resolved_index)}});
    }
  }
  return out;
}

}  // namespace

FdSet IcebergView::LeftFds() const {
  return SideFds(*this, partition.left, left_only);
}

FdSet IcebergView::RightFds() const {
  return SideFds(*this, partition.right, right_only);
}

AttrSet IcebergView::LeftAttrs() const {
  return block->AttributesOf(partition.left);
}

AttrSet IcebergView::RightAttrs() const {
  return block->AttributesOf(partition.right);
}

AttrSet IcebergView::NamesOf(const std::vector<size_t>& offsets) const {
  AttrSet out;
  for (size_t o : offsets) out.insert(block->QualifiedNameOfOffset(o));
  return out;
}

bool IcebergView::ApplicableTo(const ExprPtr& e, bool left_side) const {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  for (const Expr* r : refs) {
    bool is_left = IsLeftOffset(static_cast<size_t>(r->resolved_index));
    if (is_left != left_side) return false;
  }
  return true;
}

Monotonicity IcebergView::HavingMonotonicity() const {
  NonNegativeHint hint = [this](const ExprPtr& arg) {
    // Instance-level soundness check: every column referenced by the SUM
    // argument must be non-negative in the stored data (and the expression
    // must be built from +, * and non-negative constants so it preserves
    // non-negativity).
    std::vector<const Expr*> refs;
    CollectColumnRefs(arg, &refs);
    for (const Expr* r : refs) {
      size_t ti = block->TableOfOffset(static_cast<size_t>(r->resolved_index));
      size_t ci = static_cast<size_t>(r->resolved_index) -
                  block->tables[ti].offset;
      const Table& table = *block->tables[ti].table;
      for (const Row& row : table.rows()) {
        const Value& v = row[ci];
        if (!v.is_null() && v.is_numeric() && v.AsDouble() < 0) return false;
      }
    }
    // Structural check on the expression.
    std::function<bool(const ExprPtr&)> preserves =
        [&](const ExprPtr& e) -> bool {
      switch (e->kind) {
        case ExprKind::kColumnRef:
          return true;
        case ExprKind::kLiteral:
          return e->literal.is_numeric() && e->literal.AsDouble() >= 0;
        case ExprKind::kBinary:
          if (e->bop == BinaryOp::kAdd || e->bop == BinaryOp::kMul) {
            return preserves(e->children[0]) && preserves(e->children[1]);
          }
          return false;
        default:
          return false;
      }
    };
    return preserves(arg);
  };
  return ClassifyHaving(block->having, hint);
}

bool IcebergView::GroupDeterminesLeft() const {
  return LeftFds().Determines(NamesOf(gl_offsets), LeftAttrs());
}

bool IcebergView::JoinDeterminesLeft() const {
  return LeftFds().Determines(NamesOf(jl_offsets), LeftAttrs());
}

std::string IcebergView::ToString() const {
  std::string out = partition.ToString(*block);
  out += "\n  Theta: " +
         (theta.empty() ? std::string("TRUE") : AndAll(theta)->ToString());
  out += "\n  J_L: " + AttrSetToString(NamesOf(jl_offsets));
  out += "\n  J_R: " + AttrSetToString(NamesOf(jr_offsets));
  out += "\n  G_L: " + AttrSetToString(NamesOf(gl_offsets));
  out += "\n  G_R: " + AttrSetToString(NamesOf(gr_offsets));
  out += "\n  Phi: " + (block->having == nullptr
                            ? std::string("<none>")
                            : block->having->ToString()) +
         " [" + MonotonicityName(HavingMonotonicity()) + "]";
  return out;
}

Result<IcebergView> AnalyzeIceberg(const QueryBlock& block,
                                   TablePartition partition) {
  IcebergView view;
  view.block = &block;
  view.partition = std::move(partition);

  std::vector<bool> seen(block.tables.size(), false);
  for (size_t ti : view.partition.left) {
    if (ti >= block.tables.size() || seen[ti]) {
      return Status::InvalidArgument("bad partition (left)");
    }
    seen[ti] = true;
  }
  for (size_t ti : view.partition.right) {
    if (ti >= block.tables.size() || seen[ti]) {
      return Status::InvalidArgument("bad partition (right)");
    }
    seen[ti] = true;
  }
  for (bool s : seen) {
    if (!s) return Status::InvalidArgument("partition does not cover tables");
  }

  auto side_of_table = [&](size_t ti) {
    return std::find(view.partition.left.begin(), view.partition.left.end(),
                     ti) != view.partition.left.end();
  };

  for (const ExprPtr& conjunct : block.where_conjuncts) {
    std::set<size_t> tables = TablesOf(conjunct, block);
    bool has_left = false, has_right = false;
    for (size_t ti : tables) {
      (side_of_table(ti) ? has_left : has_right) = true;
    }
    if (has_left && has_right) {
      view.theta.push_back(conjunct);
      bool is_eq = conjunct->kind == ExprKind::kBinary &&
                   conjunct->bop == BinaryOp::kEq;
      std::vector<const Expr*> refs;
      CollectColumnRefs(conjunct, &refs);
      for (const Expr* r : refs) {
        size_t off = static_cast<size_t>(r->resolved_index);
        if (side_of_table(block.TableOfOffset(off))) {
          InsertSorted(&view.jl_offsets, off);
          if (is_eq) InsertSorted(&view.jl_eq_offsets, off);
        } else {
          InsertSorted(&view.jr_offsets, off);
          if (is_eq) InsertSorted(&view.jr_eq_offsets, off);
        }
      }
    } else if (has_left) {
      view.left_only.push_back(conjunct);
    } else {
      view.right_only.push_back(conjunct);
    }
  }

  for (const ExprPtr& g : block.group_by) {
    size_t off = static_cast<size_t>(g->resolved_index);
    if (side_of_table(block.TableOfOffset(off))) {
      InsertSorted(&view.gl_offsets, off);
    } else {
      InsertSorted(&view.gr_offsets, off);
    }
  }

  // Augment G_L / G_R with equality-equivalent offsets from the other side
  // (transitive closure over all column=column equality conjuncts).
  view.gl_aug_offsets = view.gl_offsets;
  view.gr_aug_offsets = view.gr_offsets;
  {
    // Union-find over flat offsets.
    std::map<size_t, size_t> parent;
    std::function<size_t(size_t)> find = [&](size_t x) -> size_t {
      auto it = parent.find(x);
      if (it == parent.end() || it->second == x) return x;
      size_t root = find(it->second);
      parent[x] = root;
      return root;
    };
    for (const ExprPtr& conjunct : block.where_conjuncts) {
      if (conjunct->kind != ExprKind::kBinary ||
          conjunct->bop != BinaryOp::kEq) {
        continue;
      }
      const ExprPtr& l = conjunct->children[0];
      const ExprPtr& r = conjunct->children[1];
      if (l->kind == ExprKind::kColumnRef &&
          r->kind == ExprKind::kColumnRef) {
        size_t a = find(static_cast<size_t>(l->resolved_index));
        size_t b = find(static_cast<size_t>(r->resolved_index));
        parent.emplace(a, a);
        parent.emplace(b, b);
        if (a != b) parent[a] = b;
      }
    }
    auto augment = [&](const std::vector<size_t>& from,
                       std::vector<size_t>* to, bool to_left) {
      for (size_t g : from) {
        size_t root = find(g);
        for (const auto& [off, p] : parent) {
          (void)p;
          if (find(off) != root) continue;
          bool is_left = side_of_table(block.TableOfOffset(off));
          if (is_left == to_left) InsertSorted(to, off);
        }
      }
    };
    augment(view.gr_offsets, &view.gl_aug_offsets, /*to_left=*/true);
    augment(view.gl_offsets, &view.gr_aug_offsets, /*to_left=*/false);
  }
  return view;
}

std::vector<TablePartition> CandidatePartitions(const QueryBlock& block) {
  const size_t n = block.tables.size();
  std::vector<TablePartition> out;
  if (n < 2) return out;

  auto complement = [&](const std::vector<size_t>& left) {
    std::vector<size_t> right;
    for (size_t i = 0; i < n; ++i) {
      if (std::find(left.begin(), left.end(), i) == left.end()) {
        right.push_back(i);
      }
    }
    return right;
  };
  std::set<std::vector<size_t>> emitted;
  auto emit = [&](std::vector<size_t> left) {
    if (left.empty() || left.size() == n) return;
    std::sort(left.begin(), left.end());
    if (!emitted.insert(left).second) return;
    TablePartition p;
    p.left = left;
    p.right = complement(left);
    out.push_back(std::move(p));
  };

  // 1) Minimal left side covering all GROUP BY attributes (the paper's
  //    first candidate for pick_memprune).
  std::vector<size_t> group_tables;
  for (const ExprPtr& g : block.group_by) {
    size_t ti = block.TableOfOffset(static_cast<size_t>(g->resolved_index));
    if (std::find(group_tables.begin(), group_tables.end(), ti) ==
        group_tables.end()) {
      group_tables.push_back(ti);
    }
  }
  if (!group_tables.empty()) emit(group_tables);

  // 2) Singletons.
  for (size_t i = 0; i < n; ++i) emit({i});

  // 3) Pairs (covers the {S1,T1} / {S2,T2} reducers of Example 13).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) emit({i, j});
  }

  // 4) Complements of singletons (left = all but one).
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> left;
    for (size_t j = 0; j < n; ++j) {
      if (j != i) left.push_back(j);
    }
    emit(std::move(left));
  }
  return out;
}

Result<ExprPtr> RemapExpr(const ExprPtr& e,
                          const std::map<size_t, size_t>& offset_map) {
  ExprPtr clone = CloneExpr(e);
  std::vector<Expr*> refs;
  CollectColumnRefs(clone, &refs);
  for (Expr* r : refs) {
    auto it = offset_map.find(static_cast<size_t>(r->resolved_index));
    if (it == offset_map.end()) {
      return Status::Internal("offset not in remap table: " + r->ToString());
    }
    r->resolved_index = static_cast<int>(it->second);
  }
  return clone;
}

Result<QueryBlock> MakeSubBlock(const QueryBlock& block,
                                const std::vector<size_t>& table_indexes,
                                const std::vector<ExprPtr>& conjuncts,
                                std::map<size_t, size_t>* offset_map) {
  QueryBlock sub;
  size_t new_offset = 0;
  for (size_t ti : table_indexes) {
    ICEBERG_CHECK(ti < block.tables.size());
    BoundTableRef ref = block.tables[ti];
    for (size_t c = 0; c < ref.table->schema().num_columns(); ++c) {
      (*offset_map)[ref.offset + c] = new_offset + c;
    }
    ref.offset = new_offset;
    new_offset += ref.table->schema().num_columns();
    sub.tables.push_back(std::move(ref));
  }
  for (const ExprPtr& conjunct : conjuncts) {
    ICEBERG_ASSIGN_OR_RETURN(ExprPtr remapped,
                             RemapExpr(conjunct, *offset_map));
    sub.where_conjuncts.push_back(std::move(remapped));
  }
  return sub;
}

}  // namespace iceberg
