#ifndef SMARTICEBERG_REWRITE_ICEBERG_VIEW_H_
#define SMARTICEBERG_REWRITE_ICEBERG_VIEW_H_

#include <map>
#include <string>
#include <vector>

#include "src/catalog/fd.h"
#include "src/common/status.h"
#include "src/plan/query_block.h"
#include "src/rewrite/monotonicity.h"

namespace iceberg {

/// A partition of a block's FROM tables into the L (outer) and R (inner)
/// sides of the paper's Listing-5 template.
struct TablePartition {
  std::vector<size_t> left;   // indices into QueryBlock::tables
  std::vector<size_t> right;

  std::string ToString(const QueryBlock& block) const;
};

/// The analyzed two-sided view of an iceberg block: Theta, J_L/J_R, G_L/G_R
/// and side-local filters, all in terms of flat column offsets of the
/// original block.
struct IcebergView {
  const QueryBlock* block = nullptr;
  TablePartition partition;

  std::vector<ExprPtr> theta;       // conjuncts referencing both sides
  std::vector<ExprPtr> left_only;   // conjuncts local to the L side
  std::vector<ExprPtr> right_only;  // conjuncts local to the R side

  std::vector<size_t> jl_offsets;   // J_L: L-side offsets referenced by Theta
  std::vector<size_t> jr_offsets;   // J_R
  std::vector<size_t> jl_eq_offsets;  // J_L^=: offsets in equality conjuncts
  std::vector<size_t> jr_eq_offsets;  // J_R^=
  std::vector<size_t> gl_offsets;   // G_L: GROUP BY offsets on the L side
  std::vector<size_t> gr_offsets;   // G_R

  /// G_L / G_R augmented through equality-join equivalences (Appendix D's
  /// Example 13: S1.id in GROUP BY can be replaced by S2.id when
  /// S1.id = S2.id). Used by the a-priori safety checks and reducer
  /// construction; the NLJP operator keeps the native sets.
  std::vector<size_t> gl_aug_offsets;
  std::vector<size_t> gr_aug_offsets;

  /// True if every offset is on the left (right) side.
  bool IsLeftOffset(size_t offset) const;

  /// FDs holding on the L-side (resp. R-side) sub-join: per-table FDs plus
  /// equivalences from side-local equality conjuncts.
  FdSet LeftFds() const;
  FdSet RightFds() const;

  AttrSet LeftAttrs() const;
  AttrSet RightAttrs() const;

  /// Qualified attribute names for a list of offsets.
  AttrSet NamesOf(const std::vector<size_t>& offsets) const;

  /// True if all aggregate arguments and plain column refs of `e` resolve
  /// to the given side ("Phi applicable to L/R"; COUNT(*) is always
  /// applicable).
  bool ApplicableTo(const ExprPtr& e, bool left_side) const;

  /// Classifies the block's HAVING condition; SUM arguments are treated as
  /// non-negative when every referenced column's values are non-negative in
  /// the current instance (a sound instance-level check the engine
  /// provides in lieu of declared domain constraints).
  Monotonicity HavingMonotonicity() const;

  /// True if G_L functionally determines all L-side attributes
  /// (the "G_L -> A_L / G_L is a superkey of L" premise of Theorem 3).
  bool GroupDeterminesLeft() const;

  /// True if J_L functionally determines all L-side attributes (used to
  /// skip memoization when bindings are unique; Section 6).
  bool JoinDeterminesLeft() const;

  std::string ToString() const;
};

/// Builds the two-sided view. Fails if the partition is not a disjoint
/// cover of the block's tables.
Result<IcebergView> AnalyzeIceberg(const QueryBlock& block,
                                   TablePartition partition);

/// Enumerates interesting partitions in the paper's search order: first the
/// minimal L covering all GROUP BY attributes, then singleton comple­ments,
/// then other small subsets. Used by pick_gapriori / pick_memprune.
std::vector<TablePartition> CandidatePartitions(const QueryBlock& block);

// ----- Expression / block remapping helpers ---------------------------------

/// Rewrites the resolved_index of every column ref through `offset_map`
/// (old flat offset -> new flat offset). Fails if a referenced offset is
/// missing from the map. Returns a new expression; the input is untouched.
Result<ExprPtr> RemapExpr(const ExprPtr& e,
                          const std::map<size_t, size_t>& offset_map);

/// Builds a sub-block over the given tables of `block` (in `table_indexes`
/// order): the sub-block's FROM list is those tables re-offset, `where` the
/// provided conjuncts remapped. Select/group-by/having start empty; callers
/// fill them (remapped) as needed. Also returns the offset map used.
Result<QueryBlock> MakeSubBlock(const QueryBlock& block,
                                const std::vector<size_t>& table_indexes,
                                const std::vector<ExprPtr>& conjuncts,
                                std::map<size_t, size_t>* offset_map);

}  // namespace iceberg

#endif  // SMARTICEBERG_REWRITE_ICEBERG_VIEW_H_
