#ifndef SMARTICEBERG_PLAN_COST_COST_MODEL_H_
#define SMARTICEBERG_PLAN_COST_COST_MODEL_H_

namespace iceberg {

/// Abstract per-row cost weights for the execution paths the left-deep
/// pipeline can take at each join level (src/exec/join_pipeline.h). Units
/// are arbitrary "row touches": only ratios matter, and the defaults are
/// calibrated against the microbench ratios of the row paths (a hash probe
/// costs a little less than two sequential row visits; a deferred hash
/// build is slightly dearer than a scan of the same rows because of key
/// extraction + insertion).
struct CostModel {
  double seq_row = 1.0;     // visit one row in a seq scan / BNL inner loop
  double probe = 1.8;       // one hash or ordered-index probe
  double build_row = 1.1;   // insert one row into a deferred hash build
  double output_row = 0.3;  // materialize one surviving joined row

  /// Hysteresis: the enumerator only deviates from FROM order when its
  /// best order is modeled at least this much cheaper (cost < threshold ×
  /// FROM-order cost). Estimates are noisy; a conservative bar keeps
  /// well-written queries on their stated order and only rescues plans
  /// with an order-of-magnitude problem.
  double reorder_threshold = 0.7;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_PLAN_COST_COST_MODEL_H_
