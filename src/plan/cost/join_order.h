#ifndef SMARTICEBERG_PLAN_COST_JOIN_ORDER_H_
#define SMARTICEBERG_PLAN_COST_JOIN_ORDER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/plan/cost/cardinality.h"
#include "src/plan/cost/cost_model.h"
#include "src/plan/query_block.h"

namespace iceberg {

/// Plan-cache record of one enumerator decision: the join order chosen for
/// a block (positions → FROM index) plus the cumulative per-level row
/// estimates backing it. Replaying a valid schedule skips statistics
/// collection and enumeration entirely; replays are validated as a
/// permutation of the block's FROM list and ignored on mismatch.
struct JoinOrderSchedule {
  std::vector<uint32_t> order;
  std::vector<double> est_rows;
  bool valid = false;
};

/// Per-table cardinality inputs to the enumerator. `base_rows` is the
/// expected number of scan survivors: histogram estimates normally, exact
/// survivor counts when the predicate-transfer graph ran (`exact[t]`).
struct JoinOrderInputs {
  std::vector<double> raw_rows;   // full table cardinality
  std::vector<double> base_rows;  // post-local-filter / post-transfer rows
  std::vector<bool> exact;        // base_rows[t] is a transfer-exact count
};

/// Builds enumerator inputs from the estimator, overriding per-table
/// survivor counts with `exact_rows` entries >= 0 (indexed by FROM
/// position; pass null when no transfer result is available).
JoinOrderInputs MakeJoinOrderInputs(const CardinalityEstimator& est,
                                    const std::vector<double>* exact_rows);

/// One enumerated plan: the chosen order with its modeled cost, and the
/// FROM-order cost it was measured against.
struct JoinOrderPlan {
  std::vector<size_t> order;     // positions → FROM index (identity = as written)
  std::vector<double> est_rows;  // cumulative joined rows after each level
  double cost = 0.0;             // modeled cost of `order`
  double from_order_cost = 0.0;  // modeled cost of the FROM order
  bool reordered = false;        // order differs from FROM order
};

/// Bottom-up left-deep enumeration (exact subset DP up to 12 tables,
/// greedy beyond) over the block's join edges. Level costs follow the
/// pipeline's actual dispatch: a level with an equality edge into the
/// prefix is costed as a (deferred-build) hash probe, anything else as a
/// block-nested loop. The FROM order wins unless the best order beats it
/// by the model's reorder_threshold — estimates are noisy and the as-
/// written order is a strong prior.
JoinOrderPlan ChooseJoinOrder(const CardinalityEstimator& est,
                              const JoinOrderInputs& inputs,
                              const CostModel& model = {});

/// Rewrites the block with its FROM tables permuted to `order`, recomputing
/// flat offsets and remapping every bound column reference (WHERE, GROUP
/// BY, HAVING, SELECT) onto the new layout. Output schema, ORDER BY,
/// LIMIT and DISTINCT are untouched, so the permuted block produces
/// byte-identical results. Fails if `order` is not a permutation of the
/// FROM list.
Result<QueryBlock> PermuteBlock(const QueryBlock& block,
                                const std::vector<size_t>& order);

}  // namespace iceberg

#endif  // SMARTICEBERG_PLAN_COST_JOIN_ORDER_H_
