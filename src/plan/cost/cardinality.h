#ifndef SMARTICEBERG_PLAN_COST_CARDINALITY_H_
#define SMARTICEBERG_PLAN_COST_CARDINALITY_H_

#include <cstdint>
#include <vector>

#include "src/plan/query_block.h"
#include "src/stats/column_stats.h"

namespace iceberg {

/// Bitmask (bit t = tables[t]) of the FROM tables referenced by a bound
/// expression. Tables beyond index 63 are ignored (blocks that wide never
/// reach the enumerator).
uint64_t TableMask(const QueryBlock& block, const ExprPtr& e);

/// Selectivity / cardinality estimation over one bound query block, backed
/// by the per-table column statistics (src/stats). Construction collects
/// (or reuses cached) TableStats for every FROM table and pre-computes the
/// local-filter selectivity of each table from the single-table WHERE
/// conjuncts. All estimates are best-effort: unknown shapes fall back to
/// System-R style magic numbers (eq 1%, range 1/3, <> 90%).
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const QueryBlock& block);

  const QueryBlock& block() const { return *block_; }
  size_t num_tables() const { return block_->tables.size(); }

  /// Full table cardinality of FROM entry t.
  double RawRows(size_t t) const;
  /// Combined selectivity of t's single-table WHERE conjuncts.
  double LocalSelectivity(size_t t) const { return local_sel_[t]; }
  /// RawRows × LocalSelectivity: expected scan survivors of FROM entry t.
  double LocalRows(size_t t) const;

  /// Selectivity in [0, 1] of an arbitrary bound predicate (local or
  /// join); assumes independence between conjuncts.
  double SelectivityOf(const ExprPtr& e) const;

  /// Distinct-value estimate (>= 1) of the column at a flat offset;
  /// falls back to the table's row count when stats are unavailable.
  double NdvOfOffset(size_t flat_offset) const;

  /// Column statistics behind a flat offset, or null when unavailable.
  const ColumnStats* StatsOfOffset(size_t flat_offset) const;

  TableStatsPtr table_stats(size_t t) const { return stats_[t]; }

 private:
  double PredicateSelectivity(const Expr& e) const;
  double ComparisonSelectivity(BinaryOp op, const ExprPtr& l,
                               const ExprPtr& r) const;

  const QueryBlock* block_;
  std::vector<TableStatsPtr> stats_;
  std::vector<double> local_sel_;
};

/// Expected cardinality of joining the given FROM entries (indexes into
/// block.tables) under every WHERE conjunct whose references fall entirely
/// inside the set: product of LocalRows × product of join selectivities.
double EstimateJoinRows(const CardinalityEstimator& est,
                        const std::vector<size_t>& tables);

/// Expected number of distinct combinations of the columns at the given
/// flat offsets among `join_rows` joined rows: min(join_rows, product of
/// per-column NDVs), with the standard "balls into bins" damping
/// n·(1 - (1 - 1/n)^r) applied for single columns.
double EstimateDistinctValues(const CardinalityEstimator& est,
                              const std::vector<size_t>& offsets,
                              double join_rows);

/// Fraction of groups a HAVING predicate keeps, assuming group sizes are
/// exponentially distributed with the given mean. Understands comparisons
/// of COUNT(*) against a constant (possibly under a top-level AND);
/// returns -1 when the shape is not understood (callers must not gate).
double EstimateHavingKeepFraction(const ExprPtr& having,
                                  double avg_group_rows);

}  // namespace iceberg

#endif  // SMARTICEBERG_PLAN_COST_CARDINALITY_H_
