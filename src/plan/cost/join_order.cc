#include "src/plan/cost/join_order.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

namespace iceberg {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Exact subset DP is exponential; past this many tables fall back to the
/// greedy construction.
constexpr size_t kDpTableLimit = 12;
/// Past this many tables skip enumeration entirely (FROM order stands).
constexpr size_t kEnumerateTableLimit = 20;

struct JoinEdge {
  uint64_t mask = 0;   // tables referenced by the conjunct
  uint64_t keyed = 0;  // tables probeable as the inner side of an eq key
  double sel = 1.0;
};

// One entry per multi-table WHERE conjunct. `keyed` mirrors the pipeline's
// eq-key extraction: bit t is set when the conjunct is an equality with a
// plain column of table t on one side and an expression over other tables
// only on the other — exactly the shape JoinPipeline::Plan turns into a
// hash/index probe key for level t.
std::vector<JoinEdge> CollectJoinEdges(const CardinalityEstimator& est) {
  const QueryBlock& block = est.block();
  std::vector<JoinEdge> edges;
  for (const ExprPtr& conjunct : block.where_conjuncts) {
    uint64_t mask = TableMask(block, conjunct);
    if (mask == 0 || (mask & (mask - 1)) == 0) continue;  // constant / local
    JoinEdge edge;
    edge.mask = mask;
    edge.sel = est.SelectivityOf(conjunct);
    if (conjunct->kind == ExprKind::kBinary &&
        conjunct->bop == BinaryOp::kEq && conjunct->children.size() == 2) {
      auto mark = [&](const ExprPtr& col_side, const ExprPtr& other) {
        if (col_side == nullptr || col_side->kind != ExprKind::kColumnRef ||
            col_side->resolved_index < 0) {
          return;
        }
        size_t t = block.TableOfOffset(
            static_cast<size_t>(col_side->resolved_index));
        if (t >= 64) return;
        uint64_t other_mask = TableMask(block, other);
        if (other_mask != 0 && (other_mask & (uint64_t{1} << t)) == 0) {
          edge.keyed |= uint64_t{1} << t;
        }
      };
      mark(conjunct->children[0], conjunct->children[1]);
      mark(conjunct->children[1], conjunct->children[0]);
    }
    edges.push_back(edge);
  }
  return edges;
}

struct CostContext {
  const JoinOrderInputs* inputs;
  const std::vector<JoinEdge>* edges;
  const CostModel* model;
};

// Cardinality after joining table t onto a prefix with the given
// cardinality: every edge whose remaining tables are now all present
// applies exactly once (when its last table joins).
double StepCard(const CostContext& cx, uint64_t prefix, double prefix_card,
                size_t t) {
  double card = (prefix == 0 ? 1.0 : prefix_card) * cx.inputs->base_rows[t];
  uint64_t joined = prefix | (uint64_t{1} << t);
  for (const JoinEdge& e : *cx.edges) {
    if ((e.mask & joined) != e.mask) continue;
    if (((e.mask >> t) & 1) == 0) continue;  // applied at an earlier level
    card *= e.sel;
  }
  return card;
}

// Whether table t joins the prefix through an equality key (the pipeline
// will dispatch a hash/index probe instead of a nested loop).
bool KeyedAgainst(const CostContext& cx, uint64_t prefix, size_t t) {
  for (const JoinEdge& e : *cx.edges) {
    if (((e.keyed >> t) & 1) == 0) continue;
    uint64_t rest = e.mask & ~(uint64_t{1} << t);
    if (rest != 0 && (rest & prefix) == rest) return true;
  }
  return false;
}

double StepCost(const CostContext& cx, uint64_t prefix, double prefix_card,
                size_t t, double out_card) {
  const CostModel& m = *cx.model;
  double raw = cx.inputs->raw_rows[t];
  if (prefix == 0) {  // level 0 is always a sequential scan
    return raw * m.seq_row + out_card * m.output_row;
  }
  if (KeyedAgainst(cx, prefix, t)) {
    return raw * m.build_row + prefix_card * m.probe +
           out_card * m.output_row;
  }
  return prefix_card * raw * m.seq_row + out_card * m.output_row;
}

// Cost of a complete order; fills cumulative per-level row estimates.
double ChainCost(const CostContext& cx, const std::vector<size_t>& order,
                 std::vector<double>* est_rows) {
  double cost = 0.0;
  double card = 1.0;
  uint64_t prefix = 0;
  est_rows->clear();
  est_rows->reserve(order.size());
  for (size_t t : order) {
    double out = StepCard(cx, prefix, card, t);
    cost += StepCost(cx, prefix, card, t, out);
    prefix |= uint64_t{1} << t;
    card = out;
    est_rows->push_back(out);
  }
  return cost;
}

// Exact left-deep DP over table subsets. Ties break toward the
// lowest-index table (strict <, candidates in FROM order) so results are
// deterministic and biased toward the as-written order.
std::vector<size_t> DpOrder(const CostContext& cx, size_t n) {
  const uint64_t full = (uint64_t{1} << n) - 1;
  std::vector<double> card(full + 1, 1.0);
  for (uint64_t s = 1; s <= full; ++s) {
    double c = 1.0;
    for (size_t t = 0; t < n; ++t) {
      if ((s >> t) & 1) c *= cx.inputs->base_rows[t];
    }
    for (const JoinEdge& e : *cx.edges) {
      if ((e.mask & s) == e.mask) c *= e.sel;
    }
    card[s] = c;
  }
  std::vector<double> best(full + 1, kInf);
  std::vector<int> pred(full + 1, -1);
  best[0] = 0.0;
  for (uint64_t s = 0; s < full; ++s) {
    if (!(best[s] < kInf)) continue;
    for (size_t t = 0; t < n; ++t) {
      if ((s >> t) & 1) continue;
      uint64_t ns = s | (uint64_t{1} << t);
      double c = best[s] + StepCost(cx, s, card[s], t, card[ns]);
      if (c < best[ns]) {
        best[ns] = c;
        pred[ns] = static_cast<int>(t);
      }
    }
  }
  std::vector<size_t> order(n);
  uint64_t s = full;
  for (size_t i = n; i-- > 0;) {
    size_t t = static_cast<size_t>(pred[s]);
    order[i] = t;
    s &= ~(uint64_t{1} << t);
  }
  return order;
}

// Greedy fallback for wide blocks: repeatedly append the cheapest next
// level (ties toward the lowest FROM index).
std::vector<size_t> GreedyOrder(const CostContext& cx, size_t n) {
  std::vector<size_t> order;
  order.reserve(n);
  uint64_t prefix = 0;
  double card = 1.0;
  for (size_t step = 0; step < n; ++step) {
    size_t pick = n;
    double pick_cost = kInf;
    for (size_t t = 0; t < n; ++t) {
      if ((prefix >> t) & 1) continue;
      double out = StepCard(cx, prefix, card, t);
      double c = StepCost(cx, prefix, card, t, out);
      if (c < pick_cost) {
        pick_cost = c;
        pick = t;
      }
    }
    card = StepCard(cx, prefix, card, pick);
    prefix |= uint64_t{1} << pick;
    order.push_back(pick);
  }
  return order;
}

}  // namespace

JoinOrderInputs MakeJoinOrderInputs(const CardinalityEstimator& est,
                                    const std::vector<double>* exact_rows) {
  const size_t n = est.num_tables();
  JoinOrderInputs inputs;
  inputs.raw_rows.resize(n);
  inputs.base_rows.resize(n);
  inputs.exact.assign(n, false);
  for (size_t t = 0; t < n; ++t) {
    inputs.raw_rows[t] = est.RawRows(t);
    if (exact_rows != nullptr && t < exact_rows->size() &&
        (*exact_rows)[t] >= 0.0) {
      inputs.base_rows[t] = (*exact_rows)[t];
      inputs.exact[t] = true;
    } else {
      inputs.base_rows[t] = est.LocalRows(t);
    }
  }
  return inputs;
}

JoinOrderPlan ChooseJoinOrder(const CardinalityEstimator& est,
                              const JoinOrderInputs& inputs,
                              const CostModel& model) {
  const size_t n = est.num_tables();
  JoinOrderPlan plan;
  plan.order.resize(n);
  std::iota(plan.order.begin(), plan.order.end(), size_t{0});
  if (inputs.raw_rows.size() != n || inputs.base_rows.size() != n) {
    plan.est_rows.assign(n, -1.0);
    return plan;
  }
  std::vector<JoinEdge> edges = CollectJoinEdges(est);
  CostContext cx{&inputs, &edges, &model};
  plan.from_order_cost = ChainCost(cx, plan.order, &plan.est_rows);
  plan.cost = plan.from_order_cost;
  if (n < 2 || n > kEnumerateTableLimit) return plan;
  std::vector<size_t> candidate =
      n <= kDpTableLimit ? DpOrder(cx, n) : GreedyOrder(cx, n);
  if (candidate == plan.order) return plan;
  std::vector<double> candidate_est;
  double candidate_cost = ChainCost(cx, candidate, &candidate_est);
  if (candidate_cost < model.reorder_threshold * plan.from_order_cost) {
    plan.order = std::move(candidate);
    plan.est_rows = std::move(candidate_est);
    plan.cost = candidate_cost;
    plan.reordered = true;
  }
  return plan;
}

Result<QueryBlock> PermuteBlock(const QueryBlock& block,
                                const std::vector<size_t>& order) {
  const size_t n = block.tables.size();
  if (order.size() != n) {
    return Status::InvalidArgument("join order arity mismatch");
  }
  std::vector<bool> seen(n, false);
  for (size_t t : order) {
    if (t >= n || seen[t]) {
      return Status::InvalidArgument("join order is not a permutation");
    }
    seen[t] = true;
  }
  QueryBlock out;
  out.tables.reserve(n);
  std::vector<size_t> offset_map(block.TotalWidth(), 0);
  size_t next = 0;
  for (size_t p = 0; p < n; ++p) {
    BoundTableRef tref = block.tables[order[p]];
    const size_t width =
        tref.table != nullptr ? tref.table->schema().num_columns() : 0;
    for (size_t c = 0; c < width; ++c) {
      offset_map[block.tables[order[p]].offset + c] = next + c;
    }
    tref.offset = next;
    next += width;
    out.tables.push_back(std::move(tref));
  }
  auto remap = [&](const ExprPtr& e) -> ExprPtr {
    if (e == nullptr) return nullptr;
    ExprPtr clone = CloneExpr(e);
    std::vector<Expr*> refs;
    CollectColumnRefs(clone, &refs);
    for (Expr* ref : refs) {
      if (ref->resolved_index >= 0 &&
          static_cast<size_t>(ref->resolved_index) < offset_map.size()) {
        ref->resolved_index = static_cast<int>(
            offset_map[static_cast<size_t>(ref->resolved_index)]);
      }
    }
    return clone;
  };
  out.where_conjuncts.reserve(block.where_conjuncts.size());
  for (const ExprPtr& c : block.where_conjuncts) {
    out.where_conjuncts.push_back(remap(c));
  }
  out.group_by.reserve(block.group_by.size());
  for (const ExprPtr& g : block.group_by) out.group_by.push_back(remap(g));
  out.having = remap(block.having);
  out.select.reserve(block.select.size());
  for (const BoundSelectItem& item : block.select) {
    out.select.push_back({remap(item.expr), item.alias});
  }
  out.distinct = block.distinct;
  out.order_by = block.order_by;
  out.limit = block.limit;
  out.output_schema = block.output_schema;
  return out;
}

}  // namespace iceberg
