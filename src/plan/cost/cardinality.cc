#include "src/plan/cost/cardinality.h"

#include <algorithm>
#include <cmath>

#include "src/expr/evaluator.h"

namespace iceberg {

namespace {

// System-R defaults for predicate shapes the statistics cannot resolve.
constexpr double kDefaultEqSel = 0.01;
constexpr double kDefaultRangeSel = 1.0 / 3.0;
constexpr double kDefaultNeSel = 0.9;

bool IsPlainColumn(const ExprPtr& e) {
  return e != nullptr && e->kind == ExprKind::kColumnRef &&
         e->resolved_index >= 0;
}

// Constant-foldable: no column refs, no aggregates.
bool IsLiteralOnly(const ExprPtr& e) {
  if (e == nullptr || ContainsAggregate(e)) return false;
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  return refs.empty();
}

double Clamp01(double s) { return std::min(1.0, std::max(0.0, s)); }

}  // namespace

uint64_t TableMask(const QueryBlock& block, const ExprPtr& e) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  uint64_t mask = 0;
  for (const Expr* ref : refs) {
    if (ref->resolved_index < 0) continue;
    size_t t = block.TableOfOffset(static_cast<size_t>(ref->resolved_index));
    if (t < 64) mask |= uint64_t{1} << t;
  }
  return mask;
}

CardinalityEstimator::CardinalityEstimator(const QueryBlock& block)
    : block_(&block) {
  stats_.reserve(block.tables.size());
  for (const BoundTableRef& tref : block.tables) {
    stats_.push_back(tref.table != nullptr ? GetOrBuildTableStats(*tref.table)
                                           : nullptr);
  }
  local_sel_.assign(block.tables.size(), 1.0);
  for (const ExprPtr& conjunct : block.where_conjuncts) {
    uint64_t mask = TableMask(block, conjunct);
    if (mask == 0 || (mask & (mask - 1)) != 0) continue;  // not single-table
    size_t t = 0;
    while (((mask >> t) & 1) == 0) ++t;
    local_sel_[t] *= SelectivityOf(conjunct);
  }
}

double CardinalityEstimator::RawRows(size_t t) const {
  if (t >= stats_.size()) return 1.0;
  if (stats_[t] != nullptr) {
    return static_cast<double>(stats_[t]->row_count());
  }
  const TablePtr& table = block_->tables[t].table;
  return table != nullptr ? static_cast<double>(table->num_rows()) : 1.0;
}

double CardinalityEstimator::LocalRows(size_t t) const {
  return RawRows(t) * LocalSelectivity(t);
}

double CardinalityEstimator::SelectivityOf(const ExprPtr& e) const {
  if (e == nullptr) return 1.0;
  return Clamp01(PredicateSelectivity(*e));
}

double CardinalityEstimator::NdvOfOffset(size_t flat_offset) const {
  const ColumnStats* cs = StatsOfOffset(flat_offset);
  if (cs != nullptr && cs->ndv >= 1.0) return cs->ndv;
  size_t t = block_->TableOfOffset(flat_offset);
  return std::max(1.0, RawRows(t));
}

const ColumnStats* CardinalityEstimator::StatsOfOffset(
    size_t flat_offset) const {
  size_t t = block_->TableOfOffset(flat_offset);
  if (t >= stats_.size() || stats_[t] == nullptr) return nullptr;
  size_t local = flat_offset - block_->tables[t].offset;
  if (local >= stats_[t]->num_columns()) return nullptr;
  return &stats_[t]->column(local);
}

double CardinalityEstimator::ComparisonSelectivity(BinaryOp op,
                                                   const ExprPtr& l,
                                                   const ExprPtr& r) const {
  // col OP constant: answer from the column's histogram / NDV.
  if (IsPlainColumn(l) && IsLiteralOnly(r)) {
    const ColumnStats* cs =
        StatsOfOffset(static_cast<size_t>(l->resolved_index));
    if (cs != nullptr) {
      Value v = Evaluate(*r, Row{});
      if (!v.is_null()) {
        switch (op) {
          case BinaryOp::kEq:
            return cs->EqSelectivity(v);
          case BinaryOp::kNe:
            return 1.0 - cs->EqSelectivity(v);
          default:
            return cs->RangeSelectivity(op, v);
        }
      }
    }
    switch (op) {
      case BinaryOp::kEq:
        return kDefaultEqSel;
      case BinaryOp::kNe:
        return kDefaultNeSel;
      default:
        return kDefaultRangeSel;
    }
  }
  if (IsPlainColumn(r) && IsLiteralOnly(l) && IsComparisonOp(op)) {
    return ComparisonSelectivity(FlipComparison(op), r, l);
  }
  // col OP col (same- or cross-table): eq distributes 1/max NDV, the
  // containment assumption of System R.
  if (IsPlainColumn(l) && IsPlainColumn(r)) {
    if (op == BinaryOp::kEq) {
      double ndv =
          std::max(NdvOfOffset(static_cast<size_t>(l->resolved_index)),
                   NdvOfOffset(static_cast<size_t>(r->resolved_index)));
      return 1.0 / std::max(1.0, ndv);
    }
    return op == BinaryOp::kNe ? kDefaultNeSel : kDefaultRangeSel;
  }
  // col = <expr over other columns>: one distinct match expected per value.
  if (op == BinaryOp::kEq) {
    if (IsPlainColumn(l)) {
      return 1.0 /
             std::max(1.0, NdvOfOffset(static_cast<size_t>(l->resolved_index)));
    }
    if (IsPlainColumn(r)) {
      return 1.0 /
             std::max(1.0, NdvOfOffset(static_cast<size_t>(r->resolved_index)));
    }
    return kDefaultEqSel;
  }
  return op == BinaryOp::kNe ? kDefaultNeSel : kDefaultRangeSel;
}

double CardinalityEstimator::PredicateSelectivity(const Expr& e) const {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal.AsBool() ? 1.0 : 0.0;
    case ExprKind::kColumnRef:
      return 0.5;  // boolean column used directly as a predicate
    case ExprKind::kUnary:
      if (e.uop == UnaryOp::kNot && !e.children.empty()) {
        return 1.0 - Clamp01(PredicateSelectivity(*e.children[0]));
      }
      return 0.5;
    case ExprKind::kBinary: {
      if (e.children.size() != 2) return kDefaultRangeSel;
      double sl = 0.0;
      double sr = 0.0;
      switch (e.bop) {
        case BinaryOp::kAnd:
          sl = Clamp01(PredicateSelectivity(*e.children[0]));
          sr = Clamp01(PredicateSelectivity(*e.children[1]));
          return sl * sr;
        case BinaryOp::kOr:
          sl = Clamp01(PredicateSelectivity(*e.children[0]));
          sr = Clamp01(PredicateSelectivity(*e.children[1]));
          return sl + sr - sl * sr;
        default:
          break;
      }
      if (IsComparisonOp(e.bop)) {
        return ComparisonSelectivity(e.bop, e.children[0], e.children[1]);
      }
      return kDefaultRangeSel;  // arithmetic used as a predicate
    }
    case ExprKind::kAggregate:
      return kDefaultRangeSel;
  }
  return kDefaultRangeSel;
}

double EstimateJoinRows(const CardinalityEstimator& est,
                        const std::vector<size_t>& tables) {
  const QueryBlock& block = est.block();
  uint64_t set = 0;
  double rows = 1.0;
  for (size_t t : tables) {
    if (t < 64) set |= uint64_t{1} << t;
    rows *= std::max(0.0, est.LocalRows(t));
  }
  for (const ExprPtr& conjunct : block.where_conjuncts) {
    uint64_t mask = TableMask(block, conjunct);
    if (mask == 0 || (mask & (mask - 1)) == 0) continue;  // local / constant
    if ((mask & set) != mask) continue;                   // not fully inside
    rows *= est.SelectivityOf(conjunct);
  }
  return rows;
}

double EstimateDistinctValues(const CardinalityEstimator& est,
                              const std::vector<size_t>& offsets,
                              double join_rows) {
  if (offsets.empty() || join_rows <= 0.0) return join_rows <= 0.0 ? 0.0 : 1.0;
  double domain = 1.0;
  for (size_t offset : offsets) {
    domain *= std::max(1.0, est.NdvOfOffset(offset));
    if (domain > 1e15) break;  // saturates; min() below decides anyway
  }
  // Balls-into-bins: r rows over n slots fill n(1 - (1 - 1/n)^r) of them.
  if (domain <= 1.0) return 1.0;
  double filled = domain * (1.0 - std::exp(join_rows *
                                           std::log1p(-1.0 / domain)));
  return std::max(1.0, std::min(filled, std::min(domain, join_rows)));
}

namespace {

// Matches `having` against comparisons of COUNT against a constant and
// returns the keep fraction, or -1 when not understood.
double HavingKeepFraction(const ExprPtr& having, double mean) {
  if (having == nullptr || having->kind != ExprKind::kBinary) return -1.0;
  if (having->children.size() != 2) return -1.0;
  if (having->bop == BinaryOp::kAnd) {
    double l = HavingKeepFraction(having->children[0], mean);
    double r = HavingKeepFraction(having->children[1], mean);
    if (l < 0.0 || r < 0.0) return -1.0;
    return l * r;
  }
  if (!IsComparisonOp(having->bop)) return -1.0;
  ExprPtr agg = having->children[0];
  ExprPtr lit = having->children[1];
  BinaryOp op = having->bop;
  if (agg->kind != ExprKind::kAggregate) {
    std::swap(agg, lit);
    op = FlipComparison(op);
  }
  if (agg->kind != ExprKind::kAggregate ||
      (agg->agg != AggFunc::kCountStar && agg->agg != AggFunc::kCount)) {
    return -1.0;
  }
  if (!IsLiteralOnly(lit)) return -1.0;
  Value v = Evaluate(*lit, Row{});
  if (v.is_null() || (!v.is_int() && !v.is_double())) return -1.0;
  double c = v.is_int() ? static_cast<double>(v.AsInt()) : v.AsDouble();
  double m = std::max(1.0, mean);
  // Group sizes X >= 1 modeled as 1 + Exp(mean - 1): P(X >= c) decays
  // exponentially past 1.
  auto tail_ge = [&](double bound) {
    double excess = std::max(0.0, bound - 1.0);
    double spread = std::max(1e-9, m - 1.0);
    return std::exp(-excess / spread);
  };
  switch (op) {
    case BinaryOp::kGe:
      return Clamp01(tail_ge(c));
    case BinaryOp::kGt:
      return Clamp01(tail_ge(c + 1.0));
    case BinaryOp::kLe:
      return Clamp01(1.0 - tail_ge(c + 1.0));
    case BinaryOp::kLt:
      return Clamp01(1.0 - tail_ge(c));
    default:
      return -1.0;  // = / <> on a count: too spiky to model
  }
}

}  // namespace

double EstimateHavingKeepFraction(const ExprPtr& having,
                                  double avg_group_rows) {
  return HavingKeepFraction(having, avg_group_rows);
}

}  // namespace iceberg
