#include "src/plan/query_block.h"

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/parser/ast.h"

namespace iceberg {

size_t QueryBlock::TotalWidth() const {
  size_t width = 0;
  for (const BoundTableRef& t : tables) width += t.table->schema().num_columns();
  return width;
}

size_t QueryBlock::TableOfOffset(size_t flat_offset) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    size_t begin = tables[i].offset;
    size_t end = begin + tables[i].table->schema().num_columns();
    if (flat_offset >= begin && flat_offset < end) return i;
  }
  ICEBERG_CHECK(false);
  return 0;
}

std::string QueryBlock::QualifiedNameOfOffset(size_t flat_offset) const {
  size_t ti = TableOfOffset(flat_offset);
  size_t ci = flat_offset - tables[ti].offset;
  return tables[ti].alias + "." +
         ToLower(tables[ti].table->schema().column(ci).name);
}

FdSet QueryBlock::QueryFds() const {
  FdSet out;
  for (const BoundTableRef& t : tables) {
    out.Merge(t.fds.WithQualifier(t.alias));
  }
  // Equality predicates col = col add mutual FDs; col = const makes the
  // column determined by anything (we model it as {} -> col).
  for (const ExprPtr& conjunct : where_conjuncts) {
    if (conjunct->kind != ExprKind::kBinary ||
        conjunct->bop != BinaryOp::kEq) {
      continue;
    }
    const ExprPtr& l = conjunct->children[0];
    const ExprPtr& r = conjunct->children[1];
    if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kColumnRef) {
      out.AddEquivalence(QualifiedNameOfOffset(l->resolved_index),
                         QualifiedNameOfOffset(r->resolved_index));
    } else if (l->kind == ExprKind::kColumnRef &&
               r->kind == ExprKind::kLiteral) {
      out.Add(FunctionalDependency{
          {}, {QualifiedNameOfOffset(l->resolved_index)}});
    } else if (r->kind == ExprKind::kColumnRef &&
               l->kind == ExprKind::kLiteral) {
      out.Add(FunctionalDependency{
          {}, {QualifiedNameOfOffset(r->resolved_index)}});
    }
  }
  return out;
}

AttrSet QueryBlock::AttributesOf(
    const std::vector<size_t>& table_indexes) const {
  AttrSet out;
  for (size_t ti : table_indexes) {
    const BoundTableRef& t = tables[ti];
    for (const Column& c : t.table->schema().columns()) {
      out.insert(t.alias + "." + ToLower(c.name));
    }
  }
  return out;
}

std::string QueryBlock::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (select.empty()) out += "*";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i].expr->ToString();
    if (!select[i].alias.empty()) out += " AS " + select[i].alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) out += ", ";
    out += tables[i].table->name();
    if (tables[i].alias != ToLower(tables[i].table->name())) {
      out += " " + tables[i].alias;
    }
  }
  if (!where_conjuncts.empty()) {
    out += " WHERE " + AndAll(where_conjuncts)->ToString();
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  return out;
}

DataType InferType(const ExprPtr& expr,
                   const std::vector<DataType>& types_by_offset) {
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return expr->literal.type();
    case ExprKind::kColumnRef: {
      ICEBERG_DCHECK(expr->resolved_index >= 0);
      size_t i = static_cast<size_t>(expr->resolved_index);
      return i < types_by_offset.size() ? types_by_offset[i]
                                        : DataType::kInt64;
    }
    case ExprKind::kBinary: {
      if (IsComparisonOp(expr->bop) || expr->bop == BinaryOp::kAnd ||
          expr->bop == BinaryOp::kOr) {
        return DataType::kInt64;  // booleans are int64 0/1
      }
      if (expr->bop == BinaryOp::kDiv) return DataType::kDouble;
      DataType l = InferType(expr->children[0], types_by_offset);
      DataType r = InferType(expr->children[1], types_by_offset);
      if (l == DataType::kDouble || r == DataType::kDouble) {
        return DataType::kDouble;
      }
      return DataType::kInt64;
    }
    case ExprKind::kUnary:
      if (expr->uop == UnaryOp::kNot) return DataType::kInt64;
      return InferType(expr->children[0], types_by_offset);
    case ExprKind::kAggregate:
      switch (expr->agg) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
        case AggFunc::kCountDistinct:
          return DataType::kInt64;
        case AggFunc::kAvg:
          return DataType::kDouble;
        default:
          return expr->children.empty()
                     ? DataType::kInt64
                     : InferType(expr->children[0], types_by_offset);
      }
  }
  return DataType::kInt64;
}

namespace {

/// Resolves one column-ref against the block's tables. Unqualified names
/// must be unambiguous.
Status ResolveColumn(Expr* ref, const QueryBlock& block) {
  std::string qual = ToLower(ref->qualifier);
  std::string col = ToLower(ref->column);
  int found = -1;
  for (const BoundTableRef& t : block.tables) {
    if (!qual.empty() && t.alias != qual) continue;
    std::optional<size_t> ci = t.table->schema().FindColumn(col);
    if (!ci.has_value()) continue;
    if (found >= 0) {
      return Status::BindError("ambiguous column reference: " +
                               ref->ToString());
    }
    found = static_cast<int>(t.offset + *ci);
  }
  if (found < 0) {
    return Status::BindError("unresolved column reference: " +
                             ref->ToString());
  }
  ref->resolved_index = found;
  return Status::OK();
}

}  // namespace

Status Binder::BindExpr(const ExprPtr& expr, const QueryBlock& block) {
  if (expr == nullptr) return Status::OK();
  std::vector<Expr*> refs;
  CollectColumnRefs(expr, &refs);
  for (Expr* ref : refs) {
    ICEBERG_RETURN_NOT_OK(ResolveColumn(ref, block));
  }
  return Status::OK();
}

Result<QueryBlock> Binder::Bind(const ParsedSelect& select) {
  QueryBlock block;
  block.distinct = select.distinct;

  // FROM: resolve tables, assign offsets.
  size_t offset = 0;
  for (const ParsedTableRef& ref : select.from) {
    if (ref.subquery != nullptr) {
      return Status::BindError(
          "FROM-subqueries must be materialized before binding (engine "
          "responsibility)");
    }
    ICEBERG_ASSIGN_OR_RETURN(CatalogEntry entry, resolver_(ref.table_name));
    BoundTableRef bound;
    bound.alias = ToLower(ref.alias.empty() ? ref.table_name : ref.alias);
    bound.table = entry.table;
    bound.fds = entry.fds;
    bound.offset = offset;
    offset += entry.table->schema().num_columns();
    for (const BoundTableRef& existing : block.tables) {
      if (existing.alias == bound.alias) {
        return Status::BindError("duplicate table alias: " + bound.alias);
      }
    }
    block.tables.push_back(std::move(bound));
  }

  // Column types by flat offset, for output schema inference.
  std::vector<DataType> types;
  for (const BoundTableRef& t : block.tables) {
    for (const Column& c : t.table->schema().columns()) types.push_back(c.type);
  }

  // WHERE: clone, bind, split into conjuncts.
  if (select.where != nullptr) {
    ExprPtr where = CloneExpr(select.where);
    ICEBERG_RETURN_NOT_OK(BindExpr(where, block));
    SplitConjuncts(where, &block.where_conjuncts);
  }

  // GROUP BY.
  for (const ExprPtr& g : select.group_by) {
    ExprPtr bound = CloneExpr(g);
    ICEBERG_RETURN_NOT_OK(BindExpr(bound, block));
    if (bound->kind != ExprKind::kColumnRef) {
      return Status::NotSupported(
          "GROUP BY supports plain column references only: " +
          bound->ToString());
    }
    block.group_by.push_back(std::move(bound));
  }

  // HAVING.
  if (select.having != nullptr) {
    block.having = CloneExpr(select.having);
    ICEBERG_RETURN_NOT_OK(BindExpr(block.having, block));
  }

  // SELECT items.
  size_t anon = 0;
  for (const ParsedSelectItem& item : select.items) {
    BoundSelectItem bound;
    bound.expr = CloneExpr(item.expr);
    ICEBERG_RETURN_NOT_OK(BindExpr(bound.expr, block));
    if (!item.alias.empty()) {
      bound.alias = ToLower(item.alias);
    } else if (bound.expr->kind == ExprKind::kColumnRef) {
      bound.alias = ToLower(bound.expr->column);
    } else {
      bound.alias = "col" + std::to_string(anon++);
    }
    block.select.push_back(std::move(bound));
  }

  // Validation: if aggregated, non-aggregate select items must be grouping
  // columns.
  bool aggregated = !block.group_by.empty() || block.having != nullptr;
  for (const BoundSelectItem& item : block.select) {
    if (ContainsAggregate(item.expr)) aggregated = true;
  }
  if (aggregated) {
    for (const BoundSelectItem& item : block.select) {
      if (ContainsAggregate(item.expr)) continue;
      std::vector<const Expr*> refs;
      CollectColumnRefs(item.expr, &refs);
      for (const Expr* ref : refs) {
        bool in_group = false;
        for (const ExprPtr& g : block.group_by) {
          if (g->resolved_index == ref->resolved_index) in_group = true;
        }
        if (!in_group) {
          return Status::BindError(
              "non-aggregated column must appear in GROUP BY: " +
              ref->ToString());
        }
      }
    }
  }

  // Output schema. Column names may repeat across items (e.g. i1.item,
  // i2.item); disambiguate by suffixing.
  for (const BoundSelectItem& item : block.select) {
    std::string name = item.alias;
    int suffix = 1;
    while (block.output_schema.FindColumn(name).has_value()) {
      name = item.alias + "_" + std::to_string(++suffix);
    }
    ICEBERG_RETURN_NOT_OK(
        block.output_schema.AddColumn({name, InferType(item.expr, types)}));
  }

  // ORDER BY: items resolve against the output schema (alias / output
  // column name, or a 1-based ordinal literal).
  for (const ParsedOrderItem& item : select.order_by) {
    QueryBlock::OrderSpec spec;
    spec.ascending = item.ascending;
    if (item.expr->kind == ExprKind::kLiteral &&
        item.expr->literal.is_int()) {
      int64_t ordinal = item.expr->literal.AsInt();
      if (ordinal < 1 ||
          ordinal > static_cast<int64_t>(block.select.size())) {
        return Status::BindError("ORDER BY ordinal out of range: " +
                                 std::to_string(ordinal));
      }
      spec.output_column = static_cast<size_t>(ordinal - 1);
    } else if (item.expr->kind == ExprKind::kColumnRef &&
               item.expr->qualifier.empty()) {
      std::optional<size_t> idx =
          block.output_schema.FindColumn(item.expr->column);
      if (!idx.has_value()) {
        return Status::BindError(
            "ORDER BY must name an output column or ordinal: " +
            item.expr->ToString());
      }
      spec.output_column = *idx;
    } else {
      return Status::NotSupported(
          "ORDER BY supports output columns and ordinals only: " +
          item.expr->ToString());
    }
    block.order_by.push_back(spec);
  }
  block.limit = select.limit;
  return block;
}

}  // namespace iceberg
