#ifndef SMARTICEBERG_PLAN_QUERY_BLOCK_H_
#define SMARTICEBERG_PLAN_QUERY_BLOCK_H_

#include <functional>
#include <string>
#include <vector>

#include "src/catalog/fd.h"
#include "src/catalog/schema.h"
#include "src/common/status.h"
#include "src/expr/expr.h"
#include "src/storage/table.h"

namespace iceberg {

/// A relation as seen by the binder: the materialized table plus metadata
/// the optimizer reasons with (functional dependencies, declared key).
struct CatalogEntry {
  TablePtr table;
  FdSet fds;  // per-table FDs, unqualified column names
};

/// Resolves a relation name to its catalog entry (base tables, CTE results,
/// or temp tables created by rewrites).
using TableResolver =
    std::function<Result<CatalogEntry>(const std::string& name)>;

/// One bound FROM entry. `offset` is the position of this table's first
/// column in the concatenated evaluation row used by join operators.
struct BoundTableRef {
  std::string alias;  // lower-cased, unique within the block
  TablePtr table;
  FdSet fds;       // table FDs (unqualified)
  size_t offset = 0;
};

struct BoundSelectItem {
  ExprPtr expr;
  std::string alias;  // output column name (never empty after binding)
};

/// The bound form of one SELECT block: the generic iceberg query template of
/// the paper's Listing 5, generalized to N relations in FROM.
///
/// All expressions are bound: column refs carry resolved_index = flat offset
/// into the concatenation of the FROM tables' rows, in FROM order.
struct QueryBlock {
  std::vector<BoundTableRef> tables;
  std::vector<ExprPtr> where_conjuncts;  // WHERE split into conjuncts
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // nullptr when absent
  std::vector<BoundSelectItem> select;
  bool distinct = false;

  /// ORDER BY resolved to output-column ordinals, applied after
  /// projection; LIMIT truncates afterwards (-1 = none).
  struct OrderSpec {
    size_t output_column = 0;
    bool ascending = true;
  };
  std::vector<OrderSpec> order_by;
  int64_t limit = -1;

  Schema output_schema;

  /// Total width of the concatenated evaluation row.
  size_t TotalWidth() const;

  /// Index of the table (into `tables`) whose column range contains the
  /// given flat offset.
  size_t TableOfOffset(size_t flat_offset) const;

  /// Qualified name "alias.column" for a flat offset.
  std::string QualifiedNameOfOffset(size_t flat_offset) const;

  /// Lifted FDs of all FROM tables (qualified with aliases) plus
  /// equivalences implied by equality predicates in WHERE. This is the FD
  /// set Theorems 2/3 and the Appendix D inference reason over.
  FdSet QueryFds() const;

  /// All qualified attribute names of the given tables (by index).
  AttrSet AttributesOf(const std::vector<size_t>& table_indexes) const;

  std::string ToString() const;
};

/// Binds a parsed SELECT against a resolver. FROM-subqueries must already
/// have been materialized and replaced by named temp tables by the caller
/// (see engine::Database).
class Binder {
 public:
  explicit Binder(TableResolver resolver) : resolver_(std::move(resolver)) {}

  Result<QueryBlock> Bind(const struct ParsedSelect& select);

 private:
  Status BindExpr(const ExprPtr& expr, const QueryBlock& block);

  TableResolver resolver_;
};

/// Infers the output type of a bound expression. Column types come from the
/// referenced table schemas (captured at bind time in `types_by_offset`).
DataType InferType(const ExprPtr& expr,
                   const std::vector<DataType>& types_by_offset);

}  // namespace iceberg

#endif  // SMARTICEBERG_PLAN_QUERY_BLOCK_H_
