#include "src/optimizer/iceberg_optimizer.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>
#include <set>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rewrite/equality_inference.h"

namespace iceberg {

namespace {

/// Accumulates elapsed microseconds into a Timing field on destruction.
class PhaseTimer {
 public:
  explicit PhaseTimer(int64_t* slot)
      : slot_(slot), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *slot_ += std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }

 private:
  int64_t* slot_;
  std::chrono::steady_clock::time_point start_;
};

uint64_t GuardFnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Cost-gate thresholds for the a-priori reducer: skip a reducer only when
/// its HAVING is estimated to remove less than this fraction of groups AND
/// the largest claimed table is big enough that evaluating the reducer
/// (join + aggregate over its tables) costs more than the scan it saves.
/// Small tables always take the reducer — the gate must never flip the
/// paper's worked examples, only degenerate non-selective HAVINGs at scale.
constexpr size_t kAprioriGateMinRows = 10000;
constexpr double kAprioriGateMinRemoved = 0.02;

/// NLJP memo pays only when L-side bindings repeat. When almost every
/// binding is estimated distinct over a large L join, a memo-only operator
/// (pruning disabled) is a strict loss: every probe misses and pays the
/// cache insert on top of the component query.
constexpr double kNljpVetoMinRows = 50000.0;
constexpr double kNljpVetoRepeatFraction = 0.95;

/// Estimated fraction of reducer groups the HAVING clause keeps, or -1
/// when the shape is outside the cost model (the gate then stands down).
double EstimateReducerKeepFraction(const QueryBlock& reducer) {
  if (reducer.having == nullptr || reducer.tables.empty()) return -1.0;
  CardinalityEstimator est(reducer);
  std::vector<size_t> all(reducer.tables.size());
  std::iota(all.begin(), all.end(), 0);
  double join_rows = EstimateJoinRows(est, all);
  std::vector<size_t> group_offsets;
  for (const ExprPtr& g : reducer.group_by) {
    std::vector<const Expr*> refs;
    CollectColumnRefs(g, &refs);
    for (const Expr* r : refs) {
      if (r->resolved_index >= 0) {
        group_offsets.push_back(static_cast<size_t>(r->resolved_index));
      }
    }
  }
  double groups = EstimateDistinctValues(est, group_offsets, join_rows);
  double avg_group = join_rows / std::max(groups, 1.0);
  return EstimateHavingKeepFraction(reducer.having, avg_group);
}

/// True when the expression holds a non-NULL literal outside of any
/// aggregate subtree — i.e. a value that shape normalization would have
/// parameterized, so it varies across statements of the same shape.
bool HasParamLiteral(const Expr& e) {
  std::vector<const Expr*> literals;
  std::vector<const Expr*> aggregates;
  CollectParamNodes(e, &literals, &aggregates);
  return !literals.empty();
}

}  // namespace

uint64_t BlockShapeGuard(const QueryBlock& block) {
  std::string desc;
  desc.reserve(256);
  for (const BoundTableRef& t : block.tables) {
    desc += "T";
    desc += t.alias;
    desc += ":";
    if (t.table != nullptr) desc += t.table->name();
    desc += ";";
  }
  for (const ExprPtr& e : block.where_conjuncts) {
    desc += "W" + ParamShapeSignature(*e) + ";";
  }
  for (const ExprPtr& e : block.group_by) {
    desc += "G" + ParamShapeSignature(*e) + ";";
  }
  if (block.having != nullptr) {
    desc += "H" + ParamShapeSignature(*block.having) + ";";
  }
  for (const BoundSelectItem& s : block.select) {
    desc += "S" + s.alias + "=" + ParamShapeSignature(*s.expr) + ";";
  }
  if (block.distinct) desc += "D;";
  for (const QueryBlock::OrderSpec& o : block.order_by) {
    desc += "O" + std::to_string(o.output_column) + (o.ascending ? "a" : "d") +
            ";";
  }
  desc += "L" + std::to_string(block.limit);
  return GuardFnv1a(desc);
}

std::string IcebergReport::ToString() const {
  std::string out;
  for (const std::string& s : steps) out += "- " + s + "\n";
  for (const Reduction& r : reductions) {
    out += "- reduced " + r.alias + ": " + std::to_string(r.rows_before) +
           " -> " + std::to_string(r.rows_after) + " rows\n";
  }
  if (used_nljp) {
    out += nljp_explain;
    out += "  stats: " + nljp_stats.ToString() + "\n";
  }
  for (const std::string& d : degradations) {
    out += "- degraded: " + d + "\n";
  }
  return out;
}

std::vector<AprioriOpportunity> IcebergOptimizer::PickApriori(
    const QueryBlock& block, IcebergReport* report) {
  std::vector<AprioriOpportunity> picked;
  if (!options_.enable_apriori) return picked;

  // Listing 9: iterate over candidate subsets; once a reducer claims a set
  // of tables, remove them from further consideration.
  std::set<size_t> available;
  for (size_t i = 0; i < block.tables.size(); ++i) available.insert(i);
  const bool cbo_gate = options_.base_exec.cbo && CboEnabled();

  bool progress = true;
  while (progress && !available.empty()) {
    progress = false;
    // Score every available candidate and take the most constrained one:
    // more intra-L join conjuncts means a tighter (more selective, cheaper)
    // reducer. First-found ordering could otherwise pick a weakly joined
    // pair that starves a better one (e.g. {S2,T1} vs {S2,T2} in
    // Example 13 once FD inference links the categories).
    std::optional<AprioriOpportunity> best;
    std::string best_desc;
    size_t best_score = 0;
    for (size_t size = 1; size < block.tables.size() && !best.has_value();
         ++size) {
      for (const TablePartition& partition : CandidatePartitions(block)) {
        if (partition.left.size() != size) continue;
        bool all_available = true;
        for (size_t ti : partition.left) {
          if (available.count(ti) == 0) all_available = false;
        }
        if (!all_available) continue;
        Result<IcebergView> view = AnalyzeIceberg(block, partition);
        if (!view.ok()) continue;
        size_t score = 1 + view->left_only.size();
        Result<AprioriOpportunity> opp = CheckApriori(*view);
        if (!opp.ok()) continue;
        if (cbo_gate) {
          size_t claimed = 0;
          for (const auto& app : opp->applications) {
            claimed = std::max(
                claimed, block.tables[app.table_index].table->num_rows());
          }
          if (claimed > kAprioriGateMinRows) {
            double keep = EstimateReducerKeepFraction(opp->reducer_block);
            if (keep >= 0.0 && (1.0 - keep) < kAprioriGateMinRemoved) {
              ICEBERG_COUNTER("cbo.apriori_skipped")->Increment();
              if (report != nullptr) {
                report->steps.push_back(
                    "a-priori on " + partition.ToString(block) +
                    " skipped by cost model (HAVING keeps ~all groups)");
              }
              continue;
            }
          }
        }
        if (!best.has_value() || score > best_score) {
          best = std::move(*opp);
          best_desc = partition.ToString(block);
          best_score = score;
        }
      }
    }
    if (best.has_value()) {
      // Claim only the tables the reducer actually filters (the paper's
      // "subset of T_L with at least one attribute output by Q_L").
      for (const auto& app : best->applications) {
        available.erase(app.table_index);
      }
      if (report != nullptr) {
        report->steps.push_back("a-priori on " + best_desc + ": " +
                                best->safety_reason);
      }
      picked.push_back(std::move(*best));
      progress = true;
    }
  }
  return picked;
}

Result<QueryBlock> IcebergOptimizer::ApplyReducers(
    const QueryBlock& block,
    const std::vector<AprioriOpportunity>& opportunities,
    IcebergReport* report) {
  QueryBlock rewritten = block;
  ExecOptions reducer_exec = options_.base_exec;
  reducer_exec.governor = options_.governor;
  Executor executor(reducer_exec);
  for (const AprioriOpportunity& opp : opportunities) {
    ICEBERG_ASSIGN_OR_RETURN(auto replacements,
                             ApplyApriori(opp, &executor));
    for (auto& [table_index, table] : replacements) {
      if (report != nullptr) {
        IcebergReport::Reduction r;
        r.alias = rewritten.tables[table_index].alias;
        r.rows_before = rewritten.tables[table_index].table->num_rows();
        r.rows_after = table->num_rows();
        report->reductions.push_back(std::move(r));
      }
      rewritten.tables[table_index].table = table;
    }
  }
  return rewritten;
}

Result<std::unique_ptr<NljpOperator>> IcebergOptimizer::PickMemprune(
    const QueryBlock& block, IcebergReport* report,
    const NljpPlanArtifacts* replay_artifacts,
    bool capture_artifacts_injectable) {
  NljpOptions nljp_options;
  nljp_options.enable_memo = options_.enable_memo;
  nljp_options.enable_prune = options_.enable_prune;
  nljp_options.cache_index = options_.cache_index;
  nljp_options.use_indexes = options_.use_indexes;
  nljp_options.predicate_transfer = options_.base_exec.predicate_transfer;
  nljp_options.binding_order = options_.binding_order;
  nljp_options.max_cache_entries = options_.max_cache_entries;
  nljp_options.governor = options_.governor;
  nljp_options.num_threads = options_.base_exec.num_threads;
  nljp_options.cache_registry = options_.cache_registry;
  nljp_options.cache_key = options_.cache_key;
  nljp_options.replay_artifacts = replay_artifacts;

  std::string failures;
  std::vector<TablePartition> candidates = CandidatePartitions(block);
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  // Under the cost-based optimizer, rank candidate partitions by (1)
  // pruning capability — a partition satisfying Theorem 3's structural
  // premise (G_L -> A_L) can skip entire inner executions, which dominates
  // any memo-reuse difference — then (2) estimated distinct L-side
  // bindings (ascending): fewer distinct bindings means more memo reuse
  // per cache entry. Without CBO the emission order stands (minimal L side
  // covering GROUP BY first), and partitions are analyzed lazily exactly
  // as before.
  const bool cbo_active = options_.base_exec.cbo && CboEnabled();
  std::vector<Result<IcebergView>> views;  // prefilled only under CBO
  std::vector<double> est_bindings(candidates.size(), -1.0);
  std::vector<double> est_l_rows(candidates.size(), -1.0);
  if (cbo_active && !candidates.empty()) {
    CardinalityEstimator est(block);
    std::vector<char> prune_capable(candidates.size(), 0);
    views.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      views.push_back(AnalyzeIceberg(block, candidates[i]));
      if (!views[i].ok()) continue;
      prune_capable[i] =
          options_.enable_prune && views[i]->GroupDeterminesLeft();
      est_l_rows[i] = EstimateJoinRows(est, candidates[i].left);
      est_bindings[i] =
          EstimateDistinctValues(est, views[i]->jl_offsets, est_l_rows[i]);
    }
    auto rank = [&](size_t i) {
      return est_bindings[i] < 0 ? std::numeric_limits<double>::infinity()
                                 : est_bindings[i];
    };
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (prune_capable[a] != prune_capable[b]) return prune_capable[a] != 0;
      return rank(a) < rank(b);
    });
  }
  for (size_t idx : order) {
    const TablePartition& partition = candidates[idx];
    // CandidatePartitions emits the minimal L side covering all GROUP BY
    // attributes first — the paper's preferred starting point.
    Result<IcebergView> view = cbo_active
                                   ? std::move(views[idx])
                                   : AnalyzeIceberg(block, partition);
    if (!view.ok()) continue;
    // Memo-only veto: with pruning disabled, an NLJP whose bindings are
    // estimated to almost never repeat over a large L join pays the cache
    // insert on every probe and saves nothing.
    if (cbo_active && !options_.enable_prune && est_bindings[idx] >= 0.0 &&
        est_l_rows[idx] > kNljpVetoMinRows &&
        est_bindings[idx] > kNljpVetoRepeatFraction * est_l_rows[idx]) {
      ICEBERG_COUNTER("cbo.nljp_vetoed")->Increment();
      failures += "\n  " + partition.ToString(block) +
                  ": vetoed by cost model (bindings rarely repeat)";
      continue;
    }
    // The pruning decision embeds θ's literal values in the derived p>=
    // predicate, so it transfers across literal re-bindings only when θ
    // carries none. Checked before `view` is consumed by Create.
    bool theta_literal_free = true;
    if (options_.capture != nullptr && capture_artifacts_injectable) {
      for (const ExprPtr& t : view->theta) {
        if (HasParamLiteral(*t)) {
          theta_literal_free = false;
          break;
        }
      }
    }
    Result<std::unique_ptr<NljpOperator>> op =
        NljpOperator::Create(std::move(*view), nljp_options);
    if (op.ok()) {
      // Require at least one technique to be active; a bare NLJP is never
      // better than the baseline join.
      if (!(*op)->memo_enabled() && !(*op)->prune_enabled()) {
        failures += "\n  " + partition.ToString(block) +
                    ": neither memoization nor pruning applicable";
        continue;
      }
      if (report != nullptr) {
        report->steps.push_back("NLJP on " + partition.ToString(block));
      }
      if (options_.capture != nullptr) {
        PlanTrace* cap = options_.capture;
        cap->used_nljp = true;
        cap->nljp_partition = partition;
        if (capture_artifacts_injectable) {
          NljpPlanArtifacts& art = cap->nljp_artifacts;
          // Monotonicity classification reads predicate structure, the
          // comparison direction and base-table data (pinned by the
          // catalog hash in the cache key) — never the threshold literal —
          // so it is injectable whenever no reducer rewrote the tables.
          art.monotonicity_valid = true;
          art.monotonicity = (*op)->monotonicity();
          if (theta_literal_free) {
            art.have_prune_decision = true;
            art.prune_enabled = (*op)->prune_enabled();
            art.prune_disabled_reason = (*op)->prune_disabled_reason();
            if ((*op)->prune_enabled()) {
              art.subsumption = (*op)->subsumption();
            }
          }
        }
      }
      return op;
    }
    failures += "\n  " + partition.ToString(block) + ": " +
                op.status().message();
  }
  return Status::NotSupported("no NLJP opportunity:" + failures);
}

Result<TablePtr> IcebergOptimizer::Run(const QueryBlock& block,
                                       IcebergReport* report) {
  // Local report when the caller passed none: phase timings and rewrite
  // decisions still feed the metrics registry either way.
  IcebergReport local_report;
  if (report == nullptr) report = &local_report;
  ICEBERG_COUNTER("optimizer.queries")->Increment();
  QueryGovernor* governor = options_.governor.get();
  if (governor != nullptr) ICEBERG_RETURN_NOT_OK(governor->Check());
  if (options_.replay != nullptr && options_.replay->captured) {
    // Replay into a scratch report so a non-transferring trace leaves no
    // half-recorded steps or timings behind.
    IcebergReport replay_report;
    Result<TablePtr> replayed =
        RunReplay(block, *options_.replay, &replay_report);
    if (replayed.ok() ||
        replayed.status().code() != StatusCode::kNotSupported) {
      // Success, or the query's real outcome (governor trips stay
      // retryable) — either way the replayed plan stands.
      replay_report.plan_provenance = "hit";
      *report = std::move(replay_report);
      return replayed;
    }
    ICEBERG_COUNTER("plan_cache.replay_fallbacks")->Increment();
    ICEBERG_LOG(INFO) << "plan trace did not transfer, re-optimizing: "
                      << replayed.status().message();
    report->plan_provenance = "hit-fallback";
    report->steps.push_back("plan trace did not transfer (" +
                            replayed.status().message() + ")");
  } else if (options_.capture != nullptr) {
    report->plan_provenance = "miss";
  }
  return RunFull(block, report);
}

Result<TablePtr> IcebergOptimizer::RunFull(const QueryBlock& block,
                                           IcebergReport* report) {
  PlanTrace* cap = options_.capture;
  if (cap != nullptr) cap->block_guard = BlockShapeGuard(block);
  QueryBlock inferred = block;
  {
    TraceSpan span("optimize.infer_fds", "optimize");
    PhaseTimer timer(&report->timing.infer_us);
    size_t derived = InferDerivedEqualities(&inferred);
    if (derived > 0) {
      ICEBERG_COUNTER("optimizer.fd_equalities")->Add(derived);
      report->steps.push_back("inferred " + std::to_string(derived) +
                              " equality predicate(s) from FDs");
      if (cap != nullptr) {
        for (size_t i = block.where_conjuncts.size();
             i < inferred.where_conjuncts.size(); ++i) {
          cap->derived_equalities.push_back(
              CloneExpr(inferred.where_conjuncts[i]));
        }
      }
    }
  }
  std::vector<AprioriOpportunity> reducers;
  {
    TraceSpan span("optimize.apriori_pick", "optimize");
    PhaseTimer timer(&report->timing.apriori_pick_us);
    reducers = PickApriori(inferred, report);
  }
  if (cap != nullptr) {
    for (const AprioriOpportunity& opp : reducers) {
      cap->apriori_partitions.push_back(opp.partition);
    }
  }
  QueryBlock rewritten = inferred;
  if (!reducers.empty()) {
    TraceSpan span("optimize.apriori_apply", "optimize");
    PhaseTimer timer(&report->timing.apriori_apply_us);
    ICEBERG_COUNTER("optimizer.apriori_applied")->Add(reducers.size());
    ICEBERG_ASSIGN_OR_RETURN(rewritten,
                             ApplyReducers(inferred, reducers, report));
  }
  if (options_.enable_memo || options_.enable_prune) {
    Result<std::unique_ptr<NljpOperator>> op = [&] {
      TraceSpan span("optimize.pick_memprune", "optimize");
      PhaseTimer timer(&report->timing.pick_nljp_us);
      return PickMemprune(rewritten, report, /*replay_artifacts=*/nullptr,
                          /*capture_artifacts_injectable=*/reducers.empty());
    }();
    if (op.ok()) {
      if (cap != nullptr) cap->captured = true;
      ICEBERG_COUNTER("optimizer.nljp_chosen")->Increment();
      report->used_nljp = true;
      report->nljp_explain = (*op)->Explain();
      PhaseTimer timer(&report->timing.execute_us);
      Result<TablePtr> result = (*op)->Execute(&report->nljp_stats);
      if (options_.enable_prune && !(*op)->prune_enabled()) {
        report->degradations.push_back("pruning disabled: " +
                                       (*op)->prune_disabled_reason());
      }
      if (report->nljp_stats.cache_shed_entries > 0) {
        report->degradations.push_back(
            "shed " +
            std::to_string(report->nljp_stats.cache_shed_entries) +
            " cache entries under memory pressure");
      }
      return result;
    }
    ICEBERG_COUNTER("optimizer.fallbacks")->Increment();
    ICEBERG_LOG(INFO) << "iceberg plan fell back to baseline: "
                      << op.status().message();
    report->steps.push_back("fallback to baseline (" +
                            op.status().message() + ")");
    report->degradations.push_back("fallback to baseline plan: " +
                                   op.status().message());
  }
  if (cap != nullptr) {
    // The no-NLJP decision is replayable only when no reducer rewrote the
    // tables: NLJP applicability reads the reduced tables' FDs, which vary
    // with literal values. (With the techniques disabled outright the
    // decision is trivially stable.)
    cap->captured =
        reducers.empty() || !(options_.enable_memo || options_.enable_prune);
  }
  ExecOptions fallback_exec = options_.base_exec;
  fallback_exec.governor = options_.governor;
  if (cap != nullptr) {
    fallback_exec.transfer_capture = &cap->transfer_schedule;
    fallback_exec.join_order_capture = &cap->join_order;
  }
  Executor executor(fallback_exec);
  PhaseTimer timer(&report->timing.execute_us);
  return executor.Execute(rewritten, &report->exec_stats);
}

Result<TablePtr> IcebergOptimizer::RunReplay(const QueryBlock& block,
                                             const PlanTrace& trace,
                                             IcebergReport* report) {
  if (BlockShapeGuard(block) != trace.block_guard) {
    return Status::NotSupported("block shape guard mismatch");
  }
  QueryBlock inferred = block;
  {
    TraceSpan span("optimize.infer_fds", "optimize");
    PhaseTimer timer(&report->timing.infer_us);
    if (!trace.derived_equalities.empty()) {
      // Clone per replay: the trace's bound trees are shared by every
      // session holding the cache entry and must not be aliased into a
      // live plan.
      for (const ExprPtr& e : trace.derived_equalities) {
        inferred.where_conjuncts.push_back(CloneExpr(e));
      }
      ICEBERG_COUNTER("optimizer.fd_equalities")
          ->Add(trace.derived_equalities.size());
      report->steps.push_back(
          "replayed " + std::to_string(trace.derived_equalities.size()) +
          " inferred equality predicate(s)");
    }
  }
  // Re-verify each recorded reducer partition (safety depends only on
  // structure + FDs, but re-checking keeps replay trust-free), skipping
  // the scored candidate search.
  std::vector<AprioriOpportunity> reducers;
  {
    TraceSpan span("optimize.apriori_pick", "optimize");
    PhaseTimer timer(&report->timing.apriori_pick_us);
    for (const TablePartition& partition : trace.apriori_partitions) {
      Result<IcebergView> view = AnalyzeIceberg(inferred, partition);
      if (!view.ok()) {
        return Status::NotSupported("recorded reducer partition " +
                                    partition.ToString(inferred) +
                                    " no longer analyzable: " +
                                    view.status().message());
      }
      Result<AprioriOpportunity> opp = CheckApriori(*view);
      if (!opp.ok()) {
        return Status::NotSupported("recorded reducer partition " +
                                    partition.ToString(inferred) +
                                    " no longer safe: " +
                                    opp.status().message());
      }
      report->steps.push_back("a-priori on " + partition.ToString(inferred) +
                              ": " + opp->safety_reason + " (replayed)");
      reducers.push_back(std::move(*opp));
    }
  }
  // Reducer evaluation is literal-dependent and always re-runs.
  QueryBlock rewritten = inferred;
  if (!reducers.empty()) {
    TraceSpan span("optimize.apriori_apply", "optimize");
    PhaseTimer timer(&report->timing.apriori_apply_us);
    ICEBERG_COUNTER("optimizer.apriori_applied")->Add(reducers.size());
    ICEBERG_ASSIGN_OR_RETURN(rewritten,
                             ApplyReducers(inferred, reducers, report));
  }
  if (trace.used_nljp) {
    if (!options_.enable_memo && !options_.enable_prune) {
      return Status::NotSupported("trace used NLJP but both techniques are "
                                  "disabled");
    }
    Result<std::unique_ptr<NljpOperator>> op =
        [&]() -> Result<std::unique_ptr<NljpOperator>> {
      TraceSpan span("optimize.pick_memprune", "optimize");
      PhaseTimer timer(&report->timing.pick_nljp_us);
      Result<IcebergView> view =
          AnalyzeIceberg(rewritten, trace.nljp_partition);
      if (!view.ok()) {
        return Status::NotSupported(
            "recorded NLJP partition no longer analyzable: " +
            view.status().message());
      }
      NljpOptions nljp_options;
      nljp_options.enable_memo = options_.enable_memo;
      nljp_options.enable_prune = options_.enable_prune;
      nljp_options.cache_index = options_.cache_index;
      nljp_options.use_indexes = options_.use_indexes;
      nljp_options.predicate_transfer = options_.base_exec.predicate_transfer;
      nljp_options.binding_order = options_.binding_order;
      nljp_options.max_cache_entries = options_.max_cache_entries;
      nljp_options.governor = options_.governor;
      nljp_options.num_threads = options_.base_exec.num_threads;
      nljp_options.cache_registry = options_.cache_registry;
      nljp_options.cache_key = options_.cache_key;
      nljp_options.replay_artifacts = &trace.nljp_artifacts;
      Result<std::unique_ptr<NljpOperator>> created =
          NljpOperator::Create(std::move(*view), nljp_options);
      if (!created.ok()) {
        return Status::NotSupported(
            "recorded NLJP partition no longer applicable: " +
            created.status().message());
      }
      if (!(*created)->memo_enabled() && !(*created)->prune_enabled()) {
        return Status::NotSupported(
            "recorded NLJP partition: neither memoization nor pruning "
            "applicable");
      }
      return created;
    }();
    if (!op.ok()) return op.status();
    report->steps.push_back(
        "NLJP on " + trace.nljp_partition.ToString(rewritten) + " (replayed)");
    ICEBERG_COUNTER("optimizer.nljp_chosen")->Increment();
    report->used_nljp = true;
    report->nljp_explain = (*op)->Explain();
    PhaseTimer timer(&report->timing.execute_us);
    Result<TablePtr> result = (*op)->Execute(&report->nljp_stats);
    if (options_.enable_prune && !(*op)->prune_enabled()) {
      report->degradations.push_back("pruning disabled: " +
                                     (*op)->prune_disabled_reason());
    }
    if (report->nljp_stats.cache_shed_entries > 0) {
      report->degradations.push_back(
          "shed " + std::to_string(report->nljp_stats.cache_shed_entries) +
          " cache entries under memory pressure");
    }
    return result;
  }
  // The captured plan used the baseline executor; replay that decision
  // without re-running the NLJP partition search.
  if (options_.enable_memo || options_.enable_prune) {
    ICEBERG_COUNTER("optimizer.fallbacks")->Increment();
    report->steps.push_back("fallback to baseline (replayed decision)");
    report->degradations.push_back(
        "fallback to baseline plan (replayed decision)");
  }
  ExecOptions fallback_exec = options_.base_exec;
  fallback_exec.governor = options_.governor;
  if (trace.transfer_schedule.valid) {
    fallback_exec.transfer_replay = &trace.transfer_schedule;
  }
  if (trace.join_order.valid) {
    fallback_exec.join_order_replay = &trace.join_order;
  }
  Executor executor(fallback_exec);
  PhaseTimer timer(&report->timing.execute_us);
  return executor.Execute(rewritten, &report->exec_stats);
}

Result<std::string> IcebergOptimizer::Explain(const QueryBlock& block) {
  IcebergReport report;
  QueryBlock inferred = block;
  size_t derived = InferDerivedEqualities(&inferred);
  std::string out;
  if (derived > 0) {
    out += "inferred " + std::to_string(derived) +
           " equality predicate(s) from FDs\n";
  }
  std::vector<AprioriOpportunity> reducers = PickApriori(inferred, &report);
  for (const AprioriOpportunity& opp : reducers) {
    out += opp.ToString() + "\n";
  }
  QueryBlock rewritten = inferred;
  if (!reducers.empty()) {
    ICEBERG_ASSIGN_OR_RETURN(rewritten,
                             ApplyReducers(inferred, reducers, &report));
    for (const IcebergReport::Reduction& r : report.reductions) {
      out += "reduced " + r.alias + ": " + std::to_string(r.rows_before) +
             " -> " + std::to_string(r.rows_after) + " rows\n";
    }
  }
  if (options_.enable_memo || options_.enable_prune) {
    Result<std::unique_ptr<NljpOperator>> op =
        PickMemprune(rewritten, &report);
    if (op.ok()) {
      out += (*op)->Explain();
      return out;
    }
    out += "no NLJP: " + op.status().message() + "\n";
  }
  Executor executor(options_.base_exec);
  out += executor.Explain(rewritten);
  return out;
}

}  // namespace iceberg
