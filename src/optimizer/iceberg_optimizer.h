#ifndef SMARTICEBERG_OPTIMIZER_ICEBERG_OPTIMIZER_H_
#define SMARTICEBERG_OPTIMIZER_ICEBERG_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exec/executor.h"
#include "src/nljp/nljp.h"
#include "src/rewrite/apriori.h"

namespace iceberg {

/// Toggles for the three Smart-Iceberg techniques plus physical knobs.
/// Disabling all three reduces Run() to the baseline executor.
struct IcebergOptions {
  bool enable_apriori = true;
  bool enable_memo = true;
  bool enable_prune = true;

  /// Cache index (Fig. 4 "CI"): hash lookup vs. linear scan for memo hits.
  bool cache_index = true;
  /// Secondary-index use in component queries (Fig. 4 "BT").
  bool use_indexes = true;
  BindingOrder binding_order = BindingOrder::kNatural;
  /// Bound on NLJP cache entries (0 = unbounded); see NljpOptions.
  size_t max_cache_entries = 0;

  /// Executor used for reducers and the fallback plan.
  ExecOptions base_exec;

  /// Optional per-query resource governor, shared by every stage (reducers,
  /// NLJP, fallback executor). Deadline/cancellation trips surface as
  /// Cancelled; mandatory-state overruns as ResourceExhausted. Advisory
  /// degradations (cache shedding) are recorded in
  /// IcebergReport::degradations instead of failing the query.
  GovernorPtr governor;

  /// Cross-query NLJP cache promotion (set by the serving layer): when
  /// both are set, the NLJP operator fetches its memo/prune cache from the
  /// registry under `cache_key` (statement fingerprint + catalog version)
  /// so repeated iceberg statements reuse pruning witnesses across
  /// sessions. See NljpOptions::cache_registry.
  NljpCacheRegistry* cache_registry = nullptr;
  uint64_t cache_key = 0;

  static IcebergOptions All() { return IcebergOptions{}; }
  static IcebergOptions None() {
    IcebergOptions o;
    o.enable_apriori = o.enable_memo = o.enable_prune = false;
    return o;
  }
  static IcebergOptions Only(bool apriori, bool memo, bool prune) {
    IcebergOptions o;
    o.enable_apriori = apriori;
    o.enable_memo = memo;
    o.enable_prune = prune;
    return o;
  }
};

/// What the optimizer did for one query: applied reducers, chosen NLJP
/// partition, derived predicate, runtime counters.
struct IcebergReport {
  std::vector<std::string> steps;  // human-readable decisions
  bool used_nljp = false;
  std::string nljp_explain;
  NljpStats nljp_stats;
  /// Stats of the baseline executor when the plan fell back (or when all
  /// techniques were disabled); empty otherwise.
  ExecStats exec_stats;
  /// Wall time per optimization/execution phase, microseconds. The same
  /// phases are emitted as trace spans when tracing is enabled.
  struct Timing {
    int64_t infer_us = 0;          // FD-based equality inference
    int64_t apriori_pick_us = 0;   // reducer search (Listing 9 phase 1)
    int64_t apriori_apply_us = 0;  // reducer evaluation + table rewrite
    int64_t pick_nljp_us = 0;      // NLJP partition search + Create
    int64_t execute_us = 0;        // main plan execution (NLJP or fallback)
  };
  Timing timing;
  /// (table alias, rows before, rows after) per a-priori reduction.
  struct Reduction {
    std::string alias;
    size_t rows_before = 0;
    size_t rows_after = 0;
  };
  std::vector<Reduction> reductions;
  /// Graceful degradations taken under resource pressure (cache entries
  /// shed, pruning disabled, fallback to the baseline plan). A query that
  /// completes with degradations is still exact; this records what was
  /// given up to get there.
  std::vector<std::string> degradations;

  std::string ToString() const;
};

/// The optimization procedure of Section 7 / Appendix D (Listing 9):
/// iteratively find safe generalized-a-priori reducers over relation
/// subsets, then attach memoization/pruning via one NLJP operator whose
/// L side covers the GROUP BY attributes.
class IcebergOptimizer {
 public:
  explicit IcebergOptimizer(IcebergOptions options = IcebergOptions())
      : options_(options) {}

  const IcebergOptions& options() const { return options_; }

  /// Optimizes and executes the block.
  Result<TablePtr> Run(const QueryBlock& block,
                       IcebergReport* report = nullptr);

  /// Describes the plan Run would choose, without executing the main query
  /// (reducers are still evaluated, since their output shapes the plan).
  Result<std::string> Explain(const QueryBlock& block);

 private:
  /// Phase 1 of Listing 9: greedily pick disjoint a-priori reducers.
  std::vector<AprioriOpportunity> PickApriori(const QueryBlock& block,
                                              IcebergReport* report);

  /// Applies reducers, returning a rewritten block over reduced tables.
  Result<QueryBlock> ApplyReducers(
      const QueryBlock& block,
      const std::vector<AprioriOpportunity>& opportunities,
      IcebergReport* report);

  /// Phase 2: try to attach an NLJP operator (memo and/or pruning).
  Result<std::unique_ptr<NljpOperator>> PickMemprune(const QueryBlock& block,
                                                     IcebergReport* report);

  IcebergOptions options_;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_OPTIMIZER_ICEBERG_OPTIMIZER_H_
