#ifndef SMARTICEBERG_OPTIMIZER_ICEBERG_OPTIMIZER_H_
#define SMARTICEBERG_OPTIMIZER_ICEBERG_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exec/executor.h"
#include "src/exec/transfer_graph.h"
#include "src/nljp/nljp.h"
#include "src/plan/cost/join_order.h"
#include "src/rewrite/apriori.h"

namespace iceberg {

/// The optimizer decisions captured for one statement shape, stored in the
/// serving layer's PlanCache and replayed for later statements with the
/// same shape over the same catalog version. A trace never stores
/// literal-dependent *data* (reduced tables, memo entries) — those are
/// recomputed per statement — only the *decisions* whose search is the
/// expensive part of planning:
///
///  - which table partitions got a-priori reducers (replay re-checks each
///    recorded partition, skipping the scored candidate search),
///  - whether NLJP was chosen and on which partition,
///  - NLJP derivation artifacts (monotonicity class, pruning decision and
///    derived p>=) when they were literal-value-independent at capture.
///
/// Soundness: the cache key pins the catalog version (mutation rotates
/// the hash, so a stale trace misses), and `block_guard` pins the bound
/// block's parameter-insensitive structure, catching the rare lexical
/// shape collision (sign absorption, IN-list collapse). A guard mismatch
/// replays nothing — the optimizer falls back to a full plan.
struct PlanTrace {
  uint64_t block_guard = 0;
  /// FD-derived equality conjuncts (literal-free, bound to the block's
  /// flat offsets). Replay appends clones instead of re-running the
  /// fixpoint inference.
  std::vector<ExprPtr> derived_equalities;
  std::vector<TablePartition> apriori_partitions;
  bool used_nljp = false;
  TablePartition nljp_partition;
  NljpPlanArtifacts nljp_artifacts;
  /// Predicate-transfer graph shape of the fallback-executor plan (edge
  /// set, node order, observed fixpoint passes). Replay hands it to the
  /// executor so a plan-cache hit skips the order/pass exploration; the
  /// Bloom filters themselves are data-dependent and always rebuilt.
  /// (NLJP plans re-derive the Q_B graph instead — it is per-binding-block
  /// and cheap relative to the operator's own setup.)
  TransferSchedule transfer_schedule;
  /// Join order the cost-based enumerator chose for the fallback-executor
  /// plan, with its per-level row estimates. Replay skips statistics
  /// collection and enumeration; the executor re-validates the order as a
  /// permutation of the block's FROM list and ignores it on mismatch.
  JoinOrderSchedule join_order;
  /// Set once the capture side has fully populated the trace (only
  /// successful plans are inserted into the cache).
  bool captured = false;
};

/// Parameter-insensitive structural hash of a bound block: tables
/// (aliases, in order), conjunct/group/having/select shapes via
/// ParamShapeSignature, distinct/order/limit. Two statements with equal
/// guards make the optimizer walk the same decision tree wherever its
/// choices do not depend on literal values.
uint64_t BlockShapeGuard(const QueryBlock& block);

/// Toggles for the three Smart-Iceberg techniques plus physical knobs.
/// Disabling all three reduces Run() to the baseline executor.
struct IcebergOptions {
  bool enable_apriori = true;
  bool enable_memo = true;
  bool enable_prune = true;

  /// Cache index (Fig. 4 "CI"): hash lookup vs. linear scan for memo hits.
  bool cache_index = true;
  /// Secondary-index use in component queries (Fig. 4 "BT").
  bool use_indexes = true;
  BindingOrder binding_order = BindingOrder::kNatural;
  /// Bound on NLJP cache entries (0 = unbounded); see NljpOptions.
  size_t max_cache_entries = 0;

  /// Executor used for reducers and the fallback plan.
  ExecOptions base_exec;

  /// Optional per-query resource governor, shared by every stage (reducers,
  /// NLJP, fallback executor). Deadline/cancellation trips surface as
  /// Cancelled; mandatory-state overruns as ResourceExhausted. Advisory
  /// degradations (cache shedding) are recorded in
  /// IcebergReport::degradations instead of failing the query.
  GovernorPtr governor;

  /// Cross-query NLJP cache promotion (set by the serving layer): when
  /// both are set, the NLJP operator fetches its memo/prune cache from the
  /// registry under `cache_key` (statement fingerprint + catalog version)
  /// so repeated iceberg statements reuse pruning witnesses across
  /// sessions. See NljpOptions::cache_registry.
  NljpCacheRegistry* cache_registry = nullptr;
  uint64_t cache_key = 0;

  /// Plan-cache integration (set by the serving layer; both borrowed and
  /// must outlive Run). `capture` non-null records the decisions of a full
  /// optimization into the trace. `replay` non-null short-circuits the
  /// decision searches with a previously captured trace; when the trace
  /// does not transfer (guard mismatch, a re-check fails), Run falls back
  /// to a full optimization of the same statement. At most one is set.
  PlanTrace* capture = nullptr;
  const PlanTrace* replay = nullptr;

  static IcebergOptions All() { return IcebergOptions{}; }
  static IcebergOptions None() {
    IcebergOptions o;
    o.enable_apriori = o.enable_memo = o.enable_prune = false;
    return o;
  }
  static IcebergOptions Only(bool apriori, bool memo, bool prune) {
    IcebergOptions o;
    o.enable_apriori = apriori;
    o.enable_memo = memo;
    o.enable_prune = prune;
    return o;
  }
};

/// What the optimizer did for one query: applied reducers, chosen NLJP
/// partition, derived predicate, runtime counters.
struct IcebergReport {
  std::vector<std::string> steps;  // human-readable decisions
  bool used_nljp = false;
  std::string nljp_explain;
  NljpStats nljp_stats;
  /// Stats of the baseline executor when the plan fell back (or when all
  /// techniques were disabled); empty otherwise.
  ExecStats exec_stats;
  /// Wall time per optimization/execution phase, microseconds. The same
  /// phases are emitted as trace spans when tracing is enabled.
  struct Timing {
    int64_t infer_us = 0;          // FD-based equality inference
    int64_t apriori_pick_us = 0;   // reducer search (Listing 9 phase 1)
    int64_t apriori_apply_us = 0;  // reducer evaluation + table rewrite
    int64_t pick_nljp_us = 0;      // NLJP partition search + Create
    int64_t execute_us = 0;        // main plan execution (NLJP or fallback)
  };
  Timing timing;
  /// (table alias, rows before, rows after) per a-priori reduction.
  struct Reduction {
    std::string alias;
    size_t rows_before = 0;
    size_t rows_after = 0;
  };
  std::vector<Reduction> reductions;
  /// Graceful degradations taken under resource pressure (cache entries
  /// shed, pruning disabled, fallback to the baseline plan). A query that
  /// completes with degradations is still exact; this records what was
  /// given up to get there.
  std::vector<std::string> degradations;

  /// Plan-cache provenance of this execution: "" (cache not consulted),
  /// "bypass" (statement not cacheable: CTEs/subqueries), "miss",
  /// "hit" (trace replayed), or "hit-fallback" (trace did not transfer;
  /// full optimization ran). Rendered by EXPLAIN ANALYZE.
  std::string plan_provenance;

  std::string ToString() const;
};

/// The optimization procedure of Section 7 / Appendix D (Listing 9):
/// iteratively find safe generalized-a-priori reducers over relation
/// subsets, then attach memoization/pruning via one NLJP operator whose
/// L side covers the GROUP BY attributes.
class IcebergOptimizer {
 public:
  explicit IcebergOptimizer(IcebergOptions options = IcebergOptions())
      : options_(options) {}

  const IcebergOptions& options() const { return options_; }

  /// Optimizes and executes the block.
  Result<TablePtr> Run(const QueryBlock& block,
                       IcebergReport* report = nullptr);

  /// Describes the plan Run would choose, without executing the main query
  /// (reducers are still evaluated, since their output shapes the plan).
  Result<std::string> Explain(const QueryBlock& block);

 private:
  /// Phase 1 of Listing 9: greedily pick disjoint a-priori reducers.
  std::vector<AprioriOpportunity> PickApriori(const QueryBlock& block,
                                              IcebergReport* report);

  /// Applies reducers, returning a rewritten block over reduced tables.
  Result<QueryBlock> ApplyReducers(
      const QueryBlock& block,
      const std::vector<AprioriOpportunity>& opportunities,
      IcebergReport* report);

  /// Phase 2: try to attach an NLJP operator (memo and/or pruning).
  /// `replay_artifacts` (may be null) injects captured NLJP derivations.
  /// When `options_.capture` is set, a successful pick records the chosen
  /// partition; `capture_artifacts_injectable` additionally allows the
  /// derivation artifacts to be recorded (true only when no reducer
  /// rewrote the tables, since monotonicity/pruning derivations read the
  /// reduced tables' FDs).
  Result<std::unique_ptr<NljpOperator>> PickMemprune(
      const QueryBlock& block, IcebergReport* report,
      const NljpPlanArtifacts* replay_artifacts = nullptr,
      bool capture_artifacts_injectable = false);

  /// Replays a captured trace against `block`: verifies the block guard,
  /// re-checks the recorded reducer partitions, re-applies reducers
  /// (literal-dependent), and rebuilds the NLJP operator on the recorded
  /// partition with injected artifacts — skipping every decision search.
  /// NotSupported means "trace does not transfer; run a full plan";
  /// any other error is the query's real outcome (governor trips stay
  /// retryable).
  Result<TablePtr> RunReplay(const QueryBlock& block, const PlanTrace& trace,
                             IcebergReport* report);

  /// Full optimization pipeline (capture-aware); body of Run.
  Result<TablePtr> RunFull(const QueryBlock& block, IcebergReport* report);

  IcebergOptions options_;
};

}  // namespace iceberg

#endif  // SMARTICEBERG_OPTIMIZER_ICEBERG_OPTIMIZER_H_
