// The "notable player pairs" query (paper, Listing 4): find pairs of
// players with at least 3 seasons together whose joint statistics are
// dominated by at most k other pairs. A two-block query: the WITH block
// benefits from generalized a-priori, the main block from NLJP pruning
// and memoization.

#include <chrono>
#include <cstdio>

#include "src/engine/database.h"
#include "src/workload/baseball.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace iceberg;

  Database db;
  BaseballConfig config;
  config.num_rows = 30000;
  config.num_players = 600;
  Status st = RegisterBaseball(&db, config);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const char* sql =
      "WITH pair AS "
      " (SELECT s1.pid AS pid1, s2.pid AS pid2, "
      "         AVG(s1.hits) AS hits1, AVG(s1.hruns) AS hruns1, "
      "         AVG(s2.hits) AS hits2, AVG(s2.hruns) AS hruns2 "
      "  FROM score s1, score s2 "
      "  WHERE s1.teamid = s2.teamid AND s1.year = s2.year "
      "    AND s1.round = s2.round AND s1.pid < s2.pid "
      "  GROUP BY s1.pid, s2.pid HAVING COUNT(*) >= 6) "
      "SELECT L.pid1, L.pid2, COUNT(*) "
      "FROM pair L, pair R "
      "WHERE R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1 "
      "  AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2 "
      "  AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1 "
      "    OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2) "
      "GROUP BY L.pid1, L.pid2 HAVING COUNT(*) <= 20";

  std::printf("pairs query over %zu score rows\n\n", config.num_rows);

  auto t0 = std::chrono::steady_clock::now();
  Result<TablePtr> base = db.Query(sql);
  double base_s = Seconds(t0);
  if (!base.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }

  IcebergReport report;
  t0 = std::chrono::steady_clock::now();
  Result<TablePtr> smart =
      db.QueryIceberg(sql, IcebergOptions::All(), &report);
  double smart_s = Seconds(t0);
  if (!smart.ok()) {
    std::fprintf(stderr, "smart failed: %s\n",
                 smart.status().ToString().c_str());
    return 1;
  }

  std::printf("optimizer report:\n%s\n", report.ToString().c_str());
  std::printf("baseline:      %7.3f s, %zu notable pairs\n", base_s,
              (*base)->num_rows());
  std::printf("smart-iceberg: %7.3f s, %zu notable pairs (%.1fx)\n", smart_s,
              (*smart)->num_rows(), base_s / smart_s);
  return (*base)->num_rows() == (*smart)->num_rows() ? 0 : 2;
}
