// Quickstart: build a tiny database, run an iceberg query both ways, and
// inspect what the optimizer did. Mirrors the README walkthrough.

#include <cstdio>

#include "src/engine/database.h"
#include "src/workload/basket.h"

int main() {
  using namespace iceberg;

  // 1) Create a database and load the market-basket workload
  //    basket(bid, item), key (bid, item).
  Database db;
  BasketConfig config;
  config.num_baskets = 4000;
  config.num_items = 500;
  Status st = RegisterBaskets(&db, config);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2) The frequent-pairs iceberg query (paper, Listing 1).
  const char* sql =
      "SELECT i1.item, i2.item, COUNT(*) "
      "FROM basket i1, basket i2 "
      "WHERE i1.bid = i2.bid AND i1.item < i2.item "
      "GROUP BY i1.item, i2.item "
      "HAVING COUNT(*) >= 20";

  // 3) Run on the baseline engine (join everything, then filter groups).
  ExecStats base_stats;
  Result<TablePtr> base = db.Query(sql, ExecOptions::Postgres(), &base_stats);
  if (!base.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  std::printf("baseline: %zu frequent pairs, %zu join pairs examined\n",
              (*base)->num_rows(), base_stats.join_pairs_examined);

  // 4) Run through Smart-Iceberg: the generalized a-priori rewrite shrinks
  //    `basket` to frequent items before the self-join (Theorem 2).
  IcebergReport report;
  Result<TablePtr> smart = db.QueryIceberg(sql, IcebergOptions::All(),
                                           &report);
  if (!smart.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 smart.status().ToString().c_str());
    return 1;
  }
  std::printf("smart-iceberg: %zu frequent pairs\n", (*smart)->num_rows());
  std::printf("\noptimizer report:\n%s\n", report.ToString().c_str());

  // 5) Print the result.
  std::printf("%s\n", (*smart)->ToString(10).c_str());
  return (*base)->num_rows() == (*smart)->num_rows() ? 0 : 2;
}
