// k-skyband example (the paper's Listing 2): find objects dominated by at
// most k others. Shows the automatically derived pruning predicate
// (Example 11) and compares the baseline engine against Smart-Iceberg.

#include <chrono>
#include <cstdio>

#include "src/engine/database.h"
#include "src/workload/object.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace iceberg;

  Database db;
  ObjectConfig config;
  config.num_objects = 20000;
  config.distribution = PointDistribution::kIndependent;
  config.domain = 1000;
  Status st = RegisterObjects(&db, config);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const char* sql =
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING COUNT(*) <= 50";

  std::printf("k-skyband query over %zu objects:\n  %s\n\n",
              config.num_objects, sql);

  // What will the optimizer do?
  Result<std::string> plan = db.ExplainIceberg(sql);
  if (plan.ok()) std::printf("Smart-Iceberg plan:\n%s\n", plan->c_str());

  auto t0 = std::chrono::steady_clock::now();
  Result<TablePtr> base = db.Query(sql);
  double base_s = Seconds(t0);
  if (!base.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }

  IcebergReport report;
  t0 = std::chrono::steady_clock::now();
  Result<TablePtr> smart = db.QueryIceberg(sql, IcebergOptions::All(), &report);
  double smart_s = Seconds(t0);
  if (!smart.ok()) {
    std::fprintf(stderr, "smart failed: %s\n",
                 smart.status().ToString().c_str());
    return 1;
  }

  std::printf("baseline:      %7.3f s, %zu result rows\n", base_s,
              (*base)->num_rows());
  std::printf("smart-iceberg: %7.3f s, %zu result rows (%.1fx speedup)\n",
              smart_s, (*smart)->num_rows(), base_s / smart_s);
  std::printf("NLJP stats: %s\n", report.nljp_stats.ToString().c_str());
  return (*base)->num_rows() == (*smart)->num_rows() ? 0 : 2;
}
