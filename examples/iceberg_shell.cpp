// An interactive Smart-Iceberg shell: loads the demo workloads and accepts
// SQL on stdin. Meta-commands:
//   \explain <sql>   show the Smart-Iceberg plan (reducers + NLJP parts)
//   \base <sql>      run on the baseline executor instead
//   \tables          list tables
//   \load <table> <csv-path>   bulk-load a CSV file
//   \q               quit
// Anything else is executed through the Smart-Iceberg optimizer.

#include <cstdio>
#include <iostream>
#include <string>

#include "src/engine/csv.h"
#include "src/engine/database.h"
#include "src/workload/baseball.h"
#include "src/workload/basket.h"
#include "src/workload/object.h"

namespace {

using namespace iceberg;

void RunStatement(Database* db, const std::string& line) {
  if (line.rfind("\\explain ", 0) == 0) {
    Result<std::string> plan = db->ExplainIceberg(line.substr(9));
    std::printf("%s\n", plan.ok() ? plan->c_str()
                                  : plan.status().ToString().c_str());
    return;
  }
  if (line.rfind("\\base ", 0) == 0) {
    Result<TablePtr> result = db->Query(line.substr(6));
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%s", FormatTable(**result).c_str());
    return;
  }
  if (line.rfind("\\load ", 0) == 0) {
    std::string rest = line.substr(6);
    size_t space = rest.find(' ');
    if (space == std::string::npos) {
      std::printf("usage: \\load <table> <csv-path>\n");
      return;
    }
    Status st = LoadCsvFile(db, rest.substr(0, space), rest.substr(space + 1));
    std::printf("%s\n", st.ok() ? "loaded" : st.ToString().c_str());
    return;
  }
  IcebergReport report;
  Result<TablePtr> result = db->QueryIceberg(line, IcebergOptions::All(),
                                             &report);
  if (!result.ok()) {
    std::printf("%s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", FormatTable(**result).c_str());
  if (!report.steps.empty() || report.used_nljp) {
    std::printf("-- optimizer: ");
    for (size_t i = 0; i < report.steps.size(); ++i) {
      if (i > 0) std::printf("; ");
      std::printf("%s", report.steps[i].c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Database db;
  ObjectConfig objects;
  objects.num_objects = 5000;
  if (!RegisterObjects(&db, objects).ok()) return 1;
  BasketConfig baskets;
  baskets.num_baskets = 5000;
  if (!RegisterBaskets(&db, baskets).ok()) return 1;
  BaseballConfig baseball;
  baseball.num_rows = 20000;
  baseball.num_players = 1000;
  if (!RegisterBaseball(&db, baseball).ok()) return 1;

  std::printf(
      "Smart-Iceberg shell. Demo tables: object(id,x,y), basket(bid,item), "
      "score(pid,year,round,teamid,hits,hruns,h2,sb).\n"
      "Commands: \\explain <sql>, \\base <sql>, \\tables, \\load <table> "
      "<csv>, \\q\n");
  std::string line;
  while (true) {
    std::printf("iceberg> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\tables") {
      for (const char* name : {"object", "basket", "score"}) {
        TablePtr t = *db.GetTable(name);
        std::printf("%s %s rows=%zu\n", name, t->schema().ToString().c_str(),
                    t->num_rows());
      }
      continue;
    }
    RunStatement(&db, line);
  }
  return 0;
}
